file(REMOVE_RECURSE
  "CMakeFiles/scheduling_demo.dir/scheduling_demo.cpp.o"
  "CMakeFiles/scheduling_demo.dir/scheduling_demo.cpp.o.d"
  "scheduling_demo"
  "scheduling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
