# Empty dependencies file for scheduling_demo.
# This may be replaced when dependencies are built.
