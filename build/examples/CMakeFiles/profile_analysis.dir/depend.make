# Empty dependencies file for profile_analysis.
# This may be replaced when dependencies are built.
