file(REMOVE_RECURSE
  "CMakeFiles/profile_analysis.dir/profile_analysis.cpp.o"
  "CMakeFiles/profile_analysis.dir/profile_analysis.cpp.o.d"
  "profile_analysis"
  "profile_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
