file(REMOVE_RECURSE
  "CMakeFiles/counter_collection.dir/counter_collection.cpp.o"
  "CMakeFiles/counter_collection.dir/counter_collection.cpp.o.d"
  "counter_collection"
  "counter_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
