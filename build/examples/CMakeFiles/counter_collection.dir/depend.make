# Empty dependencies file for counter_collection.
# This may be replaced when dependencies are built.
