file(REMOVE_RECURSE
  "CMakeFiles/whatif_porting.dir/whatif_porting.cpp.o"
  "CMakeFiles/whatif_porting.dir/whatif_porting.cpp.o.d"
  "whatif_porting"
  "whatif_porting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_porting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
