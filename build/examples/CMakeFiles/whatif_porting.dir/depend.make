# Empty dependencies file for whatif_porting.
# This may be replaced when dependencies are built.
