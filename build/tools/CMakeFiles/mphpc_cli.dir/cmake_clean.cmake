file(REMOVE_RECURSE
  "CMakeFiles/mphpc_cli.dir/mphpc.cpp.o"
  "CMakeFiles/mphpc_cli.dir/mphpc.cpp.o.d"
  "mphpc"
  "mphpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
