# Empty compiler generated dependencies file for mphpc_cli.
# This may be replaced when dependencies are built.
