# Empty dependencies file for bench_fig4_scale_ablation.
# This may be replaced when dependencies are built.
