# Empty dependencies file for bench_fig6_feature_importance.
# This may be replaced when dependencies are built.
