file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_app_holdout.dir/bench_fig5_app_holdout.cpp.o"
  "CMakeFiles/bench_fig5_app_holdout.dir/bench_fig5_app_holdout.cpp.o.d"
  "bench_fig5_app_holdout"
  "bench_fig5_app_holdout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_app_holdout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
