# Empty dependencies file for bench_fig7_8_scheduling.
# This may be replaced when dependencies are built.
