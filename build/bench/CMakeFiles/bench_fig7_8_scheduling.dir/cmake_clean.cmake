file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_scheduling.dir/bench_fig7_8_scheduling.cpp.o"
  "CMakeFiles/bench_fig7_8_scheduling.dir/bench_fig7_8_scheduling.cpp.o.d"
  "bench_fig7_8_scheduling"
  "bench_fig7_8_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
