# Empty dependencies file for bench_ablation_feature_selection.
# This may be replaced when dependencies are built.
