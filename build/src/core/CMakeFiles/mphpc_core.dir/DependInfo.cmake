
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/mphpc_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/feature_pipeline.cpp" "src/core/CMakeFiles/mphpc_core.dir/feature_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/feature_pipeline.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/core/CMakeFiles/mphpc_core.dir/importance.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/importance.cpp.o.d"
  "/root/repo/src/core/model_selection.cpp" "src/core/CMakeFiles/mphpc_core.dir/model_selection.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/model_selection.cpp.o.d"
  "/root/repo/src/core/permutation_importance.cpp" "src/core/CMakeFiles/mphpc_core.dir/permutation_importance.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/permutation_importance.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/mphpc_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/rpv.cpp" "src/core/CMakeFiles/mphpc_core.dir/rpv.cpp.o" "gcc" "src/core/CMakeFiles/mphpc_core.dir/rpv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mphpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mphpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mphpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mphpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mphpc_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
