# Empty dependencies file for mphpc_core.
# This may be replaced when dependencies are built.
