file(REMOVE_RECURSE
  "CMakeFiles/mphpc_core.dir/dataset.cpp.o"
  "CMakeFiles/mphpc_core.dir/dataset.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/feature_pipeline.cpp.o"
  "CMakeFiles/mphpc_core.dir/feature_pipeline.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/importance.cpp.o"
  "CMakeFiles/mphpc_core.dir/importance.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/model_selection.cpp.o"
  "CMakeFiles/mphpc_core.dir/model_selection.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/permutation_importance.cpp.o"
  "CMakeFiles/mphpc_core.dir/permutation_importance.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/predictor.cpp.o"
  "CMakeFiles/mphpc_core.dir/predictor.cpp.o.d"
  "CMakeFiles/mphpc_core.dir/rpv.cpp.o"
  "CMakeFiles/mphpc_core.dir/rpv.cpp.o.d"
  "libmphpc_core.a"
  "libmphpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
