file(REMOVE_RECURSE
  "libmphpc_core.a"
)
