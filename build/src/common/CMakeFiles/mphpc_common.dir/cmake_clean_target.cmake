file(REMOVE_RECURSE
  "libmphpc_common.a"
)
