file(REMOVE_RECURSE
  "CMakeFiles/mphpc_common.dir/json_writer.cpp.o"
  "CMakeFiles/mphpc_common.dir/json_writer.cpp.o.d"
  "CMakeFiles/mphpc_common.dir/strings.cpp.o"
  "CMakeFiles/mphpc_common.dir/strings.cpp.o.d"
  "CMakeFiles/mphpc_common.dir/table_printer.cpp.o"
  "CMakeFiles/mphpc_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/mphpc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mphpc_common.dir/thread_pool.cpp.o.d"
  "libmphpc_common.a"
  "libmphpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
