# Empty compiler generated dependencies file for mphpc_common.
# This may be replaced when dependencies are built.
