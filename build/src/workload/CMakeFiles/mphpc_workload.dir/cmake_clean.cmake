file(REMOVE_RECURSE
  "CMakeFiles/mphpc_workload.dir/app_catalog.cpp.o"
  "CMakeFiles/mphpc_workload.dir/app_catalog.cpp.o.d"
  "CMakeFiles/mphpc_workload.dir/input_config.cpp.o"
  "CMakeFiles/mphpc_workload.dir/input_config.cpp.o.d"
  "CMakeFiles/mphpc_workload.dir/run_config.cpp.o"
  "CMakeFiles/mphpc_workload.dir/run_config.cpp.o.d"
  "libmphpc_workload.a"
  "libmphpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
