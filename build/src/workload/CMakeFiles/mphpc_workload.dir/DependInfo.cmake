
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_catalog.cpp" "src/workload/CMakeFiles/mphpc_workload.dir/app_catalog.cpp.o" "gcc" "src/workload/CMakeFiles/mphpc_workload.dir/app_catalog.cpp.o.d"
  "/root/repo/src/workload/input_config.cpp" "src/workload/CMakeFiles/mphpc_workload.dir/input_config.cpp.o" "gcc" "src/workload/CMakeFiles/mphpc_workload.dir/input_config.cpp.o.d"
  "/root/repo/src/workload/run_config.cpp" "src/workload/CMakeFiles/mphpc_workload.dir/run_config.cpp.o" "gcc" "src/workload/CMakeFiles/mphpc_workload.dir/run_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mphpc_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
