# Empty compiler generated dependencies file for mphpc_workload.
# This may be replaced when dependencies are built.
