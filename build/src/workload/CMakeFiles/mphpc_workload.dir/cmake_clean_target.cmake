file(REMOVE_RECURSE
  "libmphpc_workload.a"
)
