file(REMOVE_RECURSE
  "CMakeFiles/mphpc_sim.dir/counter_synth.cpp.o"
  "CMakeFiles/mphpc_sim.dir/counter_synth.cpp.o.d"
  "CMakeFiles/mphpc_sim.dir/perf_model.cpp.o"
  "CMakeFiles/mphpc_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/mphpc_sim.dir/profiler.cpp.o"
  "CMakeFiles/mphpc_sim.dir/profiler.cpp.o.d"
  "CMakeFiles/mphpc_sim.dir/runner.cpp.o"
  "CMakeFiles/mphpc_sim.dir/runner.cpp.o.d"
  "libmphpc_sim.a"
  "libmphpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
