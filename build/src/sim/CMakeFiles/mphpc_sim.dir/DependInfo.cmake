
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/counter_synth.cpp" "src/sim/CMakeFiles/mphpc_sim.dir/counter_synth.cpp.o" "gcc" "src/sim/CMakeFiles/mphpc_sim.dir/counter_synth.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/mphpc_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/mphpc_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/mphpc_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/mphpc_sim.dir/profiler.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/mphpc_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/mphpc_sim.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mphpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mphpc_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
