# Empty compiler generated dependencies file for mphpc_sim.
# This may be replaced when dependencies are built.
