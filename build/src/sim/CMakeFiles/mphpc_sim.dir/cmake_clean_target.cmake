file(REMOVE_RECURSE
  "libmphpc_sim.a"
)
