file(REMOVE_RECURSE
  "CMakeFiles/mphpc_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/mphpc_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/gbt.cpp.o"
  "CMakeFiles/mphpc_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/knn_regressor.cpp.o"
  "CMakeFiles/mphpc_ml.dir/knn_regressor.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/linear_regressor.cpp.o"
  "CMakeFiles/mphpc_ml.dir/linear_regressor.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/mean_regressor.cpp.o"
  "CMakeFiles/mphpc_ml.dir/mean_regressor.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/metrics.cpp.o"
  "CMakeFiles/mphpc_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/random_forest.cpp.o"
  "CMakeFiles/mphpc_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/mphpc_ml.dir/serialize.cpp.o"
  "CMakeFiles/mphpc_ml.dir/serialize.cpp.o.d"
  "libmphpc_ml.a"
  "libmphpc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
