
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/knn_regressor.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/knn_regressor.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/knn_regressor.cpp.o.d"
  "/root/repo/src/ml/linear_regressor.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/linear_regressor.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/linear_regressor.cpp.o.d"
  "/root/repo/src/ml/mean_regressor.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/mean_regressor.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/mean_regressor.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/mphpc_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/mphpc_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
