file(REMOVE_RECURSE
  "libmphpc_ml.a"
)
