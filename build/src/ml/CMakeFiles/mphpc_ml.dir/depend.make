# Empty dependencies file for mphpc_ml.
# This may be replaced when dependencies are built.
