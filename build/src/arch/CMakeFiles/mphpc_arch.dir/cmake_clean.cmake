file(REMOVE_RECURSE
  "CMakeFiles/mphpc_arch.dir/architecture.cpp.o"
  "CMakeFiles/mphpc_arch.dir/architecture.cpp.o.d"
  "CMakeFiles/mphpc_arch.dir/counter_names.cpp.o"
  "CMakeFiles/mphpc_arch.dir/counter_names.cpp.o.d"
  "CMakeFiles/mphpc_arch.dir/system_catalog.cpp.o"
  "CMakeFiles/mphpc_arch.dir/system_catalog.cpp.o.d"
  "libmphpc_arch.a"
  "libmphpc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
