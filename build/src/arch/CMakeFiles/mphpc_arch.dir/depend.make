# Empty dependencies file for mphpc_arch.
# This may be replaced when dependencies are built.
