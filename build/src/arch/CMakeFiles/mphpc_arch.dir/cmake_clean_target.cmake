file(REMOVE_RECURSE
  "libmphpc_arch.a"
)
