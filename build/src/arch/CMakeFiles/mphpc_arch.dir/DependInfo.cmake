
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/architecture.cpp" "src/arch/CMakeFiles/mphpc_arch.dir/architecture.cpp.o" "gcc" "src/arch/CMakeFiles/mphpc_arch.dir/architecture.cpp.o.d"
  "/root/repo/src/arch/counter_names.cpp" "src/arch/CMakeFiles/mphpc_arch.dir/counter_names.cpp.o" "gcc" "src/arch/CMakeFiles/mphpc_arch.dir/counter_names.cpp.o.d"
  "/root/repo/src/arch/system_catalog.cpp" "src/arch/CMakeFiles/mphpc_arch.dir/system_catalog.cpp.o" "gcc" "src/arch/CMakeFiles/mphpc_arch.dir/system_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
