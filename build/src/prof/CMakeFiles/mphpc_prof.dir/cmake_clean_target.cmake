file(REMOVE_RECURSE
  "libmphpc_prof.a"
)
