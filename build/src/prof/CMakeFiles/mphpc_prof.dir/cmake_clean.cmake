file(REMOVE_RECURSE
  "CMakeFiles/mphpc_prof.dir/analysis.cpp.o"
  "CMakeFiles/mphpc_prof.dir/analysis.cpp.o.d"
  "CMakeFiles/mphpc_prof.dir/cct.cpp.o"
  "CMakeFiles/mphpc_prof.dir/cct.cpp.o.d"
  "CMakeFiles/mphpc_prof.dir/cct_builder.cpp.o"
  "CMakeFiles/mphpc_prof.dir/cct_builder.cpp.o.d"
  "CMakeFiles/mphpc_prof.dir/dataframe.cpp.o"
  "CMakeFiles/mphpc_prof.dir/dataframe.cpp.o.d"
  "libmphpc_prof.a"
  "libmphpc_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
