# Empty compiler generated dependencies file for mphpc_prof.
# This may be replaced when dependencies are built.
