
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/analysis.cpp" "src/prof/CMakeFiles/mphpc_prof.dir/analysis.cpp.o" "gcc" "src/prof/CMakeFiles/mphpc_prof.dir/analysis.cpp.o.d"
  "/root/repo/src/prof/cct.cpp" "src/prof/CMakeFiles/mphpc_prof.dir/cct.cpp.o" "gcc" "src/prof/CMakeFiles/mphpc_prof.dir/cct.cpp.o.d"
  "/root/repo/src/prof/cct_builder.cpp" "src/prof/CMakeFiles/mphpc_prof.dir/cct_builder.cpp.o" "gcc" "src/prof/CMakeFiles/mphpc_prof.dir/cct_builder.cpp.o.d"
  "/root/repo/src/prof/dataframe.cpp" "src/prof/CMakeFiles/mphpc_prof.dir/dataframe.cpp.o" "gcc" "src/prof/CMakeFiles/mphpc_prof.dir/dataframe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mphpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mphpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mphpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mphpc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
