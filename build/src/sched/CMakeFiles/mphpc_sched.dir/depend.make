# Empty dependencies file for mphpc_sched.
# This may be replaced when dependencies are built.
