file(REMOVE_RECURSE
  "libmphpc_sched.a"
)
