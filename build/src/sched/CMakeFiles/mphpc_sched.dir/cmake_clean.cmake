file(REMOVE_RECURSE
  "CMakeFiles/mphpc_sched.dir/assigners.cpp.o"
  "CMakeFiles/mphpc_sched.dir/assigners.cpp.o.d"
  "CMakeFiles/mphpc_sched.dir/easy_scheduler.cpp.o"
  "CMakeFiles/mphpc_sched.dir/easy_scheduler.cpp.o.d"
  "CMakeFiles/mphpc_sched.dir/machine.cpp.o"
  "CMakeFiles/mphpc_sched.dir/machine.cpp.o.d"
  "CMakeFiles/mphpc_sched.dir/workload_gen.cpp.o"
  "CMakeFiles/mphpc_sched.dir/workload_gen.cpp.o.d"
  "libmphpc_sched.a"
  "libmphpc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
