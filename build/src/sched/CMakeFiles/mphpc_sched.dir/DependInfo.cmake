
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/assigners.cpp" "src/sched/CMakeFiles/mphpc_sched.dir/assigners.cpp.o" "gcc" "src/sched/CMakeFiles/mphpc_sched.dir/assigners.cpp.o.d"
  "/root/repo/src/sched/easy_scheduler.cpp" "src/sched/CMakeFiles/mphpc_sched.dir/easy_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mphpc_sched.dir/easy_scheduler.cpp.o.d"
  "/root/repo/src/sched/machine.cpp" "src/sched/CMakeFiles/mphpc_sched.dir/machine.cpp.o" "gcc" "src/sched/CMakeFiles/mphpc_sched.dir/machine.cpp.o.d"
  "/root/repo/src/sched/workload_gen.cpp" "src/sched/CMakeFiles/mphpc_sched.dir/workload_gen.cpp.o" "gcc" "src/sched/CMakeFiles/mphpc_sched.dir/workload_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mphpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mphpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mphpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mphpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mphpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mphpc_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
