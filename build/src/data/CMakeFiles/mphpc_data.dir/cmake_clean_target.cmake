file(REMOVE_RECURSE
  "libmphpc_data.a"
)
