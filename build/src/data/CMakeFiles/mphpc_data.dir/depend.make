# Empty dependencies file for mphpc_data.
# This may be replaced when dependencies are built.
