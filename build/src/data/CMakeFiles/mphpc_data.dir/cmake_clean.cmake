file(REMOVE_RECURSE
  "CMakeFiles/mphpc_data.dir/csv.cpp.o"
  "CMakeFiles/mphpc_data.dir/csv.cpp.o.d"
  "CMakeFiles/mphpc_data.dir/split.cpp.o"
  "CMakeFiles/mphpc_data.dir/split.cpp.o.d"
  "CMakeFiles/mphpc_data.dir/table.cpp.o"
  "CMakeFiles/mphpc_data.dir/table.cpp.o.d"
  "CMakeFiles/mphpc_data.dir/transforms.cpp.o"
  "CMakeFiles/mphpc_data.dir/transforms.cpp.o.d"
  "libmphpc_data.a"
  "libmphpc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphpc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
