#include "sim/counter_synth.hpp"

#include <cmath>

#include "common/distributions.hpp"
#include "common/contract.hpp"

namespace mphpc::sim {

using arch::CounterKind;
using arch::Device;
using arch::SystemId;

double counter_noise_sigma(SystemId system, Device device) noexcept {
  if (device == Device::kCpu) {
    switch (system) {
      case SystemId::kQuartz: return 0.020;
      case SystemId::kRuby: return 0.015;
      case SystemId::kLassen: return 0.030;  // PAPI on Power9 less exercised
      case SystemId::kCorona: return 0.030;
    }
    return 0.02;
  }
  // GPU stacks: CUPTI reasonably mature, rocprofiler support newer.
  return system == SystemId::kCorona ? 0.12 : 0.07;
}

Device counter_device(const workload::RunConfig& rc) noexcept {
  return rc.uses_gpu ? Device::kGpu : Device::kCpu;
}

namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGpuClockGhz = 1.3;
constexpr double kGpuMlp = 32.0;
constexpr double kGpuMissLatencyCycles = 400.0;

// Applies multiplicative measurement jitter. Averaging over more ranks
// suppresses the independent part of the error but not the systematic
// part, hence the floor at half the single-rank sigma.
double jittered(Rng& rng, double value, double sigma, int ranks) noexcept {
  const double eff =
      sigma * (0.5 + 0.5 / std::sqrt(static_cast<double>(std::max(1, ranks))));
  return value * lognormal_factor(rng, eff);
}

}  // namespace

CounterValues synthesize_counters(const workload::AppSignature& app, double scale,
                                  const workload::RunConfig& rc,
                                  const arch::ArchitectureSpec& sys,
                                  const TimeBreakdown& breakdown, Rng& rng) {
  MPHPC_EXPECTS(scale > 0.0);
  MPHPC_EXPECTS(breakdown.total_s() > 0.0);
  const Device device = counter_device(rc);
  CounterValues v{};

  const double w_total = total_instructions(app, scale);
  const double alpha = offload_fraction(app, rc);

  double insts = 0.0;                      // instructions per rank/device
  workload::InstructionMix mix;            // mix of the recorded device
  MemoryBehavior mem;                      // cache behaviour of that device
  double stall_cycles = 0.0;
  double total_cycles = 0.0;

  if (device == Device::kGpu) {
    MPHPC_EXPECTS(rc.gpus > 0);
    insts = w_total * alpha / rc.gpus;
    mix = app.gpu_mix;
    mem = gpu_memory_behavior(app, scale, rc, sys);
    const double dram_accesses =
        insts * mix.load * mem.l1_load_miss_rate * mem.l2_load_miss_rate +
        insts * mix.store * mem.l1_store_miss_rate * mem.l2_store_miss_rate;
    stall_cycles = dram_accesses * kGpuMissLatencyCycles / kGpuMlp;
    total_cycles = (breakdown.gpu_s + breakdown.overhead_s) * kGpuClockGhz * 1e9;
  } else {
    insts = w_total * (1.0 - alpha) / rc.ranks;
    mix = app.cpu_mix;
    mem = cpu_memory_behavior(app, scale, rc, sys);
    stall_cycles = breakdown.memory_s * sys.cpu.clock_ghz * 1e9;
    total_cycles = breakdown.total_s() * sys.cpu.clock_ghz * 1e9;
  }

  const double n_load = insts * mix.load;
  const double n_store = insts * mix.store;

  set(v, CounterKind::kTotalInstructions, insts);
  set(v, CounterKind::kBranchInstructions, insts * mix.branch);
  set(v, CounterKind::kStoreInstructions, n_store);
  set(v, CounterKind::kLoadInstructions, n_load);
  set(v, CounterKind::kSpFpInstructions, insts * mix.sp_fp);
  set(v, CounterKind::kDpFpInstructions, insts * mix.dp_fp);
  set(v, CounterKind::kIntArithInstructions, insts * mix.int_arith);

  const double l1_load_miss = n_load * mem.l1_load_miss_rate;
  const double l1_store_miss = n_store * mem.l1_store_miss_rate;
  set(v, CounterKind::kL1LoadMisses, l1_load_miss);
  set(v, CounterKind::kL1StoreMisses, l1_store_miss);
  set(v, CounterKind::kL2LoadMisses, l1_load_miss * mem.l2_load_miss_rate);
  set(v, CounterKind::kL2StoreMisses, l1_store_miss * mem.l2_store_miss_rate);

  const double io_scale = std::pow(scale, app.io_exponent);
  set(v, CounterKind::kIoBytesRead, app.io_read_mib * io_scale * kMiB / rc.ranks);
  set(v, CounterKind::kIoBytesWritten, app.io_write_mib * io_scale * kMiB / rc.ranks);

  // Extended-page-table size tracks the resident working set (8-byte
  // entries over 4 KiB pages), measured host-side for every run.
  const double host_ws_mib =
      cpu_memory_behavior(app, scale, rc, sys).working_set_mib_per_rank;
  set(v, CounterKind::kPageTableSize, host_ws_mib * kMiB / 4096.0 * 8.0);

  set(v, CounterKind::kMemStallCycles, stall_cycles);
  set(v, CounterKind::kTotalCycles, total_cycles);

  // Measurement jitter, one independent draw per counter.
  const double sigma = counter_noise_sigma(sys.id, device);
  for (double& value : v) value = jittered(rng, value, sigma, rc.ranks);
  // Counter-vector invariant: one finite, non-negative value per counter
  // kind — downstream feature extraction indexes the full kNumCounterKinds.
  for (const double value : v) MPHPC_ENSURES(std::isfinite(value) && value >= 0.0);
  return v;
}

}  // namespace mphpc::sim
