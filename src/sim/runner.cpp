#include "sim/runner.hpp"

#include "common/contract.hpp"

namespace mphpc::sim {

std::vector<RunProfile> run_input(const workload::AppSignature& app,
                                  const workload::InputConfig& input,
                                  const arch::SystemCatalog& systems,
                                  const Profiler& profiler) {
  std::vector<RunProfile> profiles;
  profiles.reserve(arch::kNumSystems * workload::kNumScaleClasses);
  for (const arch::SystemId id : arch::kAllSystems) {
    const arch::ArchitectureSpec& sys = systems.get(id);
    for (const workload::ScaleClass scale : workload::kAllScaleClasses) {
      profiles.push_back(profiler.profile(app, input, scale, sys));
    }
  }
  return profiles;
}

std::vector<RunProfile> run_campaign(const workload::AppCatalog& apps,
                                     const arch::SystemCatalog& systems,
                                     const CampaignOptions& options,
                                     ThreadPool* pool) {
  MPHPC_EXPECTS(options.inputs_per_app > 0);

  // Enumerate (app, input) work items up front so the parallel loop writes
  // into pre-sized slots and the output order is independent of timing.
  struct WorkItem {
    const workload::AppSignature* app;
    workload::InputConfig input;
  };
  std::vector<WorkItem> items;
  items.reserve(apps.size() * static_cast<std::size_t>(options.inputs_per_app));
  for (const auto& app : apps.all()) {
    for (auto& input : workload::make_inputs(app, options.inputs_per_app, options.seed)) {
      items.push_back({&app, std::move(input)});
    }
  }

  const std::size_t per_item = arch::kNumSystems * workload::kNumScaleClasses;
  std::vector<RunProfile> all(items.size() * per_item);
  const Profiler profiler(options.seed);

  const auto process = [&](std::size_t i) {
    auto profiles = run_input(*items[i].app, items[i].input, systems, profiler);
    for (std::size_t j = 0; j < per_item; ++j) {
      all[i * per_item + j] = std::move(profiles[j]);
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, items.size(), process);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) process(i);
  }
  // Campaign invariant: every (app, input, system, scale) slot was filled
  // with a positive observed runtime.
  MPHPC_ENSURES(all.size() == items.size() * per_item);
  for (const RunProfile& p : all) MPHPC_ENSURES(p.time_s > 0.0);
  return all;
}

}  // namespace mphpc::sim
