#include "sim/runner.hpp"

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::sim {

namespace {

// ---------------------------------------------------- campaign shards ----
//
// One shard file per (app, input) work item, written atomically after the
// item is profiled. Layout:
//   mphpc-shard v1
//   app <name>
//   input <index>
//   profiles <count>
//   p <35 numeric fields per profile>
// Anything that fails to parse — wrong header, wrong count, out-of-range
// enum, non-positive time — invalidates the whole shard and the item is
// re-profiled; a stale or tampered cache can never poison the campaign
// silently, it is just slower.

std::string shard_path(const std::string& dir, const std::string& app, int input) {
  return dir + "/" + app + "_i" + std::to_string(input) + ".shard";
}

std::string serialize_shard(const std::string& app, int input,
                            const RunProfile* profiles, std::size_t count) {
  std::string out = "mphpc-shard v1\napp " + app + "\ninput " +
                    std::to_string(input) + "\nprofiles " + std::to_string(count) +
                    "\n";
  for (std::size_t j = 0; j < count; ++j) {
    const RunProfile& p = profiles[j];
    out += "p " + format_double(p.input_scale) + " " +
           std::to_string(static_cast<int>(p.system)) + " " +
           std::to_string(static_cast<int>(p.device)) + " " +
           std::to_string(static_cast<int>(p.config.scale_class)) + " " +
           std::to_string(p.config.nodes) + " " + std::to_string(p.config.ranks) +
           " " + std::to_string(p.config.cores) + " " +
           std::to_string(p.config.gpus) + " " +
           std::to_string(p.config.uses_gpu ? 1 : 0) + " " +
           format_double(p.time_s) + " " + format_double(p.model_time_s);
    const double breakdown[] = {p.breakdown.compute_s,  p.breakdown.memory_s,
                                p.breakdown.branch_s,   p.breakdown.gpu_s,
                                p.breakdown.overhead_s, p.breakdown.serial_s,
                                p.breakdown.comm_s,     p.breakdown.io_s};
    for (const double v : breakdown) {
      out += ' ';
      out += format_double(v);
    }
    for (const double v : p.counters) {
      out += ' ';
      out += format_double(v);
    }
    out += "\n";
  }
  return out;
}

/// Reads a whole file; nullopt when it cannot be opened.
std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses one shard's text back into profiles. Returns nullopt on any
/// structural or range problem (the caller re-profiles the item).
std::optional<std::vector<RunProfile>> parse_shard(const std::string& text,
                                                   const std::string& app, int input,
                                                   std::size_t expected_count) {
  const auto lines = split(text, '\n');
  std::size_t i = 0;
  const auto next = [&]() -> std::string_view {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    return i < lines.size() ? trim(lines[i++]) : std::string_view{};
  };
  try {
    if (next() != "mphpc-shard v1") return std::nullopt;
    if (next() != "app " + app) return std::nullopt;
    if (next() != "input " + std::to_string(input)) return std::nullopt;
    if (next() != "profiles " + std::to_string(expected_count)) return std::nullopt;

    std::vector<RunProfile> profiles(expected_count);
    for (std::size_t j = 0; j < expected_count; ++j) {
      const auto parts = split(next(), ' ');
      if (parts.size() != 36 || parts[0] != "p") return std::nullopt;
      RunProfile& p = profiles[j];
      p.app = app;
      p.input_index = input;
      p.input_scale = parse_double(parts[1]);
      const long long system = parse_int(parts[2]);
      const long long device = parse_int(parts[3]);
      const long long scale = parse_int(parts[4]);
      if (system < 0 || system >= static_cast<long long>(arch::kNumSystems) ||
          device < 0 || device > 1 || scale < 0 ||
          scale >= static_cast<long long>(workload::kNumScaleClasses)) {
        return std::nullopt;
      }
      p.system = static_cast<arch::SystemId>(system);
      p.device = static_cast<arch::Device>(device);
      p.config.scale_class = static_cast<workload::ScaleClass>(scale);
      p.config.nodes = static_cast<int>(parse_int(parts[5]));
      p.config.ranks = static_cast<int>(parse_int(parts[6]));
      p.config.cores = static_cast<int>(parse_int(parts[7]));
      p.config.gpus = static_cast<int>(parse_int(parts[8]));
      p.config.uses_gpu = parse_int(parts[9]) != 0;
      p.time_s = parse_double(parts[10]);
      p.model_time_s = parse_double(parts[11]);
      double* breakdown[] = {&p.breakdown.compute_s,  &p.breakdown.memory_s,
                             &p.breakdown.branch_s,   &p.breakdown.gpu_s,
                             &p.breakdown.overhead_s, &p.breakdown.serial_s,
                             &p.breakdown.comm_s,     &p.breakdown.io_s};
      for (std::size_t b = 0; b < 8; ++b) *breakdown[b] = parse_double(parts[12 + b]);
      for (std::size_t c = 0; c < arch::kNumCounterKinds; ++c) {
        p.counters[c] = parse_double(parts[20 + c]);
      }
      if (!(p.time_s > 0.0) || p.config.nodes < 1 || p.config.ranks < 1 ||
          p.config.cores < 1 || p.config.gpus < 0) {
        return std::nullopt;
      }
    }
    return profiles;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

// Manifest v2 header: identifies the campaign configuration. Followed by
// one `shard <app> <input> <fnv1a64-hex>` line per completed work item
// recording the content hash of its shard file. A v1 (or otherwise
// mismatched) manifest never matches the header, so the whole campaign
// re-profiles — hash lines only ever tighten reuse.
std::string campaign_fingerprint(const CampaignOptions& options) {
  return "mphpc-campaign v2\nseed " + std::to_string(options.seed) +
         "\ninputs_per_app " + std::to_string(options.inputs_per_app) + "\n";
}

/// Recorded shard hashes from a manifest whose header matched, keyed by
/// "<app> <input>". Lines that fail to parse are skipped (their items
/// fall back to parse-only shard validation).
std::map<std::string, std::uint64_t> parse_manifest_hashes(const std::string& text) {
  std::map<std::string, std::uint64_t> hashes;
  for (const std::string& line : split(text, '\n')) {
    const auto parts = split(std::string(trim(line)), ' ');
    if (parts.size() != 4 || parts[0] != "shard") continue;
    try {
      std::uint64_t hash = 0;
      const std::string& hex = parts[3];
      if (hex.size() != 16) continue;
      for (const char c : hex) {
        const auto lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        std::uint64_t digit = 0;
        if (lower >= '0' && lower <= '9') {
          digit = static_cast<std::uint64_t>(lower - '0');
        } else if (lower >= 'a' && lower <= 'f') {
          digit = static_cast<std::uint64_t>(lower - 'a') + 10;
        } else {
          throw ParseError("bad hex digit");
        }
        hash = (hash << 4) | digit;
      }
      (void)parse_int(parts[2]);  // input index must at least be numeric
      hashes[parts[1] + " " + parts[2]] = hash;
    } catch (const ParseError&) {
      continue;
    }
  }
  return hashes;
}

}  // namespace

std::vector<RunProfile> run_input(const workload::AppSignature& app,
                                  const workload::InputConfig& input,
                                  const arch::SystemCatalog& systems,
                                  const Profiler& profiler) {
  std::vector<RunProfile> profiles;
  profiles.reserve(arch::kNumSystems * workload::kNumScaleClasses);
  for (const arch::SystemId id : arch::kAllSystems) {
    const arch::ArchitectureSpec& sys = systems.get(id);
    for (const workload::ScaleClass scale : workload::kAllScaleClasses) {
      profiles.push_back(profiler.profile(app, input, scale, sys));
    }
  }
  return profiles;
}

std::vector<RunProfile> run_campaign(const workload::AppCatalog& apps,
                                     const arch::SystemCatalog& systems,
                                     const CampaignOptions& options,
                                     ThreadPool* pool) {
  MPHPC_EXPECTS(options.inputs_per_app > 0);

  // Enumerate (app, input) work items up front so the parallel loop writes
  // into pre-sized slots and the output order is independent of timing.
  struct WorkItem {
    const workload::AppSignature* app;
    workload::InputConfig input;
  };
  std::vector<WorkItem> items;
  items.reserve(apps.size() * static_cast<std::size_t>(options.inputs_per_app));
  for (const auto& app : apps.all()) {
    for (auto& input : workload::make_inputs(app, options.inputs_per_app, options.seed)) {
      items.push_back({&app, std::move(input)});
    }
  }

  const std::size_t per_item = arch::kNumSystems * workload::kNumScaleClasses;
  std::vector<RunProfile> all(items.size() * per_item);
  const Profiler profiler(options.seed);

  // Interruptible campaigns: shards from a previous run of the *same*
  // campaign (manifest header match) are reused. A shard whose content
  // hash is recorded in the manifest must hash-match byte-for-byte (a
  // silently edited cache re-profiles); a shard with no recorded hash —
  // the previous run was interrupted before the final manifest write —
  // is accepted on parse alone, preserving partial-campaign resume.
  const std::string& dir = options.checkpoint_dir;
  const std::string manifest_path = dir.empty() ? std::string{} : dir + "/manifest.txt";
  const std::string fingerprint = campaign_fingerprint(options);
  bool reuse_shards = false;
  std::map<std::string, std::uint64_t> recorded;
  if (!dir.empty()) {
    std::filesystem::create_directories(dir);
    if (const auto existing = read_file(manifest_path)) {
      reuse_shards = starts_with(*existing, fingerprint);
      if (reuse_shards) recorded = parse_manifest_hashes(*existing);
    }
    // Header-only manifest up front: a crash mid-campaign leaves a valid
    // header plus whatever shards completed, so the next run resumes.
    if (!reuse_shards) atomic_write_text(manifest_path, fingerprint);
  }

  std::vector<std::uint64_t> shard_hashes(items.size(), 0);
  const auto process = [&](std::size_t i) {
    const std::string& app_name = items[i].app->name;
    const int input = items[i].input.index;
    const std::string shard =
        dir.empty() ? std::string{} : shard_path(dir, app_name, input);
    if (reuse_shards) {
      const auto it = recorded.find(app_name + " " + std::to_string(input));
      if (const auto text = read_file(shard)) {
        const std::uint64_t hash = fnv1a_64(*text);
        const bool hash_ok = it == recorded.end() || it->second == hash;
        if (hash_ok) {
          if (auto cached = parse_shard(*text, app_name, input, per_item)) {
            for (std::size_t j = 0; j < per_item; ++j) {
              all[i * per_item + j] = std::move((*cached)[j]);
            }
            shard_hashes[i] = hash;
            return;
          }
        }
      }
    }
    auto profiles = run_input(*items[i].app, items[i].input, systems, profiler);
    if (!shard.empty()) {
      const std::string text =
          serialize_shard(app_name, input, profiles.data(), per_item);
      atomic_write_text(shard, text);
      shard_hashes[i] = fnv1a_64(text);
    }
    for (std::size_t j = 0; j < per_item; ++j) {
      all[i * per_item + j] = std::move(profiles[j]);
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, items.size(), process);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) process(i);
  }

  if (!dir.empty()) {
    // Full manifest only after every shard is on disk: header + one
    // content-hash line per item, in deterministic item order.
    std::string manifest = fingerprint;
    for (std::size_t i = 0; i < items.size(); ++i) {
      manifest += "shard " + items[i].app->name + " " +
                  std::to_string(items[i].input.index) + " " +
                  format_hex64(shard_hashes[i]) + "\n";
    }
    atomic_write_text(manifest_path, manifest);
  }
  // Campaign invariant: every (app, input, system, scale) slot was filled
  // with a positive observed runtime.
  MPHPC_ENSURES(all.size() == items.size() * per_item);
  for (const RunProfile& p : all) MPHPC_ENSURES(p.time_s > 0.0);
  return all;
}

}  // namespace mphpc::sim
