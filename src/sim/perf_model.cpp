#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace mphpc::sim {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kCacheLineBytes = 64.0;

// Global work multiplier: signature base_ginsts are calibrated so that a
// one-node run takes seconds-to-minutes and a one-core run up to ~half an
// hour — the job-length regime the paper's 50k-job/0.9h-makespan
// scheduling experiment implies.
constexpr double kWorkScale = 12.0;

// CPU issue rates, instructions/cycle/core.
constexpr double kIntRate = 3.0;
constexpr double kOtherRate = 3.0;
constexpr double kMemIssueRate = 2.0;
constexpr double kScalarFpRate = 2.0;

// Average outstanding memory requests a core sustains (MLP).
constexpr double kMemLevelParallelism = 6.0;

// GPU modelling constants.
constexpr double kGpuClockGhz = 1.3;
constexpr double kGpuL1Mib = 0.128;
constexpr double kKernelsPerGinst = 20.0;
constexpr double kGpuOccupancyKneeMib = 64.0;
constexpr double kHostCompanionFraction = 0.12;

// Smooth 0..1 pressure of a working set against an effective capacity.
double ws_pressure(double ws_mib, double capacity_mib) noexcept {
  return ws_mib / (ws_mib + capacity_mib);
}

// Fraction of loads/stores missing a cache level. `locality` in [0,1]
// models temporal reuse; the pressure term engages as the working set
// outgrows the level's reach (capacity x reach multiplier).
double miss_rate(double locality, double ws_mib, double capacity_mib,
                 double reach) noexcept {
  const double pressure = ws_pressure(ws_mib, capacity_mib * reach);
  const double rate = (1.0 - locality) * (1.0 - locality) * pressure;
  return std::clamp(rate + 0.002, 0.0, 1.0);  // +0.002 compulsory-miss floor
}

// Conditional next-level miss rate among accesses that missed the
// previous level (less reuse survives, so single locality power).
double next_miss_rate(double locality, double ws_mib, double capacity_mib,
                      double reach) noexcept {
  const double pressure = ws_pressure(ws_mib, capacity_mib * reach);
  return std::clamp((1.0 - locality) * pressure + 0.01, 0.0, 1.0);
}

struct CpuCoreTime {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double branch_s = 0.0;

  [[nodiscard]] double overlapped() const noexcept {
    // Out-of-order cores overlap compute under memory stalls partially.
    return std::max(compute_s, memory_s) + 0.3 * std::min(compute_s, memory_s) +
           branch_s;
  }
};

// Time for one core to execute `insts` instructions of the given mix,
// with `active_per_node` cores sharing the node's DRAM bandwidth.
CpuCoreTime cpu_core_time(double insts, const workload::InstructionMix& mix,
                          const workload::AppSignature& app,
                          const arch::ArchitectureSpec& sys,
                          const MemoryBehavior& mem, double active_per_node) {
  const arch::CpuSpec& cpu = sys.cpu;
  const double hz = cpu.clock_ghz * 1e9;

  const double n_branch = insts * mix.branch;
  const double n_load = insts * mix.load;
  const double n_store = insts * mix.store;
  const double n_sp = insts * mix.sp_fp;
  const double n_dp = insts * mix.dp_fp;
  const double n_int = insts * mix.int_arith;
  const double n_other = insts * mix.other();

  const double dp_rate = app.vector_efficiency * cpu.flops_per_cycle +
                         (1.0 - app.vector_efficiency) * kScalarFpRate * cpu.ipc_scale;
  const double sp_rate = dp_rate * cpu.sp_throughput_ratio;
  const double int_rate = kIntRate * cpu.ipc_scale;
  const double other_rate = kOtherRate * cpu.ipc_scale;
  const double mem_issue_rate = kMemIssueRate * cpu.ipc_scale;

  CpuCoreTime t;
  const double compute_cycles = n_sp / sp_rate + n_dp / dp_rate + n_int / int_rate +
                                n_other / other_rate +
                                (n_load + n_store + n_branch) / mem_issue_rate;
  t.compute_s = compute_cycles / hz;

  const double dram_loads = n_load * mem.l1_load_miss_rate * mem.l2_load_miss_rate;
  const double dram_stores = n_store * mem.l1_store_miss_rate * mem.l2_store_miss_rate;
  const double dram_accesses = dram_loads + dram_stores;
  const double node_bytes = dram_accesses * kCacheLineBytes * active_per_node;
  const double bw_time = node_bytes / (cpu.mem_bw_gbs * 1e9);
  const double lat_time =
      dram_accesses * cpu.mem_latency_ns * 1e-9 / kMemLevelParallelism;
  t.memory_s = std::max(bw_time, lat_time);

  const double mispredict_rate =
      app.branch_entropy * (1.05 - cpu.branch_predictor_accuracy);
  t.branch_s = n_branch * mispredict_rate * cpu.branch_miss_penalty_cycles / hz;
  return t;
}

struct GpuDeviceTime {
  double kernel_s = 0.0;    ///< busy time on the device
  double overhead_s = 0.0;  ///< launches + transfers
};

// Time for one device to execute `insts` device instructions.
GpuDeviceTime gpu_device_time(double insts, const workload::AppSignature& app,
                              const arch::ArchitectureSpec& sys,
                              const MemoryBehavior& mem, double problem_mib,
                              double host_cores_per_gpu) {
  MPHPC_EXPECTS(sys.has_gpu());
  const arch::GpuSpec& gpu = *sys.gpu;
  const workload::InstructionMix& mix = app.gpu_mix;

  // Occupancy: small per-device problems underfill the machine.
  const double size_occ = ws_pressure(problem_mib, kGpuOccupancyKneeMib);
  const double eff =
      std::max(0.02, app.gpu_saturation * size_occ * gpu.software_efficiency);

  const double sp_rate = gpu.peak_sp_tflops * 1e12 * eff;
  const double dp_rate = gpu.peak_dp_tflops * 1e12 * eff;
  const double int_rate = gpu.peak_sp_tflops * 1e12 * eff;  // VALU int ~= fp32

  const double n_sp = insts * mix.sp_fp;
  const double n_dp = insts * mix.dp_fp;
  const double n_rest =
      insts * (mix.int_arith + mix.branch + mix.load + mix.store + mix.other());

  const double divergence =
      1.0 + mix.branch * app.branch_entropy * gpu.divergence_penalty * 20.0;
  const double compute_s =
      (n_sp / sp_rate + n_dp / dp_rate + n_rest / int_rate) * divergence;

  const double dram_accesses =
      insts * mix.load * mem.l1_load_miss_rate * mem.l2_load_miss_rate +
      insts * mix.store * mem.l1_store_miss_rate * mem.l2_store_miss_rate;
  double memory_s = dram_accesses * kCacheLineBytes / (gpu.mem_bw_gbs * 1e9);
  // Device-memory oversubscription stalls on page migration.
  const double mem_cap_mib = gpu.mem_gib * 1024.0;
  if (problem_mib > mem_cap_mib) memory_s *= problem_mib / mem_cap_mib;

  // Every offloaded instruction drags host-side companion work (staging,
  // launch arguments, reductions, Python/driver glue) that runs on the
  // host cores behind this device. A device fed by a single host core is
  // orchestration-bound — this is what keeps one-GPU-vs-one-core speedups
  // in the regime the study observed.
  const double scalar_ips = sys.cpu.clock_ghz * 1e9 * 3.0 * sys.cpu.ipc_scale;
  const double companion_s =
      kHostCompanionFraction * insts / (host_cores_per_gpu * scalar_ips);

  GpuDeviceTime t;
  t.kernel_s = std::max({compute_s, memory_s, companion_s});
  const double kernels = insts / 1e9 * kKernelsPerGinst;
  const double transfer_s = 2.0 * problem_mib * kMiB / (gpu.pcie_bw_gbs * 1e9);
  t.overhead_s = kernels * gpu.kernel_launch_us * 1e-6 + transfer_s;
  return t;
}

}  // namespace

double offload_fraction(const workload::AppSignature& app,
                        const workload::RunConfig& rc) noexcept {
  return rc.uses_gpu ? app.gpu_offload : 0.0;
}

double total_instructions(const workload::AppSignature& app, double scale) noexcept {
  return app.base_ginsts * std::pow(scale, app.work_exponent) * 1e9 * kWorkScale;
}

MemoryBehavior cpu_memory_behavior(const workload::AppSignature& app, double scale,
                                   const workload::RunConfig& rc,
                                   const arch::ArchitectureSpec& sys) {
  MemoryBehavior m;
  const double ws_total = app.working_set_mib * std::pow(scale, app.ws_exponent);
  m.working_set_mib_per_rank = std::max(1.0, ws_total / rc.ranks);

  const double ranks_per_node = static_cast<double>(rc.ranks) / rc.nodes;
  const double l1_mib = sys.cpu.l1_kib / 1024.0;
  const double l2_eff_mib = sys.cpu.l2_kib / 1024.0 + sys.cpu.l3_mib / ranks_per_node;

  const double store_locality = std::min(1.0, app.locality * 1.05);
  m.l1_load_miss_rate = miss_rate(app.locality, m.working_set_mib_per_rank, l1_mib, 50.0);
  m.l1_store_miss_rate =
      miss_rate(store_locality, m.working_set_mib_per_rank, l1_mib, 50.0);
  m.l2_load_miss_rate =
      next_miss_rate(app.locality, m.working_set_mib_per_rank, l2_eff_mib, 8.0);
  m.l2_store_miss_rate =
      next_miss_rate(store_locality, m.working_set_mib_per_rank, l2_eff_mib, 8.0);
  return m;
}

MemoryBehavior gpu_memory_behavior(const workload::AppSignature& app, double scale,
                                   const workload::RunConfig& rc,
                                   const arch::ArchitectureSpec& sys) {
  MPHPC_EXPECTS(sys.has_gpu() && rc.gpus > 0);
  MemoryBehavior m;
  const double ws_total = app.working_set_mib * std::pow(scale, app.ws_exponent);
  m.working_set_mib_per_rank = std::max(1.0, ws_total / rc.gpus);

  // GPU caches filter less reuse than CPU hierarchies for the same code.
  const double loc = app.locality * 0.9;
  const double store_loc = std::min(1.0, loc * 1.05);
  m.l1_load_miss_rate = miss_rate(loc, m.working_set_mib_per_rank, kGpuL1Mib, 50.0);
  m.l1_store_miss_rate =
      miss_rate(store_loc, m.working_set_mib_per_rank, kGpuL1Mib, 50.0);
  m.l2_load_miss_rate =
      next_miss_rate(loc, m.working_set_mib_per_rank, sys.gpu->l2_mib, 8.0);
  m.l2_store_miss_rate =
      next_miss_rate(store_loc, m.working_set_mib_per_rank, sys.gpu->l2_mib, 8.0);
  return m;
}

TimeBreakdown predict_time(const workload::AppSignature& app, double scale,
                           const workload::RunConfig& rc,
                           const arch::ArchitectureSpec& sys) {
  MPHPC_EXPECTS(scale > 0.0 && rc.ranks >= 1 && rc.nodes >= 1);
  TimeBreakdown out;

  const double w_total = total_instructions(app, scale);
  const double alpha = offload_fraction(app, rc);
  const double w_serial = app.serial_fraction * w_total;
  const double w_parallel = w_total - w_serial;

  // Load imbalance inflates the critical rank's share.
  const double imbalance =
      1.0 + app.imbalance * std::log2(std::max(1.0, static_cast<double>(rc.ranks)));

  const MemoryBehavior cpu_mem = cpu_memory_behavior(app, scale, rc, sys);

  // --- Serial portion: one core, alone on its node. The non-parallel
  // part of these codes is driver/setup logic (scalar control flow, not
  // the vectorized numeric kernels), so it executes with a scalar mix.
  {
    workload::RunConfig serial_rc = rc;
    serial_rc.ranks = 1;
    serial_rc.nodes = 1;
    workload::AppSignature driver = app;
    driver.cpu_mix = {.branch = 0.12, .load = 0.28, .store = 0.10,
                      .sp_fp = 0.0, .dp_fp = 0.0, .int_arith = 0.25};
    driver.vector_efficiency = 0.05;
    const MemoryBehavior serial_mem =
        cpu_memory_behavior(driver, scale, serial_rc, sys);
    const CpuCoreTime t =
        cpu_core_time(w_serial, driver.cpu_mix, driver, sys, serial_mem, 1.0);
    out.serial_s = t.overlapped();
  }

  // --- Parallel host portion. ---
  const double w_host = w_parallel * (1.0 - alpha);
  if (w_host > 0.0) {
    const double insts_per_rank = w_host / rc.ranks * imbalance;
    const double active_per_node = static_cast<double>(rc.ranks) / rc.nodes;
    const CpuCoreTime t =
        cpu_core_time(insts_per_rank, app.cpu_mix, app, sys, cpu_mem, active_per_node);
    out.compute_s = t.compute_s;
    out.memory_s = t.memory_s;
    out.branch_s = t.branch_s;
    // Re-apply the overlap model at the breakdown level: fold the
    // overlapped total into compute/memory proportionally.
    const double overlapped = t.overlapped();
    const double raw = t.compute_s + t.memory_s + t.branch_s;
    if (raw > 0.0) {
      const double f = overlapped / raw;
      out.compute_s *= f;
      out.memory_s *= f;
      out.branch_s *= f;
    }
  }

  // --- Device portion. ---
  if (alpha > 0.0) {
    const MemoryBehavior gpu_mem = gpu_memory_behavior(app, scale, rc, sys);
    const double insts_per_device = w_parallel * alpha / rc.gpus * imbalance;
    // One-core runs drive the device from a single host core; node runs
    // have the node's full core complement behind each device.
    const double host_cores_per_gpu =
        rc.scale_class == workload::ScaleClass::kOneCore
            ? 1.0
            : static_cast<double>(sys.cpu.cores_per_node) / sys.gpu->per_node;
    const GpuDeviceTime t =
        gpu_device_time(insts_per_device, app, sys, gpu_mem,
                        gpu_mem.working_set_mib_per_rank, host_cores_per_gpu);
    out.gpu_s = t.kernel_s;
    out.overhead_s = t.overhead_s;
  }

  // --- Communication. ---
  if (rc.ranks > 1) {
    const double ginsts_per_rank = w_parallel / 1e9 / rc.ranks;
    const double bytes_per_rank = app.comm_mib_per_ginst * ginsts_per_rank * kMiB;
    const double lat_bytes = bytes_per_rank * app.comm_latency_bound;
    const double bw_bytes = bytes_per_rank - lat_bytes;
    double latency_s = 0.0;
    double bw_s = 0.0;
    if (rc.nodes == 1) {
      // Intra-node MPI goes through shared memory.
      latency_s = lat_bytes / 2048.0 * 0.4 * sys.network.latency_us * 1e-6;
      bw_s = bw_bytes / (sys.cpu.mem_bw_gbs / 4.0 * 1e9);
    } else {
      // Half the traffic stays on-node, half crosses the network.
      latency_s = lat_bytes / 2048.0 * (0.5 * 0.4 + 0.5) * sys.network.latency_us * 1e-6;
      bw_s = 0.5 * bw_bytes / (sys.cpu.mem_bw_gbs / 4.0 * 1e9) +
             0.5 * bw_bytes / (sys.network.bw_gbs * 1e9);
    }
    out.comm_s = latency_s + bw_s;
  }

  // --- I/O. ---
  const double io_mib =
      (app.io_read_mib + app.io_write_mib) * std::pow(scale, app.io_exponent);
  out.io_s = io_mib * kMiB / (sys.io_bw_gbs * 1e9 * std::sqrt(static_cast<double>(rc.nodes)));

  MPHPC_ENSURES(out.total_s() > 0.0);
  return out;
}

}  // namespace mphpc::sim
