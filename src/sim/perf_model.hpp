// Analytic execution-time model.
//
// Substitutes the paper's physical systems: given an application signature
// (behaviour), an input scale (work), a run configuration (resources) and
// an architecture (machine), produces a deterministic execution-time
// breakdown. Run-to-run noise is applied separately by the profiler so the
// same deterministic model can also serve as the "true" oracle in tests.
//
// The model is roofline-flavoured:
//   - compute time from instruction mix, issue rates, and SIMD efficiency
//   - memory time from a two-level cache miss model (working set vs
//     capacity, application locality), bandwidth- and latency-limited
//   - branch time from misprediction rate x pipeline penalty
//   - GPU path with offload fraction, divergence penalty, occupancy,
//     kernel-launch and host<->device transfer overheads
//   - Amdahl serial fraction + load-imbalance scaling, communication from
//     per-rank volume split into latency- and bandwidth-bound parts, and
//     parallel-filesystem I/O.
#pragma once

#include "arch/architecture.hpp"
#include "workload/app_signature.hpp"
#include "workload/run_config.hpp"

namespace mphpc::sim {

/// Deterministic per-run time decomposition, in seconds.
struct TimeBreakdown {
  double compute_s = 0.0;   ///< arithmetic issue time (critical rank)
  double memory_s = 0.0;    ///< DRAM bandwidth/latency time
  double branch_s = 0.0;    ///< branch misprediction stalls
  double gpu_s = 0.0;       ///< device kernel time (GPU runs)
  double overhead_s = 0.0;  ///< kernel launches + host<->device transfers
  double serial_s = 0.0;    ///< Amdahl non-parallel portion
  double comm_s = 0.0;      ///< MPI communication
  double io_s = 0.0;        ///< filesystem I/O

  /// End-to-end wall time (noise-free).
  [[nodiscard]] double total_s() const noexcept {
    return compute_s + memory_s + branch_s + gpu_s + overhead_s + serial_s +
           comm_s + io_s;
  }
};

/// Intermediate cache behaviour shared with the counter synthesizer so
/// counters and times are mutually consistent.
struct MemoryBehavior {
  double l1_load_miss_rate = 0.0;   ///< fraction of loads missing L1
  double l1_store_miss_rate = 0.0;  ///< fraction of stores missing L1
  double l2_load_miss_rate = 0.0;   ///< fraction of L1 load misses missing L2/LLC
  double l2_store_miss_rate = 0.0;  ///< fraction of L1 store misses missing L2/LLC
  double working_set_mib_per_rank = 0.0;
};

/// The fraction of total work executing on the device for this run
/// (0 when the run does not use a GPU).
[[nodiscard]] double offload_fraction(const workload::AppSignature& app,
                                      const workload::RunConfig& rc) noexcept;

/// Total instructions (all ranks, both host and device) for the given
/// app/input scale.
[[nodiscard]] double total_instructions(const workload::AppSignature& app,
                                        double scale) noexcept;

/// Cache behaviour of the CPU portion of the run on this architecture.
[[nodiscard]] MemoryBehavior cpu_memory_behavior(const workload::AppSignature& app,
                                                 double scale,
                                                 const workload::RunConfig& rc,
                                                 const arch::ArchitectureSpec& sys);

/// Cache behaviour of the device portion of the run (GPU runs only).
[[nodiscard]] MemoryBehavior gpu_memory_behavior(const workload::AppSignature& app,
                                                 double scale,
                                                 const workload::RunConfig& rc,
                                                 const arch::ArchitectureSpec& sys);

/// The deterministic execution-time breakdown of one run.
[[nodiscard]] TimeBreakdown predict_time(const workload::AppSignature& app,
                                         double scale,
                                         const workload::RunConfig& rc,
                                         const arch::ArchitectureSpec& sys);

}  // namespace mphpc::sim
