// Campaign runner: sweeps the full (application x input x system x scale)
// space — the paper's data-collection phase — in parallel, producing the
// flat list of RunProfiles the dataset is built from.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/thread_pool.hpp"
#include "sim/profiler.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sim {

/// Options for a data-collection campaign.
struct CampaignOptions {
  int inputs_per_app = 47;    ///< ~47 inputs x 20 apps x 3 scales x 4 systems
                              ///  ~= the paper's 11,312 rows
  std::uint64_t seed = 2024;  ///< master seed for inputs + measurement noise
  /// When non-empty, the campaign is interruptible: each profiled
  /// (app, input) shard is persisted atomically under this directory and
  /// a re-run skips shards that are already on disk, as long as the
  /// directory's manifest matches (seed, inputs_per_app). A manifest
  /// mismatch or a corrupt/truncated shard simply re-profiles. The
  /// returned profiles are bit-identical with or without the cache.
  std::string checkpoint_dir;
};

/// Runs the full campaign. Profiles are ordered deterministically:
/// app-major, then input, then system (Table I order), then scale.
/// If `pool` is non-null, inputs are profiled in parallel.
[[nodiscard]] std::vector<RunProfile> run_campaign(
    const workload::AppCatalog& apps, const arch::SystemCatalog& systems,
    const CampaignOptions& options, ThreadPool* pool = nullptr);

/// Profiles one (app, input) pair on every system at every scale
/// (kNumSystems x kNumScaleClasses profiles, system-major order).
[[nodiscard]] std::vector<RunProfile> run_input(const workload::AppSignature& app,
                                                const workload::InputConfig& input,
                                                const arch::SystemCatalog& systems,
                                                const Profiler& profiler);

}  // namespace mphpc::sim
