#include "sim/profiler.hpp"

#include <cmath>
#include <cstdio>

#include "common/distributions.hpp"
#include "common/contract.hpp"

namespace mphpc::sim {

std::string RunProfile::id() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/i%02d@", input_index);
  return app + buf + std::string(arch::to_string(system)) + "/" +
         std::string(workload::to_string(config.scale_class));
}

RunProfile Profiler::profile(const workload::AppSignature& base,
                             const workload::InputConfig& input,
                             workload::ScaleClass scale,
                             const arch::ArchitectureSpec& sys) const {
  MPHPC_EXPECTS(base.name == input.app);

  const workload::AppSignature sig = workload::effective_signature(base, input);
  const workload::RunConfig rc = workload::make_run_config(sig, sys, scale);
  const TimeBreakdown tb = predict_time(sig, input.scale, rc, sys);

  RunProfile p;
  p.app = sig.name;
  p.input_index = input.index;
  p.input_scale = input.scale;
  p.system = sys.id;
  p.config = rc;
  p.device = counter_device(rc);
  p.breakdown = tb;
  p.model_time_s = tb.total_s();

  Rng rng(derive_seed(seed_, sig.name, static_cast<std::uint64_t>(input.index),
                      arch::to_string(sys.id), workload::to_string(scale)));

  // Run-to-run wall-time noise: app variability plus system OS noise,
  // combined in quadrature (independent log-space contributions).
  const double sigma = std::sqrt(sig.noise_sigma * sig.noise_sigma +
                                 sys.os_noise_sigma * sys.os_noise_sigma);
  p.time_s = p.model_time_s * lognormal_factor(rng, sigma);

  p.counters = synthesize_counters(sig, input.scale, rc, sys, tb, rng);
  return p;
}

}  // namespace mphpc::sim
