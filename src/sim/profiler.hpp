// The profiling layer: executes one run in the simulator and records what
// the paper's HPCToolkit-based pipeline would keep — the wall time and the
// mean-across-ranks raw counters — plus the noise-free model breakdown,
// which tests use as ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/counter_names.hpp"
#include "arch/system_catalog.hpp"
#include "sim/counter_synth.hpp"
#include "sim/perf_model.hpp"
#include "workload/input_config.hpp"
#include "workload/run_config.hpp"

namespace mphpc::sim {

/// One row of raw collected data: a single run of an (app, input) pair at
/// one scale on one system.
struct RunProfile {
  std::string app;
  int input_index = 0;
  double input_scale = 1.0;
  arch::SystemId system = arch::SystemId::kQuartz;
  workload::RunConfig config;
  arch::Device device = arch::Device::kCpu;  ///< which counters were recorded

  double time_s = 0.0;        ///< measured wall time (includes run noise)
  double model_time_s = 0.0;  ///< noise-free model time (ground truth)
  TimeBreakdown breakdown;    ///< noise-free decomposition
  CounterValues counters{};   ///< mean-across-ranks raw counters (jittered)

  /// Stable identifier "App/iNN@system/scale" for logs and joins.
  [[nodiscard]] std::string id() const;
};

/// Deterministic profiler: the same (seed, app, input, system, scale)
/// always produces the same RunProfile.
class Profiler {
 public:
  explicit Profiler(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Profiles one run. `base` must be the catalog signature for
  /// `input.app`; the input's behavioural perturbation is applied here.
  [[nodiscard]] RunProfile profile(const workload::AppSignature& base,
                                   const workload::InputConfig& input,
                                   workload::ScaleClass scale,
                                   const arch::ArchitectureSpec& sys) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace mphpc::sim
