// Hardware-counter synthesis.
//
// Produces the per-rank mean raw counter values a real HPCToolkit+PAPI /
// CUPTI / rocprofiler collection would record for a run, consistent with
// the execution-time model (same instruction mix and cache-miss model).
// Per the paper's collection protocol, GPU-capable apps on GPU systems
// record *only* device counters; everything else records CPU counters.
//
// Counters carry measurement jitter whose magnitude depends on the
// collection stack: CPU PAPI counters are mature and tight, CUPTI is
// noisier, and rocprofiler (new in HPCToolkit at the time of the study)
// is noisier still — this is what reproduces the paper's Fig. 3 finding
// that CPU-sourced counters yield better predictions.
#pragma once

#include <array>

#include "arch/counter_names.hpp"
#include "common/rng.hpp"
#include "sim/perf_model.hpp"

namespace mphpc::sim {

using CounterValues = std::array<double, arch::kNumCounterKinds>;

/// Convenience accessor.
[[nodiscard]] inline double get(const CounterValues& v, arch::CounterKind k) noexcept {
  return v[static_cast<std::size_t>(k)];
}

inline void set(CounterValues& v, arch::CounterKind k, double value) noexcept {
  v[static_cast<std::size_t>(k)] = value;
}

/// Log-space measurement noise of the collection stack for this
/// system/device combination.
[[nodiscard]] double counter_noise_sigma(arch::SystemId system,
                                         arch::Device device) noexcept;

/// Which device's counters a run records (paper §V-B protocol).
[[nodiscard]] arch::Device counter_device(const workload::RunConfig& rc) noexcept;

/// Synthesizes the mean-across-ranks raw counters for one run. `rng` is
/// the run's measurement-noise stream; the caller owns seeding.
[[nodiscard]] CounterValues synthesize_counters(const workload::AppSignature& app,
                                                double scale,
                                                const workload::RunConfig& rc,
                                                const arch::ArchitectureSpec& sys,
                                                const TimeBreakdown& breakdown,
                                                Rng& rng);

}  // namespace mphpc::sim
