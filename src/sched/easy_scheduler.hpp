// Event-driven multi-resource FCFS + EASY-backfilling scheduler
// (paper Algorithm 1), with optional fault injection.
//
// All jobs are submitted at t = 0 (a batch workload, as in the paper's
// 50,000-job experiment) unless Job::submit_s says otherwise. At every
// event time the scheduler:
//   1. starts queue-head jobs while their assigned machine has room;
//   2. if the head is blocked, reserves it at the earliest time its
//      assigned machine can fit it (the shadow time);
//   3. backfills later queued jobs that can start immediately without
//      delaying the head's reservation (classic EASY: a backfill on the
//      reserved machine must either finish before the shadow time or fit
//      in the nodes left over at it). The backfill scan depth is bounded,
//      as production schedulers do.
// Runtime estimates are exact (the simulation knows each job's runtime),
// which is the paper's setting: observed runtimes drive the simulation.
//
// With a FaultTrace (sched/faults.hpp) the event loop additionally
// replays node-down/node-up events (a down shrinks the machine's free
// pool, killing the latest-finishing running job when no node is idle)
// and per-attempt random job kills. Killed jobs are resubmitted with
// capped exponential backoff until RetryPolicy::max_attempts is
// exhausted, after which they are abandoned. Replaying FaultTrace::none()
// reproduces the fault-free simulation bit-identically.
#pragma once

#include <vector>

#include "sched/assigners.hpp"
#include "sched/checkpoint.hpp"
#include "sched/faults.hpp"
#include "sched/job.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Which event-engine implementation simulate() runs.
///
/// kCalendar is the production engine: calendar/bucket event queues with
/// an explicit (time, kind, seq) total order, a width-indexed FCFS queue
/// so backfill skips job-size classes that cannot start anywhere, and
/// O(1)-amortised event handling — built for 10^6-job traces.
/// kReference preserves the original binary-heap + linear-rescan engine
/// as the golden oracle: both engines produce bit-identical
/// SimulationResults (golden-tested), kReference just does more work.
enum class SimEngineKind { kCalendar, kReference };

struct SchedulerOptions {
  /// Maximum queued jobs examined per backfill pass. The paper's
  /// Algorithm 1 scans the whole queue; production schedulers often cap
  /// the scan. 0 means unlimited (the default, matching the paper).
  /// With a stateless assigner (MachineAssigner::stateless_assign) the
  /// calendar engine only examines — and only counts — candidates that
  /// could start on some machine; stateful assigners see every candidate
  /// so their internal state advances exactly as in a full scan.
  int backfill_depth = 0;
  /// Per-job checkpoint/restart policy. The default (interval 0) keeps
  /// the restart-from-zero behaviour bit-identically.
  CheckpointPolicy checkpoint{};
  /// Optional per-attempt policy source (per-app tiers, adaptive
  /// Young/Daly, ...). When set it overrides `checkpoint`. The planner is
  /// mutated during the run (it observes failures in simulated-time
  /// order), so pass a fresh instance per simulate() call and never share
  /// one across concurrent simulations.
  CheckpointPlanner* planner = nullptr;
  SimEngineKind engine = SimEngineKind::kCalendar;
};

struct SimulationResult {
  /// Time the last job finalized (completed, or was abandoned).
  double makespan_s = 0.0;
  double avg_bounded_slowdown = 0.0;  ///< bound tau = 10 s; completed jobs
  double avg_wait_s = 0.0;            ///< completed jobs only
  /// Node-seconds of work committed per machine (utilization numerator;
  /// completed attempts only). With checkpointing enabled this counts
  /// pure work; checkpoint writes land in
  /// checkpoint_overhead_node_seconds instead.
  std::array<double, arch::kNumSystems> node_seconds{};
  /// Node-seconds of partial work discarded by kills, per machine. With
  /// checkpointing enabled each kill loses at most one interval of work.
  std::array<double, arch::kNumSystems> lost_node_seconds{};
  /// Node-seconds of capacity offline (failed, not yet repaired), per
  /// machine, accumulated over [0, makespan_s].
  std::array<double, arch::kNumSystems> downtime_node_seconds{};
  /// Node-seconds spent writing checkpoints, per machine (both completed
  /// and killed attempts). Zero when the policy is disabled.
  std::array<double, arch::kNumSystems> checkpoint_overhead_node_seconds{};
  /// Node-seconds of killed-attempt work preserved by checkpoints, per
  /// machine: occupied time that later attempts did not have to redo.
  /// Zero when the policy is disabled.
  std::array<double, arch::kNumSystems> recovered_node_seconds{};
  long long checkpoints_written = 0;  ///< completed checkpoint writes
  long long jobs_killed = 0;     ///< kill events (node failures + random)
  long long total_retries = 0;   ///< resubmissions after kills
  std::size_t completed_jobs = 0;
  std::size_t abandoned_jobs = 0;
  std::vector<JobOutcome> outcomes;  ///< indexed like the input jobs
};

/// Runs the fault-free simulation. Jobs must all fit on at least the
/// machine each strategy assigns them to (every machine in the default
/// cluster has >= 2 nodes, so any 1-2 node job fits eventually).
[[nodiscard]] SimulationResult simulate(const std::vector<Job>& jobs,
                                        const std::vector<Machine>& machines,
                                        MachineAssigner& assigner,
                                        const SchedulerOptions& options = {});

/// Runs the simulation replaying `faults`. Passing FaultTrace::none()
/// is exactly the overload above.
[[nodiscard]] SimulationResult simulate(const std::vector<Job>& jobs,
                                        const std::vector<Machine>& machines,
                                        MachineAssigner& assigner,
                                        const FaultTrace& faults,
                                        const SchedulerOptions& options = {});

/// Average bounded slowdown over the *completed* outcomes, bound tau
/// (seconds). Abandoned jobs are excluded; returns 0 when no job
/// completed (e.g. faults abandoned every job).
[[nodiscard]] double average_bounded_slowdown(const std::vector<JobOutcome>& outcomes,
                                              double tau = 10.0);

}  // namespace mphpc::sched
