// Event-driven multi-resource FCFS + EASY-backfilling scheduler
// (paper Algorithm 1).
//
// All jobs are submitted at t = 0 (a batch workload, as in the paper's
// 50,000-job experiment). At every event time the scheduler:
//   1. starts queue-head jobs while their assigned machine has room;
//   2. if the head is blocked, reserves it at the earliest time its
//      assigned machine can fit it (the shadow time);
//   3. backfills later queued jobs that can start immediately without
//      delaying the head's reservation (classic EASY: a backfill on the
//      reserved machine must either finish before the shadow time or fit
//      in the nodes left over at it). The backfill scan depth is bounded,
//      as production schedulers do.
// Runtime estimates are exact (the simulation knows each job's runtime),
// which is the paper's setting: observed runtimes drive the simulation.
#pragma once

#include <vector>

#include "sched/assigners.hpp"
#include "sched/job.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

struct SchedulerOptions {
  /// Maximum queued jobs examined per backfill pass. The paper's
  /// Algorithm 1 scans the whole queue; production schedulers often cap
  /// the scan. 0 means unlimited (the default, matching the paper).
  int backfill_depth = 0;
};

struct SimulationResult {
  double makespan_s = 0.0;
  double avg_bounded_slowdown = 0.0;  ///< bound tau = 10 s
  double avg_wait_s = 0.0;
  /// Node-seconds of work executed per machine (utilization numerator).
  std::array<double, arch::kNumSystems> node_seconds{};
  std::vector<JobOutcome> outcomes;  ///< indexed like the input jobs
};

/// Runs the simulation. Jobs must all fit on at least the machine each
/// strategy assigns them to (every machine in the default cluster has
/// >= 2 nodes, so any 1-2 node job fits eventually).
[[nodiscard]] SimulationResult simulate(const std::vector<Job>& jobs,
                                        const std::vector<Machine>& machines,
                                        MachineAssigner& assigner,
                                        const SchedulerOptions& options = {});

/// Average bounded slowdown of a set of outcomes, bound tau (seconds).
[[nodiscard]] double average_bounded_slowdown(const std::vector<JobOutcome>& outcomes,
                                              double tau = 10.0);

}  // namespace mphpc::sched
