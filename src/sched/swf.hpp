// Standard Workload Format (SWF) trace reader.
//
// SWF is the interchange format of the Parallel Workloads Archive: a
// header of `;`-prefixed directives followed by one job per line with 18
// whitespace-separated numeric fields (job number, submit, wait, run
// time, allocated processors, ..., status, ...). parse_swf() reads the
// format strictly — a truncated or non-numeric job line is a hard error
// diagnosed with its origin and line number, never silently skipped —
// while unknown header directives are preserved verbatim (the archive
// uses many).
//
// jobs_from_swf() maps a parsed trace onto the simulation's Job model:
// each SWF job keeps its own submit time, node count (allocated
// processors / procs_per_node, clamped to the cluster) and runtime, and
// borrows the *cross-architecture shape* of a sampled dataset row — the
// row's four per-system runtimes are rescaled so the traced system's
// runtime equals the SWF run time exactly. The row's relative
// performance vector is preserved bit-for-bit, so model-based placement
// behaves as it would for the dataset app, at trace-realistic scale.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.hpp"
#include "sched/job.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sched {

/// One SWF job line (the fields the simulation consumes; the remaining
/// fields are validated as numeric and discarded).
struct SwfJob {
  long long job_number = 0;  ///< field 1
  double submit_s = 0.0;     ///< field 2
  double run_s = 0.0;        ///< field 4 (-1 = unknown)
  int procs = 0;             ///< field 5, allocated (-1 = unknown)
  int requested_procs = 0;   ///< field 8 (-1 = unknown)
  int status = 0;            ///< field 11
};

/// A parsed SWF file: header directives in file order plus the job lines.
struct SwfTrace {
  std::vector<std::pair<std::string, std::string>> directives;
  std::vector<SwfJob> jobs;
};

/// Parses SWF text. `origin` names the source in diagnostics (a path, or
/// "<string>" in tests); malformed job lines throw std::runtime_error
/// formatted "origin:line: message". An empty stream yields an empty
/// trace.
[[nodiscard]] SwfTrace parse_swf(std::istream& in, const std::string& origin);

/// Reads and parses an SWF file; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] SwfTrace read_swf_file(const std::string& path);

/// How jobs_from_swf maps SWF processor counts and runtimes onto the
/// simulated cluster.
struct SwfMapOptions {
  int procs_per_node = 36;  ///< trace processors folded into one node
  int max_nodes = 2;        ///< clamp: widest job the cluster accepts
  /// The system the traced runtimes are taken to have run on; the sampled
  /// dataset row is rescaled so this system's runtime equals run_s.
  arch::SystemId traced_system = arch::SystemId::kQuartz;
  std::uint64_t seed = 0;  ///< row-sampling stream
};

/// Jobs dropped by the mapping (and why), for reporting.
struct SwfMapStats {
  std::size_t mapped = 0;
  std::size_t skipped_no_runtime = 0;  ///< run_s <= 0 (cancelled/unknown)
  std::size_t skipped_no_procs = 0;    ///< neither procs field positive
};

/// Maps a parsed trace onto simulation jobs (see file comment). Jobs are
/// emitted in trace order with dense sequential ids; rows are drawn from
/// a stream seeded by options.seed. `stats`, when non-null, receives the
/// mapping tally.
[[nodiscard]] std::vector<Job> jobs_from_swf(const SwfTrace& trace,
                                             const core::Dataset& dataset,
                                             const workload::AppCatalog& apps,
                                             const SwfMapOptions& options,
                                             SwfMapStats* stats = nullptr);

}  // namespace mphpc::sched
