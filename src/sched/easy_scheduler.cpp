#include "sched/easy_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <list>
#include <map>

#include "common/contract.hpp"

namespace mphpc::sched {

namespace {

constexpr double kNoEvent = std::numeric_limits<double>::infinity();

/// Running-job ledger of one machine, ordered by completion time.
struct MachineState {
  int total = 0;
  int free = 0;
  std::multimap<double, int> running;  ///< end time -> nodes

  /// Earliest time at which `nodes` can be free, and the projected free
  /// node count at that time.
  [[nodiscard]] std::pair<double, int> earliest_fit(double now, int nodes) const {
    if (free >= nodes) return {now, free};
    int projected = free;
    for (const auto& [end, n] : running) {
      projected += n;
      if (projected >= nodes) return {end, projected};
    }
    // Unreachable when nodes <= total (checked by the caller).
    return {kNoEvent, projected};
  }

  [[nodiscard]] double next_completion() const noexcept {
    return running.empty() ? kNoEvent : running.begin()->first;
  }
};

}  // namespace

SimulationResult simulate(const std::vector<Job>& jobs,
                          const std::vector<Machine>& machines,
                          MachineAssigner& assigner, const SchedulerOptions& options) {
  MPHPC_EXPECTS(!machines.empty());
  MPHPC_EXPECTS(options.backfill_depth >= 0);
  const int depth_limit = options.backfill_depth == 0 ? std::numeric_limits<int>::max()
                                                      : options.backfill_depth;

  std::array<MachineState, arch::kNumSystems> state{};
  std::array<int, arch::kNumSystems> free_nodes{};
  for (const Machine& m : machines) {
    auto& s = state[static_cast<std::size_t>(m.id)];
    s.total = m.total_nodes;
    s.free = m.total_nodes;
    free_nodes[static_cast<std::size_t>(m.id)] = m.total_nodes;
  }
  for (const Job& job : jobs) {
    for (const Machine& m : machines) {
      MPHPC_EXPECTS(job.nodes_required <= m.total_nodes);
    }
    MPHPC_EXPECTS(job.nodes_required >= 1);
  }

  SimulationResult result;
  result.outcomes.resize(jobs.size());

  std::list<std::size_t> queue;
  for (std::size_t i = 0; i < jobs.size(); ++i) queue.push_back(i);

  std::size_t started_count = 0;
  const ClusterView view(machines, free_nodes);

  const auto start_job = [&](std::size_t job_index, arch::SystemId m, double now) {
    const Job& job = jobs[job_index];
    auto& s = state[static_cast<std::size_t>(m)];
    const double runtime = job.runtime[static_cast<std::size_t>(m)];
    MPHPC_EXPECTS(runtime > 0.0 && s.free >= job.nodes_required);
    s.free -= job.nodes_required;
    free_nodes[static_cast<std::size_t>(m)] = s.free;
    s.running.emplace(now + runtime, job.nodes_required);
    result.outcomes[job_index] = {m, now, now + runtime};
    result.node_seconds[static_cast<std::size_t>(m)] +=
        runtime * static_cast<double>(job.nodes_required);
    ++started_count;
  };

  // One scheduling pass at time `now` (Algorithm 1 body).
  const auto schedule_pass = [&](double now) {
    while (!queue.empty()) {
      const std::size_t head = queue.front();
      const arch::SystemId m = assigner.assign(jobs[head], started_count, view);
      const auto mi = static_cast<std::size_t>(m);
      if (state[mi].free >= jobs[head].nodes_required) {
        start_job(head, m, now);
        queue.pop_front();
        continue;
      }

      // Head is blocked: reserve it at the shadow time on its machine.
      const auto [shadow_time, projected_free] =
          state[mi].earliest_fit(now, jobs[head].nodes_required);
      // Nodes left over at the shadow time once the head's reservation is
      // honoured; backfills running past the shadow may consume these.
      int shadow_spare = projected_free - jobs[head].nodes_required;

      // Nothing can backfill while no machine has a free node.
      int max_free = 0;
      for (const auto& s : state) max_free = std::max(max_free, s.free);
      if (max_free == 0) break;

      int scanned = 0;
      for (auto it = std::next(queue.begin());
           it != queue.end() && scanned < depth_limit; ++scanned) {
        const std::size_t cand = *it;
        const Job& job = jobs[cand];
        const arch::SystemId cm = assigner.assign(job, started_count, view);
        const auto ci = static_cast<std::size_t>(cm);
        if (state[ci].free < job.nodes_required) {
          ++it;
          continue;
        }
        if (cm != m) {
          start_job(cand, cm, now);
          it = queue.erase(it);
          continue;
        }
        // Same machine as the reservation: must not delay the head.
        const double end = now + job.runtime[ci];
        if (end <= shadow_time) {
          start_job(cand, cm, now);
          it = queue.erase(it);
        } else if (shadow_spare >= job.nodes_required) {
          shadow_spare -= job.nodes_required;
          start_job(cand, cm, now);
          it = queue.erase(it);
        } else {
          ++it;
        }
      }
      break;  // head stays blocked until the next event
    }
  };

  double now = 0.0;
  schedule_pass(now);
  while (true) {
    double next = kNoEvent;
    for (const auto& s : state) next = std::min(next, s.next_completion());
    if (next == kNoEvent) break;
    now = next;
    for (std::size_t mi = 0; mi < state.size(); ++mi) {
      auto& s = state[mi];
      while (!s.running.empty() && s.running.begin()->first <= now) {
        s.free += s.running.begin()->second;
        s.running.erase(s.running.begin());
      }
      free_nodes[mi] = s.free;
    }
    schedule_pass(now);
  }
  MPHPC_ENSURES(queue.empty());

  for (const JobOutcome& o : result.outcomes) {
    // Job state-machine invariant: queued at t=0 -> started -> completed,
    // so every outcome runs forward in time on a real machine.
    MPHPC_ENSURES(o.start_s >= 0.0 && o.end_s > o.start_s);
    result.makespan_s = std::max(result.makespan_s, o.end_s);
    result.avg_wait_s += o.wait_s();
  }
  result.avg_wait_s /= static_cast<double>(jobs.empty() ? 1 : jobs.size());
  result.avg_bounded_slowdown = average_bounded_slowdown(result.outcomes);
  return result;
}

double average_bounded_slowdown(const std::vector<JobOutcome>& outcomes, double tau) {
  MPHPC_EXPECTS(tau > 0.0);
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const JobOutcome& o : outcomes) {
    const double run = o.run_s();
    const double slowdown = (o.wait_s() + run) / std::max(run, tau);
    sum += std::max(slowdown, 1.0);
  }
  return sum / static_cast<double>(outcomes.size());
}

}  // namespace mphpc::sched
