#include "sched/easy_scheduler.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <queue>
#include <tuple>

#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc::sched {

namespace {

constexpr double kNoEvent = std::numeric_limits<double>::infinity();

/// One running attempt in a machine's ledger.
struct RunningJob {
  std::size_t job = 0;
  int nodes = 0;
  double start = 0.0;
  double end = 0.0;
  /// Work seconds this attempt performs (runtime minus checkpointed
  /// progress); end - start additionally includes checkpoint overhead.
  double work = 0.0;
};

/// Running-job ledger of one machine, ordered by completion time, plus
/// the fault bookkeeping (down nodes and offline node-seconds).
struct MachineState {
  int total = 0;
  int free = 0;
  int down = 0;
  double down_last_change = 0.0;
  double down_node_seconds = 0.0;
  std::multimap<double, RunningJob> running;  ///< end time -> attempt

  /// Earliest time at which `nodes` can be free, and the projected free
  /// node count at that time. With nodes down this can be unreachable
  /// (kNoEvent) until a repair restores capacity.
  [[nodiscard]] std::pair<double, int> earliest_fit(double now, int nodes) const {
    if (free >= nodes) return {now, free};
    int projected = free;
    for (const auto& [end, rj] : running) {
      projected += rj.nodes;
      if (projected >= nodes) return {end, projected};
    }
    return {kNoEvent, projected};
  }

  [[nodiscard]] double next_completion() const noexcept {
    return running.empty() ? kNoEvent : running.begin()->first;
  }

  /// Accrues offline node-seconds up to `t`; call before `down` changes.
  void settle_downtime(double t) noexcept {
    down_node_seconds += (t - down_last_change) * static_cast<double>(down);
    down_last_change = t;
  }
};

/// Where a job's running ledger entry lives, when it is running.
struct RunningRef {
  bool active = false;
  std::size_t machine = 0;
  std::multimap<double, RunningJob>::iterator where;
};

/// The event-loop engine behind simulate(). One instance per call; with
/// FaultTrace::none() the event stream degenerates to job completions and
/// the loop reproduces the fault-free Algorithm 1 simulation exactly.
class SimEngine {
 public:
  SimEngine(const std::vector<Job>& jobs, const std::vector<Machine>& machines,
            MachineAssigner& assigner, const FaultTrace& faults,
            const SchedulerOptions& options)
      : jobs_(jobs),
        assigner_(assigner),
        faults_(faults),
        checkpoint_(options.checkpoint),
        depth_limit_(options.backfill_depth == 0 ? std::numeric_limits<int>::max()
                                                 : options.backfill_depth),
        view_(machines, free_nodes_) {
    MPHPC_EXPECTS(!machines.empty());
    MPHPC_EXPECTS(options.backfill_depth >= 0);
    MPHPC_EXPECTS(options.checkpoint.interval_s >= 0.0);
    MPHPC_EXPECTS(options.checkpoint.overhead_s >= 0.0);
    MPHPC_EXPECTS(faults.retry.max_attempts >= 1);
    MPHPC_EXPECTS(faults.kill_probability >= 0.0 && faults.kill_probability <= 1.0);
    for (const Machine& m : machines) {
      auto& s = state_[static_cast<std::size_t>(m.id)];
      s.total = m.total_nodes;
      s.free = m.total_nodes;
      free_nodes_[static_cast<std::size_t>(m.id)] = m.total_nodes;
    }
    for (const Job& job : jobs_) {
      for (const Machine& m : machines) {
        MPHPC_EXPECTS(job.nodes_required <= m.total_nodes);
      }
      MPHPC_EXPECTS(job.nodes_required >= 1);
      MPHPC_EXPECTS(job.submit_s >= 0.0);
    }
  }

  [[nodiscard]] SimulationResult run() {
    // One pass over the job list lets order-memoizing assigners cache
    // each job's machine preference before any scheduling decision.
    assigner_.prime(jobs_);
    result_.outcomes.resize(jobs_.size());
    attempts_.assign(jobs_.size(), 0);
    saved_fraction_.assign(jobs_.size(), 0.0);
    running_ref_.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].submit_s <= 0.0) {
        queue_.push_back(i);
      } else {
        pending_.emplace(jobs_[i].submit_s, i);
      }
    }

    double now = 0.0;
    schedule_pass(now);
    while (finalized_ < jobs_.size()) {
      const double next = next_event_time();
      // Repairs are paired with failures, so capacity (and thus progress)
      // always returns; an infinite next event would be an engine bug.
      MPHPC_ASSERT(next != kNoEvent);
      now = next;
      process_completions(now);
      process_kills(now);
      process_node_events(now);
      release_pending(now);
      schedule_pass(now);
    }
    finalize_result();
    return std::move(result_);
  }

 private:
  void start_job(std::size_t job_index, arch::SystemId m, double now) {
    const Job& job = jobs_[job_index];
    const auto mi = static_cast<std::size_t>(m);
    auto& s = state_[mi];
    const double runtime = job.runtime[mi];
    MPHPC_EXPECTS(runtime > 0.0 && s.free >= job.nodes_required);
    // A resumed attempt only redoes the work past its last checkpoint.
    // Progress is tracked as a fraction of the job so a retry assigned to
    // a *different* machine (different runtime) resumes proportionally.
    // Checkpoints never land exactly at completion, so the saved fraction
    // is strictly below 1 and `work` stays positive. Disabled policy:
    // work == runtime, duration == work with the same bits — the
    // restart-from-zero arithmetic is untouched.
    const double work = checkpoint_.enabled()
                            ? runtime * (1.0 - saved_fraction_[job_index])
                            : runtime;
    MPHPC_ASSERT(work > 0.0);
    const double duration = checkpoint_.attempt_duration(work);
    s.free -= job.nodes_required;
    free_nodes_[mi] = s.free;
    const int attempt = ++attempts_[job_index];
    const auto it = s.running.emplace(
        now + duration,
        RunningJob{job_index, job.nodes_required, now, now + duration, work});
    running_ref_[job_index] = {true, mi, it};
    result_.outcomes[job_index] = {m, now, now + duration, job.submit_s, attempt, false};
    if (faults_.kill_probability > 0.0) {
      // Per-attempt draw from its own derived stream, so kill decisions
      // are independent of scheduling order and machine choice.
      Rng rng(derive_seed(faults_.seed, "job-kill",
                          static_cast<std::uint64_t>(job.id),
                          static_cast<std::uint64_t>(attempt)));
      if (rng.bernoulli(faults_.kill_probability)) {
        kills_.emplace(now + rng.uniform() * duration, job_index, attempt);
      }
    }
    ++started_count_;
  }

  // One scheduling pass at time `now` (Algorithm 1 body).
  void schedule_pass(double now) {
    while (!queue_.empty()) {
      const std::size_t head = queue_.front();
      const arch::SystemId m = assigner_.assign(jobs_[head], started_count_, view_);
      const auto mi = static_cast<std::size_t>(m);
      if (state_[mi].free >= jobs_[head].nodes_required) {
        start_job(head, m, now);
        queue_.pop_front();
        continue;
      }

      // Head is blocked: reserve it at the shadow time on its machine.
      const auto [shadow_time, projected_free] =
          state_[mi].earliest_fit(now, jobs_[head].nodes_required);
      // Nodes left over at the shadow time once the head's reservation is
      // honoured; backfills running past the shadow may consume these.
      int shadow_spare = projected_free - jobs_[head].nodes_required;

      // Nothing can backfill while no machine has a free node.
      int max_free = 0;
      for (const auto& s : state_) max_free = std::max(max_free, s.free);
      if (max_free == 0) break;

      int scanned = 0;
      for (auto it = std::next(queue_.begin());
           it != queue_.end() && scanned < depth_limit_; ++scanned) {
        const std::size_t cand = *it;
        const Job& job = jobs_[cand];
        const arch::SystemId cm = assigner_.assign(job, started_count_, view_);
        const auto ci = static_cast<std::size_t>(cm);
        if (state_[ci].free < job.nodes_required) {
          ++it;
          continue;
        }
        if (cm != m) {
          start_job(cand, cm, now);
          it = queue_.erase(it);
          continue;
        }
        // Same machine as the reservation: must not delay the head.
        const double end = now + job.runtime[ci];
        if (end <= shadow_time) {
          start_job(cand, cm, now);
          it = queue_.erase(it);
        } else if (shadow_spare >= job.nodes_required) {
          shadow_spare -= job.nodes_required;
          start_job(cand, cm, now);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      break;  // head stays blocked until the next event
    }
  }

  [[nodiscard]] double next_event_time() const {
    double next = kNoEvent;
    for (const auto& s : state_) next = std::min(next, s.next_completion());
    if (!kills_.empty()) next = std::min(next, std::get<0>(kills_.top()));
    if (trace_pos_ < faults_.events.size()) {
      next = std::min(next, faults_.events[trace_pos_].time_s);
    }
    if (!pending_.empty()) next = std::min(next, pending_.top().first);
    return next;
  }

  void process_completions(double now) {
    for (std::size_t mi = 0; mi < state_.size(); ++mi) {
      auto& s = state_[mi];
      while (!s.running.empty() && s.running.begin()->first <= now) {
        const RunningJob rj = s.running.begin()->second;
        s.free += rj.nodes;
        s.running.erase(s.running.begin());
        running_ref_[rj.job].active = false;
        if (checkpoint_.enabled()) {
          // Split the occupied span into committed work and checkpoint
          // overhead so utilization counts real progress only.
          const long long written = checkpoint_.checkpoints_during(rj.work);
          result_.node_seconds[mi] += rj.work * static_cast<double>(rj.nodes);
          result_.checkpoint_overhead_node_seconds[mi] +=
              static_cast<double>(written) * checkpoint_.overhead_s *
              static_cast<double>(rj.nodes);
          result_.checkpoints_written += written;
        } else {
          result_.node_seconds[mi] += (rj.end - rj.start) * static_cast<double>(rj.nodes);
        }
        ++result_.completed_jobs;
        ++finalized_;
      }
      free_nodes_[mi] = s.free;
    }
  }

  /// Kills the running attempt of `job_index` at time `t`, returning its
  /// nodes to the free pool and either resubmitting the job with backoff
  /// or abandoning it once the retry budget is spent.
  void kill_running_job(std::size_t job_index, double t) {
    RunningRef& ref = running_ref_[job_index];
    MPHPC_ASSERT(ref.active);
    auto& s = state_[ref.machine];
    const RunningJob rj = ref.where->second;
    if (checkpoint_.enabled()) {
      const auto account = checkpoint_.account_kill(t - rj.start, rj.work);
      saved_fraction_[job_index] +=
          account.saved_work_s / jobs_[job_index].runtime[ref.machine];
      const auto nodes = static_cast<double>(rj.nodes);
      result_.recovered_node_seconds[ref.machine] += account.saved_work_s * nodes;
      result_.lost_node_seconds[ref.machine] += account.lost_work_s * nodes;
      result_.checkpoint_overhead_node_seconds[ref.machine] +=
          account.overhead_paid_s * nodes;
      result_.checkpoints_written += account.checkpoints;
    } else {
      result_.lost_node_seconds[ref.machine] +=
          (t - rj.start) * static_cast<double>(rj.nodes);
    }
    s.running.erase(ref.where);
    ref.active = false;
    s.free += rj.nodes;
    free_nodes_[ref.machine] = s.free;
    ++result_.jobs_killed;

    JobOutcome& outcome = result_.outcomes[job_index];
    outcome.end_s = t;
    if (attempts_[job_index] >= faults_.retry.max_attempts) {
      outcome.abandoned = true;
      ++result_.abandoned_jobs;
      ++finalized_;
      return;
    }
    Rng rng(derive_seed(faults_.seed, "retry-jitter",
                        static_cast<std::uint64_t>(jobs_[job_index].id),
                        static_cast<std::uint64_t>(attempts_[job_index])));
    const double delay = faults_.retry.delay_s(attempts_[job_index], rng.uniform());
    pending_.emplace(t + delay, job_index);
    ++result_.total_retries;
  }

  void process_kills(double now) {
    while (!kills_.empty() && std::get<0>(kills_.top()) <= now) {
      const auto [t, job_index, attempt] = kills_.top();
      kills_.pop();
      // Stale entries: the attempt already completed, or was killed first
      // by a node failure (possibly restarted since).
      if (!running_ref_[job_index].active || attempts_[job_index] != attempt) continue;
      kill_running_job(job_index, t);
    }
  }

  void process_node_events(double now) {
    while (trace_pos_ < faults_.events.size() &&
           faults_.events[trace_pos_].time_s <= now) {
      const NodeEvent& event = faults_.events[trace_pos_++];
      const auto mi = static_cast<std::size_t>(event.machine);
      auto& s = state_[mi];
      if (event.delta < 0) {
        if (s.free == 0) {
          if (s.running.empty()) continue;  // machine already fully down
          // No idle node to take: the failure lands on an allocated one.
          // Kill the latest-finishing attempt (it has the least work to
          // lose per remaining second); its nodes return to the pool.
          kill_running_job(std::prev(s.running.end())->second.job, event.time_s);
        }
        MPHPC_ASSERT(s.free > 0);
        s.settle_downtime(event.time_s);
        ++s.down;
        --s.free;
      } else {
        MPHPC_ASSERT(s.down > 0);
        s.settle_downtime(event.time_s);
        --s.down;
        ++s.free;
      }
      free_nodes_[mi] = s.free;
    }
  }

  void release_pending(double now) {
    while (!pending_.empty() && pending_.top().first <= now) {
      // Resubmissions join the back of the FCFS queue: a killed job loses
      // its queue position, as in production schedulers.
      queue_.push_back(pending_.top().second);
      pending_.pop();
    }
  }

  void finalize_result() {
    MPHPC_ENSURES(queue_.empty());
    std::size_t completed = 0;
    for (const JobOutcome& o : result_.outcomes) {
      // Job state-machine invariant: submitted -> started -> finalized, so
      // every outcome runs forward in time on a real machine (an abandoned
      // attempt may be killed the instant it starts).
      MPHPC_ENSURES(o.start_s >= 0.0 &&
                    (o.abandoned ? o.end_s >= o.start_s : o.end_s > o.start_s));
      result_.makespan_s = std::max(result_.makespan_s, o.end_s);
      if (!o.abandoned) {
        result_.avg_wait_s += o.wait_s();
        ++completed;
      }
    }
    result_.avg_wait_s /= static_cast<double>(completed == 0 ? 1 : completed);
    result_.avg_bounded_slowdown = average_bounded_slowdown(result_.outcomes);
    for (std::size_t mi = 0; mi < state_.size(); ++mi) {
      auto& s = state_[mi];
      if (result_.makespan_s > s.down_last_change) {
        s.settle_downtime(result_.makespan_s);
      }
      result_.downtime_node_seconds[mi] = s.down_node_seconds;
    }
    MPHPC_ENSURES(result_.completed_jobs + result_.abandoned_jobs == jobs_.size());
  }

  const std::vector<Job>& jobs_;
  MachineAssigner& assigner_;
  const FaultTrace& faults_;
  const CheckpointPolicy checkpoint_;
  const int depth_limit_;

  std::array<MachineState, arch::kNumSystems> state_{};
  std::array<int, arch::kNumSystems> free_nodes_{};
  const ClusterView view_;

  std::list<std::size_t> queue_;
  /// (release time, job) resubmissions and deferred submits, time-ordered;
  /// ties release in job-index order for determinism.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<>>
      pending_;
  /// (kill time, job, attempt) pre-drawn random kills; stale entries are
  /// skipped when the attempt no longer runs.
  std::priority_queue<std::tuple<double, std::size_t, int>,
                      std::vector<std::tuple<double, std::size_t, int>>,
                      std::greater<>>
      kills_;
  std::vector<int> attempts_;
  /// Per-job fraction of total progress durably checkpointed across
  /// killed attempts; the next attempt on machine m resumes with
  /// runtime[m] * (1 - saved_fraction_) of work remaining (a fraction,
  /// not seconds, so resuming on a different machine scales correctly).
  std::vector<double> saved_fraction_;
  std::vector<RunningRef> running_ref_;
  std::size_t trace_pos_ = 0;
  std::size_t started_count_ = 0;
  std::size_t finalized_ = 0;
  SimulationResult result_;
};

}  // namespace

SimulationResult simulate(const std::vector<Job>& jobs,
                          const std::vector<Machine>& machines,
                          MachineAssigner& assigner, const SchedulerOptions& options) {
  return simulate(jobs, machines, assigner, FaultTrace::none(), options);
}

SimulationResult simulate(const std::vector<Job>& jobs,
                          const std::vector<Machine>& machines,
                          MachineAssigner& assigner, const FaultTrace& faults,
                          const SchedulerOptions& options) {
  SimEngine engine(jobs, machines, assigner, faults, options);
  return engine.run();
}

double average_bounded_slowdown(const std::vector<JobOutcome>& outcomes, double tau) {
  MPHPC_EXPECTS(tau > 0.0);
  double sum = 0.0;
  std::size_t completed = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.abandoned) continue;  // never finished: slowdown is undefined
    const double run = o.run_s();
    const double slowdown = (o.wait_s() + run) / std::max(run, tau);
    sum += std::max(slowdown, 1.0);
    ++completed;
  }
  if (completed == 0) return 0.0;  // e.g. faults abandoned every job
  return sum / static_cast<double>(completed);
}

}  // namespace mphpc::sched
