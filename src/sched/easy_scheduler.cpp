#include "sched/easy_scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <queue>
#include <tuple>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "sched/event_queue.hpp"

namespace mphpc::sched {

namespace {

constexpr double kNoEvent = std::numeric_limits<double>::infinity();

// SimEvent::kind values. Each calendar queue carries a single kind today,
// but keeping them distinct preserves the global (time, kind, seq, sub)
// order — kills drain before releases at equal times, matching the event
// loop's processing order.
constexpr std::uint32_t kKillEvent = 0;
constexpr std::uint32_t kReleaseEvent = 1;

/// One running attempt in a machine's ledger.
struct RunningJob {
  std::size_t job = 0;
  int nodes = 0;
  double start = 0.0;
  double end = 0.0;
  /// Work seconds this attempt performs (runtime minus checkpointed
  /// progress); end - start additionally includes checkpoint overhead.
  double work = 0.0;
  /// The checkpoint policy this attempt runs under — fixed from
  /// SchedulerOptions, or the planner's per-attempt choice at start time.
  /// Completion/kill accounting must use this copy: an adaptive planner
  /// may hand later attempts a different policy.
  CheckpointPolicy policy{};
};

/// Running-job ledger of one machine, ordered by completion time, plus
/// the fault bookkeeping (down nodes and offline node-seconds).
struct MachineState {
  int total = 0;
  int free = 0;
  int down = 0;
  double down_last_change = 0.0;
  double down_node_seconds = 0.0;
  std::multimap<double, RunningJob> running;  ///< end time -> attempt

  /// Earliest time at which `nodes` can be free, and the projected free
  /// node count at that time. With nodes down this can be unreachable
  /// (kNoEvent) until a repair restores capacity.
  [[nodiscard]] std::pair<double, int> earliest_fit(double now, int nodes) const {
    if (free >= nodes) return {now, free};
    int projected = free;
    for (const auto& [end, rj] : running) {
      projected += rj.nodes;
      if (projected >= nodes) return {end, projected};
    }
    return {kNoEvent, projected};
  }

  [[nodiscard]] double next_completion() const noexcept {
    return running.empty() ? kNoEvent : running.begin()->first;
  }

  /// Accrues offline node-seconds up to `t`; call before `down` changes.
  void settle_downtime(double t) noexcept {
    down_node_seconds += (t - down_last_change) * static_cast<double>(down);
    down_last_change = t;
  }
};

/// Where a job's running ledger entry lives, when it is running.
struct RunningRef {
  bool active = false;
  std::size_t machine = 0;
  std::multimap<double, RunningJob>::iterator where;
};

/// Intrusive FCFS queue over job indices, with one sublist per distinct
/// job width (nodes_required). The main list is the exact FCFS order (a
/// monotone sequence number is stamped on every push, so resubmissions
/// re-enter at the back). The width sublists let the indexed backfill
/// path merge only the size classes that can still start somewhere,
/// instead of walking every queued job. A job is in the queue at most
/// once at a time (queued -> running -> pending -> queued), which is what
/// makes the intrusive per-job links sound.
class FcfsQueue {
 public:
  static constexpr std::size_t kNull = std::numeric_limits<std::size_t>::max();

  /// Sizes the per-job link arrays and discovers the width classes.
  void init(const std::vector<Job>& jobs) {
    const std::size_t n = jobs.size();
    next_.assign(n, kNull);
    prev_.assign(n, kNull);
    wnext_.assign(n, kNull);
    wprev_.assign(n, kNull);
    seq_.assign(n, 0);
    cls_.assign(n, 0);
    classes_.clear();
    int max_width = 0;
    for (const Job& job : jobs) max_width = std::max(max_width, job.nodes_required);
    std::vector<std::size_t> slot(static_cast<std::size_t>(max_width) + 1, kNull);
    for (std::size_t i = 0; i < n; ++i) {
      const auto w = static_cast<std::size_t>(jobs[i].nodes_required);
      if (slot[w] == kNull) {
        slot[w] = classes_.size();
        classes_.push_back({jobs[i].nodes_required, kNull, kNull});
      }
      cls_[i] = slot[w];
    }
    head_ = tail_ = kNull;
    size_ = 0;
    seq_counter_ = 0;
  }

  void push_back(std::size_t j) {
    MPHPC_ASSERT(j < next_.size());
    seq_[j] = seq_counter_++;
    prev_[j] = tail_;
    next_[j] = kNull;
    if (tail_ == kNull) head_ = j; else next_[tail_] = j;
    tail_ = j;
    Class& c = classes_[cls_[j]];
    wprev_[j] = c.tail;
    wnext_[j] = kNull;
    if (c.tail == kNull) c.head = j; else wnext_[c.tail] = j;
    c.tail = j;
    ++size_;
  }

  void erase(std::size_t j) {
    MPHPC_ASSERT(j < next_.size() && size_ > 0);
    if (prev_[j] == kNull) head_ = next_[j]; else next_[prev_[j]] = next_[j];
    if (next_[j] == kNull) tail_ = prev_[j]; else prev_[next_[j]] = prev_[j];
    Class& c = classes_[cls_[j]];
    if (wprev_[j] == kNull) c.head = wnext_[j]; else wnext_[wprev_[j]] = wnext_[j];
    if (wnext_[j] == kNull) c.tail = wprev_[j]; else wprev_[wnext_[j]] = wprev_[j];
    --size_;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t front() const noexcept { return head_; }
  [[nodiscard]] std::size_t next(std::size_t j) const noexcept { return next_[j]; }
  [[nodiscard]] std::uint64_t seq(std::size_t j) const noexcept { return seq_[j]; }
  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }
  [[nodiscard]] int class_width(std::size_t c) const noexcept {
    return classes_[c].width;
  }
  [[nodiscard]] std::size_t class_head(std::size_t c) const noexcept {
    return classes_[c].head;
  }
  [[nodiscard]] std::size_t wnext(std::size_t j) const noexcept { return wnext_[j]; }

 private:
  struct Class {
    int width = 0;
    std::size_t head = kNull;
    std::size_t tail = kNull;
  };

  std::vector<std::size_t> next_, prev_;    // main FCFS list
  std::vector<std::size_t> wnext_, wprev_;  // per-width-class list
  std::vector<std::uint64_t> seq_;
  std::vector<std::size_t> cls_;  // job -> class slot
  std::vector<Class> classes_;
  std::size_t head_ = kNull;
  std::size_t tail_ = kNull;
  std::size_t size_ = 0;
  std::uint64_t seq_counter_ = 0;
};

/// Everything the two engines share: construction contracts, the event
/// loop skeleton, job start/completion/kill accounting, node-fault
/// replay, and result finalization. The derived engine supplies only the
/// event containers and the backfill scan, via CRTP hooks:
///   init_queues, queue_push_back, queue_empty, push_release, push_kill,
///   next_kill_time, next_release_time, process_kills, release_pending,
///   schedule_pass.
/// Keeping the accounting here (and branching on the *attempt's* policy,
/// not on global options) is what makes the engines bit-identical — e.g.
/// a disabled policy must credit (end - start) node-seconds, which is not
/// bitwise equal to `work` after the now + work round trip.
template <typename Derived>
class EngineBase {
 public:
  EngineBase(const std::vector<Job>& jobs, const std::vector<Machine>& machines,
             MachineAssigner& assigner, const FaultTrace& faults,
             const SchedulerOptions& options)
      : jobs_(jobs),
        assigner_(assigner),
        faults_(faults),
        checkpoint_(options.checkpoint),
        planner_(options.planner),
        depth_limit_(options.backfill_depth == 0 ? std::numeric_limits<int>::max()
                                                 : options.backfill_depth),
        view_(machines, free_nodes_) {
    MPHPC_EXPECTS(!machines.empty());
    MPHPC_EXPECTS(options.backfill_depth >= 0);
    MPHPC_EXPECTS(options.checkpoint.interval_s >= 0.0);
    MPHPC_EXPECTS(options.checkpoint.overhead_s >= 0.0);
    MPHPC_EXPECTS(faults.retry.max_attempts >= 1);
    MPHPC_EXPECTS(faults.kill_probability >= 0.0 && faults.kill_probability <= 1.0);
    for (const Machine& m : machines) {
      auto& s = state_[static_cast<std::size_t>(m.id)];
      s.total = m.total_nodes;
      s.free = m.total_nodes;
      free_nodes_[static_cast<std::size_t>(m.id)] = m.total_nodes;
    }
    for (const Job& job : jobs_) {
      for (const Machine& m : machines) {
        MPHPC_EXPECTS(job.nodes_required <= m.total_nodes);
      }
      MPHPC_EXPECTS(job.nodes_required >= 1);
      MPHPC_EXPECTS(job.submit_s >= 0.0);
    }
  }

  [[nodiscard]] SimulationResult run() {
    // One pass over the job list lets order-memoizing assigners cache
    // each job's machine preference before any scheduling decision.
    assigner_.prime(jobs_);
    if (planner_ != nullptr) {
      int total = 0;
      for (const auto& s : state_) total += s.total;
      planner_->begin(total);
    }
    result_.outcomes.resize(jobs_.size());
    attempts_.assign(jobs_.size(), 0);
    saved_fraction_.assign(jobs_.size(), 0.0);
    running_ref_.resize(jobs_.size());
    self().init_queues();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].submit_s <= 0.0) {
        self().queue_push_back(i);
      } else {
        self().push_release(jobs_[i].submit_s, i);
      }
    }

    double now = 0.0;
    self().schedule_pass(now);
    while (finalized_ < jobs_.size()) {
      const double next = next_event_time();
      // Repairs are paired with failures, so capacity (and thus progress)
      // always returns; an infinite next event would be an engine bug.
      MPHPC_ASSERT(next != kNoEvent);
      now = next;
      process_completions(now);
      self().process_kills(now);
      process_node_events(now);
      self().release_pending(now);
      self().schedule_pass(now);
    }
    MPHPC_ENSURES(self().queue_empty());
    finalize_result();
    return std::move(result_);
  }

 protected:
  [[nodiscard]] Derived& self() noexcept { return static_cast<Derived&>(*this); }
  [[nodiscard]] const Derived& self() const noexcept {
    return static_cast<const Derived&>(*this);
  }

  void start_job(std::size_t job_index, arch::SystemId m, double now) {
    const Job& job = jobs_[job_index];
    const auto mi = static_cast<std::size_t>(m);
    auto& s = state_[mi];
    const double runtime = job.runtime[mi];
    MPHPC_EXPECTS(runtime > 0.0 && s.free >= job.nodes_required);
    const CheckpointPolicy policy =
        planner_ != nullptr ? planner_->policy_for(job, now) : checkpoint_;
    MPHPC_ASSERT(policy.interval_s >= 0.0 && policy.overhead_s >= 0.0);
    // A resumed attempt only redoes the work past its last checkpoint.
    // Progress is tracked as a fraction of the job so a retry assigned to
    // a *different* machine (different runtime) resumes proportionally.
    // Checkpoints never land exactly at completion, so the saved fraction
    // is strictly below 1 and `work` stays positive. With no policy and no
    // saved progress: work == runtime with the same bits — the
    // restart-from-zero arithmetic is untouched. (The saved-fraction
    // disjunct matters under a planner that disables checkpointing for a
    // later attempt of a job with durable progress: that progress must
    // still be honoured.)
    const double work = policy.enabled() || saved_fraction_[job_index] > 0.0
                            ? runtime * (1.0 - saved_fraction_[job_index])
                            : runtime;
    MPHPC_ASSERT(work > 0.0);
    const double duration = policy.attempt_duration(work);
    s.free -= job.nodes_required;
    free_nodes_[mi] = s.free;
    const int attempt = ++attempts_[job_index];
    const auto it = s.running.emplace(
        now + duration,
        RunningJob{job_index, job.nodes_required, now, now + duration, work, policy});
    running_ref_[job_index] = {true, mi, it};
    result_.outcomes[job_index] = {m, now, now + duration, job.submit_s, attempt, false};
    if (faults_.kill_probability > 0.0) {
      // Per-attempt draw from its own derived stream, so kill decisions
      // are independent of scheduling order and machine choice.
      Rng rng(derive_seed(faults_.seed, "job-kill",
                          static_cast<std::uint64_t>(job.id),
                          static_cast<std::uint64_t>(attempt)));
      if (rng.bernoulli(faults_.kill_probability)) {
        self().push_kill(now + rng.uniform() * duration, job_index, attempt);
      }
    }
    ++started_count_;
  }

  [[nodiscard]] double next_event_time() const {
    double next = kNoEvent;
    for (const auto& s : state_) next = std::min(next, s.next_completion());
    next = std::min(next, self().next_kill_time());
    if (trace_pos_ < faults_.events.size()) {
      next = std::min(next, faults_.events[trace_pos_].time_s);
    }
    next = std::min(next, self().next_release_time());
    return next;
  }

  void process_completions(double now) {
    for (std::size_t mi = 0; mi < state_.size(); ++mi) {
      auto& s = state_[mi];
      while (!s.running.empty() && s.running.begin()->first <= now) {
        const RunningJob rj = s.running.begin()->second;
        s.free += rj.nodes;
        s.running.erase(s.running.begin());
        running_ref_[rj.job].active = false;
        if (rj.policy.enabled()) {
          // Split the occupied span into committed work and checkpoint
          // overhead so utilization counts real progress only.
          const long long written = rj.policy.checkpoints_during(rj.work);
          result_.node_seconds[mi] += rj.work * static_cast<double>(rj.nodes);
          result_.checkpoint_overhead_node_seconds[mi] +=
              static_cast<double>(written) * rj.policy.overhead_s *
              static_cast<double>(rj.nodes);
          result_.checkpoints_written += written;
        } else {
          result_.node_seconds[mi] += (rj.end - rj.start) * static_cast<double>(rj.nodes);
        }
        ++result_.completed_jobs;
        ++finalized_;
      }
      free_nodes_[mi] = s.free;
    }
  }

  /// Kills the running attempt of `job_index` at time `t`, returning its
  /// nodes to the free pool and either resubmitting the job with backoff
  /// or abandoning it once the retry budget is spent.
  void kill_running_job(std::size_t job_index, double t) {
    RunningRef& ref = running_ref_[job_index];
    MPHPC_ASSERT(ref.active);
    auto& s = state_[ref.machine];
    const RunningJob rj = ref.where->second;
    if (rj.policy.enabled()) {
      const auto account = rj.policy.account_kill(t - rj.start, rj.work);
      saved_fraction_[job_index] +=
          account.saved_work_s / jobs_[job_index].runtime[ref.machine];
      const auto nodes = static_cast<double>(rj.nodes);
      result_.recovered_node_seconds[ref.machine] += account.saved_work_s * nodes;
      result_.lost_node_seconds[ref.machine] += account.lost_work_s * nodes;
      result_.checkpoint_overhead_node_seconds[ref.machine] +=
          account.overhead_paid_s * nodes;
      result_.checkpoints_written += account.checkpoints;
    } else {
      result_.lost_node_seconds[ref.machine] +=
          (t - rj.start) * static_cast<double>(rj.nodes);
    }
    s.running.erase(ref.where);
    ref.active = false;
    s.free += rj.nodes;
    free_nodes_[ref.machine] = s.free;
    ++result_.jobs_killed;

    JobOutcome& outcome = result_.outcomes[job_index];
    outcome.end_s = t;
    if (attempts_[job_index] >= faults_.retry.max_attempts) {
      outcome.abandoned = true;
      ++result_.abandoned_jobs;
      ++finalized_;
      return;
    }
    Rng rng(derive_seed(faults_.seed, "retry-jitter",
                        static_cast<std::uint64_t>(jobs_[job_index].id),
                        static_cast<std::uint64_t>(attempts_[job_index])));
    const double delay = faults_.retry.delay_s(attempts_[job_index], rng.uniform());
    self().push_release(t + delay, job_index);
    ++result_.total_retries;
  }

  void process_node_events(double now) {
    while (trace_pos_ < faults_.events.size() &&
           faults_.events[trace_pos_].time_s <= now) {
      const NodeEvent& event = faults_.events[trace_pos_++];
      const auto mi = static_cast<std::size_t>(event.machine);
      auto& s = state_[mi];
      if (event.delta < 0) {
        if (s.free == 0) {
          if (s.running.empty()) continue;  // machine already fully down
          // No idle node to take: the failure lands on an allocated one.
          // Kill the latest-finishing attempt (it has the least work to
          // lose per remaining second); its nodes return to the pool.
          kill_running_job(std::prev(s.running.end())->second.job, event.time_s);
        }
        MPHPC_ASSERT(s.free > 0);
        // Adaptive planners learn the failure rate online, strictly in
        // simulated-time order. Dropped events (machine fully down and
        // idle) are never observed — they removed no capacity.
        if (planner_ != nullptr) planner_->observe_node_failure(event.time_s);
        s.settle_downtime(event.time_s);
        ++s.down;
        --s.free;
      } else {
        MPHPC_ASSERT(s.down > 0);
        s.settle_downtime(event.time_s);
        --s.down;
        ++s.free;
      }
      free_nodes_[mi] = s.free;
    }
  }

  void finalize_result() {
    std::size_t completed = 0;
    for (const JobOutcome& o : result_.outcomes) {
      // Job state-machine invariant: submitted -> started -> finalized, so
      // every outcome runs forward in time on a real machine (an abandoned
      // attempt may be killed the instant it starts).
      MPHPC_ENSURES(o.start_s >= 0.0 &&
                    (o.abandoned ? o.end_s >= o.start_s : o.end_s > o.start_s));
      result_.makespan_s = std::max(result_.makespan_s, o.end_s);
      if (!o.abandoned) {
        result_.avg_wait_s += o.wait_s();
        ++completed;
      }
    }
    result_.avg_wait_s /= static_cast<double>(completed == 0 ? 1 : completed);
    result_.avg_bounded_slowdown = average_bounded_slowdown(result_.outcomes);
    for (std::size_t mi = 0; mi < state_.size(); ++mi) {
      auto& s = state_[mi];
      if (result_.makespan_s > s.down_last_change) {
        s.settle_downtime(result_.makespan_s);
      }
      result_.downtime_node_seconds[mi] = s.down_node_seconds;
    }
    MPHPC_ENSURES(result_.completed_jobs + result_.abandoned_jobs == jobs_.size());
  }

  const std::vector<Job>& jobs_;
  MachineAssigner& assigner_;
  const FaultTrace& faults_;
  const CheckpointPolicy checkpoint_;
  CheckpointPlanner* const planner_;
  const int depth_limit_;

  std::array<MachineState, arch::kNumSystems> state_{};
  std::array<int, arch::kNumSystems> free_nodes_{};
  const ClusterView view_;

  std::vector<int> attempts_;
  /// Per-job fraction of total progress durably checkpointed across
  /// killed attempts; the next attempt on machine m resumes with
  /// runtime[m] * (1 - saved_fraction_) of work remaining (a fraction,
  /// not seconds, so resuming on a different machine scales correctly).
  std::vector<double> saved_fraction_;
  std::vector<RunningRef> running_ref_;
  std::size_t trace_pos_ = 0;
  std::size_t started_count_ = 0;
  std::size_t finalized_ = 0;
  SimulationResult result_;
};

/// The original binary-heap + std::list engine, kept verbatim as the
/// golden oracle for the calendar engine (SimEngineKind::kReference).
/// Every queue operation and backfill visit matches the pre-calendar
/// implementation exactly; equivalence tests pin the calendar engine's
/// results to this one bit-for-bit.
class ReferenceEngine final : public EngineBase<ReferenceEngine> {
  friend class EngineBase<ReferenceEngine>;

 public:
  using EngineBase<ReferenceEngine>::EngineBase;

 private:
  void init_queues() {}
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  void queue_push_back(std::size_t i) { queue_.push_back(i); }
  void push_release(double t, std::size_t i) { pending_.emplace(t, i); }
  void push_kill(double t, std::size_t i, int attempt) {
    kills_.emplace(t, i, attempt);
  }
  [[nodiscard]] double next_kill_time() const {
    return kills_.empty() ? kNoEvent : std::get<0>(kills_.top());
  }
  [[nodiscard]] double next_release_time() const {
    return pending_.empty() ? kNoEvent : pending_.top().first;
  }

  void process_kills(double now) {
    while (!kills_.empty() && std::get<0>(kills_.top()) <= now) {
      const auto [t, job_index, attempt] = kills_.top();
      kills_.pop();
      // Stale entries: the attempt already completed, or was killed first
      // by a node failure (possibly restarted since).
      if (!running_ref_[job_index].active || attempts_[job_index] != attempt) continue;
      kill_running_job(job_index, t);
    }
  }

  void release_pending(double now) {
    while (!pending_.empty() && pending_.top().first <= now) {
      // Resubmissions join the back of the FCFS queue: a killed job loses
      // its queue position, as in production schedulers.
      queue_.push_back(pending_.top().second);
      pending_.pop();
    }
  }

  // One scheduling pass at time `now` (Algorithm 1 body), with the
  // original full linear rescan of the queue.
  void schedule_pass(double now) {
    while (!queue_.empty()) {
      const std::size_t head = queue_.front();
      const arch::SystemId m = assigner_.assign(jobs_[head], started_count_, view_);
      const auto mi = static_cast<std::size_t>(m);
      if (state_[mi].free >= jobs_[head].nodes_required) {
        start_job(head, m, now);
        queue_.pop_front();
        continue;
      }

      // Head is blocked: reserve it at the shadow time on its machine.
      const auto [shadow_time, projected_free] =
          state_[mi].earliest_fit(now, jobs_[head].nodes_required);
      // Nodes left over at the shadow time once the head's reservation is
      // honoured; backfills running past the shadow may consume these.
      int shadow_spare = projected_free - jobs_[head].nodes_required;

      // Nothing can backfill while no machine has a free node.
      int max_free = 0;
      for (const auto& s : state_) max_free = std::max(max_free, s.free);
      if (max_free == 0) break;

      int scanned = 0;
      for (auto it = std::next(queue_.begin());
           it != queue_.end() && scanned < depth_limit_; ++scanned) {
        const std::size_t cand = *it;
        const Job& job = jobs_[cand];
        const arch::SystemId cm = assigner_.assign(job, started_count_, view_);
        const auto ci = static_cast<std::size_t>(cm);
        if (state_[ci].free < job.nodes_required) {
          ++it;
          continue;
        }
        if (cm != m) {
          start_job(cand, cm, now);
          it = queue_.erase(it);
          continue;
        }
        // Same machine as the reservation: must not delay the head.
        const double end = now + job.runtime[ci];
        if (end <= shadow_time) {
          start_job(cand, cm, now);
          it = queue_.erase(it);
        } else if (shadow_spare >= job.nodes_required) {
          shadow_spare -= job.nodes_required;
          start_job(cand, cm, now);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      break;  // head stays blocked until the next event
    }
  }

  std::list<std::size_t> queue_;
  /// (release time, job) resubmissions and deferred submits, time-ordered;
  /// ties release in job-index order for determinism.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<>>
      pending_;
  /// (kill time, job, attempt) pre-drawn random kills; stale entries are
  /// skipped when the attempt no longer runs.
  std::priority_queue<std::tuple<double, std::size_t, int>,
                      std::vector<std::tuple<double, std::size_t, int>>,
                      std::greater<>>
      kills_;
};

/// The production engine (SimEngineKind::kCalendar): calendar queues for
/// releases and kills, and a width-indexed FCFS queue so backfill skips
/// whole job-size classes that cannot start anywhere. With a stateless
/// assigner the indexed scan provably starts the same jobs as the full
/// rescan (a skipped candidate would only ever be assigned and rejected);
/// stateful assigners (Random, User+RR, guarded fallback) keep the full
/// scan so their internal state advances call-for-call identically.
class CalendarEngine final : public EngineBase<CalendarEngine> {
  friend class EngineBase<CalendarEngine>;

 public:
  using EngineBase<CalendarEngine>::EngineBase;

 private:
  void init_queues() {
    queue_.init(jobs_);
    // Must be read after prime(): GuardedModelBasedAssigner only knows
    // whether every job takes the pure model path once primed.
    indexed_ = assigner_.stateless_assign();
  }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  void queue_push_back(std::size_t i) { queue_.push_back(i); }
  void push_release(double t, std::size_t i) {
    pending_.push({t, kReleaseEvent, static_cast<std::uint64_t>(i), 0});
  }
  void push_kill(double t, std::size_t i, int attempt) {
    kills_.push({t, kKillEvent, static_cast<std::uint64_t>(i),
                 static_cast<std::uint64_t>(attempt)});
  }
  [[nodiscard]] double next_kill_time() const { return kills_.next_time(); }
  [[nodiscard]] double next_release_time() const { return pending_.next_time(); }

  void process_kills(double now) {
    while (!kills_.empty() && kills_.next_time() <= now) {
      const SimEvent e = kills_.pop_front();
      const auto job_index = static_cast<std::size_t>(e.seq);
      const int attempt = static_cast<int>(e.sub);
      // Stale entries: the attempt already completed, or was killed first
      // by a node failure (possibly restarted since).
      if (!running_ref_[job_index].active || attempts_[job_index] != attempt) continue;
      kill_running_job(job_index, e.time_s);
    }
  }

  void release_pending(double now) {
    while (!pending_.empty() && pending_.next_time() <= now) {
      // Resubmissions join the back of the FCFS queue: a killed job loses
      // its queue position, as in production schedulers.
      queue_.push_back(static_cast<std::size_t>(pending_.pop_front().seq));
    }
  }

  void schedule_pass(double now) {
    if (indexed_) {
      schedule_pass_indexed(now);
    } else {
      schedule_pass_scan(now);
    }
  }

  /// Full-rescan pass over the intrusive queue — candidate visits, assign
  /// calls, and depth counting all match ReferenceEngine::schedule_pass
  /// one-for-one (required for stateful assigners).
  void schedule_pass_scan(double now) {
    while (!queue_.empty()) {
      const std::size_t head = queue_.front();
      const arch::SystemId m = assigner_.assign(jobs_[head], started_count_, view_);
      const auto mi = static_cast<std::size_t>(m);
      if (state_[mi].free >= jobs_[head].nodes_required) {
        start_job(head, m, now);
        queue_.erase(head);
        continue;
      }

      const auto [shadow_time, projected_free] =
          state_[mi].earliest_fit(now, jobs_[head].nodes_required);
      int shadow_spare = projected_free - jobs_[head].nodes_required;

      int max_free = 0;
      for (const auto& s : state_) max_free = std::max(max_free, s.free);
      if (max_free == 0) break;

      int scanned = 0;
      for (std::size_t it = queue_.next(head);
           it != FcfsQueue::kNull && scanned < depth_limit_; ++scanned) {
        const std::size_t cand = it;
        it = queue_.next(it);  // advance before a possible erase
        const Job& job = jobs_[cand];
        const arch::SystemId cm = assigner_.assign(job, started_count_, view_);
        const auto ci = static_cast<std::size_t>(cm);
        if (state_[ci].free < job.nodes_required) continue;
        if (cm != m) {
          start_job(cand, cm, now);
          queue_.erase(cand);
          continue;
        }
        // Same machine as the reservation: must not delay the head.
        const double end = now + job.runtime[ci];
        if (end <= shadow_time) {
          start_job(cand, cm, now);
          queue_.erase(cand);
        } else if (shadow_spare >= job.nodes_required) {
          shadow_spare -= job.nodes_required;
          start_job(cand, cm, now);
          queue_.erase(cand);
        }
      }
      break;  // head stays blocked until the next event
    }
  }

  /// Indexed pass: merges the per-width sublists by FCFS sequence number,
  /// visiting only candidates whose size class can still start on *some*
  /// machine. For a stateless assigner this starts exactly the jobs the
  /// full rescan would: every skipped candidate would have been assigned
  /// and then rejected by the per-machine free check (free <= max_free <
  /// nodes_required), a no-op for a pure assign(). The per-pass work is
  /// O(classes) per examined candidate instead of O(queue length) total.
  void schedule_pass_indexed(double now) {
    while (!queue_.empty()) {
      const std::size_t head = queue_.front();
      const arch::SystemId m = assigner_.assign(jobs_[head], started_count_, view_);
      const auto mi = static_cast<std::size_t>(m);
      if (state_[mi].free >= jobs_[head].nodes_required) {
        start_job(head, m, now);
        queue_.erase(head);
        continue;
      }

      const auto [shadow_time, projected_free] =
          state_[mi].earliest_fit(now, jobs_[head].nodes_required);
      int shadow_spare = projected_free - jobs_[head].nodes_required;

      int max_free = 0;
      for (const auto& s : state_) max_free = std::max(max_free, s.free);
      if (max_free == 0) break;

      // One cursor per size class that can still start somewhere. The head
      // is the front of its class (lowest live sequence number overall),
      // so skipping it once at cursor setup suffices.
      cursors_.clear();
      for (std::size_t c = 0; c < queue_.num_classes(); ++c) {
        if (queue_.class_width(c) > max_free) continue;
        std::size_t at = queue_.class_head(c);
        if (at == head) at = queue_.wnext(at);
        if (at != FcfsQueue::kNull) cursors_.push_back({c, at});
      }

      int scanned = 0;
      while (scanned < depth_limit_) {
        // Free capacity only shrinks within a pass: drop classes the pool
        // can no longer start, then take the lowest-sequence candidate.
        std::size_t keep = 0;
        for (std::size_t k = 0; k < cursors_.size(); ++k) {
          if (queue_.class_width(cursors_[k].cls) <= max_free) {
            cursors_[keep++] = cursors_[k];
          }
        }
        cursors_.resize(keep);
        if (cursors_.empty()) break;
        std::size_t best = 0;
        for (std::size_t k = 1; k < cursors_.size(); ++k) {
          if (queue_.seq(cursors_[k].at) < queue_.seq(cursors_[best].at)) best = k;
        }
        const std::size_t cand = cursors_[best].at;
        const std::size_t nxt = queue_.wnext(cand);
        if (nxt == FcfsQueue::kNull) {
          cursors_[best] = cursors_.back();
          cursors_.pop_back();
        } else {
          cursors_[best].at = nxt;
        }
        ++scanned;

        const Job& job = jobs_[cand];
        const arch::SystemId cm = assigner_.assign(job, started_count_, view_);
        const auto ci = static_cast<std::size_t>(cm);
        if (state_[ci].free < job.nodes_required) continue;
        bool started = false;
        if (cm != m) {
          started = true;
        } else {
          // Same machine as the reservation: must not delay the head.
          const double end = now + job.runtime[ci];
          if (end <= shadow_time) {
            started = true;
          } else if (shadow_spare >= job.nodes_required) {
            shadow_spare -= job.nodes_required;
            started = true;
          }
        }
        if (!started) continue;
        start_job(cand, cm, now);
        queue_.erase(cand);
        max_free = 0;
        for (const auto& s : state_) max_free = std::max(max_free, s.free);
        if (max_free == 0) break;
      }
      break;  // head stays blocked until the next event
    }
  }

  struct Cursor {
    std::size_t cls = 0;
    std::size_t at = 0;
  };

  FcfsQueue queue_;
  CalendarQueue pending_;
  CalendarQueue kills_;
  std::vector<Cursor> cursors_;  // scratch, reused across passes
  bool indexed_ = false;
};

}  // namespace

SimulationResult simulate(const std::vector<Job>& jobs,
                          const std::vector<Machine>& machines,
                          MachineAssigner& assigner, const SchedulerOptions& options) {
  return simulate(jobs, machines, assigner, FaultTrace::none(), options);
}

SimulationResult simulate(const std::vector<Job>& jobs,
                          const std::vector<Machine>& machines,
                          MachineAssigner& assigner, const FaultTrace& faults,
                          const SchedulerOptions& options) {
  if (options.engine == SimEngineKind::kReference) {
    ReferenceEngine engine(jobs, machines, assigner, faults, options);
    return engine.run();
  }
  CalendarEngine engine(jobs, machines, assigner, faults, options);
  return engine.run();
}

double average_bounded_slowdown(const std::vector<JobOutcome>& outcomes, double tau) {
  MPHPC_EXPECTS(tau > 0.0);
  double sum = 0.0;
  std::size_t completed = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.abandoned) continue;  // never finished: slowdown is undefined
    const double run = o.run_s();
    const double slowdown = (o.wait_s() + run) / std::max(run, tau);
    sum += std::max(slowdown, 1.0);
    ++completed;
  }
  if (completed == 0) return 0.0;  // e.g. faults abandoned every job
  return sum / static_cast<double>(completed);
}

}  // namespace mphpc::sched
