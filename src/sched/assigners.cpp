#include "sched/assigners.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mphpc::sched {

namespace {

constexpr std::array<arch::SystemId, 2> kCpuSystems = {arch::SystemId::kQuartz,
                                                       arch::SystemId::kRuby};
constexpr std::array<arch::SystemId, 2> kGpuSystems = {arch::SystemId::kLassen,
                                                       arch::SystemId::kCorona};

/// Fastest-first machine order from a predicted or true RPV.
template <typename TimeOf>
std::array<arch::SystemId, arch::kNumSystems> fastest_order(TimeOf&& time_of) {
  std::array<std::size_t, arch::kNumSystems> idx{};
  for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = k;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return time_of(static_cast<arch::SystemId>(a)) <
           time_of(static_cast<arch::SystemId>(b));
  });
  std::array<arch::SystemId, arch::kNumSystems> order{};
  for (std::size_t k = 0; k < idx.size(); ++k) {
    order[k] = static_cast<arch::SystemId>(idx[k]);
  }
  return order;
}

/// Picks the first non-full machine in `order`; if every machine is full,
/// returns order[0] (the job reserves/waits there) — Algorithm 2.
arch::SystemId pick_with_fallback(
    const std::array<arch::SystemId, arch::kNumSystems>& order, const Job& job,
    const ClusterView& view) {
  for (const arch::SystemId m : order) {
    if (!view.is_full(m, job.nodes_required)) return m;
  }
  return order[0];
}

}  // namespace

void JobOrderCache::prime(
    std::span<const Job> jobs,
    const std::function<std::optional<Order>(const Job&)>& order_of) {
  MPHPC_EXPECTS(jobs.empty() || jobs.data() != nullptr);
  MPHPC_EXPECTS(static_cast<bool>(order_of));
  orders_.clear();
  states_.clear();
  if (jobs.empty()) return;
  int max_id = -1;
  for (const Job& job : jobs) {
    if (job.id < 0) return;  // ids unusable as dense keys — stay disabled
    max_id = std::max(max_id, job.id);
  }
  // Ids far sparser than the job count would bloat the dense tables; the
  // assigner simply recomputes per call in that case.
  const std::size_t slots = static_cast<std::size_t>(max_id) + 1;
  if (slots > 4 * jobs.size() + 1024) return;
  orders_.assign(slots, Order{});
  states_.assign(slots, State::kUnknown);
  for (const Job& job : jobs) {
    const auto id = static_cast<std::size_t>(job.id);
    if (const std::optional<Order> order = order_of(job)) {
      orders_[id] = *order;
      states_[id] = State::kOrdered;
    } else {
      states_[id] = State::kNoOrder;
    }
  }
}

JobOrderCache::State JobOrderCache::lookup(const Job& job,
                                           const Order** order) const noexcept {
  MPHPC_ASSERT(order != nullptr);
  *order = nullptr;
  if (job.id < 0) return State::kUnknown;
  const auto id = static_cast<std::size_t>(job.id);
  if (id >= states_.size()) return State::kUnknown;
  if (states_[id] == State::kOrdered) *order = &orders_[id];
  return states_[id];
}

arch::SystemId RoundRobinAssigner::assign(const Job& /*job*/, std::size_t started_index,
                                          const ClusterView& view) {
  const auto& machines = view.machines();
  MPHPC_EXPECTS(!machines.empty());
  return machines[started_index % machines.size()].id;
}

arch::SystemId RandomAssigner::assign(const Job& /*job*/, std::size_t /*started_index*/,
                                      const ClusterView& view) {
  return view.machines()[rng_.below(view.machines().size())].id;
}

arch::SystemId UserRoundRobinAssigner::assign(const Job& job,
                                              std::size_t /*started_index*/,
                                              const ClusterView& /*view*/) {
  if (job.gpu_capable) {
    return kGpuSystems[gpu_next_++ % kGpuSystems.size()];
  }
  return kCpuSystems[cpu_next_++ % kCpuSystems.size()];
}

void ModelBasedAssigner::prime(std::span<const Job> jobs) {
  MPHPC_EXPECTS(jobs.empty() || jobs.data() != nullptr);
  cache_.prime(jobs, [](const Job& job) {
    return fastest_order([&](arch::SystemId m) { return job.predicted.time_ratio(m); });
  });
}

arch::SystemId ModelBasedAssigner::assign(const Job& job, std::size_t /*started_index*/,
                                          const ClusterView& view) {
  const JobOrderCache::Order* cached = nullptr;
  if (cache_.lookup(job, &cached) == JobOrderCache::State::kOrdered) {
    return pick_with_fallback(*cached, job, view);
  }
  const auto order =
      fastest_order([&](arch::SystemId m) { return job.predicted.time_ratio(m); });
  return pick_with_fallback(order, job, view);
}

void OracleAssigner::prime(std::span<const Job> jobs) {
  MPHPC_EXPECTS(jobs.empty() || jobs.data() != nullptr);
  cache_.prime(jobs, [](const Job& job) {
    return fastest_order(
        [&](arch::SystemId m) { return job.runtime[static_cast<std::size_t>(m)]; });
  });
}

arch::SystemId OracleAssigner::assign(const Job& job, std::size_t /*started_index*/,
                                      const ClusterView& view) {
  const JobOrderCache::Order* cached = nullptr;
  if (cache_.lookup(job, &cached) == JobOrderCache::State::kOrdered) {
    return pick_with_fallback(*cached, job, view);
  }
  const auto order = fastest_order(
      [&](arch::SystemId m) { return job.runtime[static_cast<std::size_t>(m)]; });
  return pick_with_fallback(order, job, view);
}

void GuardedModelBasedAssigner::prime(std::span<const Job> jobs) {
  MPHPC_EXPECTS(jobs.empty() || jobs.data() != nullptr);
  long long implausible = 0;
  cache_.prime(jobs,
               [this, &implausible](const Job& job)
                   -> std::optional<JobOrderCache::Order> {
                 if (!core::is_plausible_rpv(job.predicted, bounds_)) {
                   ++implausible;
                   return std::nullopt;
                 }
                 return fastest_order(
                     [&](arch::SystemId m) { return job.predicted.time_ratio(m); });
               });
  primed_pure_ = cache_.primed() && implausible == 0;
}

arch::SystemId GuardedModelBasedAssigner::assign(const Job& job,
                                                 std::size_t started_index,
                                                 const ClusterView& view) {
  MPHPC_EXPECTS(!view.machines().empty());
  const JobOrderCache::Order* cached = nullptr;
  switch (cache_.lookup(job, &cached)) {
    case JobOrderCache::State::kOrdered:
      return pick_with_fallback(*cached, job, view);
    case JobOrderCache::State::kNoOrder:
      // Only the plausibility verdict is memoized, never the placement:
      // the User+RR fallback is stateful and must advance on every call
      // so results stay identical to the un-primed assigner.
      ++fallbacks_;
      return fallback_.assign(job, started_index, view);
    case JobOrderCache::State::kUnknown:
      break;
  }
  if (!core::is_plausible_rpv(job.predicted, bounds_)) {
    ++fallbacks_;
    return fallback_.assign(job, started_index, view);
  }
  const auto order =
      fastest_order([&](arch::SystemId m) { return job.predicted.time_ratio(m); });
  return pick_with_fallback(order, job, view);
}

}  // namespace mphpc::sched
