#include "sched/assigners.hpp"

#include <algorithm>

namespace mphpc::sched {

namespace {

constexpr std::array<arch::SystemId, 2> kCpuSystems = {arch::SystemId::kQuartz,
                                                       arch::SystemId::kRuby};
constexpr std::array<arch::SystemId, 2> kGpuSystems = {arch::SystemId::kLassen,
                                                       arch::SystemId::kCorona};

/// Fastest-first machine order from a predicted or true RPV.
template <typename TimeOf>
std::array<arch::SystemId, arch::kNumSystems> fastest_order(TimeOf&& time_of) {
  std::array<std::size_t, arch::kNumSystems> idx{};
  for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = k;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return time_of(static_cast<arch::SystemId>(a)) <
           time_of(static_cast<arch::SystemId>(b));
  });
  std::array<arch::SystemId, arch::kNumSystems> order{};
  for (std::size_t k = 0; k < idx.size(); ++k) {
    order[k] = static_cast<arch::SystemId>(idx[k]);
  }
  return order;
}

/// Picks the first non-full machine in `order`; if every machine is full,
/// returns order[0] (the job reserves/waits there) — Algorithm 2.
arch::SystemId pick_with_fallback(
    const std::array<arch::SystemId, arch::kNumSystems>& order, const Job& job,
    const ClusterView& view) {
  for (const arch::SystemId m : order) {
    if (!view.is_full(m, job.nodes_required)) return m;
  }
  return order[0];
}

}  // namespace

arch::SystemId RoundRobinAssigner::assign(const Job& /*job*/, std::size_t started_index,
                                          const ClusterView& view) {
  const auto& machines = view.machines();
  return machines[started_index % machines.size()].id;
}

arch::SystemId RandomAssigner::assign(const Job& /*job*/, std::size_t /*started_index*/,
                                      const ClusterView& view) {
  return view.machines()[rng_.below(view.machines().size())].id;
}

arch::SystemId UserRoundRobinAssigner::assign(const Job& job,
                                              std::size_t /*started_index*/,
                                              const ClusterView& /*view*/) {
  if (job.gpu_capable) {
    return kGpuSystems[gpu_next_++ % kGpuSystems.size()];
  }
  return kCpuSystems[cpu_next_++ % kCpuSystems.size()];
}

arch::SystemId ModelBasedAssigner::assign(const Job& job, std::size_t /*started_index*/,
                                          const ClusterView& view) {
  const auto order =
      fastest_order([&](arch::SystemId m) { return job.predicted.time_ratio(m); });
  return pick_with_fallback(order, job, view);
}

arch::SystemId OracleAssigner::assign(const Job& job, std::size_t /*started_index*/,
                                      const ClusterView& view) {
  const auto order = fastest_order(
      [&](arch::SystemId m) { return job.runtime[static_cast<std::size_t>(m)]; });
  return pick_with_fallback(order, job, view);
}

arch::SystemId GuardedModelBasedAssigner::assign(const Job& job,
                                                 std::size_t started_index,
                                                 const ClusterView& view) {
  if (!core::is_plausible_rpv(job.predicted, bounds_)) {
    ++fallbacks_;
    return fallback_.assign(job, started_index, view);
  }
  const auto order =
      fastest_order([&](arch::SystemId m) { return job.predicted.time_ratio(m); });
  return pick_with_fallback(order, job, view);
}

}  // namespace mphpc::sched
