#include "sched/faults.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace mphpc::sched {

double RetryPolicy::delay_s(int attempt, double u) const {
  MPHPC_EXPECTS(attempt >= 1);
  MPHPC_EXPECTS(u >= 0.0 && u < 1.0);
  MPHPC_EXPECTS(base_delay_s >= 0.0 && multiplier >= 1.0 && max_delay_s >= 0.0);
  MPHPC_EXPECTS(jitter >= 0.0 && jitter < 1.0);
  // Multiply iteratively (not std::pow) so the backoff sequence is exact
  // and clamping cannot overflow for large attempt counts.
  double delay = base_delay_s;
  for (int k = 1; k < attempt && delay < max_delay_s; ++k) delay *= multiplier;
  delay = std::min(delay, max_delay_s);
  const double jittered = delay * (1.0 + jitter * (2.0 * u - 1.0));
  MPHPC_ENSURES(jittered >= 0.0);
  return jittered;
}

FaultModel::FaultModel(const std::array<FaultRates, arch::kNumSystems>& rates,
                       double kill_probability, const RetryPolicy& retry,
                       std::uint64_t seed)
    : rates_(rates), kill_probability_(kill_probability), retry_(retry), seed_(seed) {
  MPHPC_EXPECTS(kill_probability >= 0.0 && kill_probability <= 1.0);
  MPHPC_EXPECTS(retry.max_attempts >= 1);
  for (const FaultRates& r : rates_) {
    MPHPC_EXPECTS(r.node_mtbf_s <= 0.0 || r.mttr_s > 0.0);
  }
}

FaultModel FaultModel::uniform(double node_mtbf_s, double mttr_s,
                               double kill_probability, const RetryPolicy& retry,
                               std::uint64_t seed) {
  std::array<FaultRates, arch::kNumSystems> rates{};
  rates.fill({node_mtbf_s, mttr_s});
  return FaultModel(rates, kill_probability, retry, seed);
}

bool FaultModel::enabled() const noexcept {
  if (kill_probability_ > 0.0) return true;
  return std::any_of(rates_.begin(), rates_.end(),
                     [](const FaultRates& r) { return r.node_mtbf_s > 0.0; });
}

FaultTrace FaultModel::generate(const std::vector<Machine>& machines,
                                double horizon_s) const {
  MPHPC_EXPECTS(horizon_s >= 0.0);
  FaultTrace trace;
  trace.kill_probability = kill_probability_;
  trace.retry = retry_;
  trace.seed = seed_;

  for (const Machine& machine : machines) {
    const FaultRates& rates = rates_[static_cast<std::size_t>(machine.id)];
    if (rates.node_mtbf_s <= 0.0 || machine.total_nodes <= 0) continue;

    // Independent per-machine stream: the trace of one machine does not
    // shift when another machine's rates change.
    Rng rng(derive_seed(seed_, "fault-trace",
                        static_cast<std::uint64_t>(machine.id)));
    const double arrival_rate =
        static_cast<double>(machine.total_nodes) / rates.node_mtbf_s;
    const double repair_rate = 1.0 / rates.mttr_s;

    // Min-heap of pending repair completions, to bound concurrent downs.
    std::priority_queue<double, std::vector<double>, std::greater<>> repairs;
    double t = 0.0;
    while (true) {
      t += exponential(rng, arrival_rate);
      if (t >= horizon_s) break;
      while (!repairs.empty() && repairs.top() <= t) repairs.pop();
      if (repairs.size() >= static_cast<std::size_t>(machine.total_nodes)) {
        continue;  // whole machine already down: drop this arrival
      }
      const double up = t + exponential(rng, repair_rate);
      trace.events.push_back({t, machine.id, -1});
      trace.events.push_back({up, machine.id, +1});
      repairs.push(up);
    }
  }

  // Deterministic global order — the (time, kind, seq) discipline of the
  // event queue: time, then downs before ups (kind), then machine (seq).
  // Two same-machine events can still collide on all three keys (two
  // repairs computing the identical up time), so the sort must be STABLE:
  // generation order then breaks the tie, making the trace a pure function
  // of (rates, machines, horizon, seed) rather than of the sort
  // implementation's behaviour on equal elements.
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const NodeEvent& a, const NodeEvent& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     if (a.delta != b.delta) return a.delta < b.delta;
                     return a.machine < b.machine;
                   });
  return trace;
}

}  // namespace mphpc::sched
