#include "sched/workload_gen.hpp"

#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc::sched {

std::vector<Job> sample_jobs(const core::Dataset& dataset,
                             const ml::Matrix& predictions,
                             const workload::AppCatalog& apps, std::size_t count,
                             std::uint64_t seed) {
  MPHPC_EXPECTS(predictions.rows() == dataset.num_rows());
  MPHPC_EXPECTS(predictions.cols() == arch::kNumSystems);
  MPHPC_EXPECTS(dataset.num_rows() > 0);

  const auto& app_names = dataset.apps();
  const auto& scale_names = dataset.scales();

  Rng rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t row = rng.below(dataset.num_rows());
    Job job;
    job.id = static_cast<int>(j);
    job.app = app_names[row];
    job.gpu_capable = apps.get(job.app).gpu_support;
    job.nodes_required = scale_names[row] == "2node" ? 2 : 1;
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      job.runtime[k] = dataset.time_on(row, static_cast<arch::SystemId>(k));
    }
    std::array<double, arch::kNumSystems> predicted{};
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) predicted[k] = predictions(row, k);
    job.predicted = core::Rpv(predicted);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace mphpc::sched
