#include "sched/workload_gen.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace mphpc::sched {

void stream_jobs(const core::Dataset& dataset, const RowRpv& predicted,
                 const workload::AppCatalog& apps, const WorkloadOptions& options,
                 const std::function<void(Job&&)>& sink) {
  MPHPC_EXPECTS(dataset.num_rows() > 0);
  MPHPC_EXPECTS(static_cast<bool>(predicted) && static_cast<bool>(sink));
  MPHPC_EXPECTS(options.count <=
                static_cast<std::size_t>(std::numeric_limits<int>::max()));

  const std::size_t rows = dataset.num_rows();
  const auto& app_names = dataset.apps();
  const auto& scale_names = dataset.scales();

  // Lazy per-row memo: a trace samples the same few hundred rows over and
  // over, so the predictor runs once per *row*, never once per job.
  std::vector<core::Rpv> row_rpv(rows);
  std::vector<char> row_done(rows, 0);

  Rng rng(options.seed);
  // Arrivals draw from their own derived stream so turning them on (or
  // changing the rate) never perturbs which rows are sampled.
  Rng arrivals(derive_seed(options.seed, "workload-arrivals"));
  double submit = 0.0;
  for (std::size_t j = 0; j < options.count; ++j) {
    const std::size_t row = rng.below(rows);
    if (!row_done[row]) {
      row_rpv[row] = predicted(row);
      row_done[row] = 1;
    }
    Job job;
    job.id = static_cast<int>(j);
    job.app = app_names[row];
    job.gpu_capable = apps.get(job.app).gpu_support;
    job.nodes_required = scale_names[row] == "2node" ? 2 : 1;
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      job.runtime[k] = dataset.time_on(row, static_cast<arch::SystemId>(k));
    }
    job.predicted = row_rpv[row];
    if (options.arrival_rate_per_s > 0.0) {
      submit += exponential(arrivals, options.arrival_rate_per_s);
      job.submit_s = submit;
    }
    sink(std::move(job));
  }
}

std::vector<Job> sample_jobs(const core::Dataset& dataset,
                             const ml::Matrix& predictions,
                             const workload::AppCatalog& apps, std::size_t count,
                             std::uint64_t seed) {
  // Always-on (not a contract macro): a mis-shaped prediction matrix is a
  // caller data error that must fail loudly with context in every build
  // mode, including contract level 0 where MPHPC_EXPECTS compiles away.
  if (predictions.rows() != dataset.num_rows() ||
      predictions.cols() != arch::kNumSystems) {
    throw std::invalid_argument(
        "sample_jobs: predictions matrix is " +
        std::to_string(predictions.rows()) + "x" +
        std::to_string(predictions.cols()) + " but the dataset requires " +
        std::to_string(dataset.num_rows()) + "x" +
        std::to_string(arch::kNumSystems) +
        " (one predicted RPV row per dataset row)");
  }
  MPHPC_EXPECTS(dataset.num_rows() > 0);

  std::vector<Job> jobs;
  jobs.reserve(count);
  stream_jobs(
      dataset,
      [&predictions](std::size_t row) {
        std::array<double, arch::kNumSystems> predicted{};
        for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
          predicted[k] = predictions(row, k);
        }
        return core::Rpv(predicted);
      },
      apps, WorkloadOptions{count, seed, 0.0},
      [&jobs](Job&& job) { jobs.push_back(std::move(job)); });
  return jobs;
}

}  // namespace mphpc::sched
