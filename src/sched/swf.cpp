#include "sched/swf.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string_view>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/rpv.hpp"

namespace mphpc::sched {

namespace {

constexpr std::size_t kSwfFields = 18;

[[noreturn]] void fail_at(const std::string& origin, std::size_t line,
                          const std::string& message) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + message);
}

[[nodiscard]] bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

/// "; Key: Value" (or a bare comment, stored with an empty value). The
/// archive's directive vocabulary is open-ended, so nothing is rejected.
void parse_directive(std::string_view body,
                     std::vector<std::pair<std::string, std::string>>* out) {
  body = trim(body);
  if (body.empty()) return;
  const std::size_t colon = body.find(':');
  if (colon == std::string_view::npos) {
    out->emplace_back(std::string(body), std::string());
    return;
  }
  out->emplace_back(std::string(trim(body.substr(0, colon))),
                    std::string(trim(body.substr(colon + 1))));
}

}  // namespace

SwfTrace parse_swf(std::istream& in, const std::string& origin) {
  SwfTrace trace;
  std::string line;
  std::size_t lineno = 0;
  std::array<double, kSwfFields> fields{};
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view text = trim(line);
    if (text.empty()) continue;
    if (text.front() == ';') {
      parse_directive(text.substr(1), &trace.directives);
      continue;
    }

    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
      while (pos < text.size() && is_space(text[pos])) ++pos;
      if (pos >= text.size()) break;
      std::size_t end = pos;
      while (end < text.size() && !is_space(text[end])) ++end;
      const std::string_view token = text.substr(pos, end - pos);
      if (count >= kSwfFields) {
        fail_at(origin, lineno,
                "job line has more than " + std::to_string(kSwfFields) +
                    " fields");
      }
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        fail_at(origin, lineno,
                "field " + std::to_string(count + 1) + " ('" +
                    std::string(token) + "') is not numeric");
      }
      fields[count++] = value;
      pos = end;
    }
    if (count != kSwfFields) {
      fail_at(origin, lineno,
              "expected " + std::to_string(kSwfFields) +
                  " whitespace-separated fields, got " + std::to_string(count));
    }

    SwfJob job;
    job.job_number = static_cast<long long>(fields[0]);
    job.submit_s = fields[1];
    job.run_s = fields[3];
    job.procs = static_cast<int>(fields[4]);
    job.requested_procs = static_cast<int>(fields[7]);
    job.status = static_cast<int>(fields[10]);
    trace.jobs.push_back(job);
  }
  return trace;
}

SwfTrace read_swf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF trace: " + path);
  return parse_swf(in, path);
}

std::vector<Job> jobs_from_swf(const SwfTrace& trace, const core::Dataset& dataset,
                               const workload::AppCatalog& apps,
                               const SwfMapOptions& options, SwfMapStats* stats) {
  MPHPC_EXPECTS(dataset.num_rows() > 0);
  MPHPC_EXPECTS(options.procs_per_node >= 1);
  MPHPC_EXPECTS(options.max_nodes >= 1);

  const auto traced = static_cast<std::size_t>(options.traced_system);
  const auto& app_names = dataset.apps();
  SwfMapStats tally;
  Rng rng(derive_seed(options.seed, "swf-rows"));
  std::vector<Job> jobs;
  jobs.reserve(trace.jobs.size());
  for (const SwfJob& sj : trace.jobs) {
    if (sj.run_s <= 0.0) {  // cancelled / never ran / unknown runtime
      ++tally.skipped_no_runtime;
      continue;
    }
    const int procs = sj.procs > 0 ? sj.procs : sj.requested_procs;
    if (procs <= 0) {
      ++tally.skipped_no_procs;
      continue;
    }
    // Fold trace processors into whole nodes, clamped to the widest job
    // the simulated cluster accepts.
    const int nodes = std::min(
        options.max_nodes,
        (procs + options.procs_per_node - 1) / options.procs_per_node);

    const std::size_t row = rng.below(dataset.num_rows());
    Job job;
    job.id = static_cast<int>(jobs.size());
    job.app = app_names[row];
    job.gpu_capable = apps.get(job.app).gpu_support;
    job.nodes_required = nodes;
    job.submit_s = sj.submit_s > 0.0 ? sj.submit_s : 0.0;
    // Rescale the row's four runtimes so the traced system's runtime is
    // exactly run_s: cross-system ratios — the row's RPV — are preserved,
    // only the absolute scale is taken from the trace.
    const double base = dataset.time_on(row, options.traced_system);
    MPHPC_ASSERT(base > 0.0);
    const double scale = sj.run_s / base;
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      job.runtime[k] =
          k == traced ? sj.run_s
                      : dataset.time_on(row, static_cast<arch::SystemId>(k)) * scale;
    }
    job.predicted = core::Rpv::relative_to(job.runtime, arch::SystemId::kQuartz);
    jobs.push_back(std::move(job));
    ++tally.mapped;
  }
  if (stats != nullptr) *stats = tally;
  return jobs;
}

}  // namespace mphpc::sched
