#include "sched/machine.hpp"

#include "common/contract.hpp"

namespace mphpc::sched {

std::vector<Machine> default_cluster(const arch::SystemCatalog& catalog) {
  std::vector<Machine> machines;
  machines.reserve(arch::kNumSystems);
  for (const arch::SystemId id : arch::kAllSystems) {
    machines.push_back({id, catalog.get(id).nodes});
    MPHPC_ENSURES(machines.back().total_nodes > 0);
  }
  return machines;
}

}  // namespace mphpc::sched
