#include "sched/machine.hpp"

namespace mphpc::sched {

std::vector<Machine> default_cluster(const arch::SystemCatalog& catalog) {
  std::vector<Machine> machines;
  machines.reserve(arch::kNumSystems);
  for (const arch::SystemId id : arch::kAllSystems) {
    machines.push_back({id, catalog.get(id).nodes});
  }
  return machines;
}

}  // namespace mphpc::sched
