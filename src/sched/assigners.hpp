// Machine-assignment strategies (paper §VII): Round-Robin, Random,
// User+RR (GPU apps to GPU machines, round-robin within the class), and
// the Model-based strategy of Algorithm 2, which places each job on its
// predicted-fastest machine, falling back to the next-fastest while the
// preferred machine is full.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "sched/job.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Strategy interface: `Machine(j, i, M)` in the paper's notation, where
/// `started_index` is the count of jobs started so far (the paper's i).
class MachineAssigner {
 public:
  virtual ~MachineAssigner() = default;

  [[nodiscard]] virtual arch::SystemId assign(const Job& job,
                                              std::size_t started_index,
                                              const ClusterView& view) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Rotates through the machines for each consecutive job.
class RoundRobinAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }
};

/// Uniformly random machine.
class RandomAssigner final : public MachineAssigner {
 public:
  explicit RandomAssigner(std::uint64_t seed) noexcept : rng_(seed) {}
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

/// Mimics typical user behaviour: GPU-enabled apps round-robin over the
/// GPU systems, CPU-only apps round-robin over the CPU systems.
class UserRoundRobinAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "User+RR"; }

 private:
  std::size_t gpu_next_ = 0;
  std::size_t cpu_next_ = 0;
};

/// Algorithm 2: predicted-fastest machine, skipping full machines; if all
/// machines are full, the overall predicted-fastest (the job waits there).
class ModelBasedAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Model-based"; }
};

/// An upper-bound variant used in ablations: like Model-based but with
/// oracle knowledge of the true fastest machine.
class OracleAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Oracle"; }
};

/// Degraded-mode Algorithm 2: validates each job's predicted RPV before
/// acting on it (finite, positive, within core::RpvGuardOptions bounds).
/// Implausible predictions — NaN/inf from a corrupt model, negative or
/// wildly out-of-range ratios — never reach the placement logic; the job
/// is placed by the user-preference heuristic instead and a fallback
/// counter is incremented, so one poisoned prediction cannot crash or
/// steer a long scheduling run.
class GuardedModelBasedAssigner final : public MachineAssigner {
 public:
  GuardedModelBasedAssigner() = default;
  explicit GuardedModelBasedAssigner(const core::RpvGuardOptions& bounds) noexcept
      : bounds_(bounds) {}

  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Model-based (guarded)"; }

  /// Jobs placed by the fallback heuristic instead of the model.
  [[nodiscard]] long long fallbacks() const noexcept { return fallbacks_; }

 private:
  core::RpvGuardOptions bounds_{};
  UserRoundRobinAssigner fallback_;
  long long fallbacks_ = 0;
};

}  // namespace mphpc::sched
