// Machine-assignment strategies (paper §VII): Round-Robin, Random,
// User+RR (GPU apps to GPU machines, round-robin within the class), and
// the Model-based strategy of Algorithm 2, which places each job on its
// predicted-fastest machine, falling back to the next-fastest while the
// preferred machine is full.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/job.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Strategy interface: `Machine(j, i, M)` in the paper's notation, where
/// `started_index` is the count of jobs started so far (the paper's i).
class MachineAssigner {
 public:
  virtual ~MachineAssigner() = default;

  [[nodiscard]] virtual arch::SystemId assign(const Job& job,
                                              std::size_t started_index,
                                              const ClusterView& view) = 0;

  /// Called once by the simulation engine with the full job list before
  /// any assign() call. Assigners whose per-job preference is a pure
  /// function of the job (Model-based, Oracle) memoize it here, so
  /// repeated backfill passes replay a cached ordering instead of
  /// re-deriving it. Default: no-op.
  // lint:allow-next-line contract-coverage -- no-op default has no precondition
  virtual void prime(std::span<const Job> jobs) { (void)jobs; }

  /// True when, for the job set passed to the latest prime(), assign() is
  /// a pure function of (job, started_index, view) — no internal state
  /// advances per call. The engine's indexed backfill path may then skip
  /// candidates that cannot start on any machine without calling assign()
  /// on them; stateful assigners (Random's RNG, User+RR's rotation) must
  /// see every candidate so their state advances identically to a full
  /// scan. Default: stateful.
  [[nodiscard]] virtual bool stateless_assign() const noexcept {
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Memoized per-job machine orderings. A job's predicted RPV and observed
/// runtimes never change during a simulation, so its fastest-first order
/// can be computed once at prime() time and replayed on every scheduling
/// and backfill pass. Jobs are keyed densely by Job::id; when ids are
/// negative or far sparser than the job count the cache stays disabled
/// (lookup() returns kUnknown) and the assigner computes per call — the
/// cache can only change cost, never results.
class JobOrderCache {
 public:
  using Order = std::array<arch::SystemId, arch::kNumSystems>;

  enum class State : std::uint8_t {
    kUnknown = 0,  ///< not primed / id outside the cache — compute per call
    kOrdered = 1,  ///< cached fastest-first order available
    kNoOrder = 2,  ///< primed, but this job bypasses the model path
  };

  /// Rebuilds the cache from a job list. `order_of` maps a job to its
  /// machine order, or nullopt for jobs that take a non-model path (e.g.
  /// an implausible RPV under the guarded assigner).
  void prime(std::span<const Job> jobs,
             const std::function<std::optional<Order>(const Job&)>& order_of);

  /// Looks up a job; on kOrdered, `*order` points at the cached order
  /// (valid until the next prime()).
  [[nodiscard]] State lookup(const Job& job, const Order** order) const noexcept;

  /// True when the latest prime() enabled the dense tables (every lookup
  /// of a primed job resolves to kOrdered or kNoOrder).
  [[nodiscard]] bool primed() const noexcept { return !states_.empty(); }

 private:
  std::vector<Order> orders_;
  std::vector<State> states_;
};

/// Rotates through the machines for each consecutive job.
class RoundRobinAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] bool stateless_assign() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }
};

/// Uniformly random machine.
class RandomAssigner final : public MachineAssigner {
 public:
  explicit RandomAssigner(std::uint64_t seed) noexcept : rng_(seed) {}
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

/// Mimics typical user behaviour: GPU-enabled apps round-robin over the
/// GPU systems, CPU-only apps round-robin over the CPU systems.
class UserRoundRobinAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  [[nodiscard]] std::string name() const override { return "User+RR"; }

 private:
  std::size_t gpu_next_ = 0;
  std::size_t cpu_next_ = 0;
};

/// Algorithm 2: predicted-fastest machine, skipping full machines; if all
/// machines are full, the overall predicted-fastest (the job waits there).
class ModelBasedAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  void prime(std::span<const Job> jobs) override;
  [[nodiscard]] bool stateless_assign() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "Model-based"; }

 private:
  JobOrderCache cache_;
};

/// An upper-bound variant used in ablations: like Model-based but with
/// oracle knowledge of the true fastest machine.
class OracleAssigner final : public MachineAssigner {
 public:
  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  void prime(std::span<const Job> jobs) override;
  [[nodiscard]] bool stateless_assign() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "Oracle"; }

 private:
  JobOrderCache cache_;
};

/// Degraded-mode Algorithm 2: validates each job's predicted RPV before
/// acting on it (finite, positive, within core::RpvGuardOptions bounds).
/// Implausible predictions — NaN/inf from a corrupt model, negative or
/// wildly out-of-range ratios — never reach the placement logic; the job
/// is placed by the user-preference heuristic instead and a fallback
/// counter is incremented, so one poisoned prediction cannot crash or
/// steer a long scheduling run.
class GuardedModelBasedAssigner final : public MachineAssigner {
 public:
  GuardedModelBasedAssigner() = default;
  explicit GuardedModelBasedAssigner(const core::RpvGuardOptions& bounds) noexcept
      : bounds_(bounds) {}

  [[nodiscard]] arch::SystemId assign(const Job& job, std::size_t started_index,
                                      const ClusterView& view) override;
  void prime(std::span<const Job> jobs) override;
  /// Pure only when every primed job took the model path: one implausible
  /// RPV routes through the stateful User+RR fallback, whose rotation
  /// must advance on every call.
  [[nodiscard]] bool stateless_assign() const noexcept override {
    return primed_pure_;
  }
  [[nodiscard]] std::string name() const override { return "Model-based (guarded)"; }

  /// Jobs placed by the fallback heuristic instead of the model.
  [[nodiscard]] long long fallbacks() const noexcept { return fallbacks_; }

 private:
  core::RpvGuardOptions bounds_{};
  UserRoundRobinAssigner fallback_;
  long long fallbacks_ = 0;
  bool primed_pure_ = false;
  JobOrderCache cache_;
};

}  // namespace mphpc::sched
