#include "sched/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contract.hpp"

namespace mphpc::sched {

namespace {

constexpr double kNoEvent = std::numeric_limits<double>::infinity();
constexpr std::size_t kMinBuckets = 16;
// Largest time/width quotient mapped exactly (stays well inside the
// 2^53 double-integer range so year arithmetic in find_min is exact).
constexpr double kMaxExactSlot = 4.0e15;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

std::size_t CalendarQueue::bucket_of(double time_s) const noexcept {
  const double q = time_s / width_;
  if (q >= kMaxExactSlot) {
    // Beyond the exactly-representable slot range: park deterministically;
    // find_min() reaches such events through its direct-scan fallback.
    return static_cast<std::size_t>(
        std::fmod(q, static_cast<double>(buckets_.size())));
  }
  return static_cast<std::size_t>(static_cast<std::uint64_t>(q) %
                                  buckets_.size());
}

void CalendarQueue::push(const SimEvent& event) {
  MPHPC_EXPECTS(std::isfinite(event.time_s) && event.time_s >= 0.0);
  // Monotonicity: the engine never schedules an event before the current
  // simulated time, which is at least the last popped event's time.
  MPHPC_EXPECTS(event.time_s >= floor_);
  buckets_[bucket_of(event.time_s)].push_back(event);
  ++size_;
  min_valid_ = false;
  if (size_ > 2 * buckets_.size()) rebuild(2 * buckets_.size());
}

double CalendarQueue::next_time() const {
  if (!find_min()) return kNoEvent;
  return buckets_[min_bucket_][min_pos_].time_s;
}

SimEvent CalendarQueue::pop_front() {
  MPHPC_EXPECTS(size_ > 0);
  const bool found = find_min();
  MPHPC_ASSERT(found);
  auto& bucket = buckets_[min_bucket_];
  const SimEvent event = bucket[min_pos_];
  // Swap-remove: order within a bucket is irrelevant, the comparator is a
  // total order so the minimum is position-independent.
  bucket[min_pos_] = bucket.back();
  bucket.pop_back();
  --size_;
  min_valid_ = false;
  floor_ = event.time_s;
  // Shrink once a drained-down table would make the forward scan pay for
  // mostly-empty buckets.
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8) {
    rebuild(std::max(kMinBuckets, 2 * size_));
  }
  return event;
}

bool CalendarQueue::find_min() const {
  if (size_ == 0) return false;
  if (min_valid_) return true;

  // Forward scan from the floor's bucket, one width-window per bucket.
  // floor(time / width) is monotone in time (correctly-rounded division),
  // so windows are visited in non-decreasing event-time order and the
  // first window with a qualifying event holds the global minimum. The
  // half-width slack on the window top absorbs division rounding at the
  // boundary without admitting next-year events (a year is >= 16 widths).
  const double base_q = floor_ / width_;
  if (base_q < kMaxExactSlot) {
    const auto base = static_cast<std::uint64_t>(base_q);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const std::size_t b =
          static_cast<std::size_t>((base + i) % buckets_.size());
      const auto& bucket = buckets_[b];
      if (bucket.empty()) continue;
      const double window_top =
          (static_cast<double>(base + i) + 1.5) * width_;
      std::size_t best = bucket.size();
      for (std::size_t p = 0; p < bucket.size(); ++p) {
        if (bucket[p].time_s >= window_top) continue;  // a later year
        if (best == bucket.size() || event_before(bucket[p], bucket[best])) {
          best = p;
        }
      }
      if (best != bucket.size()) {
        min_bucket_ = b;
        min_pos_ = best;
        min_valid_ = true;
        return true;
      }
    }
  }

  // Degenerate distribution (all events far beyond one calendar year):
  // fall back to a direct scan. Rare by construction — rebuild() sizes the
  // year to cover the live span — and still deterministic.
  std::size_t best_bucket = buckets_.size();
  std::size_t best_pos = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (std::size_t p = 0; p < buckets_[b].size(); ++p) {
      if (best_bucket == buckets_.size() ||
          event_before(buckets_[b][p], buckets_[best_bucket][best_pos])) {
        best_bucket = b;
        best_pos = p;
      }
    }
  }
  MPHPC_ASSERT(best_bucket != buckets_.size());
  min_bucket_ = best_bucket;
  min_pos_ = best_pos;
  min_valid_ = true;
  return true;
}

void CalendarQueue::rebuild(std::size_t target_buckets) {
  std::vector<SimEvent> events;
  events.reserve(size_);
  for (auto& bucket : buckets_) {
    events.insert(events.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  // Width estimate: three average inter-event gaps per bucket keeps the
  // expected bucket occupancy small while the whole live span fits inside
  // one calendar year (buckets ~ 2 * size, so year ~ 6 * span).
  if (events.size() >= 2) {
    double lo = events.front().time_s;
    double hi = lo;
    for (const SimEvent& e : events) {
      lo = std::min(lo, e.time_s);
      hi = std::max(hi, e.time_s);
    }
    const double span = hi - lo;
    if (span > 0.0) {
      // Keep every live event's slot inside the exact mapping range.
      width_ = std::max(3.0 * span / static_cast<double>(events.size()),
                        hi / kMaxExactSlot);
    }
  }
  buckets_.assign(std::max(target_buckets, kMinBuckets), {});
  for (const SimEvent& e : events) buckets_[bucket_of(e.time_s)].push_back(e);
  min_valid_ = false;
}

}  // namespace mphpc::sched
