// Jobs for the multi-resource scheduling simulation (paper §VII): each job
// is one dataset row (an application-input at a resource scale) carrying
// its observed runtime on every system and the model's predicted RPV.
#pragma once

#include <string>

#include "core/rpv.hpp"

namespace mphpc::sched {

struct Job {
  int id = 0;
  std::string app;
  bool gpu_capable = false;  ///< app has a GPU code path (drives User+RR)
  int nodes_required = 1;    ///< whole-node allocation (1 or 2 in the study)
  core::SystemTimes runtime{};  ///< observed execution time per system
  core::Rpv predicted;          ///< model-predicted RPV (time ratios)
};

/// Where and when a job ran in the simulation.
struct JobOutcome {
  arch::SystemId machine = arch::SystemId::kQuartz;
  double start_s = 0.0;
  double end_s = 0.0;

  [[nodiscard]] double wait_s() const noexcept { return start_s; }  // submit at t=0
  [[nodiscard]] double run_s() const noexcept { return end_s - start_s; }
};

}  // namespace mphpc::sched
