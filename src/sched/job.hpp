// Jobs for the multi-resource scheduling simulation (paper §VII): each job
// is one dataset row (an application-input at a resource scale) carrying
// its observed runtime on every system and the model's predicted RPV.
#pragma once

#include <string>

#include "core/rpv.hpp"

namespace mphpc::sched {

struct Job {
  int id = 0;
  std::string app;
  bool gpu_capable = false;  ///< app has a GPU code path (drives User+RR)
  int nodes_required = 1;    ///< whole-node allocation (1 or 2 in the study)
  double submit_s = 0.0;     ///< submission time (0 = batch submit, the paper)
  core::SystemTimes runtime{};  ///< observed execution time per system
  core::Rpv predicted;          ///< model-predicted RPV (time ratios)
};

/// Where and when a job ran in the simulation. Under fault injection a job
/// may need several attempts (earlier ones killed by node failures or
/// random kills); start_s/end_s describe the final attempt. An abandoned
/// job exhausted its retry budget: end_s is the kill time of its last
/// attempt and it never completed.
struct JobOutcome {
  arch::SystemId machine = arch::SystemId::kQuartz;
  double start_s = 0.0;
  double end_s = 0.0;
  double submit_s = 0.0;  ///< original submission time
  int attempts = 1;       ///< execution attempts consumed (>= 1 once started)
  bool abandoned = false; ///< true if the retry budget ran out

  [[nodiscard]] double wait_s() const noexcept { return start_s - submit_s; }
  [[nodiscard]] double run_s() const noexcept { return end_s - start_s; }
};

}  // namespace mphpc::sched
