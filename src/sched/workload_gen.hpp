// Scheduling-workload generation (paper §VII): samples N jobs from the
// MP-HPC dataset with replacement, attaching each job's observed per-system
// runtimes (the simulation ground truth) and the trained model's predicted
// RPV (what the Model-based strategy acts on).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "sched/job.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sched {

/// Samples `count` jobs (rows with replacement) from the dataset.
/// `predictions` must hold the model's predicted RPV entries for every
/// dataset row (rows x 4), e.g. `predictor.predict(dataset.features())`.
[[nodiscard]] std::vector<Job> sample_jobs(const core::Dataset& dataset,
                                           const ml::Matrix& predictions,
                                           const workload::AppCatalog& apps,
                                           std::size_t count, std::uint64_t seed);

}  // namespace mphpc::sched
