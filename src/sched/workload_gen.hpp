// Scheduling-workload generation (paper §VII): samples N jobs from the
// MP-HPC dataset with replacement, attaching each job's observed per-system
// runtimes (the simulation ground truth) and the trained model's predicted
// RPV (what the Model-based strategy acts on).
//
// Two entry points share one sampling core:
//  - sample_jobs: the original matrix-backed API (one predicted row per
//    dataset row), materializing the full job vector.
//  - stream_jobs: the scale path. Predictions come from a per-row callback
//    (lazily memoized, so a 10^6-job trace evaluates the predictor once
//    per dataset row, not once per job), jobs are handed to a sink one at
//    a time, and an optional Poisson arrival process spreads submissions
//    over time. Row sampling is bit-compatible with sample_jobs: the same
//    seed draws the same row sequence whether or not arrivals are enabled
//    (arrival jitter comes from an independent derived stream).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "sched/job.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sched {

/// Parameters of a streamed workload.
struct WorkloadOptions {
  std::size_t count = 0;
  std::uint64_t seed = 0;
  /// Poisson arrival rate (jobs per simulated second). <= 0 keeps the
  /// paper's batch setting: every job submits at t = 0.
  double arrival_rate_per_s = 0.0;
};

/// Predicted RPV for a dataset row. stream_jobs memoizes calls per row,
/// so the provider may be arbitrarily expensive (a compiled model, a
/// true-RPV oracle) without costing per-job time.
using RowRpv = std::function<core::Rpv(std::size_t row)>;

/// Streams `options.count` sampled jobs into `sink`, in job-id order.
void stream_jobs(const core::Dataset& dataset, const RowRpv& predicted,
                 const workload::AppCatalog& apps,
                 const WorkloadOptions& options,
                 const std::function<void(Job&&)>& sink);

/// Samples `count` jobs (rows with replacement) from the dataset.
/// `predictions` must hold the model's predicted RPV entries for every
/// dataset row (rows x 4), e.g. `predictor.predict(dataset.features())`;
/// a shape mismatch throws std::invalid_argument naming both shapes (in
/// every build mode — this guards user-supplied data, not engine state).
[[nodiscard]] std::vector<Job> sample_jobs(const core::Dataset& dataset,
                                           const ml::Matrix& predictions,
                                           const workload::AppCatalog& apps,
                                           std::size_t count, std::uint64_t seed);

}  // namespace mphpc::sched
