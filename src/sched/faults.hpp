// Fault-injection substrate for the scheduling simulation.
//
// Real clusters lose nodes and kill jobs; the paper's §VII experiment
// assumes neither. This layer pre-generates a deterministic, seeded
// FaultTrace — per-machine node-down/node-up events drawn from
// exponential MTBF/MTTR processes — plus per-attempt job-kill draws, so
// `simulate()` can replay identical failures at any thread count and a
// fixed seed yields bit-identical results. A trace is generated once up
// front against a horizon (open-loop: failures do not depend on the
// simulation state), which is what makes the replay reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/architecture.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Capped exponential backoff for killed-job resubmission. A job killed on
/// its k-th attempt (1-based) is resubmitted after
///   min(base_delay_s * multiplier^(k-1), max_delay_s) * (1 ± jitter)
/// unless k == max_attempts, in which case it is abandoned.
struct RetryPolicy {
  int max_attempts = 4;        ///< total attempts, including the first
  double base_delay_s = 30.0;  ///< delay after the first kill
  double multiplier = 2.0;     ///< backoff growth per further kill
  double max_delay_s = 3600.0; ///< cap on the uncapped backoff term
  double jitter = 0.25;        ///< symmetric fraction of the delay, in [0, 1)

  /// Backoff delay after the `attempt`-th attempt was killed (attempt >= 1).
  /// `u` is a uniform draw in [0, 1) supplying the jitter.
  [[nodiscard]] double delay_s(int attempt, double u) const;
};

/// One node going down (delta = -1) or coming back (delta = +1).
struct NodeEvent {
  double time_s = 0.0;
  arch::SystemId machine = arch::SystemId::kQuartz;
  int delta = 0;
};

/// A pre-generated, replayable fault schedule. `events` is sorted by
/// (time, delta, machine); every down event has a matching later up event,
/// and no machine ever has more nodes concurrently down than it owns.
struct FaultTrace {
  std::vector<NodeEvent> events;
  double kill_probability = 0.0;  ///< per-attempt random job-kill chance
  RetryPolicy retry{};
  std::uint64_t seed = 0;  ///< drives kill draws and retry jitter

  /// True when the trace can affect a simulation at all.
  [[nodiscard]] bool enabled() const noexcept {
    return !events.empty() || kill_probability > 0.0;
  }

  /// The no-fault trace: replaying it reproduces the fault-free
  /// simulation bit-identically.
  [[nodiscard]] static FaultTrace none() noexcept { return {}; }
};

/// Per-system failure/repair rates. node_mtbf_s <= 0 disables failures on
/// that system.
struct FaultRates {
  double node_mtbf_s = 0.0;  ///< mean time between failures, per node
  double mttr_s = 3600.0;    ///< mean time to repair a failed node
};

/// Generates FaultTraces. Failure arrivals on a machine form a Poisson
/// process at rate total_nodes / node_mtbf_s; each arrival takes one node
/// down for an exponential(1 / mttr_s) repair interval. Arrivals that
/// would exceed the machine's inventory are dropped at generation time,
/// so a trace is always consistent with the cluster it was built for.
class FaultModel {
 public:
  /// No faults on any system.
  FaultModel() = default;

  FaultModel(const std::array<FaultRates, arch::kNumSystems>& rates,
             double kill_probability, const RetryPolicy& retry,
             std::uint64_t seed);

  /// The disabled model; generate() returns FaultTrace::none().
  [[nodiscard]] static FaultModel none() noexcept { return {}; }

  /// Same rates on every system.
  [[nodiscard]] static FaultModel uniform(double node_mtbf_s, double mttr_s,
                                          double kill_probability,
                                          const RetryPolicy& retry,
                                          std::uint64_t seed);

  [[nodiscard]] bool enabled() const noexcept;

  /// Pre-generates the failure schedule for `machines` over
  /// [0, horizon_s). Repairs of failures inside the horizon may complete
  /// after it. Deterministic: same model + machines + horizon => the same
  /// trace, independent of call site or thread count.
  [[nodiscard]] FaultTrace generate(const std::vector<Machine>& machines,
                                    double horizon_s) const;

 private:
  std::array<FaultRates, arch::kNumSystems> rates_{};
  double kill_probability_ = 0.0;
  RetryPolicy retry_{};
  std::uint64_t seed_ = 0;
};

}  // namespace mphpc::sched
