// Checkpoint/restart model for the scheduling simulation.
//
// Without checkpointing, a killed attempt loses all of its partial work
// and the job restarts from zero (sched/faults.hpp). A CheckpointPolicy
// makes attempts durable: after every `interval_s` seconds of *work* the
// job spends `overhead_s` seconds of wall time writing a checkpoint, and
// a later kill resumes the job with
//   remaining = runtime - work saved by the last completed checkpoint
// instead of from scratch. The policy is a pure arithmetic model — it
// adds no randomness — so simulations stay bit-reproducible, and a
// zero-interval (disabled) policy leaves every code path's arithmetic
// exactly as the restart-from-zero scheduler (golden-tested).
//
// The classic interval choice is Young/Daly: for per-checkpoint cost C
// and mean time between failures M, the loss-minimising interval is
// approximately sqrt(2 C M). `young_daly_interval` implements it and
// `trace_node_mtbf_s` recovers the effective per-node MTBF of a
// pre-generated FaultTrace so the two can be composed.
#pragma once

#include <vector>

#include "sched/faults.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Fixed-interval checkpointing with a constant per-checkpoint write cost.
/// interval_s counts *work* seconds (checkpoint writes do not advance the
/// job); interval_s == 0 disables checkpointing entirely.
struct CheckpointPolicy {
  double interval_s = 0.0;  ///< work seconds between checkpoint writes
  double overhead_s = 0.0;  ///< wall seconds per checkpoint write

  [[nodiscard]] bool enabled() const noexcept { return interval_s > 0.0; }

  /// Completed checkpoint writes during an attempt doing `work_s` seconds
  /// of work: one per full interval strictly before the attempt finishes
  /// (a checkpoint exactly at completion would save nothing).
  [[nodiscard]] long long checkpoints_during(double work_s) const noexcept;

  /// Wall-clock duration of an attempt doing `work_s` seconds of work:
  /// the work plus every checkpoint write. Returns `work_s` unchanged
  /// (same bits) when the policy is disabled.
  [[nodiscard]] double attempt_duration(double work_s) const noexcept;

  /// How a kill at `elapsed_s` wall seconds into an attempt of `work_s`
  /// seconds of work splits the occupied time. Always reconciles:
  /// saved + lost + overhead == elapsed (and lost <= interval_s when the
  /// policy is enabled).
  struct KillAccount {
    double saved_work_s = 0.0;     ///< durably checkpointed (recoverable)
    double lost_work_s = 0.0;      ///< executed but not yet checkpointed
    double overhead_paid_s = 0.0;  ///< wall spent writing checkpoints
    long long checkpoints = 0;     ///< completed checkpoint writes
  };
  [[nodiscard]] KillAccount account_kill(double elapsed_s, double work_s) const;
};

/// Young/Daly optimal checkpoint interval sqrt(2 * overhead_s * mtbf_s)
/// (the first-order optimum for overhead << MTBF). Requires both positive.
[[nodiscard]] double young_daly_interval(double overhead_s, double mtbf_s);

/// Effective per-node MTBF of a fault trace over [0, horizon_s): total
/// node-time divided by the number of node-failure events inside the
/// horizon. Random per-attempt job kills (trace.kill_probability) are not
/// time-based and are excluded. Returns +infinity when the trace has no
/// failures in the horizon.
[[nodiscard]] double trace_node_mtbf_s(const FaultTrace& trace,
                                       const std::vector<Machine>& machines,
                                       double horizon_s);

}  // namespace mphpc::sched
