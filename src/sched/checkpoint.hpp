// Checkpoint/restart model for the scheduling simulation.
//
// Without checkpointing, a killed attempt loses all of its partial work
// and the job restarts from zero (sched/faults.hpp). A CheckpointPolicy
// makes attempts durable: after every `interval_s` seconds of *work* the
// job spends `overhead_s` seconds of wall time writing a checkpoint, and
// a later kill resumes the job with
//   remaining = runtime - work saved by the last completed checkpoint
// instead of from scratch. The policy is a pure arithmetic model — it
// adds no randomness — so simulations stay bit-reproducible, and a
// zero-interval (disabled) policy leaves every code path's arithmetic
// exactly as the restart-from-zero scheduler (golden-tested).
//
// The classic interval choice is Young/Daly: for per-checkpoint cost C
// and mean time between failures M, the loss-minimising interval is
// approximately sqrt(2 C M). `young_daly_interval` implements it and
// `trace_node_mtbf_s` recovers the effective per-node MTBF of a
// pre-generated FaultTrace so the two can be composed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/faults.hpp"
#include "sched/job.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {

/// Fixed-interval checkpointing with a constant per-checkpoint write cost.
/// interval_s counts *work* seconds (checkpoint writes do not advance the
/// job); interval_s == 0 disables checkpointing entirely.
struct CheckpointPolicy {
  double interval_s = 0.0;  ///< work seconds between checkpoint writes
  double overhead_s = 0.0;  ///< wall seconds per checkpoint write

  [[nodiscard]] bool enabled() const noexcept { return interval_s > 0.0; }

  /// Completed checkpoint writes during an attempt doing `work_s` seconds
  /// of work: one per full interval strictly before the attempt finishes
  /// (a checkpoint exactly at completion would save nothing).
  [[nodiscard]] long long checkpoints_during(double work_s) const noexcept;

  /// Wall-clock duration of an attempt doing `work_s` seconds of work:
  /// the work plus every checkpoint write. Returns `work_s` unchanged
  /// (same bits) when the policy is disabled.
  [[nodiscard]] double attempt_duration(double work_s) const noexcept;

  /// How a kill at `elapsed_s` wall seconds into an attempt of `work_s`
  /// seconds of work splits the occupied time. Always reconciles:
  /// saved + lost + overhead == elapsed (and lost <= interval_s when the
  /// policy is enabled).
  struct KillAccount {
    double saved_work_s = 0.0;     ///< durably checkpointed (recoverable)
    double lost_work_s = 0.0;      ///< executed but not yet checkpointed
    double overhead_paid_s = 0.0;  ///< wall spent writing checkpoints
    long long checkpoints = 0;     ///< completed checkpoint writes
  };
  [[nodiscard]] KillAccount account_kill(double elapsed_s, double work_s) const;
};

/// Chooses the checkpoint policy per attempt instead of one fixed policy
/// for the whole simulation. The engine calls begin() once at simulation
/// start, policy_for() for every attempt it starts, and
/// observe_node_failure() for every node-failure event it replays — all
/// strictly in simulated-time order, so a deterministic planner keeps the
/// simulation bit-reproducible. A planner instance accumulates
/// per-simulation state: create one per simulate() call and never share
/// an instance across concurrent simulations.
class CheckpointPlanner {
 public:
  virtual ~CheckpointPlanner() = default;

  /// Simulation start; `total_nodes` is the cluster-wide node inventory.
  virtual void begin(int total_nodes) { (void)total_nodes; }

  /// Policy for the next attempt of `job`, started at simulated time
  /// `now_s`. Must return a valid policy (non-negative interval/overhead).
  [[nodiscard]] virtual CheckpointPolicy policy_for(const Job& job,
                                                    double now_s) = 0;

  /// A node failure was replayed at `time_s`.
  virtual void observe_node_failure(double time_s) { (void)time_s; }
};

/// Per-application policies with a fallback for unlisted apps: long-running
/// simulation codes can checkpoint aggressively while short jobs skip the
/// overhead entirely.
class PerAppCheckpointPlanner final : public CheckpointPlanner {
 public:
  explicit PerAppCheckpointPlanner(const CheckpointPolicy& fallback) noexcept
      : fallback_(fallback) {}

  void set(const std::string& app, const CheckpointPolicy& policy);

  [[nodiscard]] CheckpointPolicy policy_for(const Job& job,
                                            double now_s) override;

 private:
  CheckpointPolicy fallback_{};
  std::map<std::string, CheckpointPolicy, std::less<>> per_app_;
};

/// Adaptive Young/Daly: re-estimates the cluster's per-node MTBF online
/// from the failures observed so far and hands every new attempt the
/// sqrt(2 * C * MTBF) interval for the current estimate. The estimate is
/// Bayesian-flavoured: a prior MTBF with `prior_weight` pseudo-failures is
/// blended with the observed failure count over the elapsed node-time, so
/// early attempts are not whipsawed by the first few (or zero) failures.
class AdaptiveYoungDalyPlanner final : public CheckpointPlanner {
 public:
  /// `overhead_s` is the per-checkpoint write cost (0 disables
  /// checkpointing regardless of the estimate); `prior_mtbf_s` seeds the
  /// estimate before any failure is seen (<= 0 means "assume no failures"
  /// until one is observed).
  AdaptiveYoungDalyPlanner(double overhead_s, double prior_mtbf_s,
                           double prior_weight = 4.0);

  void begin(int total_nodes) override;
  [[nodiscard]] CheckpointPolicy policy_for(const Job& job,
                                            double now_s) override;
  void observe_node_failure(double time_s) override;

  /// Current per-node MTBF estimate at simulated time `now_s`
  /// (+infinity while nothing suggests failures happen at all).
  [[nodiscard]] double estimated_mtbf_s(double now_s) const;

  [[nodiscard]] long long observed_failures() const noexcept {
    return failures_;
  }

 private:
  double overhead_s_ = 0.0;
  double prior_mtbf_s_ = 0.0;
  double prior_weight_ = 4.0;
  double total_nodes_ = 0.0;
  long long failures_ = 0;
};

/// Young/Daly optimal checkpoint interval sqrt(2 * overhead_s * mtbf_s)
/// (the first-order optimum for overhead << MTBF). Requires both positive.
[[nodiscard]] double young_daly_interval(double overhead_s, double mtbf_s);

/// Effective per-node MTBF of a fault trace over [0, horizon_s): total
/// node-time divided by the number of node-failure events inside the
/// horizon. Random per-attempt job kills (trace.kill_probability) are not
/// time-based and are excluded. Returns +infinity when the trace has no
/// failures in the horizon.
[[nodiscard]] double trace_node_mtbf_s(const FaultTrace& trace,
                                       const std::vector<Machine>& machines,
                                       double horizon_s);

}  // namespace mphpc::sched
