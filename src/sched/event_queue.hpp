// Calendar (bucket) event queue for the scheduling simulation.
//
// The event loop in easy_scheduler.cpp is monotone: it always drains the
// globally earliest event, and every new event lands at or after the
// current simulated time. A binary heap pays O(log n) per operation and,
// worse, leaves equal-time ordering to insertion order. This queue is the
// classic calendar queue (R. Brown, CACM 1988) specialised for that
// monotone access pattern — O(1) amortised push/pop under the usual
// event-density assumptions — with a fully explicit total order on events:
//
//   (time_s, kind, seq, sub)
//
// so ties at equal timestamps are deterministic by construction, never a
// heap-layout accident. The engine keys `seq` by job index and `sub` by
// attempt number; `kind` separates event classes when one queue carries
// more than one (kills order before releases at equal times, matching the
// event loop's processing order).
//
// Events are hashed into `buckets` of `width` simulated seconds each; the
// bucket array wraps around ("years"). Pop scans forward from the last
// popped time, one bucket-window at a time; pushes that outgrow the table
// trigger a rebuild with a width re-estimated from the live event span, so
// both a 10^6-event submission front and a trickle of retry events keep
// near-constant cost. Correctness never depends on the width estimate —
// a full-table fallback scan handles any degenerate distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace mphpc::sched {

/// One queued simulation event, ordered by (time_s, kind, seq, sub).
struct SimEvent {
  double time_s = 0.0;
  std::uint32_t kind = 0;  ///< event class; lower drains first at equal times
  std::uint64_t seq = 0;   ///< primary tie-break (the engine uses job index)
  std::uint64_t sub = 0;   ///< secondary tie-break (the engine uses attempt)
};

/// Strict total order over distinct events: (time_s, kind, seq, sub).
[[nodiscard]] constexpr bool event_before(const SimEvent& a,
                                          const SimEvent& b) noexcept {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.sub < b.sub;
}

/// Monotone calendar queue. Pushes must not predate the last popped event
/// (MPHPC_EXPECTS-checked); pops always return the least event under
/// event_before. Deterministic: the pop sequence depends only on the set
/// of pushed events, never on bucket geometry or insertion order.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(const SimEvent& event);

  /// Time of the earliest queued event, or +infinity when empty.
  [[nodiscard]] double next_time() const;

  /// Removes and returns the least event. The queue must not be empty.
  SimEvent pop_front();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  /// Bucket index for an event time under the current geometry.
  [[nodiscard]] std::size_t bucket_of(double time_s) const noexcept;
  /// Locates the least event (cached between const calls); returns false
  /// when empty.
  bool find_min() const;
  /// Re-buckets every event into `target_buckets` buckets with a width
  /// re-estimated from the live span.
  void rebuild(std::size_t target_buckets);

  std::vector<std::vector<SimEvent>> buckets_;
  double width_ = 1.0;
  double floor_ = 0.0;  ///< time of the last popped event (monotone)
  std::size_t size_ = 0;

  // Cached location of the minimum, so next_time() + pop_front() pairs
  // scan the calendar once. Invalidated by push and rebuild.
  mutable bool min_valid_ = false;
  mutable std::size_t min_bucket_ = 0;
  mutable std::size_t min_pos_ = 0;
};

}  // namespace mphpc::sched
