// Machine inventories and the read-only cluster view strategies see.
#pragma once

#include <array>
#include <vector>

#include "arch/system_catalog.hpp"

namespace mphpc::sched {

/// One schedulable machine: a system with a node inventory.
struct Machine {
  arch::SystemId id = arch::SystemId::kQuartz;
  int total_nodes = 0;
};

/// The default four-machine cluster with the real systems' node counts.
[[nodiscard]] std::vector<Machine> default_cluster(const arch::SystemCatalog& catalog);

/// Read-only occupancy snapshot passed to assignment strategies.
class ClusterView {
 public:
  ClusterView(const std::vector<Machine>& machines,
              const std::array<int, arch::kNumSystems>& free_nodes) noexcept
      : machines_(&machines), free_(&free_nodes) {
    // Precomputed: assigners query totals inside hot scheduling loops, so
    // total_nodes() must not scan the machine list per call.
    for (const Machine& m : machines) {
      totals_[static_cast<std::size_t>(m.id)] = m.total_nodes;
    }
  }

  [[nodiscard]] const std::vector<Machine>& machines() const noexcept {
    return *machines_;
  }
  [[nodiscard]] int free_nodes(arch::SystemId id) const noexcept {
    return (*free_)[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int total_nodes(arch::SystemId id) const noexcept {
    return totals_[static_cast<std::size_t>(id)];
  }
  /// True if the machine cannot start `nodes` more nodes right now.
  [[nodiscard]] bool is_full(arch::SystemId id, int nodes) const noexcept {
    return free_nodes(id) < nodes;
  }

 private:
  const std::vector<Machine>* machines_;
  const std::array<int, arch::kNumSystems>* free_;
  std::array<int, arch::kNumSystems> totals_{};
};

}  // namespace mphpc::sched
