#include "sched/checkpoint.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"

namespace mphpc::sched {

long long CheckpointPolicy::checkpoints_during(double work_s) const noexcept {
  if (!enabled() || work_s <= interval_s) return 0;
  // Largest k with k * interval strictly below the attempt's work. The
  // floor can land one high when work is an exact multiple (floating
  // division rounding up); the correction keeps the "no checkpoint at
  // completion" rule exact.
  auto k = static_cast<long long>(std::floor(work_s / interval_s));
  while (k > 0 && static_cast<double>(k) * interval_s >= work_s) --k;
  return k;
}

double CheckpointPolicy::attempt_duration(double work_s) const noexcept {
  if (!enabled()) return work_s;  // bit-identical to the no-checkpoint path
  return work_s +
         static_cast<double>(checkpoints_during(work_s)) * overhead_s;
}

CheckpointPolicy::KillAccount CheckpointPolicy::account_kill(double elapsed_s,
                                                             double work_s) const {
  MPHPC_EXPECTS(elapsed_s >= 0.0 && work_s > 0.0);
  KillAccount account;
  if (!enabled()) {
    account.lost_work_s = elapsed_s;  // restart-from-zero: everything is lost
    return account;
  }
  const long long total = checkpoints_during(work_s);
  // The attempt alternates `interval` of work with `overhead` of writing;
  // checkpoint j completes at wall offset j * (interval + overhead).
  const double cycle = interval_s + overhead_s;
  auto done = static_cast<long long>(std::floor(elapsed_s / cycle));
  while (done > 0 && static_cast<double>(done) * cycle > elapsed_s) --done;
  if (done > total) done = total;
  const double into_cycle = elapsed_s - static_cast<double>(done) * cycle;
  account.checkpoints = done;
  account.saved_work_s = static_cast<double>(done) * interval_s;
  account.overhead_paid_s = static_cast<double>(done) * overhead_s;
  if (done >= total) {
    // Past the last write: the remainder is the final uncheckpointed
    // stretch of work.
    account.lost_work_s = into_cycle;
  } else if (into_cycle <= interval_s) {
    account.lost_work_s = into_cycle;  // mid-work, nothing of it saved yet
  } else {
    // Mid-write: the full interval being written is not yet durable, and
    // the partial write counts as overhead.
    account.lost_work_s = interval_s;
    account.overhead_paid_s += into_cycle - interval_s;
  }
  return account;
}

double young_daly_interval(double overhead_s, double mtbf_s) {
  MPHPC_EXPECTS(overhead_s > 0.0 && mtbf_s > 0.0);
  return std::sqrt(2.0 * overhead_s * mtbf_s);
}

double trace_node_mtbf_s(const FaultTrace& trace,
                         const std::vector<Machine>& machines, double horizon_s) {
  MPHPC_EXPECTS(horizon_s > 0.0);
  long long failures = 0;
  for (const NodeEvent& event : trace.events) {
    if (event.time_s >= horizon_s) break;  // events are time-sorted
    if (event.delta < 0) ++failures;
  }
  long long nodes = 0;
  for (const Machine& m : machines) nodes += m.total_nodes;
  MPHPC_EXPECTS(nodes > 0);
  if (failures == 0) return std::numeric_limits<double>::infinity();
  return horizon_s * static_cast<double>(nodes) / static_cast<double>(failures);
}

}  // namespace mphpc::sched
