#include "sched/checkpoint.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"

namespace mphpc::sched {

long long CheckpointPolicy::checkpoints_during(double work_s) const noexcept {
  if (!enabled() || work_s <= interval_s) return 0;
  // Largest k with k * interval strictly below the attempt's work. The
  // floor can land one high when work is an exact multiple (floating
  // division rounding up); the correction keeps the "no checkpoint at
  // completion" rule exact.
  auto k = static_cast<long long>(std::floor(work_s / interval_s));
  while (k > 0 && static_cast<double>(k) * interval_s >= work_s) --k;
  return k;
}

double CheckpointPolicy::attempt_duration(double work_s) const noexcept {
  if (!enabled()) return work_s;  // bit-identical to the no-checkpoint path
  return work_s +
         static_cast<double>(checkpoints_during(work_s)) * overhead_s;
}

CheckpointPolicy::KillAccount CheckpointPolicy::account_kill(double elapsed_s,
                                                             double work_s) const {
  MPHPC_EXPECTS(elapsed_s >= 0.0 && work_s > 0.0);
  KillAccount account;
  if (!enabled()) {
    account.lost_work_s = elapsed_s;  // restart-from-zero: everything is lost
    return account;
  }
  const long long total = checkpoints_during(work_s);
  // The attempt alternates `interval` of work with `overhead` of writing;
  // checkpoint j completes at wall offset j * (interval + overhead).
  const double cycle = interval_s + overhead_s;
  auto done = static_cast<long long>(std::floor(elapsed_s / cycle));
  while (done > 0 && static_cast<double>(done) * cycle > elapsed_s) --done;
  if (done > total) done = total;
  const double into_cycle = elapsed_s - static_cast<double>(done) * cycle;
  account.checkpoints = done;
  account.saved_work_s = static_cast<double>(done) * interval_s;
  account.overhead_paid_s = static_cast<double>(done) * overhead_s;
  if (done >= total) {
    // Past the last write: the remainder is the final uncheckpointed
    // stretch of work.
    account.lost_work_s = into_cycle;
  } else if (into_cycle <= interval_s) {
    account.lost_work_s = into_cycle;  // mid-work, nothing of it saved yet
  } else {
    // Mid-write: the full interval being written is not yet durable, and
    // the partial write counts as overhead.
    account.lost_work_s = interval_s;
    account.overhead_paid_s += into_cycle - interval_s;
  }
  return account;
}

void PerAppCheckpointPlanner::set(const std::string& app,
                                  const CheckpointPolicy& policy) {
  MPHPC_EXPECTS(policy.interval_s >= 0.0 && policy.overhead_s >= 0.0);
  per_app_[app] = policy;
}

CheckpointPolicy PerAppCheckpointPlanner::policy_for(const Job& job,
                                                     double now_s) {
  MPHPC_EXPECTS(now_s >= 0.0);
  const auto it = per_app_.find(job.app);
  return it == per_app_.end() ? fallback_ : it->second;
}

AdaptiveYoungDalyPlanner::AdaptiveYoungDalyPlanner(double overhead_s,
                                                   double prior_mtbf_s,
                                                   double prior_weight)
    : overhead_s_(overhead_s),
      prior_mtbf_s_(prior_mtbf_s),
      prior_weight_(prior_weight) {
  MPHPC_EXPECTS(overhead_s >= 0.0);
  MPHPC_EXPECTS(prior_weight > 0.0);
}

void AdaptiveYoungDalyPlanner::begin(int total_nodes) {
  MPHPC_EXPECTS(total_nodes > 0);
  total_nodes_ = static_cast<double>(total_nodes);
  failures_ = 0;
}

double AdaptiveYoungDalyPlanner::estimated_mtbf_s(double now_s) const {
  // Blend `prior_weight_` pseudo-failures at the prior MTBF with the
  // failures actually observed over the node-time elapsed so far:
  //   MTBF ~ (node_time + prior_weight * prior) / (failures + prior_weight)
  // With no prior and no observations the estimate is +infinity (nothing
  // suggests failures happen), which disables checkpointing.
  const double node_time = total_nodes_ * std::max(now_s, 0.0);
  const double prior_mass =
      prior_mtbf_s_ > 0.0 ? prior_weight_ * prior_mtbf_s_ : 0.0;
  const double prior_count = prior_mtbf_s_ > 0.0 ? prior_weight_ : 0.0;
  const double count = static_cast<double>(failures_) + prior_count;
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  return (node_time + prior_mass) / count;
}

CheckpointPolicy AdaptiveYoungDalyPlanner::policy_for(const Job& job,
                                                      double now_s) {
  (void)job;
  if (overhead_s_ <= 0.0) return {};
  const double mtbf = estimated_mtbf_s(now_s);
  if (!std::isfinite(mtbf) || mtbf <= 0.0) return {};
  return {young_daly_interval(overhead_s_, mtbf), overhead_s_};
}

void AdaptiveYoungDalyPlanner::observe_node_failure(double time_s) {
  MPHPC_EXPECTS(time_s >= 0.0);
  ++failures_;
}

double young_daly_interval(double overhead_s, double mtbf_s) {
  MPHPC_EXPECTS(overhead_s > 0.0 && mtbf_s > 0.0);
  return std::sqrt(2.0 * overhead_s * mtbf_s);
}

double trace_node_mtbf_s(const FaultTrace& trace,
                         const std::vector<Machine>& machines, double horizon_s) {
  MPHPC_EXPECTS(horizon_s > 0.0);
  long long failures = 0;
  for (const NodeEvent& event : trace.events) {
    if (event.time_s >= horizon_s) break;  // events are time-sorted
    if (event.delta < 0) ++failures;
  }
  long long nodes = 0;
  for (const Machine& m : machines) nodes += m.total_nodes;
  MPHPC_EXPECTS(nodes > 0);
  if (failures == 0) return std::numeric_limits<double>::infinity();
  return horizon_s * static_cast<double>(nodes) / static_cast<double>(failures);
}

}  // namespace mphpc::sched
