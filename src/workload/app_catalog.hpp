// The 20-application suite of the study (paper Table II).
#pragma once

#include <string_view>
#include <vector>

#include "workload/app_signature.hpp"

namespace mphpc::workload {

/// Value-type catalog of the 20 applications used to build the MP-HPC
/// dataset. Eleven applications have GPU support, four are ML/Python
/// workloads, matching the paper's suite composition.
class AppCatalog {
 public:
  /// Builds the default Table II catalog.
  AppCatalog();

  [[nodiscard]] const std::vector<AppSignature>& all() const noexcept { return apps_; }

  [[nodiscard]] std::size_t size() const noexcept { return apps_.size(); }

  /// Lookup by application name; throws mphpc::LookupError if unknown.
  [[nodiscard]] const AppSignature& get(std::string_view name) const;

  /// True if the catalog contains an app with this name.
  [[nodiscard]] bool contains(std::string_view name) const noexcept;

 private:
  std::vector<AppSignature> apps_;
};

}  // namespace mphpc::workload
