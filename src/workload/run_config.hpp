// Run configurations: each (app, input) pair runs at three scales per
// system (paper §V-B) — one core, one full node, and two nodes — with MPI
// rank counts rounded down for apps that require power-of-two or square
// rank counts, and one rank per GPU for offloaded apps.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "arch/architecture.hpp"
#include "workload/app_signature.hpp"

namespace mphpc::workload {

/// The three resource scales every run is executed at.
enum class ScaleClass : std::uint8_t { kOneCore = 0, kOneNode = 1, kTwoNodes = 2 };

inline constexpr std::size_t kNumScaleClasses = 3;

inline constexpr std::array<ScaleClass, kNumScaleClasses> kAllScaleClasses = {
    ScaleClass::kOneCore, ScaleClass::kOneNode, ScaleClass::kTwoNodes};

/// Stable identifier ("1core", "1node", "2node").
[[nodiscard]] std::string_view to_string(ScaleClass s) noexcept;

/// The concrete resources one run uses on one system.
struct RunConfig {
  ScaleClass scale_class = ScaleClass::kOneNode;
  int nodes = 1;  ///< nodes occupied
  int ranks = 1;  ///< MPI ranks
  int cores = 1;  ///< total cores in use (== ranks for our pure-MPI runs)
  int gpus = 0;   ///< total GPU devices in use
  bool uses_gpu = false;  ///< whether the GPU code path (and GPU counters) engage
};

/// Largest power of two <= n (n >= 1).
[[nodiscard]] int round_down_pow2(int n) noexcept;

/// Largest perfect square <= n (n >= 1).
[[nodiscard]] int round_down_square(int n) noexcept;

/// Builds the run configuration for `app` at `scale` on `system`:
///  - one core: 1 rank (plus 1 GPU if the app offloads and the system has GPUs)
///  - one node: one rank per core for CPU runs, one rank per GPU for GPU runs,
///    rounded down to satisfy the app's rank constraint
///  - two nodes: double the one-node resources, again rounded.
[[nodiscard]] RunConfig make_run_config(const AppSignature& app,
                                        const arch::ArchitectureSpec& system,
                                        ScaleClass scale);

}  // namespace mphpc::workload
