#include "workload/app_catalog.hpp"

#include "common/error.hpp"

namespace mphpc::workload {

namespace {

// Signature construction helpers. Each maker fixes the behavioural knobs
// for one application class; values are hand-chosen to reflect the public
// characterisations of these proxy apps (instruction mixes, boundedness,
// scaling behaviour), not fitted to any proprietary data.

AppSignature amg() {
  AppSignature a;
  a.name = "AMG";
  a.description = "Algebraic multigrid solver";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.10, .load = 0.32, .store = 0.10,
               .sp_fp = 0.01, .dp_fp = 0.16, .int_arith = 0.14};
  a.gpu_mix = {.branch = 0.06, .load = 0.34, .store = 0.11,
               .sp_fp = 0.01, .dp_fp = 0.20, .int_arith = 0.12};
  a.base_ginsts = 40.0;
  a.work_exponent = 1.1;
  a.working_set_mib = 600.0;
  a.ws_exponent = 1.0;
  a.locality = 0.45;  // sparse, irregular accesses
  a.vector_efficiency = 0.35;
  a.branch_entropy = 0.40;
  a.gpu_offload = 0.85;
  a.gpu_saturation = 0.55;  // bandwidth-bound, kernels don't fill compute
  a.serial_fraction = 0.025;
  a.imbalance = 0.06;
  a.comm_mib_per_ginst = 4.0;
  a.comm_latency_bound = 0.5;  // many small halo messages on coarse grids
  a.io_read_mib = 80.0;
  a.io_write_mib = 40.0;
  a.noise_sigma = 0.015;
  return a;
}

AppSignature candle() {
  AppSignature a;
  a.name = "CANDLE";
  a.description = "Deep learning models for cancer studies";
  a.gpu_support = true;
  a.python_stack = true;
  a.cpu_mix = {.branch = 0.07, .load = 0.28, .store = 0.12,
               .sp_fp = 0.22, .dp_fp = 0.01, .int_arith = 0.12};
  a.gpu_mix = {.branch = 0.02, .load = 0.26, .store = 0.12,
               .sp_fp = 0.38, .dp_fp = 0.00, .int_arith = 0.08};
  a.base_ginsts = 120.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 2000.0;
  a.ws_exponent = 0.9;
  a.locality = 0.75;  // dense GEMM-dominated
  a.vector_efficiency = 0.85;
  a.branch_entropy = 0.10;
  a.gpu_offload = 0.95;
  a.gpu_saturation = 0.85;
  a.serial_fraction = 0.08;  // Python driver + input pipeline
  a.imbalance = 0.03;
  a.comm_mib_per_ginst = 2.0;
  a.comm_latency_bound = 0.15;  // allreduce, bandwidth bound
  a.io_read_mib = 800.0;  // training data
  a.io_write_mib = 100.0;
  a.io_exponent = 0.8;
  a.noise_sigma = 0.110;  // framework / Python stack variability
  return a;
}

AppSignature comd() {
  AppSignature a;
  a.name = "CoMD";
  a.description = "Molecular dynamics and materials science algorithms";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.09, .load = 0.30, .store = 0.08,
               .sp_fp = 0.02, .dp_fp = 0.20, .int_arith = 0.12};
  a.gpu_mix = {.branch = 0.05, .load = 0.30, .store = 0.08,
               .sp_fp = 0.02, .dp_fp = 0.26, .int_arith = 0.10};
  a.base_ginsts = 60.0;
  a.work_exponent = 1.05;
  a.working_set_mib = 150.0;
  a.ws_exponent = 1.0;
  a.locality = 0.70;  // cell lists give decent locality
  a.vector_efficiency = 0.45;
  a.branch_entropy = 0.30;
  a.gpu_offload = 0.90;
  a.gpu_saturation = 0.70;
  a.serial_fraction = 0.02;
  a.imbalance = 0.05;
  a.comm_mib_per_ginst = 1.5;
  a.comm_latency_bound = 0.4;
  a.io_read_mib = 20.0;
  a.io_write_mib = 60.0;
  a.noise_sigma = 0.013;
  return a;
}

AppSignature cosmoflow() {
  AppSignature a;
  a.name = "CosmoFlow";
  a.description = "3D convolutional neural network for astrophysical studies";
  a.gpu_support = true;
  a.python_stack = true;
  a.cpu_mix = {.branch = 0.06, .load = 0.30, .store = 0.13,
               .sp_fp = 0.24, .dp_fp = 0.00, .int_arith = 0.11};
  a.gpu_mix = {.branch = 0.02, .load = 0.28, .store = 0.13,
               .sp_fp = 0.40, .dp_fp = 0.00, .int_arith = 0.07};
  a.base_ginsts = 160.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 3500.0;
  a.ws_exponent = 1.0;
  a.locality = 0.70;
  a.vector_efficiency = 0.88;
  a.branch_entropy = 0.08;
  a.gpu_offload = 0.95;
  a.gpu_saturation = 0.80;
  a.serial_fraction = 0.09;  // data pipeline on host
  a.imbalance = 0.04;
  a.comm_mib_per_ginst = 2.5;
  a.comm_latency_bound = 0.1;
  a.io_read_mib = 2000.0;  // volumetric training data
  a.io_write_mib = 80.0;
  a.io_exponent = 0.9;
  a.noise_sigma = 0.130;
  return a;
}

AppSignature cradl() {
  AppSignature a;
  a.name = "CRADL";
  a.description = "Multiphysics and ALE hydrodynamics";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.11, .load = 0.31, .store = 0.11,
               .sp_fp = 0.02, .dp_fp = 0.15, .int_arith = 0.12};
  a.gpu_mix = {.branch = 0.08, .load = 0.32, .store = 0.12,
               .sp_fp = 0.02, .dp_fp = 0.18, .int_arith = 0.10};
  a.base_ginsts = 90.0;
  a.work_exponent = 1.1;
  a.working_set_mib = 900.0;
  a.ws_exponent = 1.0;
  a.locality = 0.55;
  a.vector_efficiency = 0.40;
  a.branch_entropy = 0.45;  // material interfaces, remap logic
  a.gpu_offload = 0.70;
  a.gpu_saturation = 0.50;
  a.serial_fraction = 0.03;
  a.imbalance = 0.10;  // ALE mesh motion imbalances
  a.comm_mib_per_ginst = 3.0;
  a.comm_latency_bound = 0.45;
  a.io_read_mib = 100.0;
  a.io_write_mib = 400.0;  // dump-heavy
  a.io_exponent = 0.8;
  a.noise_sigma = 0.020;
  return a;
}

AppSignature ember() {
  AppSignature a;
  a.name = "Ember";
  a.description = "Communication patterns";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.12, .load = 0.26, .store = 0.09,
               .sp_fp = 0.00, .dp_fp = 0.04, .int_arith = 0.22};
  a.base_ginsts = 4.0;
  a.work_exponent = 0.9;
  a.working_set_mib = 40.0;
  a.ws_exponent = 0.8;
  a.locality = 0.80;  // small buffers
  a.vector_efficiency = 0.15;
  a.branch_entropy = 0.20;
  a.serial_fraction = 0.01;
  a.imbalance = 0.02;
  a.comm_mib_per_ginst = 800.0;  // communication benchmark
  a.comm_latency_bound = 0.7;
  a.io_read_mib = 1.0;
  a.io_write_mib = 2.0;
  a.noise_sigma = 0.025;  // network-dominated runs vary more
  return a;
}

AppSignature examinimd() {
  AppSignature a;
  a.name = "ExaMiniMD";
  a.description = "Molecular dynamics simulations";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.08, .load = 0.31, .store = 0.08,
               .sp_fp = 0.03, .dp_fp = 0.21, .int_arith = 0.11};
  a.gpu_mix = {.branch = 0.04, .load = 0.31, .store = 0.08,
               .sp_fp = 0.03, .dp_fp = 0.27, .int_arith = 0.09};
  a.base_ginsts = 70.0;
  a.work_exponent = 1.05;
  a.working_set_mib = 200.0;
  a.ws_exponent = 1.0;
  a.locality = 0.68;
  a.vector_efficiency = 0.55;  // Kokkos kernels vectorize better
  a.branch_entropy = 0.28;
  a.gpu_offload = 0.92;
  a.gpu_saturation = 0.75;
  a.serial_fraction = 0.02;
  a.imbalance = 0.05;
  a.comm_mib_per_ginst = 1.2;
  a.comm_latency_bound = 0.4;
  a.io_read_mib = 15.0;
  a.io_write_mib = 50.0;
  a.noise_sigma = 0.013;
  return a;
}

AppSignature laghos() {
  AppSignature a;
  a.name = "Laghos";
  a.description = "FEM for compressible gas dynamics";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.07, .load = 0.30, .store = 0.10,
               .sp_fp = 0.01, .dp_fp = 0.24, .int_arith = 0.10};
  a.gpu_mix = {.branch = 0.04, .load = 0.29, .store = 0.10,
               .sp_fp = 0.01, .dp_fp = 0.30, .int_arith = 0.08};
  a.base_ginsts = 110.0;
  a.work_exponent = 1.15;
  a.working_set_mib = 500.0;
  a.ws_exponent = 1.0;
  a.locality = 0.65;  // dense element matrices, partial assembly
  a.vector_efficiency = 0.60;
  a.branch_entropy = 0.18;
  a.gpu_offload = 0.88;
  a.gpu_saturation = 0.72;
  a.serial_fraction = 0.025;
  a.imbalance = 0.04;
  a.comm_mib_per_ginst = 2.0;
  a.comm_latency_bound = 0.35;
  a.io_read_mib = 40.0;
  a.io_write_mib = 120.0;
  a.noise_sigma = 0.015;
  return a;
}

AppSignature minife() {
  AppSignature a;
  a.name = "miniFE";
  a.description = "Unstructured implicit FEM codes";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.08, .load = 0.33, .store = 0.09,
               .sp_fp = 0.01, .dp_fp = 0.17, .int_arith = 0.13};
  a.gpu_mix = {.branch = 0.05, .load = 0.34, .store = 0.09,
               .sp_fp = 0.01, .dp_fp = 0.21, .int_arith = 0.11};
  a.base_ginsts = 50.0;
  a.work_exponent = 1.1;
  a.working_set_mib = 700.0;
  a.ws_exponent = 1.0;
  a.locality = 0.40;  // SpMV-dominated CG solve
  a.vector_efficiency = 0.30;
  a.branch_entropy = 0.25;
  a.gpu_offload = 0.85;
  a.gpu_saturation = 0.60;
  a.serial_fraction = 0.02;
  a.imbalance = 0.03;
  a.comm_mib_per_ginst = 2.5;
  a.comm_latency_bound = 0.5;  // dot products -> allreduce latency
  a.io_read_mib = 10.0;
  a.io_write_mib = 20.0;
  a.noise_sigma = 0.013;
  return a;
}

AppSignature minigan() {
  AppSignature a;
  a.name = "miniGAN";
  a.description = "Generative adversarial neural network training";
  a.gpu_support = true;
  a.python_stack = true;
  a.cpu_mix = {.branch = 0.06, .load = 0.29, .store = 0.13,
               .sp_fp = 0.23, .dp_fp = 0.00, .int_arith = 0.11};
  a.gpu_mix = {.branch = 0.02, .load = 0.27, .store = 0.13,
               .sp_fp = 0.39, .dp_fp = 0.00, .int_arith = 0.07};
  a.base_ginsts = 100.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 1500.0;
  a.ws_exponent = 0.9;
  a.locality = 0.72;
  a.vector_efficiency = 0.85;
  a.branch_entropy = 0.10;
  a.gpu_offload = 0.93;
  a.gpu_saturation = 0.78;
  a.serial_fraction = 0.08;
  a.imbalance = 0.04;
  a.comm_mib_per_ginst = 2.2;
  a.comm_latency_bound = 0.12;
  a.io_read_mib = 500.0;
  a.io_write_mib = 150.0;
  a.io_exponent = 0.8;
  a.noise_sigma = 0.120;
  return a;
}

AppSignature miniqmc() {
  AppSignature a;
  a.name = "miniQMC";
  a.description = "Real space quantum Monte Carlo";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.09, .load = 0.29, .store = 0.09,
               .sp_fp = 0.06, .dp_fp = 0.18, .int_arith = 0.12};
  a.base_ginsts = 80.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 350.0;
  a.ws_exponent = 0.9;
  a.locality = 0.60;
  a.vector_efficiency = 0.50;
  a.branch_entropy = 0.35;  // stochastic acceptance branches
  a.serial_fraction = 0.005;
  a.imbalance = 0.02;  // embarrassingly parallel walkers
  a.comm_mib_per_ginst = 0.3;
  a.comm_latency_bound = 0.3;
  a.io_read_mib = 30.0;
  a.io_write_mib = 30.0;
  a.noise_sigma = 0.015;
  return a;
}

AppSignature minitri() {
  AppSignature a;
  a.name = "miniTri";
  a.description = "Triangle-based graph analytics (Monte Carlo algorithms)";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.15, .load = 0.34, .store = 0.07,
               .sp_fp = 0.00, .dp_fp = 0.02, .int_arith = 0.24};
  a.base_ginsts = 30.0;
  a.work_exponent = 1.2;
  a.working_set_mib = 800.0;
  a.ws_exponent = 1.1;
  a.locality = 0.25;  // pointer-chasing over graph structure
  a.vector_efficiency = 0.05;
  a.branch_entropy = 0.60;
  a.serial_fraction = 0.03;
  a.imbalance = 0.15;  // power-law degree imbalance
  a.comm_mib_per_ginst = 5.0;
  a.comm_latency_bound = 0.6;
  a.io_read_mib = 200.0;
  a.io_write_mib = 5.0;
  a.noise_sigma = 0.020;
  return a;
}

AppSignature minivite() {
  AppSignature a;
  a.name = "miniVite";
  a.description = "Graph community detection";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.14, .load = 0.35, .store = 0.08,
               .sp_fp = 0.00, .dp_fp = 0.05, .int_arith = 0.21};
  a.base_ginsts = 35.0;
  a.work_exponent = 1.15;
  a.working_set_mib = 1000.0;
  a.ws_exponent = 1.05;
  a.locality = 0.22;
  a.vector_efficiency = 0.05;
  a.branch_entropy = 0.55;
  a.serial_fraction = 0.025;
  a.imbalance = 0.12;
  a.comm_mib_per_ginst = 6.0;
  a.comm_latency_bound = 0.55;
  a.io_read_mib = 300.0;
  a.io_write_mib = 10.0;
  a.noise_sigma = 0.022;
  return a;
}

AppSignature deepcam() {
  AppSignature a;
  a.name = "DeepCam";
  a.description = "Climate segmentation benchmark";
  a.gpu_support = true;
  a.python_stack = true;
  a.cpu_mix = {.branch = 0.06, .load = 0.30, .store = 0.13,
               .sp_fp = 0.25, .dp_fp = 0.00, .int_arith = 0.10};
  a.gpu_mix = {.branch = 0.02, .load = 0.28, .store = 0.13,
               .sp_fp = 0.41, .dp_fp = 0.00, .int_arith = 0.06};
  a.base_ginsts = 200.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 5000.0;
  a.ws_exponent = 1.0;
  a.locality = 0.68;
  a.vector_efficiency = 0.88;
  a.branch_entropy = 0.08;
  a.gpu_offload = 0.96;
  a.gpu_saturation = 0.82;
  a.serial_fraction = 0.10;  // heavy input pipeline
  a.imbalance = 0.05;
  a.comm_mib_per_ginst = 3.0;
  a.comm_latency_bound = 0.1;
  a.io_read_mib = 4000.0;
  a.io_write_mib = 200.0;
  a.io_exponent = 0.95;
  a.noise_sigma = 0.140;
  return a;
}

AppSignature nekbone() {
  AppSignature a;
  a.name = "Nekbone";
  a.description = "Navier-Stokes solver (spectral element kernels)";
  a.gpu_support = false;
  a.rank_constraint = RankConstraint::kPowerOfTwo;
  a.cpu_mix = {.branch = 0.05, .load = 0.28, .store = 0.09,
               .sp_fp = 0.01, .dp_fp = 0.30, .int_arith = 0.09};
  a.base_ginsts = 100.0;
  a.work_exponent = 1.1;
  a.working_set_mib = 300.0;
  a.ws_exponent = 1.0;
  a.locality = 0.78;  // small dense element tensors stay in cache
  a.vector_efficiency = 0.75;
  a.branch_entropy = 0.10;
  a.serial_fraction = 0.008;
  a.imbalance = 0.02;
  a.comm_mib_per_ginst = 1.8;
  a.comm_latency_bound = 0.5;
  a.io_read_mib = 5.0;
  a.io_write_mib = 10.0;
  a.noise_sigma = 0.010;
  return a;
}

AppSignature picsarlite() {
  AppSignature a;
  a.name = "PICSARLite";
  a.description = "Particle-in-Cell simulation";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.09, .load = 0.31, .store = 0.12,
               .sp_fp = 0.02, .dp_fp = 0.19, .int_arith = 0.12};
  a.base_ginsts = 85.0;
  a.work_exponent = 1.05;
  a.working_set_mib = 1200.0;
  a.ws_exponent = 1.0;
  a.locality = 0.50;  // particle scatter/gather
  a.vector_efficiency = 0.40;
  a.branch_entropy = 0.32;
  a.serial_fraction = 0.012;
  a.imbalance = 0.12;  // particle clustering
  a.comm_mib_per_ginst = 2.2;
  a.comm_latency_bound = 0.4;
  a.io_read_mib = 50.0;
  a.io_write_mib = 150.0;
  a.io_exponent = 0.7;
  a.noise_sigma = 0.018;
  return a;
}

AppSignature sw4lite() {
  AppSignature a;
  a.name = "SW4lite";
  a.description = "Seismic wave simulation";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.04, .load = 0.33, .store = 0.12,
               .sp_fp = 0.01, .dp_fp = 0.26, .int_arith = 0.09};
  a.base_ginsts = 130.0;
  a.work_exponent = 1.2;
  a.working_set_mib = 1500.0;
  a.ws_exponent = 1.0;
  a.locality = 0.58;  // stencil streams, partial reuse
  a.vector_efficiency = 0.80;
  a.branch_entropy = 0.06;
  a.serial_fraction = 0.006;
  a.imbalance = 0.03;
  a.comm_mib_per_ginst = 2.8;
  a.comm_latency_bound = 0.25;  // halo exchange, bandwidth bound
  a.io_read_mib = 60.0;
  a.io_write_mib = 250.0;
  a.io_exponent = 0.8;
  a.noise_sigma = 0.013;
  return a;
}

AppSignature swfft() {
  AppSignature a;
  a.name = "SWFFT";
  a.description = "Distributed-memory parallel 3D FFT";
  a.gpu_support = false;
  a.rank_constraint = RankConstraint::kPowerOfTwo;
  a.cpu_mix = {.branch = 0.05, .load = 0.30, .store = 0.14,
               .sp_fp = 0.02, .dp_fp = 0.24, .int_arith = 0.10};
  a.base_ginsts = 45.0;
  a.work_exponent = 1.15;
  a.working_set_mib = 2000.0;
  a.ws_exponent = 1.0;
  a.locality = 0.45;  // strided butterfly accesses
  a.vector_efficiency = 0.70;
  a.branch_entropy = 0.08;
  a.serial_fraction = 0.01;
  a.imbalance = 0.02;
  a.comm_mib_per_ginst = 12.0;  // all-to-all transposes
  a.comm_latency_bound = 0.2;
  a.io_read_mib = 20.0;
  a.io_write_mib = 20.0;
  a.noise_sigma = 0.020;
  return a;
}

AppSignature thornado_mini() {
  AppSignature a;
  a.name = "Thornado-mini";
  a.description = "Radiative transfer solver in multi-group two-moment approximation";
  a.gpu_support = false;
  a.cpu_mix = {.branch = 0.06, .load = 0.29, .store = 0.10,
               .sp_fp = 0.01, .dp_fp = 0.28, .int_arith = 0.09};
  a.base_ginsts = 95.0;
  a.work_exponent = 1.1;
  a.working_set_mib = 400.0;
  a.ws_exponent = 0.95;
  a.locality = 0.72;  // dense small-block solves per zone
  a.vector_efficiency = 0.65;
  a.branch_entropy = 0.12;
  a.serial_fraction = 0.01;
  a.imbalance = 0.04;
  a.comm_mib_per_ginst = 1.5;
  a.comm_latency_bound = 0.35;
  a.io_read_mib = 30.0;
  a.io_write_mib = 80.0;
  a.noise_sigma = 0.013;
  return a;
}

AppSignature xsbench() {
  AppSignature a;
  a.name = "XSBench";
  a.description = "Monte Carlo neutron transport cross-section lookups";
  a.gpu_support = true;
  a.cpu_mix = {.branch = 0.12, .load = 0.36, .store = 0.05,
               .sp_fp = 0.01, .dp_fp = 0.10, .int_arith = 0.18};
  a.gpu_mix = {.branch = 0.08, .load = 0.38, .store = 0.05,
               .sp_fp = 0.01, .dp_fp = 0.12, .int_arith = 0.16};
  a.base_ginsts = 55.0;
  a.work_exponent = 1.0;
  a.working_set_mib = 5500.0;  // cross-section tables exceed caches
  a.ws_exponent = 0.9;
  a.locality = 0.12;  // random lookups, latency bound
  a.vector_efficiency = 0.10;
  a.branch_entropy = 0.50;
  a.gpu_offload = 0.90;
  a.gpu_saturation = 0.45;  // memory-latency limited on GPU too
  a.serial_fraction = 0.015;
  a.imbalance = 0.02;
  a.comm_mib_per_ginst = 0.2;
  a.comm_latency_bound = 0.3;
  a.io_read_mib = 250.0;  // cross-section data load
  a.io_write_mib = 2.0;
  a.noise_sigma = 0.015;
  return a;
}

}  // namespace

AppCatalog::AppCatalog()
    : apps_{amg(),       candle(),     comd(),      cosmoflow(),  cradl(),
            ember(),     examinimd(),  laghos(),    minife(),     minigan(),
            miniqmc(),   minitri(),    minivite(),  deepcam(),    nekbone(),
            picsarlite(), sw4lite(),   swfft(),     thornado_mini(), xsbench()} {}

const AppSignature& AppCatalog::get(std::string_view name) const {
  for (const auto& app : apps_) {
    if (app.name == name) return app;
  }
  throw LookupError("unknown application: '" + std::string(name) + "'");
}

bool AppCatalog::contains(std::string_view name) const noexcept {
  for (const auto& app : apps_) {
    if (app.name == name) return true;
  }
  return false;
}

}  // namespace mphpc::workload
