// Per-application input problems.
//
// Each application is paired with many input configurations (problem sizes
// and parameter settings). An input both scales the amount of work and
// perturbs the behavioural signature (different problems stress different
// code paths), which is what gives the dataset its spread in counter space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/app_signature.hpp"

namespace mphpc::workload {

/// One (application, input problem) pair — the unit an RPV is defined over.
struct InputConfig {
  std::string app;         ///< application name (catalog key)
  int index = 0;           ///< input id within the application
  double scale = 1.0;      ///< problem-size parameter (work multiplier)
  std::uint64_t seed = 0;  ///< derived seed for behavioural perturbation
  std::string cli;         ///< synthetic command-line string, for display

  /// Stable identifier, e.g. "CoMD/i07".
  [[nodiscard]] std::string id() const;
};

/// Generates `count` deterministic inputs for `app`: problem sizes are
/// log-spaced over roughly a 16x range with per-input jitter, and each
/// input carries a seed that perturbs the app signature (see
/// effective_signature).
[[nodiscard]] std::vector<InputConfig> make_inputs(const AppSignature& app,
                                                   int count, std::uint64_t base_seed);

/// Applies the input's behavioural perturbation to the base signature:
/// instruction-mix classes shift by up to ~±20% relative, locality /
/// branch entropy / communication intensity jitter, all deterministically
/// from input.seed. The returned signature is what the simulator executes.
[[nodiscard]] AppSignature effective_signature(const AppSignature& base,
                                               const InputConfig& input);

}  // namespace mphpc::workload
