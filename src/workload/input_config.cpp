#include "workload/input_config.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/distributions.hpp"
#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc::workload {

std::string InputConfig::id() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "/i%02d", index);
  return app + buf;
}

std::vector<InputConfig> make_inputs(const AppSignature& app, int count,
                                     std::uint64_t base_seed) {
  MPHPC_EXPECTS(count > 0);
  std::vector<InputConfig> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    InputConfig in;
    in.app = app.name;
    in.index = i;
    in.seed = derive_seed(base_seed, app.name, "input", static_cast<std::uint64_t>(i));
    Rng rng(in.seed);
    // Log-spaced sizes over a 4x range with multiplicative jitter so
    // inputs don't fall on an exact grid. Proxy-app default problems are
    // sized for single-node runs, so the sweep stays in that regime.
    const double t = count > 1 ? static_cast<double>(i) / (count - 1) : 0.5;
    const double base_scale = 0.6 * std::pow(4.0, t);
    in.scale = base_scale * lognormal_factor(rng, 0.12);
    char cli[64];
    std::snprintf(cli, sizeof cli, "--problem %d --size %.3f", i, in.scale);
    in.cli = cli;
    inputs.push_back(std::move(in));
  }
  return inputs;
}

namespace {

// Multiplies v by a factor in [1-rel, 1+rel] drawn from rng, clamped to
// [lo, hi].
double jitter(Rng& rng, double v, double rel, double lo, double hi) {
  return std::clamp(v * (1.0 + rel * (2.0 * rng.uniform() - 1.0)), lo, hi);
}

void perturb_mix(Rng& rng, InstructionMix& mix) {
  // Branch behaviour varies strongly with the input problem (mesh shape,
  // table sizes, convergence paths), more than the other classes do.
  mix.branch = jitter(rng, mix.branch, 0.45, 0.0, 0.30);
  mix.load = jitter(rng, mix.load, 0.12, 0.0, 0.45);
  mix.store = jitter(rng, mix.store, 0.15, 0.0, 0.25);
  mix.sp_fp = jitter(rng, mix.sp_fp, 0.20, 0.0, 0.50);
  mix.dp_fp = jitter(rng, mix.dp_fp, 0.20, 0.0, 0.50);
  mix.int_arith = jitter(rng, mix.int_arith, 0.15, 0.0, 0.40);
  // Renormalize if the perturbation pushed the classes past 100%.
  const double s = mix.sum();
  if (s > 0.95) {
    const double f = 0.95 / s;
    mix.branch *= f;
    mix.load *= f;
    mix.store *= f;
    mix.sp_fp *= f;
    mix.dp_fp *= f;
    mix.int_arith *= f;
  }
}

}  // namespace

AppSignature effective_signature(const AppSignature& base, const InputConfig& input) {
  MPHPC_EXPECTS(base.name == input.app);
  AppSignature sig = base;
  Rng rng(derive_seed(input.seed, "signature"));
  perturb_mix(rng, sig.cpu_mix);
  perturb_mix(rng, sig.gpu_mix);
  sig.locality = jitter(rng, sig.locality, 0.15, 0.02, 0.98);
  sig.branch_entropy = jitter(rng, sig.branch_entropy, 0.10, 0.01, 0.95);
  sig.vector_efficiency = jitter(rng, sig.vector_efficiency, 0.15, 0.02, 0.95);
  sig.comm_mib_per_ginst = jitter(rng, sig.comm_mib_per_ginst, 0.25, 0.0, 1e3);
  sig.imbalance = jitter(rng, sig.imbalance, 0.30, 0.0, 0.5);
  // I/O volume and memory footprint depend heavily on the input problem's
  // content, not just its size.
  sig.io_read_mib = jitter(rng, sig.io_read_mib, 0.50, 0.0, 1e5);
  sig.io_write_mib = jitter(rng, sig.io_write_mib, 0.50, 0.0, 1e5);
  sig.working_set_mib = jitter(rng, sig.working_set_mib, 0.30, 1.0, 1e5);
  if (sig.gpu_support) {
    sig.gpu_saturation = jitter(rng, sig.gpu_saturation, 0.12, 0.05, 0.95);
    sig.gpu_offload = jitter(rng, sig.gpu_offload, 0.05, 0.1, 0.99);
  }
  MPHPC_ENSURES(sig.cpu_mix.valid() && sig.gpu_mix.valid());
  return sig;
}

}  // namespace mphpc::workload
