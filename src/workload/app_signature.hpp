// Behavioural application signatures (paper Table II substitute).
//
// The paper profiles 20 ECP/E4S proxy applications. The ML model never
// sees source code — only hardware counters — so for reproduction each
// application is replaced by a *signature*: a compact behavioural model
// (instruction mix, locality, vectorizability, GPU suitability, scaling,
// communication and I/O behaviour) from which the simulator derives both
// execution times and counters. Signatures are chosen per application
// class (MD, FEM, FFT, ML training, graph analytics, ...) so the dataset
// has the qualitative diversity the paper's model learns from.
#pragma once

#include <cstdint>
#include <string>

namespace mphpc::workload {

/// Fractions of total executed instructions per class. The remainder
/// (1 - sum of the six classes) is address arithmetic / moves / other.
struct InstructionMix {
  double branch = 0.0;
  double load = 0.0;
  double store = 0.0;
  double sp_fp = 0.0;
  double dp_fp = 0.0;
  double int_arith = 0.0;

  [[nodiscard]] double sum() const noexcept {
    return branch + load + store + sp_fp + dp_fp + int_arith;
  }
  [[nodiscard]] double other() const noexcept { return 1.0 - sum(); }
  [[nodiscard]] bool valid() const noexcept {
    const auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
    return in01(branch) && in01(load) && in01(store) && in01(sp_fp) &&
           in01(dp_fp) && in01(int_arith) && sum() <= 1.0;
  }
};

/// MPI rank-count constraints some proxy apps impose (paper §V-B).
enum class RankConstraint : std::uint8_t { kNone = 0, kPowerOfTwo, kSquare };

/// The full behavioural description of one application.
struct AppSignature {
  std::string name;
  std::string description;
  bool gpu_support = false;   ///< has a GPU code path (11 of 20 apps)
  bool python_stack = false;  ///< ML/Python-framework app: noisier runs (Fig. 5)
  RankConstraint rank_constraint = RankConstraint::kNone;

  InstructionMix cpu_mix;  ///< instruction mix of the CPU code path
  InstructionMix gpu_mix;  ///< instruction mix of the offloaded kernels

  // Work model: total instructions = base_ginsts * scale^work_exponent (1e9).
  double base_ginsts = 10.0;
  double work_exponent = 1.0;

  // Memory model: per-process working set = working_set_mib * scale^ws_exponent.
  double working_set_mib = 100.0;
  double ws_exponent = 1.0;
  double locality = 0.7;  ///< 0..1, higher = more cache-friendly access stream

  double vector_efficiency = 0.6;  ///< fraction of FP work that vectorizes
  double branch_entropy = 0.3;     ///< 0..1, how unpredictable branches are

  // GPU suitability (used only when gpu_support and the system has GPUs).
  double gpu_offload = 0.0;     ///< fraction of work offloaded to the device
  double gpu_saturation = 0.0;  ///< 0..1, how well kernels fill the device

  // Parallel scaling.
  double serial_fraction = 0.02;  ///< Amdahl serial fraction
  double imbalance = 0.05;        ///< load imbalance overhead per doubling

  // Communication: MiB exchanged per rank per giga-instruction of work.
  double comm_mib_per_ginst = 1.0;
  double comm_latency_bound = 0.3;  ///< 0..1 weight of latency- vs bw-bound comm

  // I/O per run at scale 1 (grows with scale^io_exponent).
  double io_read_mib = 50.0;
  double io_write_mib = 20.0;
  double io_exponent = 0.5;

  double noise_sigma = 0.03;  ///< app-specific log-space runtime noise
};

}  // namespace mphpc::workload
