#include "workload/run_config.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mphpc::workload {

std::string_view to_string(ScaleClass s) noexcept {
  switch (s) {
    case ScaleClass::kOneCore: return "1core";
    case ScaleClass::kOneNode: return "1node";
    case ScaleClass::kTwoNodes: return "2node";
  }
  return "unknown";
}

int round_down_pow2(int n) noexcept {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

int round_down_square(int n) noexcept {
  const int r = static_cast<int>(std::sqrt(static_cast<double>(n)));
  return r * r;
}

namespace {

int apply_constraint(int ranks, RankConstraint constraint) noexcept {
  switch (constraint) {
    case RankConstraint::kNone: return ranks;
    case RankConstraint::kPowerOfTwo: return round_down_pow2(ranks);
    case RankConstraint::kSquare: return round_down_square(ranks);
  }
  return ranks;
}

}  // namespace

RunConfig make_run_config(const AppSignature& app,
                          const arch::ArchitectureSpec& system, ScaleClass scale) {
  MPHPC_EXPECTS(system.cpu.cores_per_node > 0);
  RunConfig rc;
  rc.scale_class = scale;
  rc.uses_gpu = app.gpu_support && system.has_gpu();

  const int nodes = scale == ScaleClass::kTwoNodes ? 2 : 1;
  rc.nodes = nodes;

  if (scale == ScaleClass::kOneCore) {
    rc.ranks = 1;
    rc.cores = 1;
    rc.gpus = rc.uses_gpu ? 1 : 0;
    return rc;
  }

  if (rc.uses_gpu) {
    // GPU runs launch one rank per device, the standard proxy-app layout.
    const int gpus = system.gpu->per_node * nodes;
    rc.ranks = apply_constraint(gpus, app.rank_constraint);
    rc.gpus = rc.ranks;
    rc.cores = rc.ranks;
  } else {
    const int cores = system.cpu.cores_per_node * nodes;
    rc.ranks = apply_constraint(cores, app.rank_constraint);
    rc.gpus = 0;
    rc.cores = rc.ranks;
  }
  MPHPC_ENSURES(rc.ranks >= 1);
  return rc;
}

}  // namespace mphpc::workload
