#include "prof/cct_builder.hpp"

#include <array>

#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc::prof {

std::vector<std::string> kernel_names(std::string_view app_name) {
  struct Entry {
    std::string_view app;
    std::array<std::string_view, 3> kernels;
  };
  static constexpr Entry kTable[] = {
      {"AMG", {"hypre_BoomerAMGSolve", "hypre_CSRMatvec", "hypre_Relax"}},
      {"CANDLE", {"dense_forward", "dense_backward", "optimizer_step"}},
      {"CoMD", {"computeForceLJ", "updateLinkCells", "advanceVelocity"}},
      {"CosmoFlow", {"conv3d_forward", "conv3d_backward", "batchnorm_update"}},
      {"CRADL", {"lagrange_step", "remap_advect", "eos_update"}},
      {"Ember", {"halo3d_pack", "sweep3d_recv", "incast_send"}},
      {"ExaMiniMD", {"force_lj_compute", "neighbor_build", "integrate_verlet"}},
      {"Laghos", {"mass_pa_mult", "force_pa_mult", "qupdate"}},
      {"miniFE", {"cg_matvec", "cg_dot", "waxpby"}},
      {"miniGAN", {"generator_forward", "discriminator_forward", "gan_backward"}},
      {"miniQMC", {"spline_eval", "jastrow_ratio", "det_update"}},
      {"miniTri", {"set_intersect", "triangle_count", "degree_scan"}},
      {"miniVite", {"louvain_iterate", "community_update", "modularity_reduce"}},
      {"DeepCam", {"segnet_forward", "segnet_backward", "loss_reduce"}},
      {"Nekbone", {"ax_local", "glsc3_dot", "add2s2"}},
      {"PICSARLite", {"particle_push", "current_deposit", "field_gather"}},
      {"SW4lite", {"rhs4_stencil", "supergrid_damp", "boundary_update"}},
      {"SWFFT", {"fft_z_pencil", "fft_transpose", "fft_xy_pencil"}},
      {"Thornado-mini", {"moment_solve", "opacity_update", "flux_limiter"}},
      {"XSBench", {"xs_lookup", "grid_search", "macro_accumulate"}},
  };
  for (const Entry& e : kTable) {
    if (e.app == app_name) {
      return {std::string(e.kernels[0]), std::string(e.kernels[1]),
              std::string(e.kernels[2])};
    }
  }
  return {"kernel_a", "kernel_b", "kernel_c"};
}

namespace {

using arch::CounterKind;

/// Adds `share` of every counter in `total` (except the I/O byte counters,
/// which are attributed to the I/O frames explicitly) to node `index`.
void assign_counters(CctNode& node, const sim::CounterValues& total, double share) {
  for (std::size_t k = 0; k < total.size(); ++k) {
    const auto kind = static_cast<CounterKind>(k);
    if (kind == CounterKind::kIoBytesRead || kind == CounterKind::kIoBytesWritten) {
      continue;
    }
    node.counters[k] += total[k] * share;
  }
}

}  // namespace

CallingContextTree build_cct(const sim::RunProfile& profile,
                             const workload::AppSignature& app) {
  MPHPC_EXPECTS(profile.app == app.name);
  CallingContextTree tree;
  const sim::TimeBreakdown& tb = profile.breakdown;
  // Distribute the measured wall time with the breakdown's proportions.
  const double time_scale = tb.total_s() > 0.0 ? profile.time_s / tb.total_s() : 1.0;

  Rng rng(derive_seed(fnv1a(profile.app), "cct",
                      static_cast<std::uint64_t>(profile.input_index)));

  // --- I/O frames. ---
  const double io_total = profile.counters[static_cast<std::size_t>(
                              CounterKind::kIoBytesRead)] +
                          profile.counters[static_cast<std::size_t>(
                              CounterKind::kIoBytesWritten)];
  const double read_frac =
      io_total > 0.0 ? profile.counters[static_cast<std::size_t>(
                           CounterKind::kIoBytesRead)] /
                           io_total
                     : 0.5;
  const int read_input = tree.add_child(tree.root(), "read_input", FrameKind::kIo);
  tree.node(read_input).time_s = tb.io_s * read_frac * time_scale;
  tree.node(read_input).counters[static_cast<std::size_t>(CounterKind::kIoBytesRead)] =
      profile.counters[static_cast<std::size_t>(CounterKind::kIoBytesRead)];

  // --- Initialization (the serial/driver portion). ---
  const int initialize = tree.add_child(tree.root(), "initialize", FrameKind::kDriver);
  tree.node(initialize).time_s = tb.serial_s * 0.9 * time_scale;
  assign_counters(tree.node(initialize), profile.counters, 0.04);

  // --- Timestep loop with app-specific kernels. ---
  const int loop = tree.add_child(tree.root(), "timestep_loop", FrameKind::kDriver);
  tree.node(loop).time_s = 0.0;
  assign_counters(tree.node(loop), profile.counters, 0.01);

  // Kernel weights: deterministic, skewed (one dominant kernel).
  const auto kernels = kernel_names(profile.app);
  std::array<double, 3> weights{};
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 0.15 + rng.uniform();
    weight_sum += weights[i];
  }
  for (double& w : weights) w /= weight_sum;

  const double kernel_time =
      (tb.compute_s + tb.memory_s + tb.branch_s + tb.gpu_s + tb.overhead_s) *
      time_scale;
  const double kernel_counter_share = 0.92;  // rest went to driver/comm frames
  const bool gpu_run = profile.device == arch::Device::kGpu;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    if (gpu_run) {
      // Host launch frame over the device kernel, as GPU traces show.
      const int launch =
          tree.add_child(loop, "launch_" + kernels[i], FrameKind::kGpuLaunch);
      tree.node(launch).time_s = tb.overhead_s * weights[i] * time_scale;
      const int device = tree.add_child(launch, kernels[i] + "_device",
                                        FrameKind::kCompute);
      tree.node(device).time_s =
          (kernel_time - tb.overhead_s * time_scale) * weights[i];
      assign_counters(tree.node(device), profile.counters,
                      kernel_counter_share * weights[i]);
    } else {
      const int kernel = tree.add_child(loop, kernels[i], FrameKind::kCompute);
      tree.node(kernel).time_s = kernel_time * weights[i];
      assign_counters(tree.node(kernel), profile.counters,
                      kernel_counter_share * weights[i]);
    }
  }

  // --- Communication frames (only in multi-rank runs). ---
  if (profile.config.ranks > 1) {
    const int exchange =
        tree.add_child(loop, app.comm_latency_bound > 0.5 ? "MPI_Isend" : "MPI_Waitall",
                       FrameKind::kComm);
    tree.node(exchange).time_s = tb.comm_s * 0.7 * time_scale;
    assign_counters(tree.node(exchange), profile.counters, 0.02);
    const int reduce = tree.add_child(loop, "MPI_Allreduce", FrameKind::kComm);
    tree.node(reduce).time_s = tb.comm_s * 0.3 * time_scale;
    assign_counters(tree.node(reduce), profile.counters, 0.01);
  } else {
    // The counter share comm frames would have taken stays on the loop.
    assign_counters(tree.node(loop), profile.counters, 0.03);
  }

  // --- Output + finalize. ---
  const int write_output = tree.add_child(tree.root(), "write_output", FrameKind::kIo);
  tree.node(write_output).time_s = tb.io_s * (1.0 - read_frac) * time_scale;
  tree.node(write_output)
      .counters[static_cast<std::size_t>(CounterKind::kIoBytesWritten)] =
      profile.counters[static_cast<std::size_t>(CounterKind::kIoBytesWritten)];

  const int finalize = tree.add_child(tree.root(), "finalize", FrameKind::kDriver);
  tree.node(finalize).time_s = tb.serial_s * 0.1 * time_scale;
  // The root keeps no time; give finalize the leftover counter share so
  // exclusive counters sum exactly to the profile's totals.
  // Shares so far: 0.04 (init) + 0.01 (loop) + 0.92 (kernels) + 0.03
  // (comm or loop) = 1.00; finalize gets none beyond rounding.
  return tree;
}

}  // namespace mphpc::prof
