#include "prof/dataframe.hpp"

#include <algorithm>
#include <map>

#include "common/contract.hpp"

namespace mphpc::prof {

data::Table to_table(const CallingContextTree& tree) {
  data::Table table;
  const std::size_t n = tree.size();

  std::vector<double> node_idx(n);
  std::vector<double> parent_idx(n);
  std::vector<std::string> names(n);
  std::vector<std::string> kinds(n);
  std::vector<double> depths(n);
  std::vector<double> time_ex(n);
  std::vector<double> time_inc(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CctNode& node = tree.node(static_cast<int>(i));
    node_idx[i] = static_cast<double>(i);
    parent_idx[i] = static_cast<double>(node.parent);
    names[i] = node.name;
    kinds[i] = std::string(to_string(node.kind));
    depths[i] = static_cast<double>(tree.depth(static_cast<int>(i)));
    time_ex[i] = node.time_s;
    time_inc[i] = tree.inclusive_time(static_cast<int>(i));
  }
  table.add_numeric_column("node", std::move(node_idx));
  table.add_numeric_column("parent", std::move(parent_idx));
  table.add_text_column("name", std::move(names));
  table.add_text_column("kind", std::move(kinds));
  table.add_numeric_column("depth", std::move(depths));
  table.add_numeric_column("time_s", std::move(time_ex));
  table.add_numeric_column("time_inc_s", std::move(time_inc));

  for (const arch::CounterKind kind : arch::kAllCounterKinds) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = tree.node(static_cast<int>(i))
                      .counters[static_cast<std::size_t>(kind)];
    }
    table.add_numeric_column(std::string(arch::to_string(kind)), std::move(values));
  }
  return table;
}

CallingContextTree filter_squash(const CallingContextTree& tree,
                                 const std::function<bool(const CctNode&)>& keep) {
  const int n = static_cast<int>(tree.size());
  // Nearest kept ancestor for every node (root is always kept).
  std::vector<int> kept_ancestor(static_cast<std::size_t>(n), -1);
  std::vector<bool> kept(static_cast<std::size_t>(n), false);
  kept[0] = true;

  // Nodes are stored in creation order, so parents precede children.
  for (int i = 1; i < n; ++i) {
    kept[static_cast<std::size_t>(i)] = keep(tree.node(i));
  }
  kept_ancestor[0] = 0;
  for (int i = 1; i < n; ++i) {
    const int parent = tree.node(i).parent;
    kept_ancestor[static_cast<std::size_t>(i)] =
        kept[static_cast<std::size_t>(parent)]
            ? parent
            : kept_ancestor[static_cast<std::size_t>(parent)];
  }

  CallingContextTree out;
  std::vector<int> new_index(static_cast<std::size_t>(n), -1);
  new_index[0] = CallingContextTree::root();
  out.node(CallingContextTree::root()).time_s = tree.node(0).time_s;
  out.node(CallingContextTree::root()).counters = tree.node(0).counters;

  for (int i = 1; i < n; ++i) {
    const CctNode& node = tree.node(i);
    if (kept[static_cast<std::size_t>(i)]) {
      // Parent in the squashed tree: nearest kept ancestor (which may be
      // the direct parent).
      const int ancestor = kept[static_cast<std::size_t>(node.parent)]
                               ? node.parent
                               : kept_ancestor[static_cast<std::size_t>(i)];
      const int mapped = new_index[static_cast<std::size_t>(ancestor)];
      MPHPC_ENSURES(mapped >= 0);
      const int idx = out.add_child(mapped, node.name, node.kind);
      out.node(idx).time_s = node.time_s;
      out.node(idx).counters = node.counters;
      new_index[static_cast<std::size_t>(i)] = idx;
    } else {
      // Fold the removed node's exclusive metrics into its kept ancestor
      // so tree totals are preserved.
      const int ancestor = kept_ancestor[static_cast<std::size_t>(i)];
      const int mapped = new_index[static_cast<std::size_t>(ancestor)];
      MPHPC_ENSURES(mapped >= 0);
      out.node(mapped).time_s += node.time_s;
      for (std::size_t k = 0; k < node.counters.size(); ++k) {
        out.node(mapped).counters[k] += node.counters[k];
      }
    }
  }
  return out;
}

data::Table flat_profile(const CallingContextTree& tree) {
  struct Agg {
    double calls = 0.0;
    double time_s = 0.0;
    sim::CounterValues counters{};
  };
  std::map<std::string, Agg> by_name;
  for (const CctNode& node : tree.nodes()) {
    Agg& agg = by_name[node.name];
    agg.calls += 1.0;
    agg.time_s += node.time_s;
    for (std::size_t k = 0; k < node.counters.size(); ++k) {
      agg.counters[k] += node.counters[k];
    }
  }

  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.time_s > b.second.time_s;
  });

  data::Table table;
  std::vector<std::string> names;
  std::vector<double> calls;
  std::vector<double> times;
  for (const auto& [name, agg] : rows) {
    names.push_back(name);
    calls.push_back(agg.calls);
    times.push_back(agg.time_s);
  }
  table.add_text_column("name", std::move(names));
  table.add_numeric_column("calls", std::move(calls));
  table.add_numeric_column("time_s", std::move(times));
  for (const arch::CounterKind kind : arch::kAllCounterKinds) {
    std::vector<double> values;
    values.reserve(rows.size());
    for (const auto& [name, agg] : rows) {
      values.push_back(agg.counters[static_cast<std::size_t>(kind)]);
    }
    table.add_numeric_column(std::string(arch::to_string(kind)), std::move(values));
  }
  return table;
}

std::vector<std::pair<std::string, double>> top_frames(const CallingContextTree& tree,
                                                       std::size_t n) {
  const data::Table profile = flat_profile(tree);
  std::vector<std::pair<std::string, double>> out;
  const auto& names = profile.text("name");
  const auto& times = profile.numeric("time_s");
  for (std::size_t i = 0; i < profile.num_rows() && i < n; ++i) {
    out.emplace_back(names[i], times[i]);
  }
  return out;
}

std::array<double, 6> time_by_kind(const CallingContextTree& tree) {
  std::array<double, 6> out{};
  for (const CctNode& node : tree.nodes()) {
    out[static_cast<std::size_t>(node.kind)] += node.time_s;
  }
  return out;
}

}  // namespace mphpc::prof
