// Calling-context trees (the HPCToolkit profile format the paper's
// pipeline consumes through Hatchet).
//
// HPCToolkit attributes sampled metrics to nodes of a calling-context
// tree (CCT); Hatchet then exposes the tree as a dataframe for
// programmatic analysis. This module provides both halves for the
// simulated runs: the CCT itself (this header), a builder that
// synthesizes realistic trees from a run profile (cct_builder.hpp), and
// Hatchet-style dataframe operations (dataframe.hpp).
//
// Metrics on a node are EXCLUSIVE (the node's own samples); inclusive
// values are computed on demand by subtree aggregation, mirroring
// HPCToolkit's "(I)" and "(E)" metric variants.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/counter_synth.hpp"

namespace mphpc::prof {

/// Frame classification, used by analyses to attribute time to phases.
enum class FrameKind : std::uint8_t {
  kRoot = 0,
  kDriver,    ///< setup / control logic
  kCompute,   ///< numeric kernels (CPU or device)
  kComm,      ///< MPI communication
  kIo,        ///< filesystem traffic
  kGpuLaunch, ///< host-side kernel launch / staging
};

[[nodiscard]] std::string_view to_string(FrameKind kind) noexcept;

struct CctNode {
  std::string name;                 ///< frame name, e.g. "hypre_CG_solve"
  FrameKind kind = FrameKind::kDriver;
  int parent = -1;                  ///< -1 for the root
  std::vector<int> children;
  double time_s = 0.0;              ///< exclusive wall time attributed here
  sim::CounterValues counters{};    ///< exclusive counter values
};

class CallingContextTree {
 public:
  /// Creates a tree with a root frame called "main".
  CallingContextTree();

  /// Adds a child frame under `parent`; returns the new node index.
  int add_child(int parent, std::string name, FrameKind kind);

  [[nodiscard]] const std::vector<CctNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] CctNode& node(int index) { return nodes_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] const CctNode& node(int index) const {
    return nodes_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] static constexpr int root() noexcept { return 0; }

  /// Depth of a node (root = 0).
  [[nodiscard]] int depth(int index) const;

  /// Maximum node depth in the tree.
  [[nodiscard]] int max_depth() const;

  /// Inclusive wall time of a subtree.
  [[nodiscard]] double inclusive_time(int index) const;

  /// Inclusive value of one counter over a subtree.
  [[nodiscard]] double inclusive_counter(int index, arch::CounterKind kind) const;

  /// All node indices whose frame name equals `name`.
  [[nodiscard]] std::vector<int> find(std::string_view name) const;

  /// All node indices of the given kind.
  [[nodiscard]] std::vector<int> find(FrameKind kind) const;

  /// The hot path: from the root, repeatedly descend into the child with
  /// the largest inclusive time. Returns the node indices root-first.
  [[nodiscard]] std::vector<int> hot_path() const;

  /// Sum of exclusive times over all nodes (== total run time).
  [[nodiscard]] double total_time() const;

  /// Sum of one exclusive counter over all nodes.
  [[nodiscard]] double total_counter(arch::CounterKind kind) const;

  /// Renders an indented tree with times, hpcviewer-style.
  [[nodiscard]] std::string render(int max_display_depth = 8) const;

 private:
  std::vector<CctNode> nodes_;
};

}  // namespace mphpc::prof
