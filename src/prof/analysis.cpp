#include "prof/analysis.hpp"

#include <algorithm>

#include "prof/dataframe.hpp"

namespace mphpc::prof {

PhaseBreakdown phase_breakdown(const CallingContextTree& tree) {
  const auto by_kind = time_by_kind(tree);
  double total = 0.0;
  for (const double t : by_kind) total += t;
  PhaseBreakdown out;
  if (total <= 0.0) return out;
  out.driver = (by_kind[static_cast<std::size_t>(FrameKind::kRoot)] +
                by_kind[static_cast<std::size_t>(FrameKind::kDriver)]) /
               total;
  out.compute = by_kind[static_cast<std::size_t>(FrameKind::kCompute)] / total;
  out.comm = by_kind[static_cast<std::size_t>(FrameKind::kComm)] / total;
  out.io = by_kind[static_cast<std::size_t>(FrameKind::kIo)] / total;
  out.gpu_launch = by_kind[static_cast<std::size_t>(FrameKind::kGpuLaunch)] / total;
  return out;
}

sim::CounterValues aggregate_counters(const CallingContextTree& tree) {
  sim::CounterValues out{};
  for (const CctNode& node : tree.nodes()) {
    for (std::size_t k = 0; k < out.size(); ++k) out[k] += node.counters[k];
  }
  return out;
}

double hot_kernel_share(const CallingContextTree& tree) {
  const double total = tree.total_time();
  if (total <= 0.0) return 0.0;
  double hottest = 0.0;
  for (const CctNode& node : tree.nodes()) {
    if (node.kind == FrameKind::kCompute) hottest = std::max(hottest, node.time_s);
  }
  return hottest / total;
}

}  // namespace mphpc::prof
