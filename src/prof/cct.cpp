#include "prof/cct.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::prof {

std::string_view to_string(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::kRoot: return "root";
    case FrameKind::kDriver: return "driver";
    case FrameKind::kCompute: return "compute";
    case FrameKind::kComm: return "comm";
    case FrameKind::kIo: return "io";
    case FrameKind::kGpuLaunch: return "gpu-launch";
  }
  return "unknown";
}

CallingContextTree::CallingContextTree() {
  CctNode root;
  root.name = "main";
  root.kind = FrameKind::kRoot;
  nodes_.push_back(std::move(root));
}

int CallingContextTree::add_child(int parent, std::string name, FrameKind kind) {
  MPHPC_EXPECTS(parent >= 0 && parent < static_cast<int>(nodes_.size()));
  const int index = static_cast<int>(nodes_.size());
  CctNode node;
  node.name = std::move(name);
  node.kind = kind;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(index);
  return index;
}

int CallingContextTree::depth(int index) const {
  MPHPC_EXPECTS(index >= 0 && index < static_cast<int>(nodes_.size()));
  int d = 0;
  while (nodes_[static_cast<std::size_t>(index)].parent >= 0) {
    index = nodes_[static_cast<std::size_t>(index)].parent;
    ++d;
  }
  return d;
}

int CallingContextTree::max_depth() const {
  int best = 0;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    best = std::max(best, depth(i));
  }
  return best;
}

double CallingContextTree::inclusive_time(int index) const {
  const CctNode& n = node(index);
  double total = n.time_s;
  for (const int child : n.children) total += inclusive_time(child);
  return total;
}

double CallingContextTree::inclusive_counter(int index, arch::CounterKind kind) const {
  const CctNode& n = node(index);
  double total = n.counters[static_cast<std::size_t>(kind)];
  for (const int child : n.children) total += inclusive_counter(child, kind);
  return total;
}

std::vector<int> CallingContextTree::find(std::string_view name) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].name == name) out.push_back(i);
  }
  return out;
}

std::vector<int> CallingContextTree::find(FrameKind kind) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].kind == kind) out.push_back(i);
  }
  return out;
}

std::vector<int> CallingContextTree::hot_path() const {
  std::vector<int> path = {root()};
  int current = root();
  while (!node(current).children.empty()) {
    int best = -1;
    double best_time = -1.0;
    for (const int child : node(current).children) {
      const double t = inclusive_time(child);
      if (t > best_time) {
        best_time = t;
        best = child;
      }
    }
    path.push_back(best);
    current = best;
  }
  return path;
}

double CallingContextTree::total_time() const {
  double total = 0.0;
  for (const CctNode& n : nodes_) total += n.time_s;
  return total;
}

double CallingContextTree::total_counter(arch::CounterKind kind) const {
  double total = 0.0;
  for (const CctNode& n : nodes_) total += n.counters[static_cast<std::size_t>(kind)];
  return total;
}

std::string CallingContextTree::render(int max_display_depth) const {
  std::string out;
  const double total = total_time();
  // Depth-first, preserving child order.
  std::vector<std::pair<int, int>> stack = {{root(), 0}};
  while (!stack.empty()) {
    const auto [index, d] = stack.back();
    stack.pop_back();
    if (d > max_display_depth) continue;
    const CctNode& n = node(index);
    const double inclusive = inclusive_time(index);
    out.append(static_cast<std::size_t>(2 * d), ' ');
    out += n.name;
    out += " [" + std::string(to_string(n.kind)) + "] ";
    out += format_fixed(inclusive, 3) + "s inclusive";
    if (total > 0.0) {
      out += " (" + format_fixed(100.0 * inclusive / total, 1) + "%)";
    }
    out += '\n';
    // Push children in reverse so the first child renders first.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, d + 1);
    }
  }
  return out;
}

}  // namespace mphpc::prof
