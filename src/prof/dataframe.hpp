// Hatchet-style programmatic analysis of calling-context trees (paper
// §II-A: "Hatchet ... provides extensive functionality for calling
// context tree pruning and analysis through pandas DataFrame
// operations"). The operations here mirror Hatchet's core verbs:
//   to_table      — the CCT as a dataframe (one row per node)
//   filter_squash — prune by predicate, reconnecting surviving children
//                   to their nearest surviving ancestor
//   flat_profile  — aggregate exclusive metrics by frame name
//   time_by_kind  — phase attribution (compute/comm/io/...)
#pragma once

#include <array>
#include <functional>
#include <utility>

#include "data/table.hpp"
#include "prof/cct.hpp"

namespace mphpc::prof {

/// One row per node: node/parent indices, name, kind, depth, exclusive
/// and inclusive time, and every exclusive counter column.
[[nodiscard]] data::Table to_table(const CallingContextTree& tree);

/// Hatchet filter+squash: keeps the root and every node where
/// `keep(node)` is true; children of removed nodes are re-parented to
/// their nearest kept ancestor. Exclusive metrics of removed nodes are
/// folded into that ancestor so totals are preserved.
[[nodiscard]] CallingContextTree filter_squash(
    const CallingContextTree& tree, const std::function<bool(const CctNode&)>& keep);

/// Aggregates exclusive time and counters by frame name; rows sorted by
/// descending time. Columns: name, calls (node count), time_s, counters.
[[nodiscard]] data::Table flat_profile(const CallingContextTree& tree);

/// The `n` hottest frames by exclusive time: (name, seconds), descending.
[[nodiscard]] std::vector<std::pair<std::string, double>> top_frames(
    const CallingContextTree& tree, std::size_t n);

/// Total exclusive time per frame kind, indexed by FrameKind.
[[nodiscard]] std::array<double, 6> time_by_kind(const CallingContextTree& tree);

}  // namespace mphpc::prof
