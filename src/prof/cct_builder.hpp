// Synthesizes a calling-context tree for a profiled run — the shape
// HPCToolkit would record: an application-specific set of solver kernels
// under a timestep loop, MPI frames for communication, I/O frames for
// input/output, and (on GPU runs) host-side launch frames over device
// kernels. Region times come from the run's noise-free breakdown; region
// counters partition the run's measured counters, so subtree aggregation
// reproduces the per-run totals exactly (tested).
#pragma once

#include "prof/cct.hpp"
#include "sim/profiler.hpp"
#include "workload/app_signature.hpp"

namespace mphpc::prof {

/// Builds the CCT of one run. `app` must be the (effective) signature of
/// the profiled application; the tree's kernel decomposition is
/// deterministic in (app, input_index).
[[nodiscard]] CallingContextTree build_cct(const sim::RunProfile& profile,
                                           const workload::AppSignature& app);

/// The plausible kernel frame names used for an application (3 per app;
/// generic names for apps without a curated list).
[[nodiscard]] std::vector<std::string> kernel_names(std::string_view app_name);

}  // namespace mphpc::prof
