// Run-level analyses over calling-context trees — the role Hatchet plays
// in the paper's pipeline: turning a structured profile back into the
// per-run quantities the dataset needs.
#pragma once

#include "prof/cct.hpp"
#include "sim/counter_synth.hpp"

namespace mphpc::prof {

/// Fraction of wall time per phase; fractions sum to 1 for non-empty trees.
struct PhaseBreakdown {
  double compute = 0.0;
  double comm = 0.0;
  double io = 0.0;
  double driver = 0.0;     ///< setup/control (incl. root)
  double gpu_launch = 0.0;
};

[[nodiscard]] PhaseBreakdown phase_breakdown(const CallingContextTree& tree);

/// Aggregates the tree's exclusive counters — recovers exactly the per-run
/// counter vector the profiler recorded (build_cct partitions it).
[[nodiscard]] sim::CounterValues aggregate_counters(const CallingContextTree& tree);

/// Share of total time spent in the single hottest compute frame
/// (a common kernel-dominance diagnostic).
[[nodiscard]] double hot_kernel_share(const CallingContextTree& tree);

}  // namespace mphpc::prof
