// Per-feature quantile binning for histogram-based tree training.
//
// A BinnedMatrix is built once per fit: each feature's value range is cut
// into at most `max_bins` (<= 256) quantile bins and every cell is encoded
// as a std::uint8_t bin index, stored column-major so the trainer's
// per-feature histogram passes stream sequentially through memory. Split
// thresholds are the midpoints between the last raw value of one bin and
// the first raw value of the next, so a tree trained on bin codes predicts
// identically on the raw feature values it was fit on.
//
// Binning is deterministic: cut points depend only on the sorted column
// values, and the optional ThreadPool only distributes whole features, so
// the result is bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "ml/matrix.hpp"

namespace mphpc::ml {

/// Split search strategy shared by every tree trainer: exact-greedy over
/// pre-sorted raw values, or histogram sweeps over quantile-binned values
/// (faster, near-identical accuracy).
enum class TreeMethod : std::uint8_t { kExact = 0, kHist = 1 };

/// Histogram bin count actually used by a fit: `configured` when nonzero,
/// otherwise auto-scaled with the row count as clamp(rows / 64, 32, 256).
[[nodiscard]] int resolve_max_bins(int configured, std::size_t rows) noexcept;

/// Binning of one feature: `thresholds` has n_bins-1 ascending cut points;
/// a value x belongs to the first bin b with x <= thresholds[b], or to the
/// last bin when it exceeds every threshold. Splitting "after bin b" means
/// the tree test `x <= thresholds[b]`.
struct FeatureBins {
  std::vector<double> thresholds;

  [[nodiscard]] int n_bins() const noexcept {
    return static_cast<int>(thresholds.size()) + 1;
  }

  /// Bin index of a raw value (branchless-ish binary search).
  [[nodiscard]] std::uint8_t bin_of(double v) const noexcept;
};

/// Column-major uint8 bin codes for a whole matrix plus the per-feature
/// cut points that map bin boundaries back to raw-value thresholds.
class BinnedMatrix {
 public:
  /// Maximum representable bin count per feature (uint8 codes).
  static constexpr int kMaxBins = 256;

  /// Builds quantile bins (at most max_bins per feature, 2 <= max_bins <=
  /// kMaxBins) and encodes every cell. `pool` distributes whole features.
  static BinnedMatrix build(const Matrix& x, int max_bins,
                            ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t features() const noexcept { return features_; }

  [[nodiscard]] const FeatureBins& bins(std::size_t f) const noexcept {
    return per_feature_[f];
  }

  /// Codes of one feature, indexed by row (contiguous).
  [[nodiscard]] const std::uint8_t* codes(std::size_t f) const noexcept {
    return codes_.data() + f * rows_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t features_ = 0;
  std::vector<FeatureBins> per_feature_;   ///< [feature]
  std::vector<std::uint8_t> codes_;        ///< [feature * rows + row]
};

}  // namespace mphpc::ml
