// Random-forest regressor: bagged multi-output CART trees with per-node
// feature subsampling, trained in parallel across trees. Matches the
// scikit-learn "decision forest" comparator of the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/model.hpp"

namespace mphpc::ml {

struct ForestOptions {
  int n_trees = 100;
  int max_depth = 16;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Per-node feature subset size; 0 = round(sqrt(features)).
  int max_features = 0;
  /// Bootstrap sample fraction of the training rows per tree.
  double subsample = 1.0;
  std::uint64_t seed = 7;
  /// Split search for every tree (ml/binning.hpp). kHist bins the training
  /// matrix once and shares it across all trees, replacing the per-tree
  /// feature sorts. Opt-in: kExact keeps existing fits bit-stable.
  TreeMethod method = TreeMethod::kExact;
  /// Histogram bins per feature (kHist; 0 = auto, see resolve_max_bins).
  int max_bins = 64;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;
  [[nodiscard]] Matrix predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "decision forest"; }
  [[nodiscard]] bool fitted() const noexcept override { return !trees_.empty(); }

  /// Mean of the per-tree gain importances, re-normalized to sum to 1.
  [[nodiscard]] std::optional<std::vector<double>> feature_importances() const override;

  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
  [[nodiscard]] const ForestOptions& options() const noexcept { return options_; }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::size_t n_outputs_ = 0;
};

}  // namespace mphpc::ml
