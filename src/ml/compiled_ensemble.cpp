#include "ml/compiled_ensemble.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "common/contract.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"

namespace mphpc::ml {

namespace {

/// Output width of a fitted CART tree: the value size of any leaf.
std::size_t tree_output_width(const DecisionTree& tree) {
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) return node.value.size();
  }
  MPHPC_UNREACHABLE("fitted tree has no leaf");
}

/// Longest root-to-leaf edge count — the fixed walk length of a tree.
template <typename Node>
std::int32_t tree_depth(const std::vector<Node>& nodes) {
  std::int32_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(i)];
    if (node.is_leaf()) {
      max_depth = std::max(max_depth, d);
      continue;
    }
    stack.push_back({node.left, d + 1});
    stack.push_back({node.right, d + 1});
  }
  return max_depth;
}

}  // namespace

CompiledEnsemble CompiledEnsemble::compile(const GbtRegressor& model,
                                           CompileOptions options) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kGbt;
  ce.n_features_ = model.n_features();
  ce.n_outputs_ = model.n_outputs();

  std::size_t total_nodes = 0;
  std::size_t total_trees = 0;
  for (std::size_t k = 0; k < model.n_outputs(); ++k) {
    total_trees += model.ensemble(k).size();
    for (const GbtTree& tree : model.ensemble(k)) total_nodes += tree.nodes.size();
  }
  MPHPC_EXPECTS(total_nodes <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  ce.feature_.reserve(total_nodes);
  ce.threshold_.reserve(total_nodes);
  ce.left_.reserve(total_nodes);
  ce.right_.reserve(total_nodes);
  ce.roots_.reserve(total_trees);
  ce.depth_.reserve(total_trees);

  ce.output_begin_ = {0};
  for (std::size_t k = 0; k < model.n_outputs(); ++k) {
    ce.base_.push_back(model.base_score(k));
    for (const GbtTree& tree : model.ensemble(k)) {
      const auto origin = static_cast<std::int32_t>(ce.feature_.size());
      ce.roots_.push_back(origin);
      ce.depth_.push_back(tree_depth(tree.nodes));
      std::int32_t local = 0;
      for (const GbtNode& node : tree.nodes) {
        if (node.is_leaf()) {
          // Self-loop leaf: extra walk steps are no-ops; the scalar leaf
          // weight rides in the threshold slot.
          ce.feature_.push_back(0);
          ce.threshold_.push_back(node.weight);
          ce.left_.push_back(origin + local);
          ce.right_.push_back(origin + local);
        } else {
          ce.feature_.push_back(node.feature);
          ce.threshold_.push_back(node.threshold);
          ce.left_.push_back(origin + node.left);
          ce.right_.push_back(origin + node.right);
        }
        ++local;
      }
    }
    ce.output_begin_.push_back(static_cast<std::int32_t>(ce.roots_.size()));
  }
  if (options.quantize) ce.build_quantized_pool();
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

namespace {

/// Appends one CART tree's nodes to the SoA pool, inlining leaf value
/// vectors into `values`; shared by the forest and single-tree compilers.
void append_cart_tree(const DecisionTree& tree, std::vector<std::int32_t>& feature,
                      std::vector<double>& threshold, std::vector<std::int32_t>& left,
                      std::vector<std::int32_t>& right, std::vector<std::int32_t>& roots,
                      std::vector<std::int32_t>& depth, std::vector<double>& values) {
  const auto origin = static_cast<std::int32_t>(feature.size());
  roots.push_back(origin);
  depth.push_back(tree_depth(tree.nodes()));
  std::int32_t local = 0;
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) {
      // Self-loop leaf; the threshold slot holds the offset of the leaf's
      // value vector in `values` (exact in a double far beyond any pool).
      feature.push_back(0);
      threshold.push_back(static_cast<double>(values.size()));
      left.push_back(origin + local);
      right.push_back(origin + local);
      values.insert(values.end(), node.value.begin(), node.value.end());
    } else {
      feature.push_back(node.feature);
      threshold.push_back(node.threshold);
      left.push_back(origin + node.left);
      right.push_back(origin + node.right);
    }
    ++local;
  }
}

}  // namespace

CompiledEnsemble CompiledEnsemble::compile(const RandomForest& model,
                                           CompileOptions options) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kForestMean;
  ce.n_outputs_ = tree_output_width(model.trees().front());
  ce.value_width_ = ce.n_outputs_;
  ce.n_trees_ = static_cast<double>(model.trees().size());

  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : model.trees()) {
    MPHPC_EXPECTS(tree.fitted());
    total_nodes += tree.nodes().size();
  }
  MPHPC_EXPECTS(total_nodes <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  ce.feature_.reserve(total_nodes);
  ce.threshold_.reserve(total_nodes);
  ce.left_.reserve(total_nodes);
  ce.right_.reserve(total_nodes);
  ce.roots_.reserve(model.trees().size());
  ce.depth_.reserve(model.trees().size());

  for (const DecisionTree& tree : model.trees()) {
    append_cart_tree(tree, ce.feature_, ce.threshold_, ce.left_, ce.right_,
                     ce.roots_, ce.depth_, ce.values_);
  }
  // Every fitted tree saw the same X, so any tree's feature count works.
  ce.n_features_ = model.trees().front().n_features();
  if (options.quantize) ce.build_quantized_pool();
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

CompiledEnsemble CompiledEnsemble::compile(const DecisionTree& model,
                                           CompileOptions options) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kSingleTree;
  ce.n_outputs_ = tree_output_width(model);
  ce.value_width_ = ce.n_outputs_;
  ce.n_features_ = model.n_features();
  MPHPC_EXPECTS(model.nodes().size() <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  append_cart_tree(model, ce.feature_, ce.threshold_, ce.left_, ce.right_,
                   ce.roots_, ce.depth_, ce.values_);
  if (options.quantize) ce.build_quantized_pool();
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

void CompiledEnsemble::build_quantized_pool() {
  // Works uniformly over every model kind from the exact pool alone:
  // internal nodes are the ones that do not self-loop (leaves have
  // left_[i] == i), and their threshold_ slot holds a real split value.
  quantized_ = false;
  quantize_note_.clear();
  if (n_features_ > std::numeric_limits<std::uint16_t>::max()) {
    quantize_note_ = "feature count exceeds uint16";
    return;
  }
  // Per-feature sorted distinct cut tables from the fitted thresholds.
  std::vector<std::vector<double>> cuts(n_features_);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    if (left_[i] == static_cast<std::int32_t>(i)) continue;  // leaf
    cuts[static_cast<std::size_t>(feature_[i])].push_back(threshold_[i]);
  }
  cut_begin_.assign(1, 0);
  cuts_.clear();
  for (std::vector<double>& fc : cuts) {
    std::sort(fc.begin(), fc.end());
    fc.erase(std::unique(fc.begin(), fc.end()), fc.end());
    // A node's cut index must fit uint8 and a row code #{cuts < v} can be
    // n_cuts itself, so both need n_cuts <= 255.
    if (fc.size() > 255) {
      quantize_note_ = "a feature has more than 255 distinct thresholds";
      cuts_.clear();
      cut_begin_.clear();
      return;
    }
    cuts_.insert(cuts_.end(), fc.begin(), fc.end());
    cut_begin_.push_back(static_cast<std::uint32_t>(cuts_.size()));
  }
  // Re-encode the pool tree by tree: renumber nodes in BFS order so an
  // internal node's children land adjacent (left at child_base, right at
  // child_base + 1 — the walk step is then one add off a flag), and pack
  // each node into a single word: 32 bits when the feature index fits
  // uint8 (the pool then runs ~5x smaller than the exact one and a whole
  // ensemble's walk state is L1-resident), 64 bits otherwise. Leaves get
  // cut = 255, an index no internal node can carry (cut indices stop at
  // 254 because a feature has at most 255 cuts), so `code > 255` is
  // always false and the leaf self-loops through its own child_base.
  const bool narrow = n_features_ <= 255;
  if (narrow) {
    q_node32_.resize(feature_.size());
  } else {
    q_node64_.resize(feature_.size());
  }
  q_payload_.resize(feature_.size());
  std::vector<std::uint32_t> order;       // order[new_local] = old_local
  std::vector<std::uint32_t> child_base;  // per new_local
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const auto begin = static_cast<std::size_t>(roots_[t]);
    const std::size_t end = t + 1 < roots_.size()
                                ? static_cast<std::size_t>(roots_[t + 1])
                                : feature_.size();
    if (end - begin > std::size_t{std::numeric_limits<std::uint16_t>::max()}) {
      quantize_note_ = "a tree has more than 65535 nodes";
      q_node32_.clear();
      q_node64_.clear();
      q_payload_.clear();
      cuts_.clear();
      cut_begin_.clear();
      return;
    }
    order.assign(1, 0);
    child_base.clear();
    for (std::size_t head = 0; head < order.size(); ++head) {
      const std::size_t old_global = begin + order[head];
      if (left_[old_global] == static_cast<std::int32_t>(old_global)) {
        child_base.push_back(static_cast<std::uint32_t>(head));  // self-loop
        continue;
      }
      child_base.push_back(static_cast<std::uint32_t>(order.size()));
      order.push_back(static_cast<std::uint32_t>(left_[old_global]) -
                      static_cast<std::uint32_t>(begin));
      order.push_back(static_cast<std::uint32_t>(right_[old_global]) -
                      static_cast<std::uint32_t>(begin));
    }
    for (std::size_t j = 0; j < order.size(); ++j) {
      const std::size_t i = begin + order[j];
      const bool leaf = left_[i] == static_cast<std::int32_t>(i);
      std::uint64_t feat = 0;
      std::uint64_t cut = 255;
      if (!leaf) {
        const auto f = static_cast<std::size_t>(feature_[i]);
        const std::vector<double>& fc = cuts[f];
        feat = static_cast<std::uint64_t>(f);
        cut = static_cast<std::uint64_t>(
            std::lower_bound(fc.begin(), fc.end(), threshold_[i]) - fc.begin());
      }
      if (narrow) {
        q_node32_[begin + j] = static_cast<std::uint32_t>(
            feat | (cut << 8) |
            (static_cast<std::uint64_t>(child_base[j]) << 16));
      } else {
        q_node64_[begin + j] = feat | (cut << 16) |
                               (static_cast<std::uint64_t>(child_base[j]) << 32);
      }
      q_payload_[begin + j] = leaf ? threshold_[i] : 0.0;
    }
  }
  quantized_ = true;
}

void CompiledEnsemble::predict_tile(const Matrix& x, std::size_t lo,
                                    std::size_t hi, Matrix& out) const {
  // Mask-and-blend select: a ternary here is if-converted to cmov in some
  // inlining contexts but lowered to a data-dependent branch in others,
  // and balanced splits mispredict ~50% of the time. The arithmetic form
  // cannot be turned back into a jump.
  const auto step = [this](std::int32_t node, const double* xr) noexcept {
    const auto i = static_cast<std::size_t>(node);
    const std::int32_t go_left = left_[i];
    const std::int32_t go_right = right_[i];
    const std::int32_t take_left = -static_cast<std::int32_t>(
        xr[static_cast<std::size_t>(feature_[i])] <= threshold_[i]);
    return (go_left & take_left) | (go_right & ~take_left);
  };
  // Lanes per lock-step walk: enough independent cmov chains to saturate
  // the load ports, few enough that lane state stays in registers.
  constexpr std::size_t kLanes = 8;
  const auto walk_lanes = [&](std::int32_t root, std::int32_t steps,
                              const std::array<const double*, kLanes>& xr,
                              std::array<std::int32_t, kLanes>& n) {
    n.fill(root);
    for (std::int32_t s = 0; s < steps; ++s) {
      for (std::size_t l = 0; l < kLanes; ++l) n[l] = step(n[l], xr[l]);
    }
  };
  if (kind_ == Kind::kGbt) {
    // Lane group outer, trees inner: the group's row pointers and running
    // sums live in registers across the whole ensemble, so per-tree cost
    // is the walk plus one add — not a round trip through `out`. One
    // output's trees (~tens of KB of nodes) stay L1/L2-resident per sweep.
    // Accumulation order per (row, output) is base + trees in boosting
    // order, exactly the reference order.
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
      const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
      std::size_t r = lo;
      std::array<const double*, kLanes> xr;
      std::array<std::int32_t, kLanes> n;
      std::array<double, kLanes> acc;
      for (; r + kLanes <= hi; r += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) xr[l] = x.row(r + l).data();
        acc.fill(base_[k]);
        for (std::size_t t = t_begin; t < t_end; ++t) {
          walk_lanes(roots_[t], depth_[t], xr, n);
          for (std::size_t l = 0; l < kLanes; ++l) {
            acc[l] += threshold_[static_cast<std::size_t>(n[l])];
          }
        }
        for (std::size_t l = 0; l < kLanes; ++l) out(r + l, k) = acc[l];
      }
      for (; r < hi; ++r) {
        double sum = base_[k];
        const double* xr1 = x.row(r).data();
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const std::int32_t leaf = walk(roots_[t], depth_[t], xr1);
          sum += threshold_[static_cast<std::size_t>(leaf)];
        }
        out(r, k) = sum;
      }
    }
    return;
  }
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t root = roots_[t];
    const std::int32_t steps = depth_[t];
    const auto add_leaf = [&](std::size_t r, std::int32_t leaf) {
      const double* v =
          values_.data() +
          static_cast<std::size_t>(threshold_[static_cast<std::size_t>(leaf)]);
      double* dst = out.row(r).data();
      for (std::size_t k = 0; k < value_width_; ++k) dst[k] += v[k];
    };
    std::size_t r = lo;
    std::array<const double*, kLanes> xr;
    std::array<std::int32_t, kLanes> n;
    for (; r + kLanes <= hi; r += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) xr[l] = x.row(r + l).data();
      walk_lanes(root, steps, xr, n);
      for (std::size_t l = 0; l < kLanes; ++l) add_leaf(r + l, n[l]);
    }
    for (; r < hi; ++r) add_leaf(r, walk(root, steps, x.row(r).data()));
  }
  if (kind_ == Kind::kForestMean) {
    for (std::size_t r = lo; r < hi; ++r) {
      for (double& v : out.row(r)) v /= n_trees_;
    }
  }
}

void CompiledEnsemble::predict_tile_quantized(const Matrix& x, std::size_t lo,
                                              std::size_t hi, Matrix& out,
                                              std::uint8_t* codes) const {
  // Bin the tile once: every later tree walk reads uint8 codes, so the
  // per-row hot state is n_features_ bytes (a 512-row tile of 21 features
  // is ~10 KB — the whole tile stays L1-resident across the ensemble).
  // Eight rows chop in lock-step per feature: they share one cut table
  // and one range width, so every probe is eight independent masked adds
  // off a hot table — no mispredicted compares (bin_row's scalar chop,
  // serial per feature, would cost as much as the tree walks it feeds).
  constexpr std::size_t kLanes = 8;
  {
    std::size_t r = lo;
    std::array<const double*, kLanes> xr;
    std::array<const double*, kLanes> base;
    std::array<double, kLanes> v;
    for (; r + kLanes <= hi; r += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) xr[l] = x.row(r + l).data();
      std::uint8_t* crow = codes + (r - lo) * n_features_;
      for (std::size_t f = 0; f < n_features_; ++f) {
        const double* start = cuts_.data() + cut_begin_[f];
        std::size_t n = cut_begin_[f + 1] - cut_begin_[f];
        for (std::size_t l = 0; l < kLanes; ++l) {
          base[l] = start;
          v[l] = xr[l][f];
        }
        while (n > 1) {
          const std::size_t half = n / 2;
          for (std::size_t l = 0; l < kLanes; ++l) {
            base[l] += half & (0 - static_cast<std::size_t>(base[l][half - 1] <
                                                            v[l]));
          }
          n -= half;
        }
        for (std::size_t l = 0; l < kLanes; ++l) {
          const std::size_t below = n == 1 && base[l][0] < v[l] ? 1 : 0;
          crow[l * n_features_ + f] = static_cast<std::uint8_t>(
              static_cast<std::size_t>(base[l] - start) + below);
        }
      }
    }
    for (; r < hi; ++r) {
      bin_row(x.row(r).data(), codes + (r - lo) * n_features_);
    }
  }
  if (!q_node32_.empty()) {
    walk_tile_quantized(q_node32_.data(), lo, hi, out, codes);
  } else {
    walk_tile_quantized(q_node64_.data(), lo, hi, out, codes);
  }
}

#if defined(__AVX512F__)
// GCC's avx512 headers spell "undefined vector" as `__m512i __Y = __Y;`,
// which -Wmaybe-uninitialized flags once the shift intrinsics inline into
// the walk below. Silence that known-bogus warning for this region only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
namespace {

/// Rows per vector walk: four 16-lane gather groups in flight. A single
/// group is latency-bound — the serial gather -> compare -> gather chain
/// of one step runs ~25 cycles — so three more independent groups overlap
/// it and keep the gather ports busy instead of idle.
constexpr std::size_t kQuadRows = 64;

/// Walks one tree for four 16-lane groups of pre-binned rows. `qn` is
/// the tree's packed 32-bit node pool, `codes` the tile's row-major
/// uint8 code matrix (padded so the dword gathers of the last code stay
/// inside the buffer), `rowoff[g]` lane byte-offsets of each row's code
/// block. One step per lane is two gathers (node word, code byte) plus
/// shift/mask/compare — the same arithmetic as the scalar qstep, so
/// leaves (and therefore results) are identical. Leaf indices land in
/// `loc`, tree-local.
inline void qwalk_quad(const std::uint32_t* qn, std::int32_t steps,
                       const std::uint8_t* codes, const __m512i* rowoff,
                       __m512i* loc) noexcept {
  const __m512i k_ff = _mm512_set1_epi32(0xFF);
  const __m512i k_one = _mm512_set1_epi32(1);
  for (int g = 0; g < 4; ++g) loc[g] = _mm512_setzero_si512();
  for (std::int32_t s = 0; s < steps; ++s) {
    for (int g = 0; g < 4; ++g) {
      const __m512i w = _mm512_i32gather_epi32(loc[g], qn, 4);
      const __m512i cidx =
          _mm512_add_epi32(_mm512_and_si512(w, k_ff), rowoff[g]);
      const __m512i code =
          _mm512_and_si512(_mm512_i32gather_epi32(cidx, codes, 1), k_ff);
      const __m512i cut = _mm512_and_si512(_mm512_srli_epi32(w, 8), k_ff);
      const __m512i child = _mm512_srli_epi32(w, 16);
      const __mmask16 gt = _mm512_cmp_epu32_mask(code, cut, _MM_CMPINT_NLE);
      loc[g] = _mm512_mask_add_epi32(child, gt, child, k_one);
    }
  }
}

/// Lane byte-offsets of rows [first_row, first_row + 64) into the tile's
/// code matrix, one vector per 16-row group.
inline void quad_row_offsets(std::size_t first_row, std::size_t n_features,
                             __m512i* rowoff) noexcept {
  const __m512i lane_off = _mm512_mullo_epi32(
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
      _mm512_set1_epi32(static_cast<int>(n_features)));
  for (int g = 0; g < 4; ++g) {
    rowoff[g] = _mm512_add_epi32(
        lane_off, _mm512_set1_epi32(static_cast<int>(
                      (first_row + 16 * static_cast<std::size_t>(g)) *
                      n_features)));
  }
}

}  // namespace
#endif  // __AVX512F__

// Same lane-group shape as the exact kernel, but a walk step is two
// loads (the packed node word + the row's code byte) and a handful of
// integer ops per lane instead of five scattered loads — the eight
// lock-step lanes keep both load ports busy on a far smaller pool.
// When the build targets AVX-512 and the pool is 32-bit, full 64-row
// quads take the gather-based vector walk instead (identical integer
// arithmetic and FP accumulation order, so results stay bit-identical);
// the scalar lanes then only mop up the tile remainder.
template <typename Word>
void CompiledEnsemble::walk_tile_quantized(const Word* pool, std::size_t lo,
                                           std::size_t hi, Matrix& out,
                                           const std::uint8_t* codes) const {
  constexpr std::size_t kLanes = 8;
  std::size_t scalar_lo = lo;  // rows below it were served by the vector path
#if defined(__AVX512F__)
  if constexpr (sizeof(Word) == 4) {
    const std::size_t vec_rows = (hi - lo) / kQuadRows * kQuadRows;
    if (vec_rows > 0) {
      scalar_lo = lo + vec_rows;
      if (kind_ == Kind::kGbt) {
        std::array<double, kQuadRows> accbuf;
        for (std::size_t k = 0; k < n_outputs_; ++k) {
          const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
          const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
          for (std::size_t q = 0; q < vec_rows; q += kQuadRows) {
            __m512i rowoff[4];
            quad_row_offsets(q, n_features_, rowoff);
            __m512d acc[8];
            for (__m512d& a : acc) a = _mm512_set1_pd(base_[k]);
            for (std::size_t t = t_begin; t < t_end; ++t) {
              const auto origin = static_cast<std::size_t>(roots_[t]);
              __m512i leaf[4];
              qwalk_quad(pool + origin, depth_[t], codes, rowoff, leaf);
              const double* qp = q_payload_.data() + origin;
              for (int g = 0; g < 4; ++g) {
                acc[2 * g] = _mm512_add_pd(
                    acc[2 * g],
                    _mm512_i32gather_pd(_mm512_castsi512_si256(leaf[g]), qp,
                                        8));
                acc[2 * g + 1] = _mm512_add_pd(
                    acc[2 * g + 1],
                    _mm512_i32gather_pd(_mm512_extracti64x4_epi64(leaf[g], 1),
                                        qp, 8));
              }
            }
            for (int i = 0; i < 8; ++i) {
              _mm512_storeu_pd(accbuf.data() + 8 * i, acc[i]);
            }
            for (std::size_t l = 0; l < kQuadRows; ++l) {
              out(lo + q + l, k) = accbuf[l];
            }
          }
        }
      } else {
        std::array<std::uint32_t, kQuadRows> leafbuf;
        for (std::size_t q = 0; q < vec_rows; q += kQuadRows) {
          __m512i rowoff[4];
          quad_row_offsets(q, n_features_, rowoff);
          for (std::size_t t = 0; t < roots_.size(); ++t) {
            const auto origin = static_cast<std::size_t>(roots_[t]);
            __m512i leaf[4];
            qwalk_quad(pool + origin, depth_[t], codes, rowoff, leaf);
            for (int g = 0; g < 4; ++g) {
              _mm512_storeu_si512(leafbuf.data() + 16 * g, leaf[g]);
            }
            const double* qp = q_payload_.data() + origin;
            for (std::size_t l = 0; l < kQuadRows; ++l) {
              const double* v =
                  values_.data() + static_cast<std::size_t>(qp[leafbuf[l]]);
              double* dst = out.row(lo + q + l).data();
              for (std::size_t c = 0; c < value_width_; ++c) dst[c] += v[c];
            }
          }
        }
      }
    }
  }
#endif  // __AVX512F__
  if (kind_ == Kind::kGbt) {
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
      const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
      std::size_t r = scalar_lo;
      std::array<const std::uint8_t*, kLanes> qr;
      std::array<std::uint32_t, kLanes> local;
      std::array<double, kLanes> acc;
      for (; r + kLanes <= hi; r += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          qr[l] = codes + (r + l - lo) * n_features_;
        }
        acc.fill(base_[k]);
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const Word* qn = pool + static_cast<std::size_t>(roots_[t]);
          const double* qp =
              q_payload_.data() + static_cast<std::size_t>(roots_[t]);
          const std::int32_t steps = depth_[t];
          local.fill(0);
          for (std::int32_t s = 0; s < steps; ++s) {
            for (std::size_t l = 0; l < kLanes; ++l) {
              local[l] = qstep(qn[local[l]], qr[l]);
            }
          }
          for (std::size_t l = 0; l < kLanes; ++l) acc[l] += qp[local[l]];
        }
        for (std::size_t l = 0; l < kLanes; ++l) out(r + l, k) = acc[l];
      }
      for (; r < hi; ++r) {
        double sum = base_[k];
        const std::uint8_t* qr1 = codes + (r - lo) * n_features_;
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const std::int32_t leaf = qwalk(roots_[t], depth_[t], qr1);
          sum += q_payload_[static_cast<std::size_t>(leaf)];
        }
        out(r, k) = sum;
      }
    }
    return;
  }
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const Word* qn = pool + static_cast<std::size_t>(roots_[t]);
    const double* qp = q_payload_.data() + static_cast<std::size_t>(roots_[t]);
    const std::int32_t steps = depth_[t];
    const auto add_leaf = [&](std::size_t r, std::uint32_t leaf) {
      const double* v = values_.data() + static_cast<std::size_t>(qp[leaf]);
      double* dst = out.row(r).data();
      for (std::size_t k = 0; k < value_width_; ++k) dst[k] += v[k];
    };
    std::size_t r = scalar_lo;
    std::array<const std::uint8_t*, kLanes> qr;
    std::array<std::uint32_t, kLanes> local;
    for (; r + kLanes <= hi; r += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        qr[l] = codes + (r + l - lo) * n_features_;
      }
      local.fill(0);
      for (std::int32_t s = 0; s < steps; ++s) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          local[l] = qstep(qn[local[l]], qr[l]);
        }
      }
      for (std::size_t l = 0; l < kLanes; ++l) add_leaf(r + l, local[l]);
    }
    for (; r < hi; ++r) {
      std::uint32_t local1 = 0;
      const std::uint8_t* qr1 = codes + (r - lo) * n_features_;
      for (std::int32_t s = 0; s < steps; ++s) local1 = qstep(qn[local1], qr1);
      add_leaf(r, local1);
    }
  }
  if (kind_ == Kind::kForestMean) {
    for (std::size_t r = lo; r < hi; ++r) {
      for (double& v : out.row(r)) v /= n_trees_;
    }
  }
}

#if defined(__AVX512F__)
#pragma GCC diagnostic pop
#endif

Matrix CompiledEnsemble::predict(const Matrix& x, ThreadPool* pool) const {
  MPHPC_EXPECTS(compiled());
  MPHPC_EXPECTS(x.cols() == n_features_);
  Matrix out(x.rows(), n_outputs_);
  const auto run_rows = [&](std::size_t row_begin, std::size_t row_end) {
    if (quantized_) {
      // One code buffer per chunk, reused across its tiles: the only
      // allocation the quantized batch path makes. The +4 pad keeps the
      // vector walk's dword gather of the last code byte inside the
      // buffer (it masks the extra bytes off; they are never used).
      std::vector<std::uint8_t> codes(kTile * n_features_ + 4);
      for (std::size_t lo = row_begin; lo < row_end; lo += kTile) {
        predict_tile_quantized(x, lo, std::min(row_end, lo + kTile), out,
                               codes.data());
      }
      return;
    }
    for (std::size_t lo = row_begin; lo < row_end; lo += kTile) {
      predict_tile(x, lo, std::min(row_end, lo + kTile), out);
    }
  };
  if (pool != nullptr && x.rows() > 1) {
    // Chunks are contiguous row ranges; every (row, output) accumulator is
    // owned by exactly one chunk, so the partition cannot change results.
    pool->parallel_chunks(0, x.rows(),
                          [&](std::size_t, std::size_t b, std::size_t e) {
                            run_rows(b, e);
                          });
  } else {
    run_rows(0, x.rows());
  }
  return out;
}

// lint:allow-next-line contract-coverage -- delegate; the scratch overload owns the contracts
void CompiledEnsemble::predict_row(std::span<const double> x,
                                   std::span<double> out) const {
  // One scratch per thread: steady-state single-row serving allocates
  // nothing (the bench asserts this).
  thread_local RowScratch scratch;
  predict_row(x, out, scratch);
}

void CompiledEnsemble::predict_row(std::span<const double> x,
                                   std::span<double> out,
                                   RowScratch& scratch) const {
  MPHPC_EXPECTS(compiled());
  MPHPC_EXPECTS(out.size() == n_outputs_);
  MPHPC_EXPECTS(x.size() == n_features_);
  if (quantized_) {
    if (scratch.codes.size() < n_features_) scratch.codes.resize(n_features_);
    std::uint8_t* codes = scratch.codes.data();
    bin_row(x.data(), codes);
    if (kind_ == Kind::kGbt) {
      for (std::size_t k = 0; k < n_outputs_; ++k) {
        double acc = base_[k];
        const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
        const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const std::int32_t leaf = qwalk(roots_[t], depth_[t], codes);
          acc += q_payload_[static_cast<std::size_t>(leaf)];
        }
        out[k] = acc;
      }
      return;
    }
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::int32_t leaf = qwalk(roots_[t], depth_[t], codes);
      const double* v =
          values_.data() +
          static_cast<std::size_t>(q_payload_[static_cast<std::size_t>(leaf)]);
      for (std::size_t k = 0; k < value_width_; ++k) out[k] += v[k];
    }
    if (kind_ == Kind::kForestMean) {
      for (double& v : out) v /= n_trees_;
    }
    return;
  }
  if (kind_ == Kind::kGbt) {
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      double acc = base_[k];
      const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
      const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
      for (std::size_t t = t_begin; t < t_end; ++t) {
        const std::int32_t leaf = walk(roots_[t], depth_[t], x.data());
        acc += threshold_[static_cast<std::size_t>(leaf)];
      }
      out[k] = acc;
    }
    return;
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t leaf = walk(roots_[t], depth_[t], x.data());
    const double* v =
        values_.data() +
        static_cast<std::size_t>(threshold_[static_cast<std::size_t>(leaf)]);
    for (std::size_t k = 0; k < value_width_; ++k) out[k] += v[k];
  }
  if (kind_ == Kind::kForestMean) {
    for (double& v : out) v /= n_trees_;
  }
}

}  // namespace mphpc::ml
