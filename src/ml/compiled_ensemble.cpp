#include "ml/compiled_ensemble.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "common/contract.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"

namespace mphpc::ml {

namespace {

/// Output width of a fitted CART tree: the value size of any leaf.
std::size_t tree_output_width(const DecisionTree& tree) {
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) return node.value.size();
  }
  MPHPC_UNREACHABLE("fitted tree has no leaf");
}

/// Longest root-to-leaf edge count — the fixed walk length of a tree.
template <typename Node>
std::int32_t tree_depth(const std::vector<Node>& nodes) {
  std::int32_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(i)];
    if (node.is_leaf()) {
      max_depth = std::max(max_depth, d);
      continue;
    }
    stack.push_back({node.left, d + 1});
    stack.push_back({node.right, d + 1});
  }
  return max_depth;
}

}  // namespace

CompiledEnsemble CompiledEnsemble::compile(const GbtRegressor& model) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kGbt;
  ce.n_features_ = model.n_features();
  ce.n_outputs_ = model.n_outputs();

  std::size_t total_nodes = 0;
  std::size_t total_trees = 0;
  for (std::size_t k = 0; k < model.n_outputs(); ++k) {
    total_trees += model.ensemble(k).size();
    for (const GbtTree& tree : model.ensemble(k)) total_nodes += tree.nodes.size();
  }
  MPHPC_EXPECTS(total_nodes <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  ce.feature_.reserve(total_nodes);
  ce.threshold_.reserve(total_nodes);
  ce.left_.reserve(total_nodes);
  ce.right_.reserve(total_nodes);
  ce.roots_.reserve(total_trees);
  ce.depth_.reserve(total_trees);

  ce.output_begin_ = {0};
  for (std::size_t k = 0; k < model.n_outputs(); ++k) {
    ce.base_.push_back(model.base_score(k));
    for (const GbtTree& tree : model.ensemble(k)) {
      const auto origin = static_cast<std::int32_t>(ce.feature_.size());
      ce.roots_.push_back(origin);
      ce.depth_.push_back(tree_depth(tree.nodes));
      std::int32_t local = 0;
      for (const GbtNode& node : tree.nodes) {
        if (node.is_leaf()) {
          // Self-loop leaf: extra walk steps are no-ops; the scalar leaf
          // weight rides in the threshold slot.
          ce.feature_.push_back(0);
          ce.threshold_.push_back(node.weight);
          ce.left_.push_back(origin + local);
          ce.right_.push_back(origin + local);
        } else {
          ce.feature_.push_back(node.feature);
          ce.threshold_.push_back(node.threshold);
          ce.left_.push_back(origin + node.left);
          ce.right_.push_back(origin + node.right);
        }
        ++local;
      }
    }
    ce.output_begin_.push_back(static_cast<std::int32_t>(ce.roots_.size()));
  }
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

namespace {

/// Appends one CART tree's nodes to the SoA pool, inlining leaf value
/// vectors into `values`; shared by the forest and single-tree compilers.
void append_cart_tree(const DecisionTree& tree, std::vector<std::int32_t>& feature,
                      std::vector<double>& threshold, std::vector<std::int32_t>& left,
                      std::vector<std::int32_t>& right, std::vector<std::int32_t>& roots,
                      std::vector<std::int32_t>& depth, std::vector<double>& values) {
  const auto origin = static_cast<std::int32_t>(feature.size());
  roots.push_back(origin);
  depth.push_back(tree_depth(tree.nodes()));
  std::int32_t local = 0;
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) {
      // Self-loop leaf; the threshold slot holds the offset of the leaf's
      // value vector in `values` (exact in a double far beyond any pool).
      feature.push_back(0);
      threshold.push_back(static_cast<double>(values.size()));
      left.push_back(origin + local);
      right.push_back(origin + local);
      values.insert(values.end(), node.value.begin(), node.value.end());
    } else {
      feature.push_back(node.feature);
      threshold.push_back(node.threshold);
      left.push_back(origin + node.left);
      right.push_back(origin + node.right);
    }
    ++local;
  }
}

}  // namespace

CompiledEnsemble CompiledEnsemble::compile(const RandomForest& model) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kForestMean;
  ce.n_outputs_ = tree_output_width(model.trees().front());
  ce.value_width_ = ce.n_outputs_;
  ce.n_trees_ = static_cast<double>(model.trees().size());

  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : model.trees()) {
    MPHPC_EXPECTS(tree.fitted());
    total_nodes += tree.nodes().size();
  }
  MPHPC_EXPECTS(total_nodes <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  ce.feature_.reserve(total_nodes);
  ce.threshold_.reserve(total_nodes);
  ce.left_.reserve(total_nodes);
  ce.right_.reserve(total_nodes);
  ce.roots_.reserve(model.trees().size());
  ce.depth_.reserve(model.trees().size());

  for (const DecisionTree& tree : model.trees()) {
    append_cart_tree(tree, ce.feature_, ce.threshold_, ce.left_, ce.right_,
                     ce.roots_, ce.depth_, ce.values_);
  }
  // Every fitted tree saw the same X, so any tree's feature count works.
  ce.n_features_ = model.trees().front().n_features();
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

CompiledEnsemble CompiledEnsemble::compile(const DecisionTree& model) {
  MPHPC_EXPECTS(model.fitted());
  CompiledEnsemble ce;
  ce.kind_ = Kind::kSingleTree;
  ce.n_outputs_ = tree_output_width(model);
  ce.value_width_ = ce.n_outputs_;
  ce.n_features_ = model.n_features();
  MPHPC_EXPECTS(model.nodes().size() <
                static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  append_cart_tree(model, ce.feature_, ce.threshold_, ce.left_, ce.right_,
                   ce.roots_, ce.depth_, ce.values_);
  MPHPC_ENSURES(ce.compiled());
  return ce;
}

void CompiledEnsemble::predict_tile(const Matrix& x, std::size_t lo,
                                    std::size_t hi, Matrix& out) const {
  // Mask-and-blend select: a ternary here is if-converted to cmov in some
  // inlining contexts but lowered to a data-dependent branch in others,
  // and balanced splits mispredict ~50% of the time. The arithmetic form
  // cannot be turned back into a jump.
  const auto step = [this](std::int32_t node, const double* xr) noexcept {
    const auto i = static_cast<std::size_t>(node);
    const std::int32_t go_left = left_[i];
    const std::int32_t go_right = right_[i];
    const std::int32_t take_left = -static_cast<std::int32_t>(
        xr[static_cast<std::size_t>(feature_[i])] <= threshold_[i]);
    return (go_left & take_left) | (go_right & ~take_left);
  };
  // Lanes per lock-step walk: enough independent cmov chains to saturate
  // the load ports, few enough that lane state stays in registers.
  constexpr std::size_t kLanes = 8;
  const auto walk_lanes = [&](std::int32_t root, std::int32_t steps,
                              const std::array<const double*, kLanes>& xr,
                              std::array<std::int32_t, kLanes>& n) {
    n.fill(root);
    for (std::int32_t s = 0; s < steps; ++s) {
      for (std::size_t l = 0; l < kLanes; ++l) n[l] = step(n[l], xr[l]);
    }
  };
  if (kind_ == Kind::kGbt) {
    // Lane group outer, trees inner: the group's row pointers and running
    // sums live in registers across the whole ensemble, so per-tree cost
    // is the walk plus one add — not a round trip through `out`. One
    // output's trees (~tens of KB of nodes) stay L1/L2-resident per sweep.
    // Accumulation order per (row, output) is base + trees in boosting
    // order, exactly the reference order.
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
      const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
      std::size_t r = lo;
      std::array<const double*, kLanes> xr;
      std::array<std::int32_t, kLanes> n;
      std::array<double, kLanes> acc;
      for (; r + kLanes <= hi; r += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) xr[l] = x.row(r + l).data();
        acc.fill(base_[k]);
        for (std::size_t t = t_begin; t < t_end; ++t) {
          walk_lanes(roots_[t], depth_[t], xr, n);
          for (std::size_t l = 0; l < kLanes; ++l) {
            acc[l] += threshold_[static_cast<std::size_t>(n[l])];
          }
        }
        for (std::size_t l = 0; l < kLanes; ++l) out(r + l, k) = acc[l];
      }
      for (; r < hi; ++r) {
        double sum = base_[k];
        const double* xr1 = x.row(r).data();
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const std::int32_t leaf = walk(roots_[t], depth_[t], xr1);
          sum += threshold_[static_cast<std::size_t>(leaf)];
        }
        out(r, k) = sum;
      }
    }
    return;
  }
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t root = roots_[t];
    const std::int32_t steps = depth_[t];
    const auto add_leaf = [&](std::size_t r, std::int32_t leaf) {
      const double* v =
          values_.data() +
          static_cast<std::size_t>(threshold_[static_cast<std::size_t>(leaf)]);
      double* dst = out.row(r).data();
      for (std::size_t k = 0; k < value_width_; ++k) dst[k] += v[k];
    };
    std::size_t r = lo;
    std::array<const double*, kLanes> xr;
    std::array<std::int32_t, kLanes> n;
    for (; r + kLanes <= hi; r += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) xr[l] = x.row(r + l).data();
      walk_lanes(root, steps, xr, n);
      for (std::size_t l = 0; l < kLanes; ++l) add_leaf(r + l, n[l]);
    }
    for (; r < hi; ++r) add_leaf(r, walk(root, steps, x.row(r).data()));
  }
  if (kind_ == Kind::kForestMean) {
    for (std::size_t r = lo; r < hi; ++r) {
      for (double& v : out.row(r)) v /= n_trees_;
    }
  }
}

Matrix CompiledEnsemble::predict(const Matrix& x, ThreadPool* pool) const {
  MPHPC_EXPECTS(compiled());
  MPHPC_EXPECTS(x.cols() == n_features_);
  Matrix out(x.rows(), n_outputs_);
  const auto run_rows = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t lo = row_begin; lo < row_end; lo += kTile) {
      predict_tile(x, lo, std::min(row_end, lo + kTile), out);
    }
  };
  if (pool != nullptr && x.rows() > 1) {
    // Chunks are contiguous row ranges; every (row, output) accumulator is
    // owned by exactly one chunk, so the partition cannot change results.
    pool->parallel_chunks(0, x.rows(),
                          [&](std::size_t, std::size_t b, std::size_t e) {
                            run_rows(b, e);
                          });
  } else {
    run_rows(0, x.rows());
  }
  return out;
}

void CompiledEnsemble::predict_row(std::span<const double> x,
                                   std::span<double> out) const {
  MPHPC_EXPECTS(compiled());
  MPHPC_EXPECTS(out.size() == n_outputs_);
  MPHPC_EXPECTS(x.size() == n_features_);
  if (kind_ == Kind::kGbt) {
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      double acc = base_[k];
      const auto t_begin = static_cast<std::size_t>(output_begin_[k]);
      const auto t_end = static_cast<std::size_t>(output_begin_[k + 1]);
      for (std::size_t t = t_begin; t < t_end; ++t) {
        const std::int32_t leaf = walk(roots_[t], depth_[t], x.data());
        acc += threshold_[static_cast<std::size_t>(leaf)];
      }
      out[k] = acc;
    }
    return;
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t leaf = walk(roots_[t], depth_[t], x.data());
    const double* v =
        values_.data() +
        static_cast<std::size_t>(threshold_[static_cast<std::size_t>(leaf)]);
    for (std::size_t k = 0; k < value_width_; ++k) out[k] += v[k];
  }
  if (kind_ == Kind::kForestMean) {
    for (double& v : out) v /= n_trees_;
  }
}

}  // namespace mphpc::ml
