#include "ml/knn_regressor.hpp"

#include "common/contract.hpp"

#include <algorithm>
#include <cmath>

namespace mphpc::ml {

void KnnRegressor::fit(const Matrix& x, const Matrix& y, ThreadPool* /*pool*/) {
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 0 && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.k >= 1);
  MPHPC_EXPECTS(options_.weight_power >= 0.0);
  x_ = x;
  y_ = y;
}

void KnnRegressor::predict_one(std::span<const double> x,
                               std::span<double> out) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.size() == x_.cols() && out.size() == y_.cols());

  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(options_.k), x_.rows());

  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> dist(x_.rows());
  for (std::size_t r = 0; r < x_.rows(); ++r) {
    const auto row = x_.row(r);
    double d2 = 0.0;
    for (std::size_t c = 0; c < x.size(); ++c) {
      const double d = row[c] - x[c];
      d2 += d * d;
    }
    dist[r] = {d2, r};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());

  std::fill(out.begin(), out.end(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(dist[i].first);
    // Exact matches dominate: give them overwhelming (but finite) weight.
    const double w = options_.weight_power == 0.0
                         ? 1.0
                         : 1.0 / std::pow(std::max(d, 1e-12), options_.weight_power);
    const auto yr = y_.row(dist[i].second);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += w * yr[c];
    weight_sum += w;
  }
  for (double& v : out) v /= weight_sum;
}

Matrix KnnRegressor::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.cols() == x_.cols());
  Matrix out(x.rows(), y_.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    predict_one(x.row(r), out.row(r));
  }
  return out;
}

}  // namespace mphpc::ml
