// File-level save/load helpers for serialized models, so a trained
// predictor can be exported and reused without retraining (the paper's
// "model is exported and used in downstream tasks" workflow).
#pragma once

#include <string>

namespace mphpc::ml {

/// Writes text to a file; throws std::runtime_error on failure.
void save_text(const std::string& text, const std::string& path);

/// Reads an entire file; throws std::runtime_error on failure.
[[nodiscard]] std::string load_text(const std::string& path);

}  // namespace mphpc::ml
