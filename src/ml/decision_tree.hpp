// Multi-output CART regression tree.
//
// Splits minimize the summed per-output SSE (equivalently maximize
// variance reduction). Two split-search methods are available. kExact —
// the default — grows level-wise over per-tree pre-sorted feature orders:
// each level costs one O(features x samples) sweep instead of per-node
// re-sorting, the same strategy XGBoost's exact-greedy mode uses. kHist
// quantizes each feature into at most max_bins quantile bins once
// (ml/binning.hpp), accumulates per-node (count, target-sum) histograms,
// derives each split pair's larger child by sibling subtraction
// (ml/hist_common.hpp), and sweeps bin boundaries instead of rows —
// faster at forest scale because a shared BinnedMatrix replaces the
// per-tree sorts (see fit_rows_binned). Feature subsampling (mtry) is
// drawn per node, as in classic random forests. All randomness is seeded;
// parallel feature sweeps reduce in fixed feature order, so fits are
// bit-deterministic in both methods.
#pragma once

#include <cstdint>

#include "ml/binning.hpp"
#include "ml/model.hpp"

namespace mphpc::ml {

struct TreeOptions {
  int max_depth = 16;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  double min_gain = 0.0;    ///< minimum SSE reduction to accept a split
  int max_features = 0;     ///< per-node feature subset size; 0 = all features
  std::uint64_t seed = 1;   ///< feature-subsampling stream
  /// Split search: exact-greedy (reference) or histogram sweeps over
  /// quantile bins. Opt-in: kExact keeps existing fits bit-stable.
  TreeMethod method = TreeMethod::kExact;
  /// Histogram bins per feature (2..256, kHist). 0 = auto:
  /// clamp(rows / 64, 32, 256) (resolve_max_bins).
  int max_bins = 64;
};

/// One node of a fitted tree. Leaves have feature == -1 and carry the mean
/// output vector of their training rows.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  std::vector<double> value;

  [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;

  /// Fits on a row multiset (duplicates allowed — used for bootstrap
  /// sampling by the forest). Honors options().method: kHist builds a
  /// private BinnedMatrix first.
  void fit_rows(const Matrix& x, const Matrix& y, std::span<const std::size_t> rows,
                ThreadPool* pool = nullptr);

  /// kHist fit over a pre-built BinnedMatrix of `x` (shape-checked). The
  /// forest builds the binning once and shares it across all trees, which
  /// is where the histogram method's speedup comes from.
  void fit_rows_binned(const Matrix& x, const Matrix& y,
                       std::span<const std::size_t> rows,
                       const BinnedMatrix& binned, ThreadPool* pool = nullptr);

  [[nodiscard]] Matrix predict(const Matrix& x) const override;

  /// Prediction for a single sample.
  [[nodiscard]] std::span<const double> predict_one(std::span<const double> x) const;

  [[nodiscard]] std::string name() const override { return "decision tree"; }
  [[nodiscard]] bool fitted() const noexcept override { return !nodes_.empty(); }

  /// Summed SSE-reduction per feature, normalized to sum to 1 (all-zero if
  /// the tree is a single leaf).
  [[nodiscard]] std::optional<std::vector<double>> feature_importances() const override;

  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }
  [[nodiscard]] std::size_t depth() const noexcept;

  [[nodiscard]] const TreeOptions& options() const noexcept { return options_; }

 private:
  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::vector<double> gain_per_feature_;
  std::size_t n_features_ = 0;
};

}  // namespace mphpc::ml
