#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <optional>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "ml/binning.hpp"
#include "ml/hist_common.hpp"

namespace mphpc::ml {

double GbtTree::predict(std::span<const double> x) const {
  MPHPC_EXPECTS(!nodes.empty());
  std::size_t i = 0;
  while (!nodes[i].is_leaf()) {
    const GbtNode& n = nodes[i];
    i = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right);
  }
  return nodes[i].weight;
}

namespace {

struct SplitCandidate {
  double gain = 0.0;
  double threshold = 0.0;
  int feature = -1;
  int bin = -1;  ///< kHist: last bin going left (codes <= bin)
};

/// Per-fit shared context: the method-specific view of X (global feature
/// pre-sort for kExact, quantile bin codes for kHist) plus the pool used
/// for in-tree per-feature parallelism.
struct BuildContext {
  const Matrix& x;
  std::vector<std::vector<std::uint32_t>> sorted;  ///< kExact: [feature] order
  std::optional<BinnedMatrix> binned;              ///< kHist: uint8 codes
  ThreadPool* pool = nullptr;

  BuildContext(const Matrix& matrix, const GbtOptions& opt, ThreadPool* p)
      : x(matrix), pool(p) {
    if (opt.tree_method == GbtTreeMethod::kHist) {
      binned.emplace(BinnedMatrix::build(x, opt.max_bins, pool));
      return;
    }
    const std::size_t n = x.rows();
    sorted.resize(x.cols());
    for (std::size_t f = 0; f < x.cols(); ++f) {
      auto& order = sorted[f];
      order.resize(n);
      std::iota(order.begin(), order.end(), std::uint32_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&, f](std::uint32_t a, std::uint32_t b) {
                         return x(a, f) < x(b, f);
                       });
    }
  }
};

/// Runs fn(f) for every active feature, distributing whole features over
/// the pool. Each feature's work is self-contained and internally serial,
/// so the result does not depend on the chunking or the thread count.
void for_each_active_feature(const BuildContext& ctx,
                             std::span<const std::uint8_t> in_cols,
                             const std::function<void(std::size_t)>& fn) {
  const std::size_t n_feat = ctx.x.cols();
  if (ctx.pool != nullptr && n_feat > 1) {
    ctx.pool->parallel_for(0, n_feat, [&](std::size_t f) {
      if (in_cols[f]) fn(f);
    });
    return;
  }
  for (std::size_t f = 0; f < n_feat; ++f) {
    if (in_cols[f]) fn(f);
  }
}

/// Builds one boosted tree with exact-greedy splits on the in-sample rows
/// with gradients g and hessians h, accumulating split gains into
/// `gain_sum`/`split_count`. Reference implementation for kHist.
GbtTree build_tree_exact(const BuildContext& ctx, const GbtOptions& opt,
                   std::span<const double> g, std::span<const double> h,
                   std::span<const std::uint8_t> in_sample,
                   std::span<const std::uint8_t> in_cols,
                   std::span<double> gain_sum, std::span<double> split_count) {
  const Matrix& x = ctx.x;
  const std::size_t n = x.rows();
  const std::size_t n_feat = x.cols();

  GbtTree tree;
  tree.nodes.emplace_back();

  // node_of[row] = current node, or -1 if the row is out-of-sample.
  std::vector<std::int32_t> node_of(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    if (!in_sample[r]) node_of[r] = -1;
  }

  std::vector<std::int32_t> level_nodes = {0};
  // Per-node G/H, indexed by node id (grows as nodes are added).
  std::vector<double> node_g = {0.0};
  std::vector<double> node_h = {0.0};
  for (std::size_t r = 0; r < n; ++r) {
    if (node_of[r] == 0) {
      node_g[0] += g[r];
      node_h[0] += h[r];
    }
  }

  for (int depth = 0; depth < opt.max_depth && !level_nodes.empty(); ++depth) {
    const std::size_t n_dense = level_nodes.size();
    std::vector<std::int32_t> dense_of(tree.nodes.size(), -1);
    for (std::size_t d = 0; d < n_dense; ++d) {
      dense_of[static_cast<std::size_t>(level_nodes[d])] = static_cast<std::int32_t>(d);
    }

    std::vector<double> parent_score(n_dense);
    std::vector<std::uint8_t> may_split(n_dense);
    for (std::size_t d = 0; d < n_dense; ++d) {
      const auto node = static_cast<std::size_t>(level_nodes[d]);
      parent_score[d] = node_g[node] * node_g[node] / (node_h[node] + opt.lambda);
      may_split[d] = node_h[node] >= 2.0 * opt.min_child_weight ? 1 : 0;
    }

    // Sweep every active feature; keep the per-feature best per node and
    // reduce in feature order for determinism.
    std::vector<SplitCandidate> bests(n_feat * n_dense);
    for (std::size_t f = 0; f < n_feat; ++f) {
      if (!in_cols[f]) continue;
      std::vector<double> gl(n_dense, 0.0);
      std::vector<double> hl(n_dense, 0.0);
      std::vector<double> prev(n_dense, 0.0);
      std::vector<std::uint8_t> has_prev(n_dense, 0);
      SplitCandidate* best = &bests[f * n_dense];

      for (const std::uint32_t r : ctx.sorted[f]) {
        const std::int32_t node = node_of[r];
        if (node < 0) continue;
        const std::int32_t d32 = dense_of[static_cast<std::size_t>(node)];
        if (d32 < 0) continue;
        const auto d = static_cast<std::size_t>(d32);
        if (!may_split[d]) continue;
        const double v = x(r, f);
        const auto nid = static_cast<std::size_t>(node);

        if (has_prev[d] && v > prev[d] && hl[d] >= opt.min_child_weight &&
            node_h[nid] - hl[d] >= opt.min_child_weight) {
          const double gr = node_g[nid] - gl[d];
          const double hr = node_h[nid] - hl[d];
          const double gain = 0.5 * (gl[d] * gl[d] / (hl[d] + opt.lambda) +
                                     gr * gr / (hr + opt.lambda) - parent_score[d]) -
                              opt.gamma;
          if (gain > best[d].gain) {
            best[d] = {gain, 0.5 * (prev[d] + v), static_cast<int>(f)};
          }
        }
        gl[d] += g[r];
        hl[d] += h[r];
        prev[d] = v;
        has_prev[d] = 1;
      }
    }

    std::vector<SplitCandidate> winner(n_dense);
    for (std::size_t f = 0; f < n_feat; ++f) {
      for (std::size_t d = 0; d < n_dense; ++d) {
        const SplitCandidate& c = bests[f * n_dense + d];
        if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
      }
    }

    std::vector<std::int32_t> next_level;
    bool any_split = false;
    for (std::size_t d = 0; d < n_dense; ++d) {
      const SplitCandidate& w = winner[d];
      if (w.feature < 0 || w.gain <= 0.0) continue;
      const auto node = static_cast<std::size_t>(level_nodes[d]);
      tree.nodes[node].feature = w.feature;
      tree.nodes[node].threshold = w.threshold;
      tree.nodes[node].left = static_cast<int>(tree.nodes.size());
      tree.nodes[node].right = static_cast<int>(tree.nodes.size() + 1);
      next_level.push_back(static_cast<std::int32_t>(tree.nodes.size()));
      next_level.push_back(static_cast<std::int32_t>(tree.nodes.size() + 1));
      tree.nodes.emplace_back();
      tree.nodes.emplace_back();
      node_g.resize(tree.nodes.size(), 0.0);
      node_h.resize(tree.nodes.size(), 0.0);
      gain_sum[static_cast<std::size_t>(w.feature)] += w.gain;
      split_count[static_cast<std::size_t>(w.feature)] += 1.0;
      any_split = true;
    }
    if (!any_split) break;

    // Re-partition rows and accumulate child G/H.
    for (std::size_t r = 0; r < n; ++r) {
      const std::int32_t node = node_of[r];
      if (node < 0) continue;
      const GbtNode& parent = tree.nodes[static_cast<std::size_t>(node)];
      if (parent.is_leaf()) continue;
      const std::int32_t child =
          x(r, static_cast<std::size_t>(parent.feature)) <= parent.threshold
              ? parent.left
              : parent.right;
      node_of[r] = child;
      node_g[static_cast<std::size_t>(child)] += g[r];
      node_h[static_cast<std::size_t>(child)] += h[r];
    }
    level_nodes = std::move(next_level);
  }

  // Leaf weights: w* = -G/(H+lambda), shrunk by the learning rate.
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (!tree.nodes[i].is_leaf()) continue;
    tree.nodes[i].weight =
        -node_g[i] / (node_h[i] + opt.lambda) * opt.learning_rate;
  }
  return tree;
}

// ---------------------------------------------------------------- kHist ----

/// Per-node histogram: interleaved (G, H) per (feature, bin), laid out
/// raggedly via hist::Layout (width 2) so near-constant features (one-hots,
/// flags) cost a few cells instead of a full max_bins stride.
using Histogram = std::vector<double>;
using hist::SiblingPair;

/// Accumulates rows `node_rows` of one feature into its histogram slice.
void accumulate_feature(const std::uint8_t* codes, double* slice,
                        std::span<const std::uint32_t> node_rows,
                        std::span<const double> g, std::span<const double> h) {
  for (const std::uint32_t r : node_rows) {
    const auto b = static_cast<std::size_t>(codes[r]);
    slice[2 * b] += g[r];
    slice[2 * b + 1] += h[r];
  }
}

/// Sweeps the bin boundaries of feature f in `hist` and records the best
/// split for a node with totals (sum_g, sum_h). The cumulative left sums
/// accumulate in ascending bin order, so re-summing bins [0, best.bin]
/// later reproduces the winning child sums bit-for-bit.
void best_bin_split(const BinnedMatrix& bm, std::size_t f,
                    const hist::Layout& layout, const Histogram& hist,
                    double sum_g, double sum_h, const GbtOptions& opt,
                    SplitCandidate& best) {
  const FeatureBins& fb = bm.bins(f);
  const int nb = fb.n_bins();
  const double* slice = hist.data() + layout.begin_cell(f);
  const double parent_score = sum_g * sum_g / (sum_h + opt.lambda);
  double gl = 0.0;
  double hl = 0.0;
  for (int b = 0; b + 1 < nb; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    gl += slice[2 * bi];
    hl += slice[2 * bi + 1];
    if (hl < opt.min_child_weight) continue;
    const double hr = sum_h - hl;
    if (hr < opt.min_child_weight) break;  // hl only grows, hr only shrinks
    const double gr = sum_g - gl;
    const double gain = 0.5 * (gl * gl / (hl + opt.lambda) +
                               gr * gr / (hr + opt.lambda) - parent_score) -
                        opt.gamma;
    if (gain > best.gain) {
      best = {gain, fb.thresholds[bi], static_cast<int>(f), b};
    }
  }
}

/// Bookkeeping for one tree level: dense node ids and their histograms.
struct HistLevel {
  std::vector<std::int32_t> nodes;  ///< tree node id per dense index
  std::vector<Histogram> hists;     ///< per dense index
};

/// Level-wise histogram tree builder (kHist). One instance builds one
/// boosted tree; shared per-tree state lives here so each level step stays
/// small. In-sample rows live in a hist::NodePartition: one ascending
/// array, stably partitioned so that every node owns a contiguous range
/// and row order inside a node never depends on the split schedule.
struct HistTreeBuilder {
  const GbtOptions& opt;
  const BuildContext& ctx;
  const BinnedMatrix& bm;
  std::span<const double> g;
  std::span<const double> h;
  std::span<const std::uint8_t> in_cols;
  std::span<double> gain_sum;
  std::span<double> split_count;
  hist::Layout layout;  ///< ragged (G, H) histogram layout

  hist::NodePartition part;  ///< in-sample rows, node-partitioned
  GbtTree tree;
  std::vector<double> node_g;  ///< per node id, gradient/hessian totals
  std::vector<double> node_h;

  HistTreeBuilder(const BuildContext& context, const GbtOptions& options,
                  std::span<const double> grad, std::span<const double> hess,
                  std::span<const std::uint8_t> in_sample,
                  std::span<const std::uint8_t> cols,
                  std::span<double> gains, std::span<double> counts)
      : opt(options), ctx(context), bm(*context.binned), g(grad), h(hess),
        in_cols(cols), gain_sum(gains), split_count(counts),
        layout(hist::Layout::make(bm, 2)) {
    std::vector<std::uint32_t> rows;
    rows.reserve(ctx.x.rows());
    for (std::size_t r = 0; r < ctx.x.rows(); ++r) {
      if (in_sample[r]) rows.push_back(static_cast<std::uint32_t>(r));
    }
    part.reset(std::move(rows));
    tree.nodes.emplace_back();
    node_g = {0.0};
    node_h = {0.0};
    for (const std::uint32_t r : part.items(0)) {
      node_g[0] += g[r];
      node_h[0] += h[r];
    }
  }

  /// Records feature f's best bin split for tree node nid, provided the
  /// node has enough hessian mass for two children.
  void sweep_node(std::size_t f, const Histogram& hist, std::size_t nid,
                  SplitCandidate& best) const {
    if (node_h[nid] < 2.0 * opt.min_child_weight) return;
    best_bin_split(bm, f, layout, hist, node_g[nid], node_h[nid], opt, best);
  }

  /// Applies the winning split of dense node d: writes the parent's split,
  /// appends the two children, stably partitions the parent's row range by
  /// bin code, and derives child G/H sums (left by re-summing the winning
  /// histogram prefix — the same additions the sweep performed, so the
  /// totals match it bit-for-bit — right by subtraction).
  void apply_split(const HistLevel& level, std::size_t d, const SplitCandidate& w,
                   HistLevel& next, std::vector<SiblingPair>& pairs) {
    const auto nid = static_cast<std::size_t>(level.nodes[d]);
    const auto left_id = static_cast<int>(tree.nodes.size());
    tree.nodes[nid].feature = w.feature;
    tree.nodes[nid].threshold = w.threshold;
    tree.nodes[nid].left = left_id;
    tree.nodes[nid].right = left_id + 1;
    tree.nodes.emplace_back();
    tree.nodes.emplace_back();

    const std::uint8_t* codes = bm.codes(static_cast<std::size_t>(w.feature));
    const std::size_t left_count = part.split(nid, codes, w.bin);

    const double* slice = level.hists[d].data() +
                          layout.begin_cell(static_cast<std::size_t>(w.feature));
    double gl = 0.0;
    double hl = 0.0;
    for (int b = 0; b <= w.bin; ++b) {
      gl += slice[2 * static_cast<std::size_t>(b)];
      hl += slice[2 * static_cast<std::size_t>(b) + 1];
    }
    node_g.insert(node_g.end(), {gl, node_g[nid] - gl});
    node_h.insert(node_h.end(), {hl, node_h[nid] - hl});

    const std::size_t left_dense = next.nodes.size();
    next.nodes.push_back(left_id);
    next.nodes.push_back(left_id + 1);
    const bool left_small =
        left_count <= part.count(static_cast<std::size_t>(left_id) + 1);
    pairs.push_back(left_small ? SiblingPair{d, left_dense, left_dense + 1}
                               : SiblingPair{d, left_dense + 1, left_dense});
    gain_sum[static_cast<std::size_t>(w.feature)] += w.gain;
    split_count[static_cast<std::size_t>(w.feature)] += 1.0;
  }

  /// Builds the next level's histograms and, fused into the same pass,
  /// that level's per-feature split candidates: each pair's smaller child
  /// is accumulated from its rows, the larger derived by subtracting it
  /// from the parent's histogram (whose buffer it inherits), and both are
  /// swept while still cache-hot. Each feature's work is self-contained;
  /// the candidate reduction happens later in fixed feature order.
  std::vector<SplitCandidate> make_child_level(
      HistLevel& level, HistLevel& next, const std::vector<SiblingPair>& pairs) {
    const std::size_t n_next = next.nodes.size();
    next.hists.resize(n_next);
    for (const SiblingPair& pair : pairs) {
      next.hists[pair.small_dense].assign(layout.cells(), 0.0);
      next.hists[pair.big_dense] = std::move(level.hists[pair.parent_dense]);
    }
    std::vector<SplitCandidate> bests(ctx.x.cols() * n_next);
    for_each_active_feature(ctx, in_cols, [&](std::size_t f) {
      const std::uint8_t* codes = bm.codes(f);
      const std::size_t lo_cell = layout.begin_cell(f);
      const std::size_t f_cells = layout.feature_cells(f);
      for (const SiblingPair& pair : pairs) {
        Histogram& small = next.hists[pair.small_dense];
        Histogram& big = next.hists[pair.big_dense];
        const auto small_nid =
            static_cast<std::size_t>(next.nodes[pair.small_dense]);
        accumulate_feature(codes, small.data() + lo_cell, part.items(small_nid),
                           g, h);
        hist::subtract_sibling(big.data() + lo_cell, small.data() + lo_cell,
                               f_cells);
        sweep_node(f, small, small_nid, bests[f * n_next + pair.small_dense]);
        sweep_node(f, big, static_cast<std::size_t>(next.nodes[pair.big_dense]),
                   bests[f * n_next + pair.big_dense]);
      }
    });
    return bests;
  }

  GbtTree build() {
    const std::size_t n_feat = ctx.x.cols();
    HistLevel level;
    level.nodes = {0};
    level.hists.emplace_back(layout.cells(), 0.0);
    std::vector<SplitCandidate> bests(n_feat);
    for_each_active_feature(ctx, in_cols, [&](std::size_t f) {
      accumulate_feature(bm.codes(f),
                         level.hists[0].data() + layout.begin_cell(f),
                         part.items(0), g, h);
      sweep_node(f, level.hists[0], 0, bests[f]);
    });

    for (int depth = 0; depth < opt.max_depth && !level.nodes.empty(); ++depth) {
      const std::size_t n_dense = level.nodes.size();
      // Reduce the carried per-feature candidates in fixed feature order.
      std::vector<SplitCandidate> winner(n_dense);
      for (std::size_t f = 0; f < n_feat; ++f) {
        for (std::size_t d = 0; d < n_dense; ++d) {
          const SplitCandidate& c = bests[f * n_dense + d];
          if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
        }
      }
      HistLevel next;
      std::vector<SiblingPair> pairs;
      for (std::size_t d = 0; d < n_dense; ++d) {
        if (winner[d].feature >= 0 && winner[d].gain > 0.0) {
          apply_split(level, d, winner[d], next, pairs);
        }
      }
      if (next.nodes.empty()) break;
      // Children at max depth become leaves; no histograms needed.
      if (depth + 1 < opt.max_depth) {
        bests = make_child_level(level, next, pairs);
      }
      level = std::move(next);
    }

    // Leaf weights: w* = -G/(H+lambda), shrunk by the learning rate.
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      if (!tree.nodes[i].is_leaf()) continue;
      tree.nodes[i].weight =
          -node_g[i] / (node_h[i] + opt.lambda) * opt.learning_rate;
    }
    return tree;
  }
};

/// Builds one boosted tree using per-node gradient histograms over the
/// pre-binned features (see the header comment in gbt.hpp).
GbtTree build_tree_hist(const BuildContext& ctx, const GbtOptions& opt,
                        std::span<const double> g, std::span<const double> h,
                        std::span<const std::uint8_t> in_sample,
                        std::span<const std::uint8_t> in_cols,
                        std::span<double> gain_sum, std::span<double> split_count) {
  return HistTreeBuilder(ctx, opt, g, h, in_sample, in_cols, gain_sum,
                         split_count)
      .build();
}

/// Per-tree subsampling mask: marks `sampled` of `total` entries drawn
/// without replacement, or everything when subsampling is off (in which
/// case the RNG is deliberately not advanced — matching the resume
/// burn-in, which skips the draw under the same condition).
void fill_sample_mask(Rng& rng, std::vector<std::uint8_t>& mask,
                      std::size_t total, std::size_t sampled) {
  if (sampled < total) {
    std::fill(mask.begin(), mask.end(), std::uint8_t{0});
    for (const std::size_t i : sample_without_replacement(rng, total, sampled)) {
      mask[i] = 1;
    }
  } else {
    std::fill(mask.begin(), mask.end(), std::uint8_t{1});
  }
}

/// Gradient/hessian of the objective at residual r = pred - y.
inline void gradients(GbtObjective objective, double delta, double pred, double y,
                      double& g, double& h) noexcept {
  const double r = pred - y;
  if (objective == GbtObjective::kSquaredError) {
    g = r;
    h = 1.0;
    return;
  }
  // Pseudo-Huber: L = delta^2 (sqrt(1+(r/delta)^2) - 1); smooth |r|.
  const double s = 1.0 + (r / delta) * (r / delta);
  const double sq = std::sqrt(s);
  g = r / sq;
  h = 1.0 / (s * sq);
}

/// Structural validation of an untrusted (deserialized) tree. GbtTree::
/// predict indexes nodes unchecked and follows child links in a loop, so a
/// corrupt model could otherwise read out of bounds or cycle forever:
/// every internal node must reference a real feature and strictly-forward
/// in-range children (forward links make the node graph acyclic), and
/// leaves must not carry children.
void validate_tree_topology(const GbtTree& tree, std::size_t n_feat) {
  const auto n_nodes = static_cast<long long>(tree.nodes.size());
  for (std::size_t node = 0; node < tree.nodes.size(); ++node) {
    const GbtNode& gn = tree.nodes[node];
    const std::string at = "gbt: node " + std::to_string(node);
    if (gn.is_leaf()) {
      if (gn.left != -1 || gn.right != -1) {
        throw ParseError(at + ": leaf has child links");
      }
      continue;
    }
    if (static_cast<std::size_t>(gn.feature) >= n_feat) {
      throw ParseError(at + ": feature " + std::to_string(gn.feature) +
                       " out of range");
    }
    const auto self = static_cast<long long>(node);
    if (gn.left <= self || gn.left >= n_nodes || gn.right <= self ||
        gn.right >= n_nodes) {
      throw ParseError(at + ": child links must point forward and in range");
    }
  }
}

}  // namespace

void GbtRegressor::fit(const Matrix& x, const Matrix& y, ThreadPool* pool) {
  // fit() always starts fresh — drop any previous (or partial) state so
  // fit_resumable does not mistake it for a checkpoint to resume.
  ensembles_.clear();
  base_score_.clear();
  gain_sum_.clear();
  split_count_.clear();
  gain_by_output_.clear();
  count_by_output_.clear();
  fit_resumable(x, y, 0, nullptr, pool);
}

void GbtRegressor::fit_resumable(const Matrix& x, const Matrix& y,
                                 int checkpoint_every,
                                 const ProgressFn& on_checkpoint, ThreadPool* pool) {
  fit_impl(x, y, checkpoint_every, on_checkpoint, pool, /*warm=*/false);
}

void GbtRegressor::warm_start_fit(const Matrix& x, const Matrix& y,
                                  int extra_rounds, ThreadPool* pool) {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(extra_rounds >= 1);
  MPHPC_EXPECTS(x.cols() == n_features_ && y.cols() == ensembles_.size());
  options_.n_rounds = rounds_completed() + extra_rounds;
  fit_impl(x, y, /*checkpoint_every=*/0, nullptr, pool, /*warm=*/true);
}

void GbtRegressor::fit_impl(const Matrix& x, const Matrix& y,
                            int checkpoint_every,
                            const ProgressFn& on_checkpoint, ThreadPool* pool,
                            bool warm) {
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 0 && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.n_rounds >= 1 && options_.max_depth >= 1);
  MPHPC_EXPECTS(options_.subsample > 0.0 && options_.subsample <= 1.0);
  MPHPC_EXPECTS(options_.colsample > 0.0 && options_.colsample <= 1.0);
  MPHPC_EXPECTS(options_.tree_method == GbtTreeMethod::kExact || options_.max_bins == 0 ||
                (options_.max_bins >= 2 && options_.max_bins <= BinnedMatrix::kMaxBins));
  MPHPC_EXPECTS(checkpoint_every >= 0);

  const std::size_t n = x.rows();
  const std::size_t n_feat = x.cols();
  const std::size_t n_out = y.cols();

  const int start_round = begin_fit(n_feat, n_out);

  GbtOptions build_opt = options_;
  build_opt.max_bins = resolve_max_bins(options_.max_bins, n);
  const BuildContext ctx(x, build_opt, pool);

  const auto n_cols_sampled = static_cast<std::size_t>(std::max(
      1.0, std::round(options_.colsample * static_cast<double>(n_feat))));
  const auto n_rows_sampled = static_cast<std::size_t>(
      std::max(1.0, std::round(options_.subsample * static_cast<double>(n))));

  // Per-output training state, carried across checkpoint blocks so block
  // boundaries never change the arithmetic.
  struct OutputState {
    std::vector<double> pred;
    std::vector<double> g;
    std::vector<double> h;
    std::vector<std::uint8_t> in_sample;
    std::vector<std::uint8_t> in_cols;
    Rng rng{0};
  };
  std::vector<OutputState> states(n_out);

  const auto init_output = [&](std::size_t k) {
    OutputState& st = states[k];
    if (!warm) {
      // Base score: mean target of this output (recomputed identically on
      // resume — the data is the same fit's data). A warm start keeps the
      // fitted base score instead: the stored trees were built against it,
      // and the new window's mean would shift their implicit target.
      double mean = 0.0;
      for (std::size_t r = 0; r < n; ++r) mean += y(r, k);
      mean /= static_cast<double>(n);
      base_score_[k] = mean;
    }

    st.pred.assign(n, base_score_[k]);
    st.g.resize(n);
    st.h.resize(n);
    st.in_sample.resize(n);
    st.in_cols.resize(n_feat);
    ensembles_[k].reserve(static_cast<std::size_t>(options_.n_rounds));

    if (warm) {
      // Fresh stream per (output, generation): the prior rounds' draws
      // were made against a different window, so replaying them would be
      // meaningless — keying on start_round keeps every refit generation
      // deterministic and distinct.
      st.rng = Rng(derive_seed(options_.seed, "warm",
                               static_cast<std::uint64_t>(k),
                               static_cast<std::uint64_t>(start_round)));
    } else {
      st.rng = Rng(derive_seed(options_.seed, "output", static_cast<std::uint64_t>(k)));
      // Resume burn-in: replay the completed rounds' sampling draws so
      // the RNG stream continues exactly where the interrupted fit
      // stopped.
      for (int round = 0; round < start_round; ++round) {
        if (n_rows_sampled < n) {
          (void)sample_without_replacement(st.rng, n, n_rows_sampled);
        }
        if (n_cols_sampled < n_feat) {
          (void)sample_without_replacement(st.rng, n_feat, n_cols_sampled);
        }
      }
    }
    // Rebuild pred by re-adding the stored trees in round order (resume:
    // the same additions the original fit performed; warm: the ensemble's
    // predictions on the new window).
    for (int round = 0; round < start_round; ++round) {
      const GbtTree& tree = ensembles_[k][static_cast<std::size_t>(round)];
      for (std::size_t r = 0; r < n; ++r) st.pred[r] += tree.predict(x.row(r));
    }
  };

  const auto fit_rounds = [&](std::size_t k, int from, int to) {
    OutputState& st = states[k];
    auto& ensemble = ensembles_[k];
    for (int round = from; round < to; ++round) {
      for (std::size_t r = 0; r < n; ++r) {
        gradients(options_.objective, options_.huber_delta, st.pred[r], y(r, k),
                  st.g[r], st.h[r]);
      }

      fill_sample_mask(st.rng, st.in_sample, n, n_rows_sampled);
      fill_sample_mask(st.rng, st.in_cols, n_feat, n_cols_sampled);

      GbtTree tree =
          options_.tree_method == GbtTreeMethod::kHist
              ? build_tree_hist(ctx, build_opt, st.g, st.h, st.in_sample,
                                st.in_cols, gain_by_output_[k], count_by_output_[k])
              : build_tree_exact(ctx, build_opt, st.g, st.h, st.in_sample,
                                 st.in_cols, gain_by_output_[k], count_by_output_[k]);
      for (std::size_t r = 0; r < n; ++r) st.pred[r] += tree.predict(x.row(r));
      ensemble.push_back(std::move(tree));
    }
  };

  const auto over_outputs = [&](const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr && n_out > 1) {
      pool->parallel_for(0, n_out, fn);
    } else {
      for (std::size_t k = 0; k < n_out; ++k) fn(k);
    }
  };

  over_outputs(init_output);

  const int block = checkpoint_every > 0 ? checkpoint_every : options_.n_rounds;
  for (int from = start_round; from < options_.n_rounds; from += block) {
    const int to = std::min(options_.n_rounds, from + block);
    over_outputs([&](std::size_t k) { fit_rounds(k, from, to); });
    if (on_checkpoint && to < options_.n_rounds) {
      // Keep the merged importances consistent before the caller
      // serializes the partial model.
      merge_importances();
      on_checkpoint(to);
    }
  }

  merge_importances();
}

int GbtRegressor::begin_fit(std::size_t n_feat, std::size_t n_out) {
  if (fitted()) {
    // Resume: the model holds the first rounds_completed() trees of the
    // very fit being continued. The shapes must match the data, and the
    // per-output importance accumulators must have survived the
    // round-trip (they are required to keep FP accumulation order).
    MPHPC_EXPECTS(n_features_ == n_feat && ensembles_.size() == n_out);
    const int start_round = rounds_completed();
    for (const auto& ensemble : ensembles_) {
      MPHPC_EXPECTS(ensemble.size() == static_cast<std::size_t>(start_round));
    }
    MPHPC_EXPECTS(start_round <= options_.n_rounds);
    MPHPC_EXPECTS(gain_by_output_.size() == n_out &&
                  count_by_output_.size() == n_out);
    return start_round;
  }
  n_features_ = n_feat;
  ensembles_.assign(n_out, {});
  base_score_.assign(n_out, 0.0);
  gain_by_output_.assign(n_out, std::vector<double>(n_feat, 0.0));
  count_by_output_.assign(n_out, std::vector<double>(n_feat, 0.0));
  return 0;
}

void GbtRegressor::merge_importances() {
  gain_sum_.assign(n_features_, 0.0);
  split_count_.assign(n_features_, 0.0);
  for (std::size_t k = 0; k < gain_by_output_.size(); ++k) {
    for (std::size_t f = 0; f < n_features_; ++f) {
      gain_sum_[f] += gain_by_output_[k][f];
      split_count_[f] += count_by_output_[k][f];
    }
  }
}

Matrix GbtRegressor::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.cols() == n_features_);
  const std::size_t n_out = ensembles_.size();
  Matrix out(x.rows(), n_out);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    for (std::size_t k = 0; k < n_out; ++k) {
      double v = base_score_[k];
      for (const GbtTree& tree : ensembles_[k]) v += tree.predict(xr);
      out(r, k) = v;
    }
  }
  return out;
}

std::optional<std::vector<double>> GbtRegressor::feature_importances() const {
  if (!fitted()) return std::nullopt;
  std::vector<double> imp(n_features_, 0.0);
  for (std::size_t f = 0; f < n_features_; ++f) {
    if (split_count_[f] > 0.0) imp[f] = gain_sum_[f] / split_count_[f];
  }
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::string GbtRegressor::serialize() const {
  MPHPC_EXPECTS(fitted());
  std::string out = "gbt " + std::to_string(ensembles_.size()) + " " +
                    std::to_string(n_features_) + "\n";
  out += std::string("method ") +
         (options_.tree_method == GbtTreeMethod::kHist ? "hist" : "exact") + " " +
         std::to_string(options_.max_bins) + "\n";
  out += "base";
  for (const double b : base_score_) {
    out += ' ';
    out += format_double(b);
  }
  out += "\n";
  out += "importance_gain";
  for (const double v : gain_sum_) {
    out += ' ';
    out += format_double(v);
  }
  out += "\n";
  out += "importance_count";
  for (const double v : split_count_) {
    out += ' ';
    out += format_double(v);
  }
  out += "\n";
  // Per-output accumulators (checkpoint resume needs them to continue
  // the exact FP accumulation order). Older models without them still
  // load; they just cannot seed a resumed fit.
  if (gain_by_output_.size() == ensembles_.size()) {
    for (std::size_t k = 0; k < ensembles_.size(); ++k) {
      out += "importance_gain_out ";
      out += std::to_string(k);
      for (const double v : gain_by_output_[k]) {
        out += ' ';
        out += format_double(v);
      }
      out += "\n";
      out += "importance_count_out ";
      out += std::to_string(k);
      for (const double v : count_by_output_[k]) {
        out += ' ';
        out += format_double(v);
      }
      out += "\n";
    }
  }
  for (std::size_t k = 0; k < ensembles_.size(); ++k) {
    for (const GbtTree& tree : ensembles_[k]) {
      out += "tree " + std::to_string(k) + " " + std::to_string(tree.nodes.size()) + "\n";
      for (const GbtNode& node : tree.nodes) {
        out += std::to_string(node.feature) + " " + format_double(node.threshold) +
               " " + std::to_string(node.left) + " " + std::to_string(node.right) +
               " " + format_double(node.weight) + "\n";
      }
    }
  }
  return out;
}

GbtRegressor GbtRegressor::deserialize(std::string_view text) {
  const auto lines = split(text, '\n');
  std::size_t i = 0;
  const auto next_line = [&]() -> std::string_view {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    if (i >= lines.size()) throw ParseError("gbt: truncated model");
    return trim(lines[i++]);
  };

  const auto header = split(next_line(), ' ');
  if (header.size() != 3 || header[0] != "gbt") throw ParseError("gbt: bad header");
  const long long n_out_raw = parse_int(header[1]);
  const long long n_feat_raw = parse_int(header[2]);
  if (n_out_raw < 1 || n_feat_raw < 1) {
    throw ParseError("gbt: header output/feature counts must be positive");
  }
  const auto n_out = static_cast<std::size_t>(n_out_raw);
  const auto n_feat = static_cast<std::size_t>(n_feat_raw);

  GbtRegressor model;
  model.n_features_ = n_feat;

  // Optional method line (older serialized models omit it).
  auto base_or_method = split(next_line(), ' ');
  if (!base_or_method.empty() && base_or_method[0] == "method") {
    if (base_or_method.size() != 3) throw ParseError("gbt: bad method line");
    if (base_or_method[1] == "hist") {
      model.options_.tree_method = GbtTreeMethod::kHist;
    } else if (base_or_method[1] == "exact") {
      model.options_.tree_method = GbtTreeMethod::kExact;
    } else {
      throw ParseError("gbt: unknown tree method '" + base_or_method[1] + "'");
    }
    const long long bins = parse_int(base_or_method[2]);
    // 0 is the auto sentinel (resolve_max_bins scales with the fit's rows).
    if (bins != 0 && (bins < 2 || bins > BinnedMatrix::kMaxBins)) {
      throw ParseError("gbt: max_bins out of range");
    }
    model.options_.max_bins = static_cast<int>(bins);
    base_or_method = split(next_line(), ' ');
  }
  const auto& base = base_or_method;
  if (base.size() != n_out + 1 || base[0] != "base") throw ParseError("gbt: bad base");
  for (std::size_t k = 0; k < n_out; ++k) {
    model.base_score_.push_back(parse_double(base[k + 1]));
  }
  const auto gains = split(next_line(), ' ');
  if (gains.size() != n_feat + 1 || gains[0] != "importance_gain") {
    throw ParseError("gbt: bad importance_gain");
  }
  const auto counts = split(next_line(), ' ');
  if (counts.size() != n_feat + 1 || counts[0] != "importance_count") {
    throw ParseError("gbt: bad importance_count");
  }
  for (std::size_t f = 0; f < n_feat; ++f) {
    model.gain_sum_.push_back(parse_double(gains[f + 1]));
    model.split_count_.push_back(parse_double(counts[f + 1]));
  }

  // Optional per-output accumulator lines (models serialized before the
  // checkpoint format omit them).
  const auto peek_line = [&]() -> std::string_view {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    return i < lines.size() ? trim(lines[i]) : std::string_view{};
  };
  if (peek_line().starts_with("importance_gain_out")) {
    model.gain_by_output_.assign(n_out, {});
    model.count_by_output_.assign(n_out, {});
    for (std::size_t k = 0; k < n_out; ++k) {
      const auto gout = split(next_line(), ' ');
      if (gout.size() != n_feat + 2 || gout[0] != "importance_gain_out" ||
          parse_int(gout[1]) != static_cast<long long>(k)) {
        throw ParseError("gbt: bad importance_gain_out");
      }
      const auto cout_line = split(next_line(), ' ');
      if (cout_line.size() != n_feat + 2 || cout_line[0] != "importance_count_out" ||
          parse_int(cout_line[1]) != static_cast<long long>(k)) {
        throw ParseError("gbt: bad importance_count_out");
      }
      for (std::size_t f = 0; f < n_feat; ++f) {
        model.gain_by_output_[k].push_back(parse_double(gout[f + 2]));
        model.count_by_output_[k].push_back(parse_double(cout_line[f + 2]));
      }
    }
  }

  model.ensembles_.assign(n_out, {});
  while (true) {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    if (i >= lines.size()) break;
    const auto tree_header = split(trim(lines[i++]), ' ');
    if (tree_header.size() != 3 || tree_header[0] != "tree") {
      throw ParseError("gbt: bad tree header");
    }
    const long long output_raw = parse_int(tree_header[1]);
    const long long n_nodes_raw = parse_int(tree_header[2]);
    if (output_raw < 0 || static_cast<std::size_t>(output_raw) >= n_out) {
      throw ParseError("gbt: tree output out of range");
    }
    // Every node takes one line, so a sane node count cannot exceed the
    // remaining input (guards reserve() against absurd corrupt headers).
    if (n_nodes_raw < 1 ||
        static_cast<std::size_t>(n_nodes_raw) > lines.size() - i) {
      throw ParseError("gbt: bad tree node count " + std::to_string(n_nodes_raw));
    }
    const auto output = static_cast<std::size_t>(output_raw);
    const auto n_nodes = static_cast<std::size_t>(n_nodes_raw);
    GbtTree tree;
    tree.nodes.reserve(n_nodes);
    for (std::size_t node = 0; node < n_nodes; ++node) {
      const auto parts = split(next_line(), ' ');
      if (parts.size() != 5) throw ParseError("gbt: bad node");
      GbtNode gn;
      gn.feature = static_cast<int>(parse_int(parts[0]));
      gn.threshold = parse_double(parts[1]);
      gn.left = static_cast<int>(parse_int(parts[2]));
      gn.right = static_cast<int>(parse_int(parts[3]));
      gn.weight = parse_double(parts[4]);
      tree.nodes.push_back(gn);
    }
    validate_tree_topology(tree, n_feat);
    model.ensembles_[output].push_back(std::move(tree));
  }
  for (const auto& ensemble : model.ensembles_) {
    if (ensemble.empty()) throw ParseError("gbt: missing ensemble for an output");
  }
  // Round-trip invariant: a deserialized model is immediately usable and
  // re-serializes to an equivalent model (predict needs these to hold).
  MPHPC_ENSURES(model.fitted());
  MPHPC_ENSURES(model.base_score_.size() == model.ensembles_.size());
  MPHPC_ENSURES(model.gain_sum_.size() == model.n_features_ &&
                model.split_count_.size() == model.n_features_);
  return model;
}

}  // namespace mphpc::ml
