#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace mphpc::ml {

double GbtTree::predict(std::span<const double> x) const noexcept {
  std::size_t i = 0;
  while (!nodes[i].is_leaf()) {
    const GbtNode& n = nodes[i];
    i = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right);
  }
  return nodes[i].weight;
}

namespace {

struct SplitCandidate {
  double gain = 0.0;
  double threshold = 0.0;
  int feature = -1;
};

/// Per-fit shared context: global feature pre-sort and scratch arrays.
struct BuildContext {
  const Matrix& x;
  std::vector<std::vector<std::uint32_t>> sorted;  ///< [feature] row order

  explicit BuildContext(const Matrix& matrix) : x(matrix) {
    const std::size_t n = x.rows();
    sorted.resize(x.cols());
    for (std::size_t f = 0; f < x.cols(); ++f) {
      auto& order = sorted[f];
      order.resize(n);
      std::iota(order.begin(), order.end(), std::uint32_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&, f](std::uint32_t a, std::uint32_t b) {
                         return x(a, f) < x(b, f);
                       });
    }
  }
};

/// Builds one boosted tree on the in-sample rows with gradients g and
/// hessians h, accumulating split gains into `gain_sum`/`split_count`.
GbtTree build_tree(const BuildContext& ctx, const GbtOptions& opt,
                   std::span<const double> g, std::span<const double> h,
                   std::span<const std::uint8_t> in_sample,
                   std::span<const std::uint8_t> in_cols,
                   std::span<double> gain_sum, std::span<double> split_count) {
  const Matrix& x = ctx.x;
  const std::size_t n = x.rows();
  const std::size_t n_feat = x.cols();

  GbtTree tree;
  tree.nodes.emplace_back();

  // node_of[row] = current node, or -1 if the row is out-of-sample.
  std::vector<std::int32_t> node_of(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    if (!in_sample[r]) node_of[r] = -1;
  }

  std::vector<std::int32_t> level_nodes = {0};
  // Per-node G/H, indexed by node id (grows as nodes are added).
  std::vector<double> node_g = {0.0};
  std::vector<double> node_h = {0.0};
  for (std::size_t r = 0; r < n; ++r) {
    if (node_of[r] == 0) {
      node_g[0] += g[r];
      node_h[0] += h[r];
    }
  }

  for (int depth = 0; depth < opt.max_depth && !level_nodes.empty(); ++depth) {
    const std::size_t n_dense = level_nodes.size();
    std::vector<std::int32_t> dense_of(tree.nodes.size(), -1);
    for (std::size_t d = 0; d < n_dense; ++d) {
      dense_of[static_cast<std::size_t>(level_nodes[d])] = static_cast<std::int32_t>(d);
    }

    std::vector<double> parent_score(n_dense);
    std::vector<std::uint8_t> may_split(n_dense);
    for (std::size_t d = 0; d < n_dense; ++d) {
      const auto node = static_cast<std::size_t>(level_nodes[d]);
      parent_score[d] = node_g[node] * node_g[node] / (node_h[node] + opt.lambda);
      may_split[d] = node_h[node] >= 2.0 * opt.min_child_weight ? 1 : 0;
    }

    // Sweep every active feature; keep the per-feature best per node and
    // reduce in feature order for determinism.
    std::vector<SplitCandidate> bests(n_feat * n_dense);
    for (std::size_t f = 0; f < n_feat; ++f) {
      if (!in_cols[f]) continue;
      std::vector<double> gl(n_dense, 0.0);
      std::vector<double> hl(n_dense, 0.0);
      std::vector<double> prev(n_dense, 0.0);
      std::vector<std::uint8_t> has_prev(n_dense, 0);
      SplitCandidate* best = &bests[f * n_dense];

      for (const std::uint32_t r : ctx.sorted[f]) {
        const std::int32_t node = node_of[r];
        if (node < 0) continue;
        const std::int32_t d32 = dense_of[static_cast<std::size_t>(node)];
        if (d32 < 0) continue;
        const auto d = static_cast<std::size_t>(d32);
        if (!may_split[d]) continue;
        const double v = x(r, f);
        const auto nid = static_cast<std::size_t>(node);

        if (has_prev[d] && v > prev[d] && hl[d] >= opt.min_child_weight &&
            node_h[nid] - hl[d] >= opt.min_child_weight) {
          const double gr = node_g[nid] - gl[d];
          const double hr = node_h[nid] - hl[d];
          const double gain = 0.5 * (gl[d] * gl[d] / (hl[d] + opt.lambda) +
                                     gr * gr / (hr + opt.lambda) - parent_score[d]) -
                              opt.gamma;
          if (gain > best[d].gain) {
            best[d] = {gain, 0.5 * (prev[d] + v), static_cast<int>(f)};
          }
        }
        gl[d] += g[r];
        hl[d] += h[r];
        prev[d] = v;
        has_prev[d] = 1;
      }
    }

    std::vector<SplitCandidate> winner(n_dense);
    for (std::size_t f = 0; f < n_feat; ++f) {
      for (std::size_t d = 0; d < n_dense; ++d) {
        const SplitCandidate& c = bests[f * n_dense + d];
        if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
      }
    }

    std::vector<std::int32_t> next_level;
    bool any_split = false;
    for (std::size_t d = 0; d < n_dense; ++d) {
      const SplitCandidate& w = winner[d];
      if (w.feature < 0 || w.gain <= 0.0) continue;
      const auto node = static_cast<std::size_t>(level_nodes[d]);
      tree.nodes[node].feature = w.feature;
      tree.nodes[node].threshold = w.threshold;
      tree.nodes[node].left = static_cast<int>(tree.nodes.size());
      tree.nodes[node].right = static_cast<int>(tree.nodes.size() + 1);
      next_level.push_back(static_cast<std::int32_t>(tree.nodes.size()));
      next_level.push_back(static_cast<std::int32_t>(tree.nodes.size() + 1));
      tree.nodes.emplace_back();
      tree.nodes.emplace_back();
      node_g.resize(tree.nodes.size(), 0.0);
      node_h.resize(tree.nodes.size(), 0.0);
      gain_sum[static_cast<std::size_t>(w.feature)] += w.gain;
      split_count[static_cast<std::size_t>(w.feature)] += 1.0;
      any_split = true;
    }
    if (!any_split) break;

    // Re-partition rows and accumulate child G/H.
    for (std::size_t r = 0; r < n; ++r) {
      const std::int32_t node = node_of[r];
      if (node < 0) continue;
      const GbtNode& parent = tree.nodes[static_cast<std::size_t>(node)];
      if (parent.is_leaf()) continue;
      const std::int32_t child =
          x(r, static_cast<std::size_t>(parent.feature)) <= parent.threshold
              ? parent.left
              : parent.right;
      node_of[r] = child;
      node_g[static_cast<std::size_t>(child)] += g[r];
      node_h[static_cast<std::size_t>(child)] += h[r];
    }
    level_nodes = std::move(next_level);
  }

  // Leaf weights: w* = -G/(H+lambda), shrunk by the learning rate.
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (!tree.nodes[i].is_leaf()) continue;
    tree.nodes[i].weight =
        -node_g[i] / (node_h[i] + opt.lambda) * opt.learning_rate;
  }
  return tree;
}

/// Gradient/hessian of the objective at residual r = pred - y.
inline void gradients(GbtObjective objective, double delta, double pred, double y,
                      double& g, double& h) noexcept {
  const double r = pred - y;
  if (objective == GbtObjective::kSquaredError) {
    g = r;
    h = 1.0;
    return;
  }
  // Pseudo-Huber: L = delta^2 (sqrt(1+(r/delta)^2) - 1); smooth |r|.
  const double s = 1.0 + (r / delta) * (r / delta);
  const double sq = std::sqrt(s);
  g = r / sq;
  h = 1.0 / (s * sq);
}

}  // namespace

void GbtRegressor::fit(const Matrix& x, const Matrix& y, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 0 && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.n_rounds >= 1 && options_.max_depth >= 1);
  MPHPC_EXPECTS(options_.subsample > 0.0 && options_.subsample <= 1.0);
  MPHPC_EXPECTS(options_.colsample > 0.0 && options_.colsample <= 1.0);

  const std::size_t n = x.rows();
  const std::size_t n_feat = x.cols();
  const std::size_t n_out = y.cols();
  n_features_ = n_feat;

  const BuildContext ctx(x);

  ensembles_.assign(n_out, {});
  base_score_.assign(n_out, 0.0);
  // Per-output gain accumulators, merged after the parallel loop so the
  // result does not depend on scheduling.
  std::vector<std::vector<double>> gain_by_output(n_out,
                                                  std::vector<double>(n_feat, 0.0));
  std::vector<std::vector<double>> count_by_output(n_out,
                                                   std::vector<double>(n_feat, 0.0));

  const auto n_cols_sampled = static_cast<std::size_t>(std::max(
      1.0, std::round(options_.colsample * static_cast<double>(n_feat))));
  const auto n_rows_sampled = static_cast<std::size_t>(
      std::max(1.0, std::round(options_.subsample * static_cast<double>(n))));

  const auto fit_output = [&](std::size_t k) {
    // Base score: mean target of this output.
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += y(r, k);
    mean /= static_cast<double>(n);
    base_score_[k] = mean;

    std::vector<double> pred(n, mean);
    std::vector<double> g(n);
    std::vector<double> h(n);
    std::vector<std::uint8_t> in_sample(n);
    std::vector<std::uint8_t> in_cols(n_feat);
    auto& ensemble = ensembles_[k];
    ensemble.reserve(static_cast<std::size_t>(options_.n_rounds));
    Rng rng(derive_seed(options_.seed, "output", static_cast<std::uint64_t>(k)));

    for (int round = 0; round < options_.n_rounds; ++round) {
      for (std::size_t r = 0; r < n; ++r) {
        gradients(options_.objective, options_.huber_delta, pred[r], y(r, k), g[r],
                  h[r]);
      }

      // Row subsampling without replacement.
      if (n_rows_sampled < n) {
        std::fill(in_sample.begin(), in_sample.end(), std::uint8_t{0});
        for (const std::size_t r : sample_without_replacement(rng, n, n_rows_sampled)) {
          in_sample[r] = 1;
        }
      } else {
        std::fill(in_sample.begin(), in_sample.end(), std::uint8_t{1});
      }
      // Column subsampling per tree.
      if (n_cols_sampled < n_feat) {
        std::fill(in_cols.begin(), in_cols.end(), std::uint8_t{0});
        for (const std::size_t f :
             sample_without_replacement(rng, n_feat, n_cols_sampled)) {
          in_cols[f] = 1;
        }
      } else {
        std::fill(in_cols.begin(), in_cols.end(), std::uint8_t{1});
      }

      GbtTree tree = build_tree(ctx, options_, g, h, in_sample, in_cols,
                                gain_by_output[k], count_by_output[k]);
      for (std::size_t r = 0; r < n; ++r) pred[r] += tree.predict(x.row(r));
      ensemble.push_back(std::move(tree));
    }
  };

  if (pool != nullptr && n_out > 1) {
    pool->parallel_for(0, n_out, fit_output);
  } else {
    for (std::size_t k = 0; k < n_out; ++k) fit_output(k);
  }

  // Merge importances in fixed output order.
  gain_sum_.assign(n_feat, 0.0);
  split_count_.assign(n_feat, 0.0);
  for (std::size_t k = 0; k < n_out; ++k) {
    for (std::size_t f = 0; f < n_feat; ++f) {
      gain_sum_[f] += gain_by_output[k][f];
      split_count_[f] += count_by_output[k][f];
    }
  }
}

Matrix GbtRegressor::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.cols() == n_features_);
  const std::size_t n_out = ensembles_.size();
  Matrix out(x.rows(), n_out);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    for (std::size_t k = 0; k < n_out; ++k) {
      double v = base_score_[k];
      for (const GbtTree& tree : ensembles_[k]) v += tree.predict(xr);
      out(r, k) = v;
    }
  }
  return out;
}

std::optional<std::vector<double>> GbtRegressor::feature_importances() const {
  if (!fitted()) return std::nullopt;
  std::vector<double> imp(n_features_, 0.0);
  for (std::size_t f = 0; f < n_features_; ++f) {
    if (split_count_[f] > 0.0) imp[f] = gain_sum_[f] / split_count_[f];
  }
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::string GbtRegressor::serialize() const {
  MPHPC_EXPECTS(fitted());
  std::string out = "gbt " + std::to_string(ensembles_.size()) + " " +
                    std::to_string(n_features_) + "\n";
  out += "base";
  for (const double b : base_score_) out += " " + format_double(b);
  out += "\n";
  out += "importance_gain";
  for (const double v : gain_sum_) out += " " + format_double(v);
  out += "\n";
  out += "importance_count";
  for (const double v : split_count_) out += " " + format_double(v);
  out += "\n";
  for (std::size_t k = 0; k < ensembles_.size(); ++k) {
    for (const GbtTree& tree : ensembles_[k]) {
      out += "tree " + std::to_string(k) + " " + std::to_string(tree.nodes.size()) + "\n";
      for (const GbtNode& node : tree.nodes) {
        out += std::to_string(node.feature) + " " + format_double(node.threshold) +
               " " + std::to_string(node.left) + " " + std::to_string(node.right) +
               " " + format_double(node.weight) + "\n";
      }
    }
  }
  return out;
}

GbtRegressor GbtRegressor::deserialize(std::string_view text) {
  const auto lines = split(text, '\n');
  std::size_t i = 0;
  const auto next_line = [&]() -> std::string_view {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    if (i >= lines.size()) throw ParseError("gbt: truncated model");
    return trim(lines[i++]);
  };

  const auto header = split(next_line(), ' ');
  if (header.size() != 3 || header[0] != "gbt") throw ParseError("gbt: bad header");
  const auto n_out = static_cast<std::size_t>(parse_int(header[1]));
  const auto n_feat = static_cast<std::size_t>(parse_int(header[2]));

  GbtRegressor model;
  model.n_features_ = n_feat;

  const auto base = split(next_line(), ' ');
  if (base.size() != n_out + 1 || base[0] != "base") throw ParseError("gbt: bad base");
  for (std::size_t k = 0; k < n_out; ++k) {
    model.base_score_.push_back(parse_double(base[k + 1]));
  }
  const auto gains = split(next_line(), ' ');
  if (gains.size() != n_feat + 1 || gains[0] != "importance_gain") {
    throw ParseError("gbt: bad importance_gain");
  }
  const auto counts = split(next_line(), ' ');
  if (counts.size() != n_feat + 1 || counts[0] != "importance_count") {
    throw ParseError("gbt: bad importance_count");
  }
  for (std::size_t f = 0; f < n_feat; ++f) {
    model.gain_sum_.push_back(parse_double(gains[f + 1]));
    model.split_count_.push_back(parse_double(counts[f + 1]));
  }

  model.ensembles_.assign(n_out, {});
  while (true) {
    while (i < lines.size() && trim(lines[i]).empty()) ++i;
    if (i >= lines.size()) break;
    const auto tree_header = split(trim(lines[i++]), ' ');
    if (tree_header.size() != 3 || tree_header[0] != "tree") {
      throw ParseError("gbt: bad tree header");
    }
    const auto output = static_cast<std::size_t>(parse_int(tree_header[1]));
    const auto n_nodes = static_cast<std::size_t>(parse_int(tree_header[2]));
    if (output >= n_out) throw ParseError("gbt: tree output out of range");
    GbtTree tree;
    tree.nodes.reserve(n_nodes);
    for (std::size_t node = 0; node < n_nodes; ++node) {
      const auto parts = split(next_line(), ' ');
      if (parts.size() != 5) throw ParseError("gbt: bad node");
      GbtNode gn;
      gn.feature = static_cast<int>(parse_int(parts[0]));
      gn.threshold = parse_double(parts[1]);
      gn.left = static_cast<int>(parse_int(parts[2]));
      gn.right = static_cast<int>(parse_int(parts[3]));
      gn.weight = parse_double(parts[4]);
      tree.nodes.push_back(gn);
    }
    model.ensembles_[output].push_back(std::move(tree));
  }
  for (const auto& ensemble : model.ensembles_) {
    if (ensemble.empty()) throw ParseError("gbt: missing ensemble for an output");
  }
  // Round-trip invariant: a deserialized model is immediately usable and
  // re-serializes to an equivalent model (predict needs these to hold).
  MPHPC_ENSURES(model.fitted());
  MPHPC_ENSURES(model.base_score_.size() == model.ensembles_.size());
  MPHPC_ENSURES(model.gain_sum_.size() == model.n_features_ &&
                model.split_count_.size() == model.n_features_);
  return model;
}

}  // namespace mphpc::ml
