// Shared machinery for histogram-based tree trainers (GBT kHist and the
// CART kHist path in decision_tree.cpp).
//
// Every hist trainer follows the same shape: quantize X once per fit
// (ml/binning.hpp), keep the in-sample items in one array stably
// partitioned so every tree node owns a contiguous range, accumulate a
// per-node histogram of sufficient statistics per (feature, bin), derive
// each split pair's larger child by subtracting the smaller child's
// histogram from the parent's, and sweep bin boundaries. What differs is
// only the statistic width: GBT stores (G, H) pairs, CART stores
// (count, per-output target sums). This header hoists the width-agnostic
// pieces — the ragged layout, the sibling subtraction, and the stable
// node partition — so both trainers share one implementation.
//
// Determinism contract: nothing here depends on thread count. The layout
// is a pure function of the BinnedMatrix, subtraction is element-wise in
// ascending index order, and the partition is stable, so item order inside
// a node never depends on the split schedule.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "ml/binning.hpp"

namespace mphpc::ml::hist {

/// Ragged per-feature histogram layout: feature f's slice starts at cell
/// `width * offsets[f]` and holds `width` doubles per bin, so near-constant
/// features (one-hots, flags) cost a few cells instead of a full max_bins
/// stride. `width` is the number of statistics per bin (2 for GBT's (G, H);
/// 1 + n_outputs for CART's (count, sums)).
struct Layout {
  std::vector<std::size_t> offsets;  ///< [n_feat + 1], in bins
  std::size_t width = 0;             ///< doubles per bin

  static Layout make(const BinnedMatrix& bm, std::size_t width) {
    MPHPC_EXPECTS(width >= 1);
    Layout out;
    out.width = width;
    out.offsets.assign(bm.features() + 1, 0);
    for (std::size_t f = 0; f < bm.features(); ++f) {
      out.offsets[f + 1] =
          out.offsets[f] + static_cast<std::size_t>(bm.bins(f).n_bins());
    }
    return out;
  }

  /// Total doubles in one node's histogram.
  [[nodiscard]] std::size_t cells() const noexcept {
    return width * offsets.back();
  }
  /// First cell of feature f's slice.
  [[nodiscard]] std::size_t begin_cell(std::size_t f) const noexcept {
    return width * offsets[f];
  }
  /// Doubles in feature f's slice.
  [[nodiscard]] std::size_t feature_cells(std::size_t f) const noexcept {
    return width * (offsets[f + 1] - offsets[f]);
  }
};

/// One split pair during histogram construction: the smaller child gets a
/// fresh accumulated histogram, the larger one is derived by subtracting
/// it from the parent's (whose buffer it inherits).
struct SiblingPair {
  std::size_t parent_dense = 0;  ///< dense index of the parent in its level
  std::size_t small_dense = 0;   ///< next-level dense index of the small child
  std::size_t big_dense = 0;
};

/// big -= small, element-wise over one feature slice (ascending index
/// order: bit-identical regardless of caller).
inline void subtract_sibling(double* big, const double* small,
                             std::size_t n) {
  MPHPC_EXPECTS(n == 0 || (big != nullptr && small != nullptr));
  for (std::size_t i = 0; i < n; ++i) big[i] -= small[i];
}

/// In-sample items (row indices; duplicates allowed for bootstrap samples)
/// kept in one array and stably partitioned so every tree node owns a
/// contiguous range. Node ids index `begin_/end_` and must be registered in
/// the order the tree appends nodes (root = 0, then children pairwise).
class NodePartition {
 public:
  /// Seeds the partition with the root's items (node id 0 owns them all).
  void reset(std::vector<std::uint32_t> items) {
    items_ = std::move(items);
    scratch_.resize(items_.size());
    begin_ = {0};
    end_ = {items_.size()};
  }

  [[nodiscard]] std::span<const std::uint32_t> items(std::size_t nid) const {
    return {items_.data() + begin_[nid], end_[nid] - begin_[nid]};
  }
  [[nodiscard]] std::size_t count(std::size_t nid) const noexcept {
    return end_[nid] - begin_[nid];
  }

  /// Stably partitions node nid's range by `codes[item] <= bin` (left
  /// first), registers the two children as the next consecutive node ids
  /// (left then right), and returns the left child's item count.
  std::size_t split(std::size_t nid, const std::uint8_t* codes, int bin) {
    MPHPC_EXPECTS(nid < begin_.size() && codes != nullptr);
    const std::size_t lo = begin_[nid];
    const std::size_t hi = end_[nid];
    std::size_t out = lo;
    for (std::size_t i = lo; i < hi; ++i) {
      if (static_cast<int>(codes[items_[i]]) <= bin) scratch_[out++] = items_[i];
    }
    const std::size_t mid = out;
    for (std::size_t i = lo; i < hi; ++i) {
      if (static_cast<int>(codes[items_[i]]) > bin) scratch_[out++] = items_[i];
    }
    std::copy(scratch_.begin() + static_cast<std::ptrdiff_t>(lo),
              scratch_.begin() + static_cast<std::ptrdiff_t>(hi),
              items_.begin() + static_cast<std::ptrdiff_t>(lo));
    begin_.insert(begin_.end(), {lo, mid});
    end_.insert(end_.end(), {mid, hi});
    return mid - lo;
  }

 private:
  std::vector<std::uint32_t> items_;    ///< node-partitioned item array
  std::vector<std::uint32_t> scratch_;  ///< partition staging buffer
  std::vector<std::size_t> begin_;      ///< per node id, range into items_
  std::vector<std::size_t> end_;
};

}  // namespace mphpc::ml::hist
