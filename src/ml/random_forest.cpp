#include "ml/random_forest.hpp"

#include <cmath>
#include <numeric>
#include <optional>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "ml/binning.hpp"

namespace mphpc::ml {

void RandomForest::fit(const Matrix& x, const Matrix& y, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 0 && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.n_trees >= 1);
  MPHPC_EXPECTS(options_.subsample > 0.0 && options_.subsample <= 1.0);

  n_outputs_ = y.cols();
  const int mtry = options_.max_features > 0
                       ? options_.max_features
                       : std::max(1, static_cast<int>(std::lround(
                                         std::sqrt(static_cast<double>(x.cols())))));

  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.min_samples_split = options_.min_samples_split;
  tree_options.max_features = mtry;
  tree_options.method = options_.method;
  tree_options.max_bins = options_.max_bins;

  trees_.assign(static_cast<std::size_t>(options_.n_trees), DecisionTree{});
  const std::size_t n = x.rows();
  const auto n_sample = static_cast<std::size_t>(
      std::max(1.0, options_.subsample * static_cast<double>(n)));

  // kHist: quantize X once and share the codes across every tree — the
  // per-tree work drops from feature sorts to histogram accumulation.
  std::optional<BinnedMatrix> binned;
  if (options_.method == TreeMethod::kHist) {
    binned.emplace(
        BinnedMatrix::build(x, resolve_max_bins(options_.max_bins, n), pool));
  }

  const auto build = [&](std::size_t t) {
    Rng rng(derive_seed(options_.seed, "tree", static_cast<std::uint64_t>(t)));
    std::vector<std::size_t> rows(n_sample);
    for (auto& r : rows) r = rng.below(n);  // bootstrap: with replacement
    TreeOptions opts = tree_options;
    opts.seed = derive_seed(options_.seed, "features", static_cast<std::uint64_t>(t));
    trees_[t] = DecisionTree(opts);
    // Trees are built serially inside; parallelism is across trees.
    if (binned.has_value()) {
      trees_[t].fit_rows_binned(x, y, rows, *binned, nullptr);
    } else {
      trees_[t].fit_rows(x, y, rows, nullptr);
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, trees_.size(), build);
  } else {
    for (std::size_t t = 0; t < trees_.size(); ++t) build(t);
  }
}

Matrix RandomForest::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  Matrix out(x.rows(), n_outputs_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    auto dst = out.row(r);
    for (const auto& tree : trees_) {
      const auto value = tree.predict_one(xr);
      for (std::size_t k = 0; k < dst.size(); ++k) dst[k] += value[k];
    }
    for (double& v : dst) v /= static_cast<double>(trees_.size());
  }
  return out;
}

std::optional<std::vector<double>> RandomForest::feature_importances() const {
  if (!fitted()) return std::nullopt;
  std::optional<std::vector<double>> first = trees_.front().feature_importances();
  if (!first) return std::nullopt;
  std::vector<double> sum(first->size(), 0.0);
  for (const auto& tree : trees_) {
    const auto imp = tree.feature_importances();
    for (std::size_t f = 0; f < sum.size(); ++f) sum[f] += (*imp)[f];
  }
  const double total = std::accumulate(sum.begin(), sum.end(), 0.0);
  if (total > 0.0) {
    for (double& v : sum) v /= total;
  }
  return sum;
}

}  // namespace mphpc::ml
