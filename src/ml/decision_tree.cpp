#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "ml/hist_common.hpp"

namespace mphpc::ml {

namespace {

/// Best split candidate for one node (from one feature sweep).
struct SplitCandidate {
  double gain = 0.0;
  double threshold = 0.0;
  int feature = -1;
};

/// Per-tree build state shared by the level-wise passes below: the row
/// multiset's gathered targets, the per-feature pre-sorted position
/// orders, and each position's current node.
struct BuildState {
  const Matrix& x;
  std::span<const std::size_t> rows;
  std::size_t n = 0;       // rows.size()
  std::size_t n_feat = 0;  // x.cols()
  std::size_t n_out = 0;   // y.cols()
  std::vector<double> ys;  // targets by position, n x n_out
  std::vector<std::vector<std::uint32_t>> sorted;  // per-feature orders
  std::vector<std::int32_t> node_of;               // position -> node id
};

/// Statistics of the nodes on the current level, indexed densely in level
/// order ("d" indices). Built once per level, read by every sweep.
struct LevelStats {
  std::vector<std::int32_t> splittable;  // dense index -> node id
  std::vector<std::int32_t> dense_of;    // node id -> dense index or -1
  std::vector<double> count;             // rows per node
  std::vector<double> sum;               // per-output target sums
  std::vector<double> parent_score;      // sum_k S^2/n
  std::vector<std::uint8_t> may_split;
  std::vector<std::uint8_t> mask;        // per-node feature subsets (mtry)
  bool subsample_features = false;
};

void run_per_feature(ThreadPool* pool, std::size_t n_feat,
                     const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(0, n_feat, body);
  } else {
    for (std::size_t f = 0; f < n_feat; ++f) body(f);
  }
}

LevelStats compute_level_stats(const BuildState& st, const TreeOptions& options,
                               std::size_t num_nodes,
                               const std::vector<std::int32_t>& level_nodes,
                               Rng& feature_rng) {
  LevelStats stats;
  stats.dense_of.assign(num_nodes, -1);
  stats.splittable = level_nodes;
  for (std::size_t d = 0; d < stats.splittable.size(); ++d) {
    stats.dense_of[static_cast<std::size_t>(stats.splittable[d])] =
        static_cast<std::int32_t>(d);
  }
  const std::size_t n_dense = stats.splittable.size();

  stats.count.assign(n_dense, 0.0);
  stats.sum.assign(n_dense * st.n_out, 0.0);
  for (std::size_t p = 0; p < st.n; ++p) {
    const std::int32_t d = stats.dense_of[static_cast<std::size_t>(st.node_of[p])];
    if (d < 0) continue;
    stats.count[static_cast<std::size_t>(d)] += 1.0;
    const double* yp = &st.ys[p * st.n_out];
    double* s = &stats.sum[static_cast<std::size_t>(d) * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) s[k] += yp[k];
  }

  // Parent scores sum_k S^2/n, and which nodes may split.
  stats.parent_score.assign(n_dense, 0.0);
  stats.may_split.assign(n_dense, 0);
  for (std::size_t d = 0; d < n_dense; ++d) {
    const double* s = &stats.sum[d * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) {
      stats.parent_score[d] += s[k] * s[k] / stats.count[d];
    }
    stats.may_split[d] = stats.count[d] >= options.min_samples_split ? 1 : 0;
  }

  // Per-node feature subsets (mtry), drawn in node order.
  stats.subsample_features =
      options.max_features > 0 &&
      static_cast<std::size_t>(options.max_features) < st.n_feat;
  if (stats.subsample_features) {
    stats.mask.assign(n_dense * st.n_feat, 0);
    for (std::size_t d = 0; d < n_dense; ++d) {
      if (!stats.may_split[d]) continue;
      for (const std::size_t f : sample_without_replacement(
               feature_rng, st.n_feat,
               static_cast<std::size_t>(options.max_features))) {
        stats.mask[d * st.n_feat + f] = 1;
      }
    }
  }
  return stats;
}

/// Sweeps one feature's sorted order, writing the best candidate per dense
/// node into bests[f * n_dense + d]. Thread-safe across distinct f.
void sweep_feature(const BuildState& st, const LevelStats& stats,
                   double min_leaf, std::size_t f,
                   std::span<SplitCandidate> bests) {
  const std::size_t n_dense = stats.splittable.size();
  std::vector<double> cnt_l(n_dense, 0.0);
  std::vector<double> sum_l(n_dense * st.n_out, 0.0);
  std::vector<double> prev(n_dense, 0.0);
  std::vector<std::uint8_t> has_prev(n_dense, 0);
  SplitCandidate* best = &bests[f * n_dense];

  for (const std::uint32_t p : st.sorted[f]) {
    const std::int32_t d32 = stats.dense_of[static_cast<std::size_t>(st.node_of[p])];
    if (d32 < 0) continue;
    const auto d = static_cast<std::size_t>(d32);
    if (!stats.may_split[d]) continue;
    if (stats.subsample_features && !stats.mask[d * st.n_feat + f]) continue;
    const double v = st.x(st.rows[p], f);

    if (has_prev[d] && v > prev[d] && cnt_l[d] >= min_leaf &&
        stats.count[d] - cnt_l[d] >= min_leaf) {
      const double nl = cnt_l[d];
      const double nr = stats.count[d] - nl;
      double child_score = 0.0;
      const double* sl = &sum_l[d * st.n_out];
      const double* tot = &stats.sum[d * st.n_out];
      for (std::size_t k = 0; k < st.n_out; ++k) {
        const double sr = tot[k] - sl[k];
        child_score += sl[k] * sl[k] / nl + sr * sr / nr;
      }
      const double gain = child_score - stats.parent_score[d];
      if (gain > best[d].gain) {
        best[d] = {gain, 0.5 * (prev[d] + v), static_cast<int>(f)};
      }
    }

    cnt_l[d] += 1.0;
    const double* yp = &st.ys[static_cast<std::size_t>(p) * st.n_out];
    double* sl = &sum_l[d * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) sl[k] += yp[k];
    prev[d] = v;
    has_prev[d] = 1;
  }
}

/// Per-feature sweeps (parallel) reduced in fixed feature order, so the
/// winner per node is deterministic: lowest feature index wins ties.
std::vector<SplitCandidate> best_splits(const BuildState& st,
                                        const LevelStats& stats,
                                        const TreeOptions& options,
                                        ThreadPool* pool) {
  const std::size_t n_dense = stats.splittable.size();
  std::vector<SplitCandidate> bests(st.n_feat * n_dense);
  const double min_leaf = static_cast<double>(options.min_samples_leaf);
  run_per_feature(pool, st.n_feat, [&](std::size_t f) {
    sweep_feature(st, stats, min_leaf, f, bests);
  });

  std::vector<SplitCandidate> winner(n_dense);
  for (std::size_t f = 0; f < st.n_feat; ++f) {
    for (std::size_t d = 0; d < n_dense; ++d) {
      const SplitCandidate& c = bests[f * n_dense + d];
      if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
    }
  }
  return winner;
}

// ---------------------------------------------------------------- kHist ----

/// kHist split candidate: `bin` is the last bin going left (codes <= bin).
struct HistSplit {
  double gain = 0.0;
  double threshold = 0.0;
  int feature = -1;
  int bin = -1;
};

/// Bookkeeping for one tree level: dense node ids and their histograms.
struct CartHistLevel {
  std::vector<std::int32_t> nodes;         ///< tree node id per dense index
  std::vector<std::vector<double>> hists;  ///< per dense index
};

/// Level-wise histogram CART builder, mirroring gbt.cpp's kHist trainer on
/// the shared hist_common machinery. The per-bin statistic is
/// (count, per-output target sums) — layout width 1 + n_out — instead of
/// GBT's (G, H). The bootstrap multiset lives in a hist::NodePartition
/// (duplicates allowed); every feature is accumulated for every node (so
/// sibling subtraction stays valid for descendants), but only the per-node
/// mtry subset is swept. Masks are drawn serially in dense node order and
/// feature sweeps reduce in fixed feature order, so fits are bit-identical
/// at any thread count.
struct HistCartBuilder {
  const TreeOptions& opt;
  const Matrix& y;
  const BinnedMatrix& bm;
  ThreadPool* pool;
  std::size_t n_feat;
  std::size_t n_out;
  hist::Layout layout;
  double min_leaf;

  hist::NodePartition part;  ///< bootstrap items, node-partitioned
  std::vector<TreeNode> nodes;
  std::vector<double> gain_per_feature;
  std::vector<double> node_count;  ///< per node id
  std::vector<double> node_sum;    ///< per node id, n_out target sums
  Rng feature_rng;

  HistCartBuilder(const Matrix& targets, const BinnedMatrix& binned,
                  const TreeOptions& options, std::span<const std::size_t> rows,
                  ThreadPool* p)
      : opt(options), y(targets), bm(binned), pool(p), n_feat(binned.features()),
        n_out(targets.cols()), layout(hist::Layout::make(binned, 1 + targets.cols())),
        min_leaf(static_cast<double>(options.min_samples_leaf)),
        feature_rng(options.seed) {
    std::vector<std::uint32_t> items;
    items.reserve(rows.size());
    for (const std::size_t r : rows) items.push_back(static_cast<std::uint32_t>(r));
    part.reset(std::move(items));
    nodes.emplace_back();
    gain_per_feature.assign(n_feat, 0.0);
    node_count = {0.0};
    node_sum.assign(n_out, 0.0);
    for (const std::uint32_t r : part.items(0)) {
      node_count[0] += 1.0;
      const auto yr = y.row(r);
      for (std::size_t k = 0; k < n_out; ++k) node_sum[k] += yr[k];
    }
  }

  [[nodiscard]] bool may_split(std::size_t nid) const noexcept {
    return node_count[nid] >= static_cast<double>(opt.min_samples_split);
  }

  /// Accumulates one feature of `items` into its histogram slice.
  void accumulate(std::size_t f, double* slice,
                  std::span<const std::uint32_t> items) const {
    const std::uint8_t* codes = bm.codes(f);
    const std::size_t width = layout.width;
    for (const std::uint32_t r : items) {
      double* cell = slice + width * static_cast<std::size_t>(codes[r]);
      cell[0] += 1.0;
      const auto yr = y.row(r);
      for (std::size_t k = 0; k < n_out; ++k) cell[1 + k] += yr[k];
    }
  }

  /// Per-node mtry masks for one level, drawn serially in dense node order
  /// (empty mask = all features active).
  [[nodiscard]] std::vector<std::uint8_t> draw_masks(
      const std::vector<std::int32_t>& level_nodes) {
    const bool subsample = opt.max_features > 0 &&
                           static_cast<std::size_t>(opt.max_features) < n_feat;
    std::vector<std::uint8_t> mask;
    if (!subsample) return mask;
    mask.assign(level_nodes.size() * n_feat, 0);
    for (std::size_t d = 0; d < level_nodes.size(); ++d) {
      if (!may_split(static_cast<std::size_t>(level_nodes[d]))) continue;
      for (const std::size_t f : sample_without_replacement(
               feature_rng, n_feat, static_cast<std::size_t>(opt.max_features))) {
        mask[d * n_feat + f] = 1;
      }
    }
    return mask;
  }

  /// Sweeps feature f's bin boundaries for node nid (dense index d) if the
  /// node is splittable and f is in its mtry subset. The cumulative left
  /// sums accumulate in ascending bin order, so re-summing bins
  /// [0, best.bin] later reproduces the winning child stats bit-for-bit.
  void sweep_node(std::size_t f, const std::vector<double>& hist_,
                  std::size_t nid, std::size_t d,
                  std::span<const std::uint8_t> mask, HistSplit& best) const {
    if (!may_split(nid)) return;
    if (!mask.empty() && !mask[d * n_feat + f]) return;
    const FeatureBins& fb = bm.bins(f);
    const int nb = fb.n_bins();
    const std::size_t width = layout.width;
    const double* slice = hist_.data() + layout.begin_cell(f);
    const double total = node_count[nid];
    const double* tot = &node_sum[nid * n_out];
    double parent_score = 0.0;
    for (std::size_t k = 0; k < n_out; ++k) parent_score += tot[k] * tot[k] / total;
    double cnt_l = 0.0;
    std::vector<double> sum_l(n_out, 0.0);
    for (int b = 0; b + 1 < nb; ++b) {
      const double* cell = slice + width * static_cast<std::size_t>(b);
      cnt_l += cell[0];
      for (std::size_t k = 0; k < n_out; ++k) sum_l[k] += cell[1 + k];
      if (cnt_l < min_leaf) continue;
      const double nr = total - cnt_l;
      if (nr < min_leaf) break;  // cnt_l only grows, nr only shrinks
      double child_score = 0.0;
      for (std::size_t k = 0; k < n_out; ++k) {
        const double sr = tot[k] - sum_l[k];
        child_score += sum_l[k] * sum_l[k] / cnt_l + sr * sr / nr;
      }
      const double gain = child_score - parent_score;
      if (gain > best.gain) {
        best = {gain, fb.thresholds[static_cast<std::size_t>(b)],
                static_cast<int>(f), b};
      }
    }
  }

  /// Applies the winning split of dense node d: writes the parent's split,
  /// appends the two children, partitions the parent's items, and derives
  /// child stats (left by re-summing the winning histogram prefix — the
  /// same additions the sweep performed — right by subtraction).
  void apply_split(const CartHistLevel& level, std::size_t d, const HistSplit& w,
                   CartHistLevel& next, std::vector<hist::SiblingPair>& pairs) {
    const auto nid = static_cast<std::size_t>(level.nodes[d]);
    const auto left_id = static_cast<int>(nodes.size());
    nodes[nid].feature = w.feature;
    nodes[nid].threshold = w.threshold;
    nodes[nid].left = left_id;
    nodes[nid].right = left_id + 1;
    nodes.emplace_back();
    nodes.emplace_back();

    const auto wf = static_cast<std::size_t>(w.feature);
    const std::size_t left_count = part.split(nid, bm.codes(wf), w.bin);

    const double* slice = level.hists[d].data() + layout.begin_cell(wf);
    const std::size_t width = layout.width;
    double cnt = 0.0;
    std::vector<double> sums(n_out, 0.0);
    for (int b = 0; b <= w.bin; ++b) {
      const double* cell = slice + width * static_cast<std::size_t>(b);
      cnt += cell[0];
      for (std::size_t k = 0; k < n_out; ++k) sums[k] += cell[1 + k];
    }
    const std::vector<double> parent_sums(node_sum.begin() +
                                              static_cast<std::ptrdiff_t>(nid * n_out),
                                          node_sum.begin() +
                                              static_cast<std::ptrdiff_t>((nid + 1) * n_out));
    node_count.insert(node_count.end(), {cnt, node_count[nid] - cnt});
    for (std::size_t k = 0; k < n_out; ++k) node_sum.push_back(sums[k]);
    for (std::size_t k = 0; k < n_out; ++k) {
      node_sum.push_back(parent_sums[k] - sums[k]);
    }

    const std::size_t left_dense = next.nodes.size();
    next.nodes.push_back(left_id);
    next.nodes.push_back(left_id + 1);
    const bool left_small =
        left_count <= part.count(static_cast<std::size_t>(left_id) + 1);
    pairs.push_back(left_small
                        ? hist::SiblingPair{d, left_dense, left_dense + 1}
                        : hist::SiblingPair{d, left_dense + 1, left_dense});
    gain_per_feature[wf] += w.gain;
  }

  /// Builds the next level's histograms and, fused into the same pass, its
  /// split candidates: each pair's smaller child is accumulated fresh, the
  /// larger derived by sibling subtraction, both swept while cache-hot.
  std::vector<HistSplit> make_child_level(CartHistLevel& level,
                                          CartHistLevel& next,
                                          const std::vector<hist::SiblingPair>& pairs,
                                          std::span<const std::uint8_t> mask) {
    const std::size_t n_next = next.nodes.size();
    next.hists.resize(n_next);
    for (const hist::SiblingPair& pair : pairs) {
      next.hists[pair.small_dense].assign(layout.cells(), 0.0);
      next.hists[pair.big_dense] = std::move(level.hists[pair.parent_dense]);
    }
    std::vector<HistSplit> bests(n_feat * n_next);
    run_per_feature(pool, n_feat, [&](std::size_t f) {
      const std::size_t lo_cell = layout.begin_cell(f);
      const std::size_t f_cells = layout.feature_cells(f);
      for (const hist::SiblingPair& pair : pairs) {
        std::vector<double>& small = next.hists[pair.small_dense];
        std::vector<double>& big = next.hists[pair.big_dense];
        const auto small_nid =
            static_cast<std::size_t>(next.nodes[pair.small_dense]);
        accumulate(f, small.data() + lo_cell, part.items(small_nid));
        hist::subtract_sibling(big.data() + lo_cell, small.data() + lo_cell,
                               f_cells);
        sweep_node(f, small, small_nid, pair.small_dense, mask,
                   bests[f * n_next + pair.small_dense]);
        sweep_node(f, big, static_cast<std::size_t>(next.nodes[pair.big_dense]),
                   pair.big_dense, mask, bests[f * n_next + pair.big_dense]);
      }
    });
    return bests;
  }

  std::vector<TreeNode> build() {
    CartHistLevel level;
    level.nodes = {0};
    level.hists.emplace_back(layout.cells(), 0.0);
    std::vector<std::uint8_t> mask = draw_masks(level.nodes);
    std::vector<HistSplit> bests(n_feat);
    run_per_feature(pool, n_feat, [&](std::size_t f) {
      accumulate(f, level.hists[0].data() + layout.begin_cell(f), part.items(0));
      sweep_node(f, level.hists[0], 0, 0, mask, bests[f]);
    });

    for (int depth = 0; depth < opt.max_depth && !level.nodes.empty(); ++depth) {
      const std::size_t n_dense = level.nodes.size();
      // Reduce the carried per-feature candidates in fixed feature order.
      std::vector<HistSplit> winner(n_dense);
      for (std::size_t f = 0; f < n_feat; ++f) {
        for (std::size_t d = 0; d < n_dense; ++d) {
          const HistSplit& c = bests[f * n_dense + d];
          if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
        }
      }
      CartHistLevel next;
      std::vector<hist::SiblingPair> pairs;
      for (std::size_t d = 0; d < n_dense; ++d) {
        if (winner[d].feature >= 0 && winner[d].gain > opt.min_gain) {
          apply_split(level, d, winner[d], next, pairs);
        }
      }
      if (next.nodes.empty()) break;
      // Children at max depth become leaves; no histograms needed.
      if (depth + 1 < opt.max_depth) {
        mask = draw_masks(next.nodes);
        bests = make_child_level(level, next, pairs, mask);
      }
      level = std::move(next);
    }

    // Leaf values: mean target vector from the node stats.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].is_leaf()) continue;
      MPHPC_ENSURES(node_count[i] > 0.0);
      nodes[i].value.resize(n_out);
      for (std::size_t k = 0; k < n_out; ++k) {
        nodes[i].value[k] = node_sum[i * n_out + k] / node_count[i];
      }
    }
    return nodes;
  }
};

}  // namespace

void DecisionTree::fit(const Matrix& x, const Matrix& y, ThreadPool* pool) {
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit_rows(x, y, rows, pool);
}

void DecisionTree::fit_rows(const Matrix& x, const Matrix& y,
                            std::span<const std::size_t> rows, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() == y.rows() && !rows.empty() && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.max_depth >= 1 && options_.min_samples_leaf >= 1);

  if (options_.method == TreeMethod::kHist) {
    const BinnedMatrix binned = BinnedMatrix::build(
        x, resolve_max_bins(options_.max_bins, x.rows()), pool);
    fit_rows_binned(x, y, rows, binned, pool);
    return;
  }

  BuildState st{x, rows, rows.size(), x.cols(), y.cols(), {}, {}, {}};
  n_features_ = st.n_feat;
  nodes_.clear();
  gain_per_feature_.assign(st.n_feat, 0.0);

  // Gather the targets of the row multiset once (positions 0..n-1).
  st.ys.resize(st.n * st.n_out);
  for (std::size_t p = 0; p < st.n; ++p) {
    const auto src = y.row(rows[p]);
    std::copy(src.begin(), src.end(),
              st.ys.begin() + static_cast<std::ptrdiff_t>(p * st.n_out));
  }

  // Pre-sort positions by each feature's value, once per tree.
  st.sorted.resize(st.n_feat);
  run_per_feature(pool, st.n_feat, [&](std::size_t f) {
    auto& order = st.sorted[f];
    order.resize(st.n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return x(rows[a], f) < x(rows[b], f);
                     });
  });

  nodes_.push_back(TreeNode{});
  st.node_of.assign(st.n, 0);
  std::vector<std::int32_t> level_nodes = {0};
  Rng feature_rng(options_.seed);

  for (int depth = 0; depth < options_.max_depth && !level_nodes.empty(); ++depth) {
    const LevelStats stats =
        compute_level_stats(st, options_, nodes_.size(), level_nodes, feature_rng);
    const std::vector<SplitCandidate> winner = best_splits(st, stats, options_, pool);

    // Apply winning splits, creating the next level.
    std::vector<std::int32_t> next_level;
    bool any_split = false;
    for (std::size_t d = 0; d < stats.splittable.size(); ++d) {
      const SplitCandidate& w = winner[d];
      if (w.feature < 0 || w.gain <= options_.min_gain) continue;
      const auto node = static_cast<std::size_t>(stats.splittable[d]);
      nodes_[node].feature = w.feature;
      nodes_[node].threshold = w.threshold;
      nodes_[node].left = static_cast<int>(nodes_.size());
      nodes_[node].right = static_cast<int>(nodes_.size() + 1);
      next_level.push_back(static_cast<std::int32_t>(nodes_.size()));
      next_level.push_back(static_cast<std::int32_t>(nodes_.size() + 1));
      nodes_.emplace_back();
      nodes_.emplace_back();
      gain_per_feature_[static_cast<std::size_t>(w.feature)] += w.gain;
      any_split = true;
    }
    if (!any_split) break;

    // Re-partition positions into children.
    for (std::size_t p = 0; p < st.n; ++p) {
      const TreeNode& node = nodes_[static_cast<std::size_t>(st.node_of[p])];
      if (node.is_leaf()) continue;
      st.node_of[p] =
          x(rows[p], static_cast<std::size_t>(node.feature)) <= node.threshold
              ? node.left
              : node.right;
    }
    level_nodes = std::move(next_level);
  }

  // Leaf values: mean target vector of each leaf's rows.
  std::vector<double> leaf_count(nodes_.size(), 0.0);
  std::vector<double> leaf_sum(nodes_.size() * st.n_out, 0.0);
  for (std::size_t p = 0; p < st.n; ++p) {
    const auto node = static_cast<std::size_t>(st.node_of[p]);
    leaf_count[node] += 1.0;
    const double* yp = &st.ys[p * st.n_out];
    double* s = &leaf_sum[node * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) s[k] += yp[k];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf()) continue;
    nodes_[i].value.resize(st.n_out);
    MPHPC_ENSURES(leaf_count[i] > 0.0);
    for (std::size_t k = 0; k < st.n_out; ++k) {
      nodes_[i].value[k] = leaf_sum[i * st.n_out + k] / leaf_count[i];
    }
  }
}

void DecisionTree::fit_rows_binned(const Matrix& x, const Matrix& y,
                                   std::span<const std::size_t> rows,
                                   const BinnedMatrix& binned, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() == y.rows() && !rows.empty() && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(binned.rows() == x.rows() && binned.features() == x.cols());
  MPHPC_EXPECTS(options_.max_depth >= 1 && options_.min_samples_leaf >= 1);

  n_features_ = x.cols();
  HistCartBuilder builder(y, binned, options_, rows, pool);
  nodes_ = builder.build();
  gain_per_feature_ = std::move(builder.gain_per_feature);
}

std::span<const double> DecisionTree::predict_one(std::span<const double> x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.size() == n_features_);
  std::size_t i = 0;
  while (!nodes_[i].is_leaf()) {
    const TreeNode& node = nodes_[i];
    i = static_cast<std::size_t>(
        x[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                    : node.right);
  }
  return nodes_[i].value;
}

Matrix DecisionTree::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  // Find any leaf to size the output (the root may be internal).
  std::size_t out_dim = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf()) {
      out_dim = node.value.size();
      break;
    }
  }
  Matrix out(x.rows(), out_dim);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto value = predict_one(x.row(r));
    std::copy(value.begin(), value.end(), out.row(r).begin());
  }
  return out;
}

std::optional<std::vector<double>> DecisionTree::feature_importances() const {
  if (!fitted()) return std::nullopt;
  std::vector<double> imp = gain_per_feature_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::size_t DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node array.
  std::vector<std::size_t> depth_of(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf()) {
      max_depth = std::max(max_depth, depth_of[i]);
    } else {
      depth_of[static_cast<std::size_t>(nodes_[i].left)] = depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(nodes_[i].right)] = depth_of[i] + 1;
    }
  }
  return max_depth;
}

}  // namespace mphpc::ml
