#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace mphpc::ml {

namespace {

/// Best split candidate for one node (from one feature sweep).
struct SplitCandidate {
  double gain = 0.0;
  double threshold = 0.0;
  int feature = -1;
};

/// Per-tree build state shared by the level-wise passes below: the row
/// multiset's gathered targets, the per-feature pre-sorted position
/// orders, and each position's current node.
struct BuildState {
  const Matrix& x;
  std::span<const std::size_t> rows;
  std::size_t n = 0;       // rows.size()
  std::size_t n_feat = 0;  // x.cols()
  std::size_t n_out = 0;   // y.cols()
  std::vector<double> ys;  // targets by position, n x n_out
  std::vector<std::vector<std::uint32_t>> sorted;  // per-feature orders
  std::vector<std::int32_t> node_of;               // position -> node id
};

/// Statistics of the nodes on the current level, indexed densely in level
/// order ("d" indices). Built once per level, read by every sweep.
struct LevelStats {
  std::vector<std::int32_t> splittable;  // dense index -> node id
  std::vector<std::int32_t> dense_of;    // node id -> dense index or -1
  std::vector<double> count;             // rows per node
  std::vector<double> sum;               // per-output target sums
  std::vector<double> parent_score;      // sum_k S^2/n
  std::vector<std::uint8_t> may_split;
  std::vector<std::uint8_t> mask;        // per-node feature subsets (mtry)
  bool subsample_features = false;
};

void run_per_feature(ThreadPool* pool, std::size_t n_feat,
                     const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(0, n_feat, body);
  } else {
    for (std::size_t f = 0; f < n_feat; ++f) body(f);
  }
}

LevelStats compute_level_stats(const BuildState& st, const TreeOptions& options,
                               std::size_t num_nodes,
                               const std::vector<std::int32_t>& level_nodes,
                               Rng& feature_rng) {
  LevelStats stats;
  stats.dense_of.assign(num_nodes, -1);
  stats.splittable = level_nodes;
  for (std::size_t d = 0; d < stats.splittable.size(); ++d) {
    stats.dense_of[static_cast<std::size_t>(stats.splittable[d])] =
        static_cast<std::int32_t>(d);
  }
  const std::size_t n_dense = stats.splittable.size();

  stats.count.assign(n_dense, 0.0);
  stats.sum.assign(n_dense * st.n_out, 0.0);
  for (std::size_t p = 0; p < st.n; ++p) {
    const std::int32_t d = stats.dense_of[static_cast<std::size_t>(st.node_of[p])];
    if (d < 0) continue;
    stats.count[static_cast<std::size_t>(d)] += 1.0;
    const double* yp = &st.ys[p * st.n_out];
    double* s = &stats.sum[static_cast<std::size_t>(d) * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) s[k] += yp[k];
  }

  // Parent scores sum_k S^2/n, and which nodes may split.
  stats.parent_score.assign(n_dense, 0.0);
  stats.may_split.assign(n_dense, 0);
  for (std::size_t d = 0; d < n_dense; ++d) {
    const double* s = &stats.sum[d * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) {
      stats.parent_score[d] += s[k] * s[k] / stats.count[d];
    }
    stats.may_split[d] = stats.count[d] >= options.min_samples_split ? 1 : 0;
  }

  // Per-node feature subsets (mtry), drawn in node order.
  stats.subsample_features =
      options.max_features > 0 &&
      static_cast<std::size_t>(options.max_features) < st.n_feat;
  if (stats.subsample_features) {
    stats.mask.assign(n_dense * st.n_feat, 0);
    for (std::size_t d = 0; d < n_dense; ++d) {
      if (!stats.may_split[d]) continue;
      for (const std::size_t f : sample_without_replacement(
               feature_rng, st.n_feat,
               static_cast<std::size_t>(options.max_features))) {
        stats.mask[d * st.n_feat + f] = 1;
      }
    }
  }
  return stats;
}

/// Sweeps one feature's sorted order, writing the best candidate per dense
/// node into bests[f * n_dense + d]. Thread-safe across distinct f.
void sweep_feature(const BuildState& st, const LevelStats& stats,
                   double min_leaf, std::size_t f,
                   std::span<SplitCandidate> bests) {
  const std::size_t n_dense = stats.splittable.size();
  std::vector<double> cnt_l(n_dense, 0.0);
  std::vector<double> sum_l(n_dense * st.n_out, 0.0);
  std::vector<double> prev(n_dense, 0.0);
  std::vector<std::uint8_t> has_prev(n_dense, 0);
  SplitCandidate* best = &bests[f * n_dense];

  for (const std::uint32_t p : st.sorted[f]) {
    const std::int32_t d32 = stats.dense_of[static_cast<std::size_t>(st.node_of[p])];
    if (d32 < 0) continue;
    const auto d = static_cast<std::size_t>(d32);
    if (!stats.may_split[d]) continue;
    if (stats.subsample_features && !stats.mask[d * st.n_feat + f]) continue;
    const double v = st.x(st.rows[p], f);

    if (has_prev[d] && v > prev[d] && cnt_l[d] >= min_leaf &&
        stats.count[d] - cnt_l[d] >= min_leaf) {
      const double nl = cnt_l[d];
      const double nr = stats.count[d] - nl;
      double child_score = 0.0;
      const double* sl = &sum_l[d * st.n_out];
      const double* tot = &stats.sum[d * st.n_out];
      for (std::size_t k = 0; k < st.n_out; ++k) {
        const double sr = tot[k] - sl[k];
        child_score += sl[k] * sl[k] / nl + sr * sr / nr;
      }
      const double gain = child_score - stats.parent_score[d];
      if (gain > best[d].gain) {
        best[d] = {gain, 0.5 * (prev[d] + v), static_cast<int>(f)};
      }
    }

    cnt_l[d] += 1.0;
    const double* yp = &st.ys[static_cast<std::size_t>(p) * st.n_out];
    double* sl = &sum_l[d * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) sl[k] += yp[k];
    prev[d] = v;
    has_prev[d] = 1;
  }
}

/// Per-feature sweeps (parallel) reduced in fixed feature order, so the
/// winner per node is deterministic: lowest feature index wins ties.
std::vector<SplitCandidate> best_splits(const BuildState& st,
                                        const LevelStats& stats,
                                        const TreeOptions& options,
                                        ThreadPool* pool) {
  const std::size_t n_dense = stats.splittable.size();
  std::vector<SplitCandidate> bests(st.n_feat * n_dense);
  const double min_leaf = static_cast<double>(options.min_samples_leaf);
  run_per_feature(pool, st.n_feat, [&](std::size_t f) {
    sweep_feature(st, stats, min_leaf, f, bests);
  });

  std::vector<SplitCandidate> winner(n_dense);
  for (std::size_t f = 0; f < st.n_feat; ++f) {
    for (std::size_t d = 0; d < n_dense; ++d) {
      const SplitCandidate& c = bests[f * n_dense + d];
      if (c.feature >= 0 && c.gain > winner[d].gain) winner[d] = c;
    }
  }
  return winner;
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const Matrix& y, ThreadPool* pool) {
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit_rows(x, y, rows, pool);
}

void DecisionTree::fit_rows(const Matrix& x, const Matrix& y,
                            std::span<const std::size_t> rows, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() == y.rows() && !rows.empty() && x.cols() > 0 && y.cols() > 0);
  MPHPC_EXPECTS(options_.max_depth >= 1 && options_.min_samples_leaf >= 1);

  BuildState st{x, rows, rows.size(), x.cols(), y.cols(), {}, {}, {}};
  n_features_ = st.n_feat;
  nodes_.clear();
  gain_per_feature_.assign(st.n_feat, 0.0);

  // Gather the targets of the row multiset once (positions 0..n-1).
  st.ys.resize(st.n * st.n_out);
  for (std::size_t p = 0; p < st.n; ++p) {
    const auto src = y.row(rows[p]);
    std::copy(src.begin(), src.end(),
              st.ys.begin() + static_cast<std::ptrdiff_t>(p * st.n_out));
  }

  // Pre-sort positions by each feature's value, once per tree.
  st.sorted.resize(st.n_feat);
  run_per_feature(pool, st.n_feat, [&](std::size_t f) {
    auto& order = st.sorted[f];
    order.resize(st.n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return x(rows[a], f) < x(rows[b], f);
                     });
  });

  nodes_.push_back(TreeNode{});
  st.node_of.assign(st.n, 0);
  std::vector<std::int32_t> level_nodes = {0};
  Rng feature_rng(options_.seed);

  for (int depth = 0; depth < options_.max_depth && !level_nodes.empty(); ++depth) {
    const LevelStats stats =
        compute_level_stats(st, options_, nodes_.size(), level_nodes, feature_rng);
    const std::vector<SplitCandidate> winner = best_splits(st, stats, options_, pool);

    // Apply winning splits, creating the next level.
    std::vector<std::int32_t> next_level;
    bool any_split = false;
    for (std::size_t d = 0; d < stats.splittable.size(); ++d) {
      const SplitCandidate& w = winner[d];
      if (w.feature < 0 || w.gain <= options_.min_gain) continue;
      const auto node = static_cast<std::size_t>(stats.splittable[d]);
      nodes_[node].feature = w.feature;
      nodes_[node].threshold = w.threshold;
      nodes_[node].left = static_cast<int>(nodes_.size());
      nodes_[node].right = static_cast<int>(nodes_.size() + 1);
      next_level.push_back(static_cast<std::int32_t>(nodes_.size()));
      next_level.push_back(static_cast<std::int32_t>(nodes_.size() + 1));
      nodes_.emplace_back();
      nodes_.emplace_back();
      gain_per_feature_[static_cast<std::size_t>(w.feature)] += w.gain;
      any_split = true;
    }
    if (!any_split) break;

    // Re-partition positions into children.
    for (std::size_t p = 0; p < st.n; ++p) {
      const TreeNode& node = nodes_[static_cast<std::size_t>(st.node_of[p])];
      if (node.is_leaf()) continue;
      st.node_of[p] =
          x(rows[p], static_cast<std::size_t>(node.feature)) <= node.threshold
              ? node.left
              : node.right;
    }
    level_nodes = std::move(next_level);
  }

  // Leaf values: mean target vector of each leaf's rows.
  std::vector<double> leaf_count(nodes_.size(), 0.0);
  std::vector<double> leaf_sum(nodes_.size() * st.n_out, 0.0);
  for (std::size_t p = 0; p < st.n; ++p) {
    const auto node = static_cast<std::size_t>(st.node_of[p]);
    leaf_count[node] += 1.0;
    const double* yp = &st.ys[p * st.n_out];
    double* s = &leaf_sum[node * st.n_out];
    for (std::size_t k = 0; k < st.n_out; ++k) s[k] += yp[k];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf()) continue;
    nodes_[i].value.resize(st.n_out);
    MPHPC_ENSURES(leaf_count[i] > 0.0);
    for (std::size_t k = 0; k < st.n_out; ++k) {
      nodes_[i].value[k] = leaf_sum[i * st.n_out + k] / leaf_count[i];
    }
  }
}

std::span<const double> DecisionTree::predict_one(std::span<const double> x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.size() == n_features_);
  std::size_t i = 0;
  while (!nodes_[i].is_leaf()) {
    const TreeNode& node = nodes_[i];
    i = static_cast<std::size_t>(
        x[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                    : node.right);
  }
  return nodes_[i].value;
}

Matrix DecisionTree::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  // Find any leaf to size the output (the root may be internal).
  std::size_t out_dim = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf()) {
      out_dim = node.value.size();
      break;
    }
  }
  Matrix out(x.rows(), out_dim);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto value = predict_one(x.row(r));
    std::copy(value.begin(), value.end(), out.row(r).begin());
  }
  return out;
}

std::optional<std::vector<double>> DecisionTree::feature_importances() const {
  if (!fitted()) return std::nullopt;
  std::vector<double> imp = gain_per_feature_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::size_t DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node array.
  std::vector<std::size_t> depth_of(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf()) {
      max_depth = std::max(max_depth, depth_of[i]);
    } else {
      depth_of[static_cast<std::size_t>(nodes_[i].left)] = depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(nodes_[i].right)] = depth_of[i] + 1;
    }
  }
  return max_depth;
}

}  // namespace mphpc::ml
