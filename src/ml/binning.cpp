#include "ml/binning.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mphpc::ml {

int resolve_max_bins(int configured, std::size_t rows) noexcept {
  if (configured != 0) return configured;
  const auto scaled = static_cast<int>(rows / 64);
  return std::clamp(scaled, 32, BinnedMatrix::kMaxBins);
}

std::uint8_t FeatureBins::bin_of(double v) const noexcept {
  const auto it = std::lower_bound(thresholds.begin(), thresholds.end(), v);
  return static_cast<std::uint8_t>(it - thresholds.begin());
}

namespace {

/// Cut points for one sorted column. With few distinct values every
/// adjacent pair gets a boundary (exact binning); otherwise boundaries sit
/// at the quantile ranks k*n/max_bins, snapped to the nearest distinct-value
/// gap so ties never straddle a bin edge.
std::vector<double> make_thresholds(const std::vector<double>& sorted,
                                    int max_bins) {
  // Distinct values with cumulative row counts.
  std::vector<double> distinct;
  std::vector<std::size_t> cum;  // rows with value <= distinct[j]
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (distinct.empty() || sorted[i] > distinct.back()) {
      distinct.push_back(sorted[i]);
      cum.push_back(i + 1);
    } else {
      cum.back() = i + 1;
    }
  }

  std::vector<double> thresholds;
  const auto mid = [&](std::size_t j) {
    return 0.5 * (distinct[j] + distinct[j + 1]);
  };
  if (distinct.size() <= static_cast<std::size_t>(max_bins)) {
    thresholds.reserve(distinct.size() - 1);
    for (std::size_t j = 0; j + 1 < distinct.size(); ++j) {
      thresholds.push_back(mid(j));
    }
    return thresholds;
  }

  const std::size_t n = sorted.size();
  std::size_t prev_j = distinct.size();  // sentinel: no boundary yet
  for (int k = 1; k < max_bins; ++k) {
    const std::size_t rank =
        (static_cast<std::size_t>(k) * n) / static_cast<std::size_t>(max_bins);
    if (rank == 0) continue;
    // First distinct value whose cumulative count reaches the rank.
    const auto it = std::lower_bound(cum.begin(), cum.end(), rank);
    const auto j = static_cast<std::size_t>(it - cum.begin());
    if (j + 1 >= distinct.size() || j == prev_j) continue;
    thresholds.push_back(mid(j));
    prev_j = j;
  }
  return thresholds;
}

}  // namespace

BinnedMatrix BinnedMatrix::build(const Matrix& x, int max_bins, ThreadPool* pool) {
  MPHPC_EXPECTS(x.rows() > 0 && x.cols() > 0);
  MPHPC_EXPECTS(max_bins >= 2 && max_bins <= kMaxBins);

  BinnedMatrix out;
  out.rows_ = x.rows();
  out.features_ = x.cols();
  out.per_feature_.resize(x.cols());
  out.codes_.resize(x.rows() * x.cols());

  const auto bin_feature = [&](std::size_t f) {
    std::vector<double> sorted = x.column(f);
    std::sort(sorted.begin(), sorted.end());
    FeatureBins& bins = out.per_feature_[f];
    bins.thresholds = make_thresholds(sorted, max_bins);
    std::uint8_t* codes = out.codes_.data() + f * out.rows_;
    for (std::size_t r = 0; r < out.rows_; ++r) {
      codes[r] = bins.bin_of(x(r, f));
    }
  };

  if (pool != nullptr && x.cols() > 1) {
    pool->parallel_for(0, x.cols(), bin_feature);
  } else {
    for (std::size_t f = 0; f < x.cols(); ++f) bin_feature(f);
  }
  // Codes are always representable: at most kMaxBins bins per feature.
  MPHPC_ENSURES(out.per_feature_.size() == x.cols());
  return out;
}

}  // namespace mphpc::ml
