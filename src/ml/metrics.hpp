// Evaluation metrics (paper §VI-C): mean absolute error over all vector
// components, the Same Order Score over predicted relative-performance
// vectors, plus RMSE and R^2 for completeness.
#pragma once

#include "ml/matrix.hpp"

namespace mphpc::ml {

/// Mean absolute error across every (row, output) cell. Shapes must match.
[[nodiscard]] double mean_absolute_error(const Matrix& truth, const Matrix& pred);

/// Root-mean-squared error across every cell.
[[nodiscard]] double root_mean_squared_error(const Matrix& truth, const Matrix& pred);

/// Coefficient of determination, averaged over outputs (uniform average,
/// as scikit-learn's default multi-output R^2).
[[nodiscard]] double r2_score(const Matrix& truth, const Matrix& pred);

/// True if `a` and `b` have identical rank orderings (the i-th element of
/// each is the n-th largest in its own vector, for every i). Ties are
/// broken by index so the comparison is total.
[[nodiscard]] bool same_order(std::span<const double> a, std::span<const double> b);

/// Fraction of rows whose predicted vector preserves the true vector's
/// architecture ordering (paper's SOS metric).
[[nodiscard]] double same_order_score(const Matrix& truth, const Matrix& pred);

}  // namespace mphpc::ml
