#include "ml/linear_regressor.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::ml {

void cholesky_solve_in_place(Matrix& a, Matrix& b) {
  const std::size_t n = a.rows();
  MPHPC_EXPECTS(a.cols() == n && b.rows() == n);

  // Factor A = L L^T, storing L in the lower triangle of A.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    MPHPC_EXPECTS(diag > 0.0);
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }

  const std::size_t k_cols = b.cols();
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k_cols; ++c) {
      double v = b(i, c);
      for (std::size_t k = 0; k < i; ++k) v -= a(i, k) * b(k, c);
      b(i, c) = v / a(i, i);
    }
  }
  // Back substitution: L^T x = z.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t c = 0; c < k_cols; ++c) {
      double v = b(i, c);
      for (std::size_t k = i + 1; k < n; ++k) v -= a(k, i) * b(k, c);
      b(i, c) = v / a(i, i);
    }
  }
}

void LinearRegressor::fit(const Matrix& x, const Matrix& y, ThreadPool* /*pool*/) {
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 0 && x.cols() > 0 && y.cols() > 0);
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();
  const std::size_t p = f + 1;  // + intercept column

  // Gram matrix G = [X 1]^T [X 1] and moment matrix M = [X 1]^T Y.
  Matrix gram(p, p);
  Matrix moment(p, y.cols());
  for (std::size_t r = 0; r < n; ++r) {
    const auto xr = x.row(r);
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = i; j < f; ++j) gram(i, j) += xr[i] * xr[j];
      gram(i, f) += xr[i];
      for (std::size_t c = 0; c < y.cols(); ++c) moment(i, c) += xr[i] * y(r, c);
    }
    gram(f, f) += 1.0;
    for (std::size_t c = 0; c < y.cols(); ++c) moment(f, c) += y(r, c);
  }
  // Mirror the upper triangle and apply the ridge penalty (intercept
  // unpenalized).
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  for (std::size_t i = 0; i < f; ++i) gram(i, i) += options_.l2;

  cholesky_solve_in_place(gram, moment);
  weights_ = std::move(moment);
}

Matrix LinearRegressor::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  MPHPC_EXPECTS(x.cols() + 1 == weights_.rows());
  const std::size_t outputs = weights_.cols();
  Matrix out(x.rows(), outputs);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    for (std::size_t c = 0; c < outputs; ++c) {
      double v = weights_(x.cols(), c);  // intercept
      for (std::size_t i = 0; i < x.cols(); ++i) v += xr[i] * weights_(i, c);
      out(r, c) = v;
    }
  }
  return out;
}

std::string LinearRegressor::serialize() const {
  MPHPC_EXPECTS(fitted());
  std::string out = std::to_string(weights_.rows()) + " " +
                    std::to_string(weights_.cols()) + "\n";
  for (std::size_t r = 0; r < weights_.rows(); ++r) {
    std::vector<std::string> parts;
    parts.reserve(weights_.cols());
    for (std::size_t c = 0; c < weights_.cols(); ++c) {
      parts.push_back(format_double(weights_(r, c)));
    }
    out += join(parts, " ") + "\n";
  }
  return out;
}

LinearRegressor LinearRegressor::deserialize(std::string_view text) {
  const auto lines = split(text, '\n');
  if (lines.empty()) throw ParseError("linear regressor: empty");
  const auto dims = split(trim(lines[0]), ' ');
  if (dims.size() != 2) throw ParseError("linear regressor: bad header");
  const auto rows = static_cast<std::size_t>(parse_int(dims[0]));
  const auto cols = static_cast<std::size_t>(parse_int(dims[1]));
  if (lines.size() < rows + 1) throw ParseError("linear regressor: truncated");
  Matrix w(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto parts = split(trim(lines[r + 1]), ' ');
    if (parts.size() != cols) throw ParseError("linear regressor: bad row");
    for (std::size_t c = 0; c < cols; ++c) w(r, c) = parse_double(parts[c]);
  }
  LinearRegressor model;
  model.weights_ = std::move(w);
  return model;
}

}  // namespace mphpc::ml
