// k-nearest-neighbours regressor (distance-weighted average of the k
// closest training samples, Euclidean metric over the standardized
// feature space). Included as an additional comparator: the paper's
// related work uses k-NN for similar performance-modelling tasks.
//
// Brute-force search: the MP-HPC dataset is ~10^4 rows x 21 features, for
// which a scan beats tree indices; queries are parallelized by the pool.
#pragma once

#include <cstdint>

#include "ml/model.hpp"

namespace mphpc::ml {

struct KnnOptions {
  int k = 8;
  /// Inverse-distance weighting exponent; 0 = uniform average.
  double weight_power = 1.0;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;
  [[nodiscard]] Matrix predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }
  [[nodiscard]] bool fitted() const noexcept override { return !x_.empty(); }

  /// Prediction for one sample.
  void predict_one(std::span<const double> x, std::span<double> out) const;

  [[nodiscard]] const KnnOptions& options() const noexcept { return options_; }

 private:
  KnnOptions options_;
  Matrix x_;
  Matrix y_;
};

}  // namespace mphpc::ml
