// Gradient-boosted regression trees in the XGBoost formulation (paper
// §VI-A): second-order Taylor objective with L2 leaf regularization
// (lambda) and split penalty (gamma), shrinkage, and row/column
// subsampling.
//
//   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
//   leaf weight w* = -G / (H + lambda)
//
// Two split-search methods are available. kExact sweeps every distinct
// value of every feature over a global pre-sort (the reference
// implementation). kHist — the default — quantizes each feature into at
// most max_bins quantile bins once per fit (ml/binning.hpp), accumulates
// per-node gradient/hessian histograms, derives each split pair's larger
// child by subtracting the smaller child's histogram from the parent's,
// and sweeps bin boundaries instead of rows. The per-feature histogram
// pass runs on the ThreadPool and is reduced in fixed feature order, so
// fits are bit-identical at any thread count in both methods.
//
// Multi-output targets train one additive ensemble per output; feature
// importances are the average split gain per feature, averaged over the
// output ensembles — exactly the importance definition the paper uses.
//
// The default objective is pseudo-Huber (a smooth |r|), matching the
// paper's mean-absolute-error training objective while keeping useful
// second-order information; squared error is also available.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "ml/binning.hpp"
#include "ml/model.hpp"

namespace mphpc::ml {

enum class GbtObjective : std::uint8_t { kSquaredError = 0, kPseudoHuber = 1 };

/// Split search strategy (ml/binning.hpp): exact-greedy over pre-sorted raw
/// values, or histogram sweeps over quantile-binned values (faster,
/// near-identical accuracy; see the header comment).
using GbtTreeMethod = TreeMethod;

struct GbtOptions {
  int n_rounds = 400;          ///< boosting rounds per output
  int max_depth = 8;
  double learning_rate = 0.1;  ///< shrinkage (eta)
  double lambda = 1.0;         ///< L2 penalty on leaf weights
  double gamma = 0.0;          ///< minimum loss reduction to split
  double min_child_weight = 1.0;  ///< minimum hessian mass per child
  double subsample = 0.8;      ///< row fraction per tree (without replacement)
  double colsample = 1.0;      ///< feature fraction per tree
  /// Squared error is XGBoost 1.7's default objective (the paper reports
  /// MAE as the evaluation metric); pseudo-Huber is available for a
  /// smooth-|r| training objective.
  GbtObjective objective = GbtObjective::kSquaredError;
  double huber_delta = 1.0;    ///< pseudo-Huber transition scale
  GbtTreeMethod tree_method = GbtTreeMethod::kHist;
  /// Histogram bins per feature (2..256, kHist). 64 quantile bins resolve
  /// the counter datasets' split structure to well under the exact-greedy
  /// noise floor while keeping per-node histograms cache-resident — the
  /// right default for paper-sized campaigns. 0 means auto: scale with
  /// the row count as clamp(rows / 64, 32, 256) (resolve_max_bins), so
  /// much larger sweeps get finer quantization without retuning.
  int max_bins = 64;
  std::uint64_t seed = 13;
};

/// One node of a boosted tree; leaves carry the shrunk weight.
struct GbtNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double weight = 0.0;

  [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
};

/// One additive tree (flat node array, root at 0).
struct GbtTree {
  std::vector<GbtNode> nodes;

  [[nodiscard]] double predict(std::span<const double> x) const;
};

class GbtRegressor final : public Regressor {
 public:
  explicit GbtRegressor(GbtOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;

  /// Called after every completed checkpoint block with the number of
  /// boosting rounds finished so far (per output).
  using ProgressFn = std::function<void(int rounds_done)>;

  /// Checkpointable fit. Fresh (unfitted) models train from round 0; a
  /// model holding a partial ensemble (deserialized from a checkpoint,
  /// options restored via set_options) continues from where it stopped
  /// and produces a final model bit-identical to an uninterrupted fit —
  /// the RNG streams are replayed past the completed rounds and the
  /// per-output importance accumulators are carried in the serialized
  /// state. `on_checkpoint` fires every `checkpoint_every` rounds
  /// (0 = never) while rounds remain, so the caller can persist
  /// serialize() plus a manifest. fit() is exactly this with a cleared
  /// model and no checkpoints.
  void fit_resumable(const Matrix& x, const Matrix& y, int checkpoint_every,
                     const ProgressFn& on_checkpoint, ThreadPool* pool = nullptr);

  /// Online warm start: continues boosting an already-fitted model with
  /// `extra_rounds` more trees per output, trained on a NEW data window
  /// (any row count; feature/output shapes must match the fitted model).
  /// Unlike a resume, the base score stays fixed — the stored trees were
  /// built against it — and the subsampling RNG starts a fresh stream
  /// derived from (seed, output, rounds already completed), so each
  /// refit generation is deterministic without replaying history against
  /// data that no longer exists. Raises options().n_rounds to the new
  /// total.
  void warm_start_fit(const Matrix& x, const Matrix& y, int extra_rounds,
                      ThreadPool* pool = nullptr);

  /// Boosting rounds present per output (0 when unfitted; a partial
  /// checkpoint holds fewer than options().n_rounds).
  [[nodiscard]] int rounds_completed() const noexcept {
    return ensembles_.empty() ? 0 : static_cast<int>(ensembles_.front().size());
  }

  /// Restores the full training options on a deserialized model before
  /// resuming (serialize() only stores the method/bins subset). Resuming
  /// with options that differ from the interrupted run's is undefined.
  void set_options(const GbtOptions& options) { options_ = options; }

  [[nodiscard]] Matrix predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "xgboost"; }
  [[nodiscard]] bool fitted() const noexcept override { return !ensembles_.empty(); }

  /// Average split gain per feature, averaged over outputs, normalized to
  /// sum to 1.
  [[nodiscard]] std::optional<std::vector<double>> feature_importances() const override;

  [[nodiscard]] const GbtOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t n_outputs() const noexcept { return ensembles_.size(); }
  [[nodiscard]] const std::vector<GbtTree>& ensemble(std::size_t output) const {
    return ensembles_.at(output);
  }
  /// Per-output prior added before the ensemble sum.
  [[nodiscard]] double base_score(std::size_t output) const {
    return base_score_.at(output);
  }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }

  /// Text serialization (round-trippable; see serialize.hpp for files).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static GbtRegressor deserialize(std::string_view text);

 private:
  /// Shared body of fit_resumable and warm_start_fit. `warm` selects the
  /// warm-start initialization (fixed base score, fresh per-generation
  /// RNG stream) over the resume one (recomputed base score, replayed
  /// sampling draws).
  void fit_impl(const Matrix& x, const Matrix& y, int checkpoint_every,
                const ProgressFn& on_checkpoint, ThreadPool* pool, bool warm);

  /// Recomputes the merged importance accumulators from the per-output
  /// ones in fixed output order (deterministic, idempotent).
  /// Validates a resumed model (or initializes a fresh one) against the
  /// training-matrix shape; returns the round to continue from.
  int begin_fit(std::size_t n_feat, std::size_t n_out);

  void merge_importances();

  GbtOptions options_;
  std::vector<std::vector<GbtTree>> ensembles_;  ///< [output][round]
  std::vector<double> base_score_;               ///< per-output prior
  std::vector<double> gain_sum_;                 ///< per-feature total gain
  std::vector<double> split_count_;              ///< per-feature split count
  /// Per-output importance accumulators, kept (and serialized) so a
  /// resumed fit continues the exact same FP addition sequence instead of
  /// restarting from the merged sums.
  std::vector<std::vector<double>> gain_by_output_;   ///< [output][feature]
  std::vector<std::vector<double>> count_by_output_;  ///< [output][feature]
  std::size_t n_features_ = 0;
};

}  // namespace mphpc::ml
