#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contract.hpp"

namespace mphpc::ml {

namespace {

void check_shapes(const Matrix& truth, const Matrix& pred) {
  MPHPC_EXPECTS(truth.rows() == pred.rows() && truth.cols() == pred.cols());
  MPHPC_EXPECTS(truth.rows() > 0 && truth.cols() > 0);
}

}  // namespace

double mean_absolute_error(const Matrix& truth, const Matrix& pred) {
  check_shapes(truth, pred);
  const auto t = truth.flat();
  const auto p = pred.flat();
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sum += std::abs(t[i] - p[i]);
  return sum / static_cast<double>(t.size());
}

double root_mean_squared_error(const Matrix& truth, const Matrix& pred) {
  check_shapes(truth, pred);
  const auto t = truth.flat();
  const auto p = pred.flat();
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double d = t[i] - p[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(t.size()));
}

double r2_score(const Matrix& truth, const Matrix& pred) {
  check_shapes(truth, pred);
  double r2_sum = 0.0;
  for (std::size_t c = 0; c < truth.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < truth.rows(); ++r) mean += truth(r, c);
    mean /= static_cast<double>(truth.rows());
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t r = 0; r < truth.rows(); ++r) {
      const double dr = truth(r, c) - pred(r, c);
      const double dt = truth(r, c) - mean;
      ss_res += dr * dr;
      ss_tot += dt * dt;
    }
    // Constant-truth columns: perfect prediction scores 1, otherwise 0
    // (scikit-learn convention).
    if (ss_tot == 0.0) {
      r2_sum += ss_res == 0.0 ? 1.0 : 0.0;
    } else {
      r2_sum += 1.0 - ss_res / ss_tot;
    }
  }
  return r2_sum / static_cast<double>(truth.cols());
}

namespace {

// Rank vector of `v` with ties broken by index (stable).
std::vector<std::size_t> ranking(std::span<const double> v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<std::size_t> rank(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) rank[idx[i]] = i;
  return rank;
}

}  // namespace

bool same_order(std::span<const double> a, std::span<const double> b) {
  MPHPC_EXPECTS(a.size() == b.size());
  return ranking(a) == ranking(b);
}

double same_order_score(const Matrix& truth, const Matrix& pred) {
  check_shapes(truth, pred);
  std::size_t matches = 0;
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    if (same_order(truth.row(r), pred.row(r))) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(truth.rows());
}

}  // namespace mphpc::ml
