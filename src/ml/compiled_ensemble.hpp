// Compiled batched inference over fitted tree ensembles.
//
// The reference predictors (GbtTree::predict, DecisionTree::predict_one)
// walk per-tree node vectors one row at a time — pointer chasing through
// scattered allocations, re-touching every tree's nodes for every row.
// CompiledEnsemble flattens a fitted GbtRegressor, RandomForest, or
// DecisionTree into one contiguous structure-of-arrays node pool
// (feature / threshold / child-index arrays; leaf payloads inlined) and
// predicts blockwise: rows are processed in small tiles with the tree loop
// outside the row loop, so one tree's nodes stay cache-resident while a
// whole tile streams through them, and row tiles fan out across a
// ThreadPool.
//
// Traversals are branch-free and fixed-length: leaves are compiled as
// self-loops (left == right == self), so walking any row for exactly
// depth(tree) steps lands on its leaf with no per-step leaf test — every
// step is one conditional-move, and a lane group of rows walks in
// lock-step to hide the node-fetch latency behind independent loads. For
// GBT the lane group's running sums stay in registers across the whole
// ensemble, so each tree costs a walk plus one add.
//
// Determinism contract: predictions are bit-identical to the reference
// walking path at any thread count. Every (row, output) accumulator sums
// leaf contributions in exactly the reference tree order, rows are
// partitioned into chunks that never split a (row, output) pair, and no
// cross-row arithmetic exists — so chunking and tiling cannot change a
// single result bit.
//
// Quantized mode (CompileOptions{.quantize = true}) additionally builds a
// bin-code pool: every distinct split threshold of each feature becomes an
// entry in a sorted per-feature cut table, node thresholds shrink to the
// uint8 index of their cut, and each input row is binned ONCE per tile
// (uint8 code per feature via lower_bound on the cut table). Because the
// code of a value v is exactly #{cuts < v}, the walk comparison
// `code(v) <= cut_index` decides identically to `v <= threshold` — the
// quantized pool is a lossless re-encoding, not an approximation. The pool
// itself is relaid out for the walk: each tree's nodes are renumbered in
// BFS order so an internal node's two children always sit adjacent, and a
// node packs into ONE word — 32 bits (uint8 feature | uint8 cut index |
// uint16 tree-local index of the left child; right = left + 1) when the
// model has at most 255 features, 64 bits with a uint16 feature field
// otherwise. A walk step is then two loads — the node word and the row's
// code byte — plus `next = child_base + (code > cut)`, versus five loads
// (feature, threshold, left, right, row value) in the exact kernel; at 4
// bytes per hot node instead of 20 a whole boosted ensemble's walk pool
// sits L1-resident where the exact pool thrashes L2. Leaves
// store cut = 255 (an impossible internal cut index, since codes reach at
// most 255 and real cut indices at most 254) with the child base pointing
// at themselves, so overshooting the walk self-loops exactly like the
// exact pool. Leaf payloads live in a parallel q_payload_ array in the
// same BFS order. Models that exceed the code ranges (> 255 distinct cuts
// on one feature, > 65535 nodes in one tree, > 65535 features) silently
// keep only the exact pool; quantized() reports availability and
// quantize_note() the reason.
//
// Compile once at train/load time (CrossArchPredictor does); compilation
// is cheap (one pass over the nodes) and the compiled form is immutable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/thread_pool.hpp"
#include "ml/matrix.hpp"

namespace mphpc::ml {

class DecisionTree;
class GbtRegressor;
class RandomForest;

/// Compile-time knobs for CompiledEnsemble. `quantize` asks for the uint8
/// bin-code pool on top of the exact pool; when the model fits the code
/// ranges the quantized pool serves every predict call (losslessly).
struct CompileOptions {
  bool quantize = false;
};

class CompiledEnsemble {
 public:
  /// Reusable per-caller state for single-row prediction: holds the row's
  /// bin codes so hot serving paths never allocate per request. A
  /// default-constructed scratch is valid for any engine; it grows to the
  /// engine's feature count on first use and is then allocation-free.
  struct RowScratch {
    std::vector<std::uint8_t> codes;
  };

  /// Default-constructed engines are empty (compiled() == false).
  CompiledEnsemble() = default;

  /// Flattens a fitted model. The model can be dropped afterwards for
  /// inference-only serving; keep it for serialization or importances.
  [[nodiscard]] static CompiledEnsemble compile(const GbtRegressor& model,
                                               CompileOptions options = {});
  [[nodiscard]] static CompiledEnsemble compile(const RandomForest& model,
                                               CompileOptions options = {});
  [[nodiscard]] static CompiledEnsemble compile(const DecisionTree& model,
                                               CompileOptions options = {});

  [[nodiscard]] bool compiled() const noexcept { return !roots_.empty(); }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }
  [[nodiscard]] std::size_t n_outputs() const noexcept { return n_outputs_; }
  [[nodiscard]] std::size_t n_nodes() const noexcept { return feature_.size(); }

  /// True when the quantized pool was requested AND the model fit the
  /// uint8/uint16 code ranges; predict paths then use bin codes.
  [[nodiscard]] bool quantized() const noexcept { return quantized_; }
  /// Human-readable reason when quantization was requested but skipped
  /// (empty when quantized() or never requested).
  [[nodiscard]] const std::string& quantize_note() const noexcept {
    return quantize_note_;
  }

  /// Batched prediction, bit-identical to the source model's predict().
  /// `pool` distributes row chunks; results do not depend on it.
  [[nodiscard]] Matrix predict(const Matrix& x, ThreadPool* pool = nullptr) const;

  /// Single-row prediction into `out` (size n_outputs()). Uses a
  /// thread-local scratch; see the overload below for caller-owned state.
  void predict_row(std::span<const double> x, std::span<double> out) const;

  /// Single-row prediction with caller-owned scratch: allocation-free
  /// after the scratch's first use with this engine's feature count.
  void predict_row(std::span<const double> x, std::span<double> out,
                   RowScratch& scratch) const;

 private:
  enum class Kind : std::uint8_t { kGbt = 0, kForestMean = 1, kSingleTree = 2 };

  /// Rows per tile: big enough to amortize per-tree loop overhead, small
  /// enough that a tile's accumulators and one tree's hot nodes share L1.
  static constexpr std::size_t kTile = 512;

  void predict_tile(const Matrix& x, std::size_t lo, std::size_t hi,
                    Matrix& out) const;
  /// Quantized tile kernel: `codes` is caller scratch of at least
  /// (hi - lo) * n_features_ bytes, overwritten with the tile's bin codes.
  void predict_tile_quantized(const Matrix& x, std::size_t lo, std::size_t hi,
                              Matrix& out, std::uint8_t* codes) const;
  /// The walk half of the quantized tile kernel, generic over the packed
  /// node width (`pool` is q_node32_ or q_node64_); `codes` already binned.
  template <typename Word>
  void walk_tile_quantized(const Word* pool, std::size_t lo, std::size_t hi,
                           Matrix& out, const std::uint8_t* codes) const;

  /// Derives the per-feature cut tables and the uint8/uint16 pool from the
  /// already-built exact pool; on range overflow leaves the engine exact
  /// and records the reason. Called by compile() when options.quantize.
  void build_quantized_pool();

  /// Bin-codes one row: codes[f] = #{cuts of feature f < x[f]}, so
  /// `codes[f] <= cut_index` decides exactly like `x[f] <= threshold_`.
  /// The search is a branchless binary chop (the advance is a masked add,
  /// not a data-dependent jump): std::lower_bound mispredicts ~50% per
  /// probe on real feature values, which costs as much as the tree walks
  /// it feeds.
  void bin_row(const double* xr, std::uint8_t* codes) const noexcept {
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double* start = cuts_.data() + cut_begin_[f];
      const double* base = start;
      const double v = xr[f];
      std::size_t n = cut_begin_[f + 1] - cut_begin_[f];
      while (n > 1) {
        const std::size_t half = n / 2;
        base += half & (0 - static_cast<std::size_t>(base[half - 1] < v));
        n -= half;
      }
      const std::size_t below = n == 1 && base[0] < v ? 1 : 0;
      codes[f] = static_cast<std::uint8_t>(
          static_cast<std::size_t>(base - start) + below);
    }
  }

  /// Walks one tree for one row: exactly `steps` branch-free iterations
  /// (leaves self-loop, so overshooting is a no-op); returns the leaf.
  [[nodiscard]] std::int32_t walk(std::int32_t root, std::int32_t steps,
                                  const double* xr) const noexcept {
    std::int32_t node = root;
    for (std::int32_t s = 0; s < steps; ++s) {
      const auto i = static_cast<std::size_t>(node);
      // Mask-and-blend keeps the walk branch-free; a ternary may be
      // lowered to an unpredictable data-dependent jump.
      const std::int32_t take_left = -static_cast<std::int32_t>(
          xr[static_cast<std::size_t>(feature_[i])] <= threshold_[i]);
      node = (left_[i] & take_left) | (right_[i] & ~take_left);
    }
    return node;
  }

  /// One step of the quantized walk: `w` is a packed node word, `qr` the
  /// row's bin codes. Decodes to `left_child + (code > cut)` — branch-free
  /// (flag materialized by setcc, no data-dependent jump), and a leaf's
  /// cut of 255 makes the predicate false so the self-loop holds.
  [[nodiscard]] static std::uint32_t qstep(std::uint32_t w,
                                           const std::uint8_t* qr) noexcept {
    const std::uint8_t code = qr[w & 0xFFU];
    const std::uint8_t cut = static_cast<std::uint8_t>(w >> 8);
    return (w >> 16) + static_cast<std::uint32_t>(code > cut);
  }
  [[nodiscard]] static std::uint32_t qstep(std::uint64_t w,
                                           const std::uint8_t* qr) noexcept {
    const std::uint8_t code = qr[w & 0xFFFFU];
    const std::uint8_t cut = static_cast<std::uint8_t>(w >> 16);
    return static_cast<std::uint32_t>(w >> 32) +
           static_cast<std::uint32_t>(code > cut);
  }

  /// Quantized walk over one tree's packed nodes for a pre-binned row;
  /// `origin` is the tree's pool offset (node words hold tree-local child
  /// indices so they fit uint16). Returns the leaf's GLOBAL pool index
  /// into q_payload_ (the quantized pool has its own BFS node order).
  [[nodiscard]] std::int32_t qwalk(std::int32_t origin, std::int32_t steps,
                                   const std::uint8_t* qr) const noexcept {
    std::uint32_t local = 0;
    if (!q_node32_.empty()) {
      const std::uint32_t* qn =
          q_node32_.data() + static_cast<std::size_t>(origin);
      for (std::int32_t s = 0; s < steps; ++s) local = qstep(qn[local], qr);
    } else {
      const std::uint64_t* qn =
          q_node64_.data() + static_cast<std::size_t>(origin);
      for (std::int32_t s = 0; s < steps; ++s) local = qstep(qn[local], qr);
    }
    return origin + static_cast<std::int32_t>(local);
  }

  Kind kind_ = Kind::kGbt;
  // SoA node pool over every tree. Leaves are self-loops (left_ ==
  // right_ == self, feature_ == 0) carrying their payload in threshold_:
  // the scalar leaf weight for GBT, the offset of the leaf's value vector
  // in values_ for forest/tree.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;  ///< node index of each tree's root
  std::vector<std::int32_t> depth_;  ///< per-tree walk length (max depth)
  // kGbt: trees [output_begin_[k], output_begin_[k+1]) belong to output k,
  // in boosting-round order; base_[k] is the per-output prior.
  std::vector<std::int32_t> output_begin_;
  std::vector<double> base_;
  // kForestMean / kSingleTree: flat leaf payloads, value_width_ doubles
  // per leaf (== n_outputs_).
  std::vector<double> values_;
  std::size_t value_width_ = 0;
  std::size_t n_features_ = 0;
  std::size_t n_outputs_ = 0;
  double n_trees_ = 1.0;  ///< kForestMean: mean divisor (reference divides)

  // Quantized pool (built only when CompileOptions::quantize and the model
  // fits the code ranges). Trees keep their roots_ offsets but renumber
  // nodes internally in BFS order with sibling children adjacent; each
  // node packs into one word. Models with <= 255 features use q_node32_ —
  // bits [0,8) feature, [8,16) cut index (255 marks a leaf), [16,32)
  // TREE-LOCAL index of the left child (right child = left + 1; a leaf
  // points at itself) — wider models use q_node64_ with the same shape at
  // uint16 field widths (feature [0,16), cut [16,24), child [32,48)).
  // Exactly one of the two is non-empty when quantized_. q_payload_
  // mirrors the exact threshold_ payload in the BFS order: the scalar
  // leaf weight for GBT, the values_ offset for forest/tree, 0 for
  // internal nodes. Per-feature sorted distinct cut values live flat in
  // cuts_ with cut_begin_ offsets (size n_features_ + 1), exactly the
  // FeatureBins layout from hist training.
  bool quantized_ = false;
  std::string quantize_note_;
  std::vector<double> cuts_;
  std::vector<std::uint32_t> cut_begin_;
  std::vector<std::uint32_t> q_node32_;
  std::vector<std::uint64_t> q_node64_;
  std::vector<double> q_payload_;
};

}  // namespace mphpc::ml
