// Compiled batched inference over fitted tree ensembles.
//
// The reference predictors (GbtTree::predict, DecisionTree::predict_one)
// walk per-tree node vectors one row at a time — pointer chasing through
// scattered allocations, re-touching every tree's nodes for every row.
// CompiledEnsemble flattens a fitted GbtRegressor, RandomForest, or
// DecisionTree into one contiguous structure-of-arrays node pool
// (feature / threshold / child-index arrays; leaf payloads inlined) and
// predicts blockwise: rows are processed in small tiles with the tree loop
// outside the row loop, so one tree's nodes stay cache-resident while a
// whole tile streams through them, and row tiles fan out across a
// ThreadPool.
//
// Traversals are branch-free and fixed-length: leaves are compiled as
// self-loops (left == right == self), so walking any row for exactly
// depth(tree) steps lands on its leaf with no per-step leaf test — every
// step is one conditional-move, and a lane group of rows walks in
// lock-step to hide the node-fetch latency behind independent loads. For
// GBT the lane group's running sums stay in registers across the whole
// ensemble, so each tree costs a walk plus one add.
//
// Determinism contract: predictions are bit-identical to the reference
// walking path at any thread count. Every (row, output) accumulator sums
// leaf contributions in exactly the reference tree order, rows are
// partitioned into chunks that never split a (row, output) pair, and no
// cross-row arithmetic exists — so chunking and tiling cannot change a
// single result bit.
//
// Compile once at train/load time (CrossArchPredictor does); compilation
// is cheap (one pass over the nodes) and the compiled form is immutable.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "ml/matrix.hpp"

namespace mphpc::ml {

class DecisionTree;
class GbtRegressor;
class RandomForest;

class CompiledEnsemble {
 public:
  /// Default-constructed engines are empty (compiled() == false).
  CompiledEnsemble() = default;

  /// Flattens a fitted model. The model can be dropped afterwards for
  /// inference-only serving; keep it for serialization or importances.
  [[nodiscard]] static CompiledEnsemble compile(const GbtRegressor& model);
  [[nodiscard]] static CompiledEnsemble compile(const RandomForest& model);
  [[nodiscard]] static CompiledEnsemble compile(const DecisionTree& model);

  [[nodiscard]] bool compiled() const noexcept { return !roots_.empty(); }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }
  [[nodiscard]] std::size_t n_outputs() const noexcept { return n_outputs_; }
  [[nodiscard]] std::size_t n_nodes() const noexcept { return feature_.size(); }

  /// Batched prediction, bit-identical to the source model's predict().
  /// `pool` distributes row chunks; results do not depend on it.
  [[nodiscard]] Matrix predict(const Matrix& x, ThreadPool* pool = nullptr) const;

  /// Single-row prediction into `out` (size n_outputs()).
  void predict_row(std::span<const double> x, std::span<double> out) const;

 private:
  enum class Kind : std::uint8_t { kGbt = 0, kForestMean = 1, kSingleTree = 2 };

  /// Rows per tile: big enough to amortize per-tree loop overhead, small
  /// enough that a tile's accumulators and one tree's hot nodes share L1.
  static constexpr std::size_t kTile = 512;

  void predict_tile(const Matrix& x, std::size_t lo, std::size_t hi,
                    Matrix& out) const;

  /// Walks one tree for one row: exactly `steps` branch-free iterations
  /// (leaves self-loop, so overshooting is a no-op); returns the leaf.
  [[nodiscard]] std::int32_t walk(std::int32_t root, std::int32_t steps,
                                  const double* xr) const noexcept {
    std::int32_t node = root;
    for (std::int32_t s = 0; s < steps; ++s) {
      const auto i = static_cast<std::size_t>(node);
      // Mask-and-blend keeps the walk branch-free; a ternary may be
      // lowered to an unpredictable data-dependent jump.
      const std::int32_t take_left = -static_cast<std::int32_t>(
          xr[static_cast<std::size_t>(feature_[i])] <= threshold_[i]);
      node = (left_[i] & take_left) | (right_[i] & ~take_left);
    }
    return node;
  }

  Kind kind_ = Kind::kGbt;
  // SoA node pool over every tree. Leaves are self-loops (left_ ==
  // right_ == self, feature_ == 0) carrying their payload in threshold_:
  // the scalar leaf weight for GBT, the offset of the leaf's value vector
  // in values_ for forest/tree.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;  ///< node index of each tree's root
  std::vector<std::int32_t> depth_;  ///< per-tree walk length (max depth)
  // kGbt: trees [output_begin_[k], output_begin_[k+1]) belong to output k,
  // in boosting-round order; base_[k] is the per-output prior.
  std::vector<std::int32_t> output_begin_;
  std::vector<double> base_;
  // kForestMean / kSingleTree: flat leaf payloads, value_width_ doubles
  // per leaf (== n_outputs_).
  std::vector<double> values_;
  std::size_t value_width_ = 0;
  std::size_t n_features_ = 0;
  std::size_t n_outputs_ = 0;
  double n_trees_ = 1.0;  ///< kForestMean: mean divisor (reference divides)
};

}  // namespace mphpc::ml
