// The common regressor interface. All models are multi-output
// (Y: samples x outputs) to match the relative-performance-vector task.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "ml/matrix.hpp"

namespace mphpc::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model to (X, Y). X: samples x features, Y: samples x outputs,
  /// same row count, both non-empty. Refitting replaces the previous fit.
  /// `pool` (optional) parallelizes training where the model supports it.
  virtual void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) = 0;

  /// Predicts outputs for X (samples x features, feature count must match
  /// the fit). Requires a prior fit.
  [[nodiscard]] virtual Matrix predict(const Matrix& x) const = 0;

  /// Short model family name ("xgboost", "decision forest", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual bool fitted() const noexcept = 0;

  /// Per-feature importances (average split gain) for models that expose
  /// them; nullopt otherwise. Only valid after fit().
  [[nodiscard]] virtual std::optional<std::vector<double>> feature_importances() const {
    return std::nullopt;
  }
};

}  // namespace mphpc::ml
