// Row-major owning matrix used as the data interchange type of the ML
// stack: X is (samples x features), Y is (samples x outputs).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/contract.hpp"

namespace mphpc::ml {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Adopts row-major `data` (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    MPHPC_EXPECTS(data_.size() == rows_ * cols_);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws ContractViolation).
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    MPHPC_EXPECTS(r < rows_ && c < cols_);
    return (*this)(r, c);
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    MPHPC_EXPECTS(r < rows_ && c < cols_);
    return (*this)(r, c);
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  /// Extracts one column as a vector.
  [[nodiscard]] std::vector<double> column(std::size_t c) const {
    MPHPC_EXPECTS(c < cols_);
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  /// New matrix containing the given rows.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> rows) const {
    Matrix out(rows.size(), cols_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      MPHPC_EXPECTS(rows[i] < rows_);
      const auto src = row(rows[i]);
      std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mphpc::ml
