// Multi-output ridge regression solved by the normal equations with a
// Cholesky factorization: W = (X^T X + lambda I)^-1 X^T Y, with an
// unpenalized intercept via column augmentation.
#pragma once

#include "ml/model.hpp"

namespace mphpc::ml {

struct LinearOptions {
  double l2 = 1e-6;  ///< ridge penalty (keeps the normal equations well-posed)
};

class LinearRegressor final : public Regressor {
 public:
  explicit LinearRegressor(LinearOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;
  [[nodiscard]] Matrix predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] bool fitted() const noexcept override { return !weights_.empty(); }

  /// Fitted weights: (features+1) x outputs; the last row is the intercept.
  [[nodiscard]] const Matrix& weights() const noexcept { return weights_; }

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static LinearRegressor deserialize(std::string_view text);

 private:
  LinearOptions options_;
  Matrix weights_;
};

/// Solves A x = b for symmetric positive-definite A (in-place Cholesky).
/// A is n x n row-major, b has n rows and k columns; the solution
/// overwrites b. Throws ContractViolation if A is not positive definite.
void cholesky_solve_in_place(Matrix& a, Matrix& b);

}  // namespace mphpc::ml
