#include "ml/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/contract.hpp"

namespace mphpc::ml {

void save_text(const std::string& text, const std::string& path) {
  MPHPC_EXPECTS(!path.empty());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string load_text(const std::string& path) {
  MPHPC_EXPECTS(!path.empty());
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace mphpc::ml
