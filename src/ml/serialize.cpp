#include "ml/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"

namespace mphpc::ml {

void save_text(const std::string& text, const std::string& path) {
  MPHPC_EXPECTS(!path.empty());
  // Atomic replace: a crash mid-save leaves the previous model intact
  // instead of a torn file.
  atomic_write_text(path, text);
}

std::string load_text(const std::string& path) {
  MPHPC_EXPECTS(!path.empty());
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace mphpc::ml
