#include "ml/mean_regressor.hpp"

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::ml {

void MeanRegressor::fit(const Matrix& x, const Matrix& y, ThreadPool* /*pool*/) {
  MPHPC_EXPECTS(x.rows() == y.rows() && y.rows() > 0 && y.cols() > 0);
  mean_.assign(y.cols(), 0.0);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < y.cols(); ++c) mean_[c] += y(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(y.rows());
}

Matrix MeanRegressor::predict(const Matrix& x) const {
  MPHPC_EXPECTS(fitted());
  Matrix out(x.rows(), mean_.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < mean_.size(); ++c) out(r, c) = mean_[c];
  }
  return out;
}

std::string MeanRegressor::serialize() const {
  MPHPC_EXPECTS(fitted());
  std::vector<std::string> parts;
  parts.reserve(mean_.size());
  for (const double m : mean_) parts.push_back(format_double(m));
  return join(parts, " ");
}

MeanRegressor MeanRegressor::deserialize(std::string_view text) {
  MeanRegressor model;
  for (const auto& part : split(text, ' ')) {
    if (!trim(part).empty()) model.mean_.push_back(parse_double(part));
  }
  if (model.mean_.empty()) throw ParseError("mean regressor: no values");
  return model;
}

}  // namespace mphpc::ml
