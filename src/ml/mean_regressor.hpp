// Mean-prediction baseline (paper §VI-A): predicts the training set's mean
// output vector for every sample. The reference point the learned models
// are measured against (the paper's XGBoost improves on it by ~82% MAE).
#pragma once

#include "ml/model.hpp"

namespace mphpc::ml {

class MeanRegressor final : public Regressor {
 public:
  void fit(const Matrix& x, const Matrix& y, ThreadPool* pool = nullptr) override;
  [[nodiscard]] Matrix predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "mean"; }
  [[nodiscard]] bool fitted() const noexcept override { return !mean_.empty(); }

  [[nodiscard]] const std::vector<double>& mean() const noexcept { return mean_; }

  /// Text serialization (single line of output means).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static MeanRegressor deserialize(std::string_view text);

 private:
  std::vector<double> mean_;
};

}  // namespace mphpc::ml
