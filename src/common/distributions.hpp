// Continuous and discrete distributions on top of mphpc::Rng.
//
// We implement these explicitly (rather than using <random> distribution
// adaptors) because the standard library does not guarantee identical
// sequences across implementations, and our experiments must be
// reproducible across toolchains.
#pragma once

#include <cmath>
#include <numbers>
#include <span>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc {

/// Standard normal draw (Box–Muller, one value per call; deterministic).
inline double normal(Rng& rng) noexcept {
  // Avoid log(0) by nudging u1 away from zero.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

/// Normal draw with the given mean and standard deviation (sigma >= 0).
inline double normal(Rng& rng, double mean, double sigma) noexcept {
  return mean + sigma * normal(rng);
}

/// Log-normal multiplicative noise factor with median 1 and the given
/// log-space sigma; used for run-to-run performance variability.
inline double lognormal_factor(Rng& rng, double log_sigma) noexcept {
  return std::exp(log_sigma * normal(rng));
}

/// Exponential draw with the given rate (lambda > 0).
inline double exponential(Rng& rng, double lambda) {
  MPHPC_EXPECTS(lambda > 0.0);
  return -std::log(1.0 - rng.uniform()) / lambda;
}

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[i]. All weights must be >= 0 and their sum > 0.
inline std::size_t weighted_choice(Rng& rng, std::span<const double> weights) {
  MPHPC_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    MPHPC_EXPECTS(w >= 0.0);
    total += w;
  }
  MPHPC_EXPECTS(total > 0.0);
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: landed exactly on the total
}

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(Rng& rng, std::vector<T>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    using std::swap;
    swap(v[i - 1], v[rng.below(i)]);
  }
}

/// Returns a random permutation of [0, n).
inline std::vector<std::size_t> permutation(Rng& rng, std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(rng, idx);
  return idx;
}

/// Samples k distinct indices from [0, n) without replacement (k <= n).
inline std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                           std::size_t k) {
  MPHPC_EXPECTS(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    using std::swap;
    swap(idx[i], idx[i + rng.below(n - i)]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace mphpc
