#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace mphpc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return {buf, res.ptr};
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("invalid double: '" + std::string(s) + "'");
  }
  return value;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

std::uint64_t fnv1a_64(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string format_hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace mphpc
