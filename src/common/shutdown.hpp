// Signal-aware shutdown latch for the long-running subcommands.
//
// `mphpc serve`, `mphpc train --checkpoint-every`, and `mphpc sched-scale`
// all run for minutes to hours and own on-disk state (model checkpoints,
// JSON reports, the serve model store). A SIGINT/SIGTERM must not kill
// them mid-write: they install this latch once, keep working, and poll
// `requested()` at their natural flush points (checkpoint boundaries,
// simulation phases, the serve event loop) to drain and exit cleanly.
//
// The handler itself is async-signal-safe: it sets a sig_atomic_t flag
// and writes one byte into a self-pipe, nothing else. Event loops that
// block in poll()/read() add `wake_fd()` to their fd set so a signal
// interrupts the wait immediately instead of on the next request.
//
// SIGKILL, by design, cannot be caught — crash safety against it comes
// from atomic_file writes, not from this latch.
#pragma once

namespace mphpc {

class ShutdownLatch {
 public:
  /// The process-wide latch.
  [[nodiscard]] static ShutdownLatch& instance();

  /// Installs SIGINT + SIGTERM handlers (idempotent; keeps any prior
  /// `install()` state). Handlers persist for the process lifetime.
  void install();

  /// True once a shutdown signal arrived (or `request()` was called).
  [[nodiscard]] bool requested() const noexcept;

  /// The signal that tripped the latch (0 when not requested).
  [[nodiscard]] int signal_number() const noexcept;

  /// Conventional exit code for a run interrupted by `sig`: 128 + sig
  /// (130 for SIGINT, 143 for SIGTERM) — distinct from success (0) and
  /// from ordinary errors (1, 2), so wrappers can tell "interrupted but
  /// state flushed" apart from "failed".
  [[nodiscard]] static int exit_code(int sig) noexcept { return 128 + sig; }
  [[nodiscard]] int exit_code() const noexcept { return exit_code(signal_number()); }

  /// Readable end of the self-pipe: poll() it alongside I/O fds to wake
  /// blocking loops the moment a signal lands. -1 before install().
  [[nodiscard]] int wake_fd() const noexcept;

  /// Trips the latch programmatically (tests and in-process shutdown
  /// requests take the same drain path as a real signal).
  void request(int sig) noexcept;

  /// Re-arms the latch (tests only; handlers stay installed).
  void reset() noexcept;

 private:
  ShutdownLatch() = default;
};

}  // namespace mphpc
