// A small fixed-size thread pool with a deterministic parallel_for.
//
// Work in mphpc is embarrassingly parallel at coarse grain (runs of the
// simulator, trees of a forest, feature columns during split search), so a
// simple shared-queue pool suffices. parallel_for partitions the index
// range statically into contiguous chunks so results are independent of
// scheduling order; any reductions are performed by the caller over
// per-chunk buffers in fixed order, keeping every parallel path
// bit-deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mphpc {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. A task that throws does not take the process down:
  /// the first uncaught exception is captured and rethrown to the next
  /// wait_idle() caller (later ones are dropped — the first failure is
  /// the diagnosis; the rest are usually its echo).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any submitted task raised since the
  /// last wait_idle() (clearing it). parallel_for/parallel_chunks deliver
  /// their body's exceptions at their own join point instead.
  void wait_idle();

  /// Runs body(i) for every i in [begin, end), partitioned into contiguous
  /// chunks across the pool (plus the calling thread). Blocks until done.
  /// `body` must be safe to invoke concurrently for distinct indices.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Runs body(chunk_index, chunk_begin, chunk_end) over a static partition
  /// of [begin, end) into at most size()+1 chunks. Useful when the caller
  /// wants per-chunk accumulators reduced in fixed order afterwards.
  /// Returns the number of chunks used.
  ///
  /// Safe to call from inside a pool task (nested parallelism): while its
  /// own chunks are outstanding the caller helps drain the shared queue
  /// instead of blocking, so a worker that issues a nested parallel region
  /// cannot deadlock behind occupied workers.
  ///
  /// A body that throws (on any chunk, worker or caller) does not
  /// terminate the process: every chunk still runs to completion or
  /// failure, then one of the thrown exceptions (the first captured) is
  /// rethrown here to the submitter. The pool stays usable afterwards.
  std::size_t parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  /// Pops and runs one queued task on the calling thread. Returns false if
  /// the queue was empty. Used by waiting parallel_chunks callers to make
  /// progress instead of blocking (nested-parallelism deadlock avoidance).
  bool try_run_one_task();

  /// Runs `task`, capturing an escaping exception into first_exception_
  /// (first writer wins) instead of letting it unwind into the worker.
  void run_task_capturing(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  /// First exception thrown by a submit()ed task since the last
  /// wait_idle(); guarded by mutex_. parallel_chunks exceptions use their
  /// own per-call slot and never land here.
  std::exception_ptr first_exception_;
};

}  // namespace mphpc
