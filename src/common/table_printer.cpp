#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MPHPC_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  MPHPC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule_len += width[c] + (c > 0 ? 2 : 0);
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace mphpc
