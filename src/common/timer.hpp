// Monotonic wall-clock timer for coarse instrumentation in benches.
#pragma once

#include <chrono>

namespace mphpc {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the timer.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mphpc
