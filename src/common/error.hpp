// Contract-checking and error types shared across all mphpc modules.
//
// Programming-contract violations (precondition/postcondition failures)
// throw `ContractViolation` so that tests can assert on misuse and so that
// release builds fail loudly instead of corrupting results. Recoverable
// conditions (bad input files, unknown names) use dedicated exception
// types below or std::optional returns at the call site.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mphpc {

/// Thrown when an MPHPC_EXPECTS / MPHPC_ENSURES contract check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed external input (CSV files, serialized models, ...).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a name lookup (system, application, counter, column) fails.
class LookupError : public std::runtime_error {
 public:
  explicit LookupError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::source_location& loc) {
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          loc.file_name() + ":" + std::to_string(loc.line()) +
                          " in " + loc.function_name());
}

}  // namespace detail

}  // namespace mphpc

/// Precondition check: throws mphpc::ContractViolation when `cond` is false.
#define MPHPC_EXPECTS(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::mphpc::detail::contract_fail("precondition", #cond,            \
                                     std::source_location::current()); \
    }                                                                  \
  } while (false)

/// Postcondition check: throws mphpc::ContractViolation when `cond` is false.
#define MPHPC_ENSURES(cond)                                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mphpc::detail::contract_fail("postcondition", #cond,            \
                                     std::source_location::current());  \
    }                                                                   \
  } while (false)
