// Error types shared across all mphpc modules.
//
// Programming-contract violations (precondition/postcondition failures)
// throw `ContractViolation` so that tests can assert on misuse and so that
// release builds fail loudly instead of corrupting results; the macros
// that raise it live in common/contract.hpp. Recoverable conditions (bad
// input files, unknown names) use the dedicated exception types below or
// std::optional returns at the call site.
#pragma once

#include <stdexcept>
#include <string>

namespace mphpc {

/// Thrown when an MPHPC_EXPECTS / MPHPC_ENSURES / MPHPC_ASSERT contract
/// check fails (contract level "throw"; see common/contract.hpp).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed external input (CSV files, serialized models, ...).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a name lookup (system, application, counter, column) fails.
class LookupError : public std::runtime_error {
 public:
  explicit LookupError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace mphpc
