#include "common/contract.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mphpc::detail {

#if MPHPC_CONTRACT_LEVEL >= 1

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const std::source_location& loc) {
#if MPHPC_CONTRACT_LEVEL >= 2
  // Abort mode: report on stderr and die. Used by the death-test /
  // sanitizer-hardened lane, where unwinding would blur the stack trace.
  std::fprintf(stderr, "mphpc: %s failed: (%s) at %s:%u in %s\n", kind, expr,
               loc.file_name(), static_cast<unsigned>(loc.line()),
               loc.function_name());
  std::abort();
#else
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          loc.file_name() + ":" + std::to_string(loc.line()) +
                          " in " + loc.function_name());
#endif
}

#else

// Level 0 keeps the symbol defined so mixed-level object files still link.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const std::source_location& loc) {
  std::fprintf(stderr, "mphpc: %s failed: (%s) at %s:%u\n", kind, expr,
               loc.file_name(), static_cast<unsigned>(loc.line()));
  std::abort();
}

#endif

}  // namespace mphpc::detail
