// Minimal streaming JSON writer for experiment reports.
//
// The bench harness emits both a human-readable table (table_printer) and a
// machine-readable JSON record per experiment; this writer covers exactly
// the subset needed (objects, arrays, strings, numbers, booleans) with
// correct escaping and round-trippable doubles.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mphpc {

class JsonWriter {
 public:
  /// Begins a JSON object ({"key": {...}} when inside an object).
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();

  /// Begins a JSON array.
  JsonWriter& begin_array();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  /// Writes a key/value member inside an object.
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, long long value);
  JsonWriter& field(std::string_view key, int value);
  JsonWriter& field(std::string_view key, std::size_t value);
  JsonWriter& field(std::string_view key, bool value);

  /// Writes a bare value inside an array.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(bool v);

  /// The accumulated JSON text. Valid once all scopes are closed.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void key_prefix(std::string_view key);
  void write_escaped(std::string_view s);

  std::string out_;
  std::vector<bool> has_items_;  // per open scope: have we emitted an item yet?
};

}  // namespace mphpc
