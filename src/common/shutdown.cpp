#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

namespace mphpc {

namespace {

// Handler state. Only async-signal-safe operations may touch these from
// the handler: a lock-free atomic store and a write() on the pipe. An
// atomic (rather than volatile sig_atomic_t) also makes the cross-thread
// reads in requested() well-defined under TSan — the serve event loop
// polls this from threads other than the one that took the signal.
std::atomic<int> g_signal{0};
int g_wake_read = -1;
int g_wake_write = -1;
bool g_installed = false;

extern "C" void shutdown_handler(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  if (g_wake_write >= 0) {
    const char byte = 1;
    // A full pipe just means earlier wake bytes are still pending; the
    // flag carries the information either way.
    [[maybe_unused]] const auto n = ::write(g_wake_write, &byte, 1);
  }
}

}  // namespace

ShutdownLatch& ShutdownLatch::instance() {
  static ShutdownLatch latch;
  return latch;
}

void ShutdownLatch::install() {
  if (g_installed) return;
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    // Non-blocking on both ends: the handler must never block, and a
    // drain loop reading leftover wake bytes must not hang.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    g_wake_read = fds[0];
    g_wake_write = fds[1];
  }
  struct sigaction action = {};
  action.sa_handler = shutdown_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: code that has not opted into the latch (library reads,
  // getline) keeps working across the signal; latch-aware loops wake via
  // the self-pipe in their poll set instead of relying on EINTR.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  g_installed = true;
}

bool ShutdownLatch::requested() const noexcept {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownLatch::signal_number() const noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

int ShutdownLatch::wake_fd() const noexcept { return g_wake_read; }

void ShutdownLatch::request(int sig) noexcept { shutdown_handler(sig); }

void ShutdownLatch::reset() noexcept {
  g_signal.store(0, std::memory_order_relaxed);
  if (g_wake_read >= 0) {
    char buf[16];
    while (::read(g_wake_read, buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace mphpc
