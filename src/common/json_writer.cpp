#include "common/json_writer.hpp"

#include <cstdio>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc {

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  comma();
  out_ += '"';
  write_escaped(key);
  out_ += "\":";
}

void JsonWriter::write_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MPHPC_EXPECTS(!has_items_.empty());
  has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MPHPC_EXPECTS(!has_items_.empty());
  has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ += '"';
  write_escaped(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  MPHPC_EXPECTS(value != nullptr);
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  out_ += format_double(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, long long value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, int value) {
  return field(key, static_cast<long long>(value));
}

JsonWriter& JsonWriter::field(std::string_view key, std::size_t value) {
  return field(key, static_cast<long long>(value));
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  write_escaped(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace mphpc
