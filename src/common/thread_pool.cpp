#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/contract.hpp"

namespace mphpc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc > 0 ? hc : 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MPHPC_EXPECTS(task != nullptr);
  {
    const std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr err = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_task_capturing(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    const std::lock_guard lock(mutex_);
    if (first_exception_ == nullptr) first_exception_ = std::current_exception();
  }
}

bool ThreadPool::try_run_one_task() {
  std::function<void()> task;
  {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++active_;
  }
  run_task_capturing(task);
  {
    const std::lock_guard lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    run_task_capturing(task);
    {
      const std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_chunks(begin, end,
                  [&body](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) body(i);
                  });
}

std::size_t ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return 0;
  const std::size_t n = end - begin;
  const std::size_t max_chunks = size() + 1;  // workers + calling thread
  const std::size_t chunks = std::min(n, max_chunks);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;

  // Chunk c covers [lo, hi): first `rem` chunks get base+1 items.
  const auto bounds = [&](std::size_t c) {
    const std::size_t lo = begin + c * base + std::min(c, rem);
    const std::size_t len = base + (c < rem ? 1 : 0);
    return std::pair{lo, lo + len};
  };

  // `remaining` is guarded by done_mutex (not an atomic): the last worker
  // must still hold the mutex when the count reaches zero, otherwise a
  // spurious wakeup could let the caller observe zero, return, and destroy
  // done_mutex/done_cv while that worker is about to lock them. The same
  // mutex guards the per-call exception slot: chunk bodies that throw are
  // captured here (never escaping into a worker) and rethrown to this
  // caller once every chunk has finished.
  std::size_t remaining = chunks - 1;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr chunk_exception;

  for (std::size_t c = 1; c < chunks; ++c) {
    submit([&, c] {
      std::exception_ptr err;
      try {
        const auto [lo, hi] = bounds(c);
        body(c, lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard lock(done_mutex);
      if (err != nullptr && chunk_exception == nullptr) chunk_exception = err;
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  // Calling thread takes chunk 0 to avoid idling. Its exception must not
  // unwind yet — workers still reference the locals above.
  std::exception_ptr caller_exception;
  try {
    const auto [lo0, hi0] = bounds(0);
    body(0, lo0, hi0);
  } catch (...) {
    caller_exception = std::current_exception();
  }

  // Help-drain while waiting: when called from inside a pool task, this
  // caller's chunks may sit behind occupied workers — blocking here would
  // deadlock. Running queued tasks (ours or anyone's) guarantees progress;
  // we only sleep once the queue is empty, at which point every remaining
  // chunk is already executing on some thread and will signal done_cv.
  for (;;) {
    {
      const std::lock_guard lock(done_mutex);
      if (remaining == 0) break;
    }
    if (try_run_one_task()) continue;
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    break;
  }

  // All chunks are done; no lock needed to read the slot anymore, but the
  // acquire via done_mutex above already ordered the stores.
  if (chunk_exception != nullptr) std::rethrow_exception(chunk_exception);
  if (caller_exception != nullptr) std::rethrow_exception(caller_exception);
  return chunks;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mphpc
