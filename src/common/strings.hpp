// Small string utilities used by CSV I/O, serialization, and reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mphpc {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Lower-cases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Formats a double with enough digits to round-trip exactly.
[[nodiscard]] std::string format_double(double v);

/// Formats a double with fixed precision for human-readable reports.
[[nodiscard]] std::string format_fixed(double v, int precision);

/// Parses a double; throws mphpc::ParseError on failure or trailing junk.
[[nodiscard]] double parse_double(std::string_view s);

/// Parses a non-negative integer; throws mphpc::ParseError on failure.
[[nodiscard]] long long parse_int(std::string_view s);

/// FNV-1a 64-bit hash of a byte string — a content checksum for cache
/// manifests (not cryptographic: detects corruption and staleness, not
/// adversaries).
[[nodiscard]] std::uint64_t fnv1a_64(std::string_view s) noexcept;

/// Formats a 64-bit value as 16 lowercase hex digits.
[[nodiscard]] std::string format_hex64(std::uint64_t v);

}  // namespace mphpc
