// Contract macros for preconditions, postconditions, invariants, and
// unreachable code. This is the single correctness substrate every mphpc
// subsystem is written against; the sanitizer lanes and `mphpc_lint` are
// layered on top of it (see DESIGN.md "Correctness toolchain").
//
// Four macros:
//   MPHPC_EXPECTS(cond)      precondition at a public entry point
//   MPHPC_ENSURES(cond)      postcondition before returning a result
//   MPHPC_ASSERT(cond)       internal invariant inside an implementation
//   MPHPC_UNREACHABLE(msg)   control flow that must never be reached
//
// Behavior is selected at compile time with MPHPC_CONTRACT_LEVEL (the
// CMake cache variable MPHPC_CONTRACT_MODE maps onto it):
//
//   level 2 ("abort")  — check and abort with a message on stderr. The
//     death-test and sanitizer-hardened lane: aborting produces the
//     cleanest stacks under ASan/TSan and cannot unwind through noexcept.
//   level 1 ("throw")  — check and throw mphpc::ContractViolation. The
//     default in every build type, so tests can assert misuse with
//     EXPECT_THROW and release binaries fail loudly instead of silently
//     corrupting results.
//   level 0 ("assume") — no checks; conditions become optimizer
//     assumptions ([[assume]]-style via __builtin_unreachable) and
//     MPHPC_UNREACHABLE compiles to __builtin_unreachable(). The
//     benchmarking lane only: violating a contract is undefined behavior
//     here, so never run it on unvalidated inputs.
#pragma once

#include <source_location>

#include "common/error.hpp"

#ifndef MPHPC_CONTRACT_LEVEL
#define MPHPC_CONTRACT_LEVEL 1
#endif

/// 1 when contract conditions are evaluated and violations reported.
#define MPHPC_CONTRACTS_CHECKED (MPHPC_CONTRACT_LEVEL >= 1)

namespace mphpc::detail {

/// Reports a failed contract according to the active contract level:
/// throws ContractViolation at level 1, prints and aborts at level 2.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const std::source_location& loc);

}  // namespace mphpc::detail

#if MPHPC_CONTRACT_LEVEL >= 1

#define MPHPC_CONTRACT_CHECK_(kind, cond)                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mphpc::detail::contract_fail(kind, #cond,                       \
                                     std::source_location::current()); \
    }                                                                   \
  } while (false)

/// Precondition at a public entry point.
#define MPHPC_EXPECTS(cond) MPHPC_CONTRACT_CHECK_("precondition", cond)
/// Postcondition on a computed result.
#define MPHPC_ENSURES(cond) MPHPC_CONTRACT_CHECK_("postcondition", cond)
/// Internal invariant inside an implementation.
#define MPHPC_ASSERT(cond) MPHPC_CONTRACT_CHECK_("assertion", cond)
/// Marks control flow that must never execute.
#define MPHPC_UNREACHABLE(msg)                                         \
  ::mphpc::detail::contract_fail("unreachable", msg,                   \
                                 std::source_location::current())

#else  // MPHPC_CONTRACT_LEVEL == 0: optimizer assumptions, no checks.

#if defined(__GNUC__) || defined(__clang__)
#define MPHPC_CONTRACT_ASSUME_(cond) \
  do {                               \
    if (!(cond)) __builtin_unreachable(); \
  } while (false)
#define MPHPC_CONTRACT_UNREACHABLE_() __builtin_unreachable()
#else
#define MPHPC_CONTRACT_ASSUME_(cond) ((void)0)
#define MPHPC_CONTRACT_UNREACHABLE_() ((void)0)
#endif

#define MPHPC_EXPECTS(cond) MPHPC_CONTRACT_ASSUME_(cond)
#define MPHPC_ENSURES(cond) MPHPC_CONTRACT_ASSUME_(cond)
#define MPHPC_ASSERT(cond) MPHPC_CONTRACT_ASSUME_(cond)
#define MPHPC_UNREACHABLE(msg) MPHPC_CONTRACT_UNREACHABLE_()

#endif  // MPHPC_CONTRACT_LEVEL
