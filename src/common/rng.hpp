// Deterministic random number generation.
//
// All stochastic components in mphpc (dataset synthesis, model training,
// scheduling workload sampling) draw from explicitly-seeded generators so
// that every experiment is bit-reproducible. We implement xoshiro256**
// (Blackman & Vigna) seeded through SplitMix64, plus a stable string
// hashing scheme for deriving independent per-entity streams, e.g.
//   Rng rng(derive_seed(base, "CoMD", "lassen", run_index));
#pragma once

#include <cstdint>
#include <string_view>

namespace mphpc {

/// SplitMix64 step; used for seeding and seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a string, for mixing names into seed derivations.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace detail {

constexpr std::uint64_t mix_one(std::uint64_t seed, std::uint64_t v) noexcept {
  std::uint64_t s = seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
  return splitmix64(s);
}

constexpr std::uint64_t to_u64(std::uint64_t v) noexcept { return v; }
constexpr std::uint64_t to_u64(std::string_view v) noexcept { return fnv1a(v); }
constexpr std::uint64_t to_u64(const char* v) noexcept { return fnv1a(v); }

}  // namespace detail

/// Derives an independent seed from a base seed and any mix of integer /
/// string tags. Same inputs always yield the same seed.
template <typename... Tags>
constexpr std::uint64_t derive_seed(std::uint64_t base, const Tags&... tags) noexcept {
  std::uint64_t s = base;
  ((s = detail::mix_one(s, detail::to_u64(tags))), ...);
  return s;
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Debiased multiply-shift; bias is < 2^-64 for the n used here, which
    // is negligible for simulation purposes and keeps this branch-light.
    const std::uint64_t x = (*this)();
    // 128-bit multiply via the GCC/Clang extension type.
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(x) * static_cast<u128>(n)) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of returning true.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mphpc
