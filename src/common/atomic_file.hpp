// Crash-safe file writes: write-temp -> fsync -> rename.
//
// Every artifact the pipeline produces (serialized models, dataset CSVs,
// JSON reports, campaign shards) goes through atomic_write_text so a
// crash or SIGKILL mid-write can never leave a torn file at the final
// path — readers either see the complete old contents or the complete
// new contents. The temp file lives in the destination directory (rename
// must not cross filesystems) and carries a per-process unique suffix so
// concurrent writers to *different* paths never collide.
#pragma once

#include <string>
#include <string_view>

namespace mphpc {

/// Atomically replaces the file at `path` with `content`. Throws
/// std::runtime_error on any I/O failure; on failure the destination is
/// untouched and the temp file is cleaned up best-effort.
void atomic_write_text(const std::string& path, std::string_view content);

}  // namespace mphpc
