// Fixed-width console table rendering for bench/experiment output.
//
// Every bench binary prints its figure/table as an aligned text table so
// the harness output is directly comparable with the paper's artefacts.
#pragma once

#include <string>
#include <vector>

namespace mphpc {

class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 4);

  /// Renders the table with a header rule and column padding.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mphpc
