#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/contract.hpp"

namespace mphpc {

namespace {

[[noreturn]] void fail(const char* what, const std::string& path) {
  throw std::runtime_error(std::string(what) + " " + path + ": " +
                           std::strerror(errno));
}

/// Directory part of `path` ("." when the path has no slash), used to
/// fsync the directory entry after the rename.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void atomic_write_text(const std::string& path, std::string_view content) {
  MPHPC_EXPECTS(!path.empty());
  // Unique per (process, call): concurrent threads writing different
  // destinations in the same directory must not share a temp name.
  static std::atomic<unsigned long long> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open for writing", tmp);

  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed", tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }

  // Flush file data to stable storage before the rename publishes it;
  // otherwise a crash could expose a renamed-but-empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename failed", path);
  }

  // Best-effort directory fsync so the rename itself is durable. Some
  // filesystems refuse O_RDONLY fsync on directories; a failure here
  // cannot tear the file, so it is not fatal.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace mphpc
