#include "data/split.hpp"

#include <algorithm>

#include "common/distributions.hpp"
#include "common/contract.hpp"
#include "common/rng.hpp"

namespace mphpc::data {

TrainTestSplit train_test_split(std::size_t n, double test_fraction,
                                std::uint64_t seed) {
  MPHPC_EXPECTS(test_fraction > 0.0 && test_fraction < 1.0);
  MPHPC_EXPECTS(n >= 2);
  Rng rng(seed);
  const std::vector<std::size_t> perm = permutation(rng, n);
  const std::size_t n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction * static_cast<double>(n)));
  TrainTestSplit split;
  split.test.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(n_test));
  split.train.assign(perm.begin() + static_cast<std::ptrdiff_t>(n_test), perm.end());
  // Sorted order keeps downstream row selection cache-friendly and
  // independent of the shuffle.
  std::sort(split.test.begin(), split.test.end());
  std::sort(split.train.begin(), split.train.end());
  return split;
}

std::vector<Fold> k_fold(std::size_t n, int k, std::uint64_t seed) {
  MPHPC_EXPECTS(k >= 2 && static_cast<std::size_t>(k) <= n);
  Rng rng(seed);
  const std::vector<std::size_t> perm = permutation(rng, n);
  std::vector<Fold> folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    folds[i % static_cast<std::size_t>(k)].validation.push_back(perm[i]);
  }
  for (int f = 0; f < k; ++f) {
    auto& fold = folds[static_cast<std::size_t>(f)];
    std::sort(fold.validation.begin(), fold.validation.end());
    fold.train.reserve(n - fold.validation.size());
    std::size_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (v < fold.validation.size() && fold.validation[v] == i) {
        ++v;
      } else {
        fold.train.push_back(i);
      }
    }
  }
  return folds;
}

TrainTestSplit group_holdout(std::span<const std::string> groups,
                             std::string_view held_out) {
  TrainTestSplit split;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == held_out) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  MPHPC_ENSURES(!split.test.empty());
  return split;
}

std::vector<std::size_t> rows_where(std::span<const std::string> groups,
                                    std::string_view value) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == value) rows.push_back(i);
  }
  MPHPC_ENSURES(rows.size() <= groups.size());
  return rows;
}

}  // namespace mphpc::data
