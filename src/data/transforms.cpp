#include "data/transforms.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::data {

void Standardizer::fit(std::span<const double> values) {
  MPHPC_EXPECTS(!values.empty());
  double sum = 0.0;
  for (const double v : values) sum += v;
  mean_ = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - mean_) * (v - mean_);
  const double var = sq / static_cast<double>(values.size());
  std_ = var > 0.0 ? std::sqrt(var) : 1.0;
  fitted_ = true;
}

void Standardizer::transform(std::span<double> values) const {
  MPHPC_EXPECTS(fitted_);
  for (double& v : values) v = (v - mean_) / std_;
}

void Standardizer::inverse_transform(std::span<double> values) const {
  MPHPC_EXPECTS(fitted_);
  for (double& v : values) v = v * std_ + mean_;
}

std::string Standardizer::serialize() const {
  MPHPC_EXPECTS(fitted_);
  return format_double(mean_) + " " + format_double(std_);
}

Standardizer Standardizer::deserialize(std::string_view text) {
  const auto parts = split(text, ' ');
  if (parts.size() != 2) throw ParseError("standardizer: expected 'mean std'");
  Standardizer s;
  s.mean_ = parse_double(parts[0]);
  s.std_ = parse_double(parts[1]);
  s.fitted_ = true;
  return s;
}

std::vector<std::vector<double>> one_hot(std::span<const std::string> labels,
                                         std::span<const std::string> vocabulary) {
  std::vector<std::vector<double>> columns(
      vocabulary.size(), std::vector<double>(labels.size(), 0.0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    bool found = false;
    for (std::size_t v = 0; v < vocabulary.size(); ++v) {
      if (labels[i] == vocabulary[v]) {
        columns[v][i] = 1.0;
        found = true;
        break;
      }
    }
    if (!found) throw LookupError("one_hot: label '" + labels[i] + "' not in vocabulary");
  }
  MPHPC_ENSURES(columns.size() == vocabulary.size());
  return columns;
}

}  // namespace mphpc::data
