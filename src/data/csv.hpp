// CSV serialization for Table — the MP-HPC dataset's on-disk exchange
// format (the paper ships its dataset as a pandas-compatible CSV).
//
// Dialect: comma separator, first line is the header, RFC-4180 quoting for
// cells containing commas/quotes/newlines. Column types are inferred on
// read from the first data row (numeric if it parses as a double), unless
// an explicit text-column list is given.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace mphpc::data {

/// Writes `table` as CSV to `out`.
void write_csv(const Table& table, std::ostream& out);

/// Writes `table` to the file at `path`; throws std::runtime_error on I/O
/// failure.
void write_csv_file(const Table& table, const std::string& path);

/// Reads a CSV; columns named in `text_columns` are read as text, all
/// others must parse as doubles. Throws mphpc::ParseError on malformed
/// input.
[[nodiscard]] Table read_csv(std::istream& in,
                             const std::vector<std::string>& text_columns = {});

/// Reads the file at `path`; throws std::runtime_error if unreadable.
[[nodiscard]] Table read_csv_file(const std::string& path,
                                  const std::vector<std::string>& text_columns = {});

}  // namespace mphpc::data
