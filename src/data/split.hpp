// Dataset splitting utilities: the 90/10 train-test split, the 5-fold
// cross-validation used during training (paper §VI-A), and group-based
// holdouts for the ablation studies (leave-one-application-out, Fig. 5;
// leave-one-scale-out, Fig. 4; per-source-architecture, Fig. 3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mphpc::data {

struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random `test_fraction` holdout over [0, n) with a deterministic seed.
[[nodiscard]] TrainTestSplit train_test_split(std::size_t n, double test_fraction,
                                              std::uint64_t seed);

struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Shuffled k-fold partition of [0, n). Every index appears in exactly one
/// validation fold.
[[nodiscard]] std::vector<Fold> k_fold(std::size_t n, int k, std::uint64_t seed);

/// Group holdout: rows whose group label equals `held_out` become the test
/// set, all others train. Used for leave-one-application-out.
[[nodiscard]] TrainTestSplit group_holdout(std::span<const std::string> groups,
                                           std::string_view held_out);

/// Rows whose group label equals `value`.
[[nodiscard]] std::vector<std::size_t> rows_where(std::span<const std::string> groups,
                                                  std::string_view value);

}  // namespace mphpc::data
