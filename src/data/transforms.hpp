// Feature transforms used to prepare the final dataset (paper §V-D):
// z-score standardization with persisted statistics (so a deployed model
// can transform new samples identically) and a helper for one-hot columns.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mphpc::data {

/// Z-score standardizer: x -> (x - mean) / std. Columns with zero variance
/// map to 0 (std is clamped to 1 for the transform, as scikit-learn does).
class Standardizer {
 public:
  Standardizer() = default;

  /// Fits mean/std to the values (population std).
  void fit(std::span<const double> values);

  /// Transforms in place. Must be fitted.
  void transform(std::span<double> values) const;

  /// Inverse transform (for reporting in original units).
  void inverse_transform(std::span<double> values) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return std_; }

  /// Serialization: "mean std" text, round-trippable.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Standardizer deserialize(std::string_view text);

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
  bool fitted_ = false;
};

/// One-hot encodes `labels` against the ordered `vocabulary`; returns
/// vocabulary.size() columns of 0/1 values. Labels outside the vocabulary
/// throw mphpc::LookupError.
[[nodiscard]] std::vector<std::vector<double>> one_hot(
    std::span<const std::string> labels, std::span<const std::string> vocabulary);

}  // namespace mphpc::data
