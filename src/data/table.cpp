#include "data/table.hpp"

#include <utility>

#include "common/contract.hpp"

namespace mphpc::data {

void Table::add_numeric_column(std::string name, std::vector<double> values) {
  MPHPC_EXPECTS(!has_column(name));
  MPHPC_EXPECTS(order_.empty() || values.size() == num_rows_);
  if (order_.empty()) num_rows_ = values.size();
  order_.emplace_back(name, ColumnRef{ColumnType::kNumeric, numeric_.size()});
  numeric_.push_back({std::move(name), std::move(values)});
}

void Table::add_text_column(std::string name, std::vector<std::string> values) {
  MPHPC_EXPECTS(!has_column(name));
  MPHPC_EXPECTS(order_.empty() || values.size() == num_rows_);
  if (order_.empty()) num_rows_ = values.size();
  order_.emplace_back(name, ColumnRef{ColumnType::kText, text_.size()});
  text_.push_back({std::move(name), std::move(values)});
}

std::vector<std::string> Table::column_names() const {
  std::vector<std::string> names;
  names.reserve(order_.size());
  for (const auto& [name, ref] : order_) names.push_back(name);
  return names;
}

bool Table::has_column(std::string_view name) const noexcept {
  for (const auto& [n, ref] : order_) {
    if (n == name) return true;
  }
  return false;
}

const Table::ColumnRef& Table::find(std::string_view name) const {
  for (const auto& [n, ref] : order_) {
    if (n == name) return ref;
  }
  throw LookupError("no such column: '" + std::string(name) + "'");
}

ColumnType Table::column_type(std::string_view name) const { return find(name).type; }

const std::vector<double>& Table::numeric(std::string_view name) const {
  const ColumnRef& ref = find(name);
  if (ref.type != ColumnType::kNumeric) {
    throw LookupError("column is not numeric: '" + std::string(name) + "'");
  }
  return numeric_[ref.index].values;
}

std::vector<double>& Table::numeric(std::string_view name) {
  return const_cast<std::vector<double>&>(std::as_const(*this).numeric(name));
}

const std::vector<std::string>& Table::text(std::string_view name) const {
  const ColumnRef& ref = find(name);
  if (ref.type != ColumnType::kText) {
    throw LookupError("column is not text: '" + std::string(name) + "'");
  }
  return text_[ref.index].values;
}

std::vector<std::string>& Table::text(std::string_view name) {
  return const_cast<std::vector<std::string>&>(std::as_const(*this).text(name));
}

void Table::append_row(std::span<const double> numbers,
                       std::span<const std::string> strings) {
  MPHPC_EXPECTS(numbers.size() == numeric_.size());
  MPHPC_EXPECTS(strings.size() == text_.size());
  for (std::size_t i = 0; i < numbers.size(); ++i) {
    numeric_[i].values.push_back(numbers[i]);
  }
  for (std::size_t i = 0; i < strings.size(); ++i) {
    text_[i].values.push_back(strings[i]);
  }
  ++num_rows_;
}

Table Table::select_rows(std::span<const std::size_t> rows) const {
  for (const std::size_t r : rows) MPHPC_EXPECTS(r < num_rows_);
  Table out;
  for (const auto& [name, ref] : order_) {
    if (ref.type == ColumnType::kNumeric) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (const std::size_t r : rows) values.push_back(numeric_[ref.index].values[r]);
      out.add_numeric_column(name, std::move(values));
    } else {
      std::vector<std::string> values;
      values.reserve(rows.size());
      for (const std::size_t r : rows) values.push_back(text_[ref.index].values[r]);
      out.add_text_column(name, std::move(values));
    }
  }
  return out;
}

Table Table::select_columns(std::span<const std::string> names) const {
  Table out;
  for (const auto& name : names) {
    const ColumnRef& ref = find(name);
    if (ref.type == ColumnType::kNumeric) {
      out.add_numeric_column(name, numeric_[ref.index].values);
    } else {
      out.add_text_column(name, text_[ref.index].values);
    }
  }
  MPHPC_ENSURES(out.num_columns() == names.size());
  return out;
}

std::vector<double> Table::to_row_major(std::span<const std::string> names) const {
  std::vector<const std::vector<double>*> cols;
  cols.reserve(names.size());
  for (const auto& name : names) cols.push_back(&numeric(name));
  std::vector<double> out(num_rows_ * names.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      out[r * names.size() + c] = (*cols[c])[r];
    }
  }
  MPHPC_ENSURES(out.size() == num_rows_ * names.size());
  return out;
}

}  // namespace mphpc::data
