// A column-typed, dataframe-lite table.
//
// The MP-HPC dataset is tabular: numeric feature/target columns plus a few
// text metadata columns (application, system, scale class) used for
// grouping and ablation splits. Table stores columns contiguously
// (column-major) because both training and standardization sweep columns.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mphpc::data {

enum class ColumnType { kNumeric, kText };

class Table {
 public:
  Table() = default;

  // --- Schema ---

  /// Appends an empty (or pre-filled) numeric column. Name must be unique;
  /// a pre-filled column must match the current row count (or be the first
  /// column). Throws ContractViolation otherwise.
  void add_numeric_column(std::string name, std::vector<double> values = {});

  /// Appends an empty (or pre-filled) text column, same rules.
  void add_text_column(std::string name, std::vector<std::string> values = {});

  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] std::size_t num_columns() const noexcept { return order_.size(); }

  /// Column names in insertion order.
  [[nodiscard]] std::vector<std::string> column_names() const;

  [[nodiscard]] bool has_column(std::string_view name) const noexcept;

  /// Type of a column; throws LookupError if absent.
  [[nodiscard]] ColumnType column_type(std::string_view name) const;

  // --- Access ---

  /// Numeric column data; throws LookupError if absent or not numeric.
  [[nodiscard]] const std::vector<double>& numeric(std::string_view name) const;
  [[nodiscard]] std::vector<double>& numeric(std::string_view name);

  /// Text column data; throws LookupError if absent or not text.
  [[nodiscard]] const std::vector<std::string>& text(std::string_view name) const;
  [[nodiscard]] std::vector<std::string>& text(std::string_view name);

  // --- Row operations ---

  /// Appends one row given values for every column in insertion order;
  /// numeric cells are parsed from the matching variant.
  struct Cell {
    double number = 0.0;
    std::string string;
  };

  /// Appends a row: `numbers` must supply one value per numeric column (in
  /// insertion order) and `strings` one per text column (same).
  void append_row(std::span<const double> numbers,
                  std::span<const std::string> strings);

  /// New table containing the given rows (in the given order).
  [[nodiscard]] Table select_rows(std::span<const std::size_t> rows) const;

  /// New table containing only the named columns (in the given order).
  [[nodiscard]] Table select_columns(std::span<const std::string> names) const;

  /// Row indices where `pred(row)` is true.
  template <typename Pred>
  [[nodiscard]] std::vector<std::size_t> filter(Pred&& pred) const {
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (pred(r)) rows.push_back(r);
    }
    return rows;
  }

  /// Packs the named numeric columns into a row-major matrix
  /// (num_rows x names.size()), the layout the ML models consume.
  [[nodiscard]] std::vector<double> to_row_major(
      std::span<const std::string> names) const;

 private:
  struct NumericColumn {
    std::string name;
    std::vector<double> values;
  };
  struct TextColumn {
    std::string name;
    std::vector<std::string> values;
  };
  struct ColumnRef {
    ColumnType type;
    std::size_t index;  // into numeric_ or text_
  };

  [[nodiscard]] const ColumnRef& find(std::string_view name) const;

  std::vector<NumericColumn> numeric_;
  std::vector<TextColumn> text_;
  std::vector<std::pair<std::string, ColumnRef>> order_;
  std::size_t num_rows_ = 0;
};

}  // namespace mphpc::data
