#include "data/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::data {

namespace {

bool needs_quoting(std::string_view cell) noexcept {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_cell(std::ostream& out, std::string_view cell) {
  if (!needs_quoting(cell)) {
    out << cell;
    return;
  }
  out << '"';
  for (const char c : cell) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// Splits one CSV record honoring quotes. `line` must be a full record
/// (we do not support embedded newlines on read; the writer never emits
/// them for this dataset). Per RFC 4180 a quote only has meaning at the
/// start of a cell; a stray `"` inside an unquoted cell (`ab"cd`) is kept
/// as a literal character rather than silently opening a quoted section.
std::vector<std::string> parse_record(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  if (in_quotes) throw ParseError("unterminated quote in CSV record");
  cells.push_back(std::move(cell));
  return cells;
}

bool parses_as_double(std::string_view s) noexcept {
  try {
    (void)parse_double(s);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

}  // namespace

void write_csv(const Table& table, std::ostream& out) {
  const auto names = table.column_names();
  for (std::size_t c = 0; c < names.size(); ++c) {
    if (c > 0) out << ',';
    write_cell(out, names[c]);
  }
  out << '\n';

  // Cache column pointers and types once.
  struct Col {
    bool numeric;
    const std::vector<double>* nums = nullptr;
    const std::vector<std::string>* texts = nullptr;
  };
  std::vector<Col> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    Col col{table.column_type(name) == ColumnType::kNumeric};
    if (col.numeric) {
      col.nums = &table.numeric(name);
    } else {
      col.texts = &table.text(name);
    }
    cols.push_back(col);
  }

  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) out << ',';
      if (cols[c].numeric) {
        out << format_double((*cols[c].nums)[r]);
      } else {
        write_cell(out, (*cols[c].texts)[r]);
      }
    }
    out << '\n';
  }
}

void write_csv_file(const Table& table, const std::string& path) {
  // Render in memory, then atomically replace the destination so an
  // interrupted dataset dump never leaves a truncated CSV behind.
  std::ostringstream out;
  write_csv(table, out);
  atomic_write_text(path, out.str());
}

Table read_csv(std::istream& in, const std::vector<std::string>& text_columns) {
  std::string line;
  if (!std::getline(in, line)) throw ParseError("empty CSV input");
  const std::vector<std::string> header = parse_record(line);

  // Gather all records first so column types can be inferred from every
  // row, not just the first: a text column whose first cell happens to
  // look numeric (a job id like "123") must still load as text.
  std::vector<std::vector<std::string>> records;
  std::size_t line_no = 1;  // the header was line 1
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> cells;
    try {
      cells = parse_record(line);
    } catch (const ParseError& e) {
      throw ParseError(std::string(e.what()) + " (CSV line " +
                       std::to_string(line_no) + ")");
    }
    if (cells.size() != header.size()) {
      throw ParseError("CSV line " + std::to_string(line_no) + " has " +
                       std::to_string(cells.size()) + " cells, expected " +
                       std::to_string(header.size()));
    }
    records.push_back(std::move(cells));
  }

  const auto is_text = [&](std::size_t c) {
    for (const auto& name : text_columns) {
      if (name == header[c]) return true;
    }
    if (records.empty()) return false;
    for (const auto& rec : records) {
      if (!parses_as_double(rec[c])) return true;
    }
    return false;
  };

  Table table;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (is_text(c)) {
      std::vector<std::string> values;
      values.reserve(records.size());
      for (const auto& rec : records) values.push_back(rec[c]);
      table.add_text_column(header[c], std::move(values));
    } else {
      std::vector<double> values;
      values.reserve(records.size());
      for (std::size_t r = 0; r < records.size(); ++r) {
        try {
          values.push_back(parse_double(records[r][c]));
        } catch (const ParseError& e) {
          // Unreachable while inference scans every row; kept so a future
          // forced-numeric path still reports where the bad cell is.
          throw ParseError(std::string(e.what()) + " (column '" + header[c] +
                           "', data row " + std::to_string(r + 1) + ")");
        }
      }
      table.add_numeric_column(header[c], std::move(values));
    }
  }
  // Table/CSV consistency: one column per header cell, rectangular rows.
  MPHPC_ENSURES(table.num_columns() == header.size());
  MPHPC_ENSURES(table.num_rows() == records.size());
  return table;
}

Table read_csv_file(const std::string& path,
                    const std::vector<std::string>& text_columns) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(in, text_columns);
}

}  // namespace mphpc::data
