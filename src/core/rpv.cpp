#include "core/rpv.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace mphpc::core {

Rpv Rpv::relative_to(const SystemTimes& times, arch::SystemId reference) {
  for (const double t : times) MPHPC_EXPECTS(t > 0.0);
  const double ref = times[static_cast<std::size_t>(reference)];
  Rpv rpv;
  for (std::size_t k = 0; k < times.size(); ++k) rpv.ratios_[k] = times[k] / ref;
  return rpv;
}

Rpv Rpv::relative_to_min(const SystemTimes& times) {
  // Lowest performance = largest time.
  const auto it = std::max_element(times.begin(), times.end());
  return relative_to(times,
                     static_cast<arch::SystemId>(std::distance(times.begin(), it)));
}

Rpv Rpv::relative_to_max(const SystemTimes& times) {
  // Highest performance = smallest time.
  const auto it = std::min_element(times.begin(), times.end());
  return relative_to(times,
                     static_cast<arch::SystemId>(std::distance(times.begin(), it)));
}

arch::SystemId Rpv::fastest() const noexcept {
  std::size_t best = 0;
  for (std::size_t k = 1; k < ratios_.size(); ++k) {
    if (ratios_[k] < ratios_[best]) best = k;
  }
  return static_cast<arch::SystemId>(best);
}

arch::SystemId Rpv::slowest() const noexcept {
  std::size_t worst = 0;
  for (std::size_t k = 1; k < ratios_.size(); ++k) {
    if (ratios_[k] > ratios_[worst]) worst = k;
  }
  return static_cast<arch::SystemId>(worst);
}

std::array<arch::SystemId, arch::kNumSystems> Rpv::order() const {
  std::array<std::size_t, arch::kNumSystems> idx{};
  for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = k;
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return ratios_[a] < ratios_[b]; });
  std::array<arch::SystemId, arch::kNumSystems> out{};
  for (std::size_t k = 0; k < idx.size(); ++k) {
    out[k] = static_cast<arch::SystemId>(idx[k]);
  }
  return out;
}

bool is_plausible_rpv(const Rpv& rpv, const RpvGuardOptions& bounds) noexcept {
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
    const double ratio = rpv[k];
    if (!std::isfinite(ratio) || ratio < bounds.min_ratio || ratio > bounds.max_ratio) {
      return false;
    }
  }
  return true;
}

Rpv neutral_rpv() noexcept {
  std::array<double, arch::kNumSystems> ones{};
  ones.fill(1.0);
  return Rpv(ones);
}

}  // namespace mphpc::core
