#include "core/feature_pipeline.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace mphpc::core {

using arch::CounterKind;

const std::array<std::string_view, FeaturePipeline::kNumFeatures>&
FeaturePipeline::feature_names() noexcept {
  static const std::array<std::string_view, kNumFeatures> names = {
      "branch_intensity",  // 0
      "store_intensity",   // 1
      "load_intensity",    // 2
      "sp_fp_intensity",   // 3
      "dp_fp_intensity",   // 4
      "arith_intensity",   // 5 (ratio of integer arithmetic instructions)
      "l1_load_misses",    // 6  -- standardized from here ...
      "l1_store_misses",   // 7
      "l2_load_misses",    // 8
      "l2_store_misses",   // 9
      "io_bytes_written",  // 10
      "io_bytes_read",     // 11
      "page_table_size",   // 12
      "mem_stalls",        // 13 -- ... through here
      "nodes",             // 14
      "cores",             // 15
      "uses_gpu",          // 16
      "arch_quartz",       // 17
      "arch_ruby",         // 18
      "arch_lassen",       // 19
      "arch_corona",       // 20
  };
  return names;
}

FeaturePipeline::FeatureVector FeaturePipeline::raw_features(
    const sim::RunProfile& profile) {
  const auto& c = profile.counters;
  const double total = sim::get(c, CounterKind::kTotalInstructions);
  MPHPC_EXPECTS(total > 0.0);

  FeatureVector f{};
  f[0] = sim::get(c, CounterKind::kBranchInstructions) / total;
  f[1] = sim::get(c, CounterKind::kStoreInstructions) / total;
  f[2] = sim::get(c, CounterKind::kLoadInstructions) / total;
  f[3] = sim::get(c, CounterKind::kSpFpInstructions) / total;
  f[4] = sim::get(c, CounterKind::kDpFpInstructions) / total;
  f[5] = sim::get(c, CounterKind::kIntArithInstructions) / total;
  f[6] = sim::get(c, CounterKind::kL1LoadMisses);
  f[7] = sim::get(c, CounterKind::kL1StoreMisses);
  f[8] = sim::get(c, CounterKind::kL2LoadMisses);
  f[9] = sim::get(c, CounterKind::kL2StoreMisses);
  f[10] = sim::get(c, CounterKind::kIoBytesWritten);
  f[11] = sim::get(c, CounterKind::kIoBytesRead);
  f[12] = sim::get(c, CounterKind::kPageTableSize);
  f[13] = sim::get(c, CounterKind::kMemStallCycles);
  f[14] = static_cast<double>(profile.config.nodes);
  f[15] = static_cast<double>(profile.config.cores);
  f[16] = profile.device == arch::Device::kGpu ? 1.0 : 0.0;
  f[17 + static_cast<std::size_t>(profile.system)] = 1.0;
  return f;
}

void FeaturePipeline::fit(std::span<const double> raw_rows, std::size_t n_rows) {
  MPHPC_EXPECTS(n_rows > 0);
  MPHPC_EXPECTS(raw_rows.size() == n_rows * kNumFeatures);
  for (std::size_t j = 0; j < kNumStandardized; ++j) {
    const std::size_t col = kFirstStandardized + j;
    double sum = 0.0;
    for (std::size_t r = 0; r < n_rows; ++r) sum += raw_rows[r * kNumFeatures + col];
    const double mean = sum / static_cast<double>(n_rows);
    double sq = 0.0;
    for (std::size_t r = 0; r < n_rows; ++r) {
      const double d = raw_rows[r * kNumFeatures + col] - mean;
      sq += d * d;
    }
    const double var = sq / static_cast<double>(n_rows);
    means_[j] = mean;
    stds_[j] = var > 0.0 ? std::sqrt(var) : 1.0;
  }
  fitted_ = true;
}

void FeaturePipeline::transform(FeatureVector& features) const {
  MPHPC_EXPECTS(fitted_);
  for (std::size_t j = 0; j < kNumStandardized; ++j) {
    double& v = features[kFirstStandardized + j];
    v = (v - means_[j]) / stds_[j];
  }
}

FeaturePipeline::FeatureVector FeaturePipeline::features(
    const sim::RunProfile& profile) const {
  FeatureVector f = raw_features(profile);
  transform(f);
  return f;
}

double FeaturePipeline::mean(std::size_t standardized_index) const {
  MPHPC_EXPECTS(fitted_ && standardized_index < kNumStandardized);
  return means_[standardized_index];
}

double FeaturePipeline::stddev(std::size_t standardized_index) const {
  MPHPC_EXPECTS(fitted_ && standardized_index < kNumStandardized);
  return stds_[standardized_index];
}

std::string FeaturePipeline::serialize() const {
  MPHPC_EXPECTS(fitted_);
  std::string out = "feature_pipeline " + std::to_string(kNumStandardized) + "\n";
  for (std::size_t j = 0; j < kNumStandardized; ++j) {
    out += format_double(means_[j]) + " " + format_double(stds_[j]) + "\n";
  }
  return out;
}

FeaturePipeline FeaturePipeline::deserialize(std::string_view text) {
  const auto lines = split(text, '\n');
  if (lines.empty()) throw ParseError("feature pipeline: empty");
  const auto header = split(trim(lines[0]), ' ');
  if (header.size() != 2 || header[0] != "feature_pipeline" ||
      static_cast<std::size_t>(parse_int(header[1])) != kNumStandardized) {
    throw ParseError("feature pipeline: bad header");
  }
  if (lines.size() < kNumStandardized + 1) throw ParseError("feature pipeline: truncated");
  FeaturePipeline p;
  for (std::size_t j = 0; j < kNumStandardized; ++j) {
    const auto parts = split(trim(lines[j + 1]), ' ');
    if (parts.size() != 2) throw ParseError("feature pipeline: bad row");
    p.means_[j] = parse_double(parts[0]);
    p.stds_[j] = parse_double(parts[1]);
  }
  p.fitted_ = true;
  return p;
}

}  // namespace mphpc::core
