// MP-HPC dataset assembly (paper §V-D).
//
// Turns the raw profiling campaign into the final learning table: one row
// per run, 21 feature columns (see FeaturePipeline), four RPV target
// columns (the run's execution time on every system relative to the system
// the counters came from, at the same resource scale), per-system observed
// times (consumed by the scheduling simulation), and metadata columns for
// grouped ablations.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/feature_pipeline.hpp"
#include "core/rpv.hpp"
#include "data/table.hpp"
#include "ml/matrix.hpp"
#include "sim/profiler.hpp"

namespace mphpc::core {

class Dataset {
 public:
  /// Feature column names, canonical order (21 columns).
  [[nodiscard]] static std::vector<std::string> feature_column_names();
  /// Target column names: "rpv_quartz" ... "rpv_corona".
  [[nodiscard]] static std::vector<std::string> target_column_names();
  /// Observed-time column names: "time_quartz" ... "time_corona".
  [[nodiscard]] static std::vector<std::string> time_column_names();

  [[nodiscard]] const data::Table& table() const noexcept { return table_; }
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return table_.num_rows(); }

  /// Feature matrix (rows x 21). Empty `rows` selects every row.
  [[nodiscard]] ml::Matrix features(std::span<const std::size_t> rows = {}) const;

  /// Target matrix (rows x 4 RPV entries).
  [[nodiscard]] ml::Matrix targets(std::span<const std::size_t> rows = {}) const;

  /// Metadata columns for grouped splits.
  [[nodiscard]] const std::vector<std::string>& apps() const {
    return table_.text("app");
  }
  [[nodiscard]] const std::vector<std::string>& systems() const {
    return table_.text("system");
  }
  [[nodiscard]] const std::vector<std::string>& scales() const {
    return table_.text("scale");
  }

  /// Observed execution time of row `r`'s job on `system` (same scale
  /// class) — the scheduling simulation's ground truth.
  [[nodiscard]] double time_on(std::size_t row, arch::SystemId system) const;

  /// True RPV of a row (from observed times, relative to the row's source
  /// system).
  [[nodiscard]] Rpv true_rpv(std::size_t row) const;

  friend Dataset build_dataset(std::span<const sim::RunProfile> profiles);

 private:
  data::Table table_;
  FeaturePipeline pipeline_;
};

/// Builds the dataset from a full profiling campaign. Every (app, input)
/// group must contain a run for all four systems at each scale class
/// (run_campaign guarantees this). The feature pipeline's standardizers
/// are fitted over all rows, as the paper does before splitting.
[[nodiscard]] Dataset build_dataset(std::span<const sim::RunProfile> profiles);

}  // namespace mphpc::core
