#include "core/predictor.hpp"

#include "common/contract.hpp"
#include "common/strings.hpp"
#include "ml/serialize.hpp"

namespace mphpc::core {

void CrossArchPredictor::train(const Dataset& dataset,
                               std::span<const std::size_t> rows, ThreadPool* pool) {
  MPHPC_EXPECTS(dataset.num_rows() > 0);
  pipeline_ = dataset.pipeline();
  model_ = ml::GbtRegressor(options_.gbt);
  const ml::Matrix x = dataset.features(rows);
  const ml::Matrix y = dataset.targets(rows);
  model_.fit(x, y, pool);
}

Rpv CrossArchPredictor::predict(const sim::RunProfile& profile) const {
  MPHPC_EXPECTS(trained());
  const FeaturePipeline::FeatureVector f = pipeline_.features(profile);
  ml::Matrix x(1, FeaturePipeline::kNumFeatures,
               std::vector<double>(f.begin(), f.end()));
  const ml::Matrix y = model_.predict(x);
  std::array<double, arch::kNumSystems> ratios{};
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) ratios[k] = y(0, k);
  return Rpv(ratios);
}

ml::Matrix CrossArchPredictor::predict(const ml::Matrix& features) const {
  MPHPC_EXPECTS(trained());
  return model_.predict(features);
}

namespace {
constexpr std::string_view kSectionMarker = "=== model ===";
}  // namespace

void CrossArchPredictor::save(const std::string& path) const {
  MPHPC_EXPECTS(trained());
  std::string text = pipeline_.serialize();
  text += std::string(kSectionMarker) + "\n";
  text += model_.serialize();
  ml::save_text(text, path);
}

CrossArchPredictor CrossArchPredictor::load(const std::string& path) {
  const std::string text = ml::load_text(path);
  const std::size_t pos = text.find(kSectionMarker);
  if (pos == std::string::npos) {
    throw ParseError("predictor file missing section marker: " + path);
  }
  CrossArchPredictor predictor;
  predictor.pipeline_ = FeaturePipeline::deserialize(text.substr(0, pos));
  predictor.model_ =
      ml::GbtRegressor::deserialize(text.substr(pos + kSectionMarker.size()));
  return predictor;
}

GuardedPredictor::GuardedPredictor(CrossArchPredictor predictor,
                                   const RpvGuardOptions& bounds)
    : predictor_(std::move(predictor)), bounds_(bounds) {
  MPHPC_EXPECTS(bounds.min_ratio > 0.0 && bounds.min_ratio < bounds.max_ratio);
  healthy_ = predictor_.trained();
  if (!healthy_) last_error_ = "predictor is untrained";
}

GuardedPredictor GuardedPredictor::load(const std::string& path,
                                        const RpvGuardOptions& bounds) {
  MPHPC_EXPECTS(bounds.min_ratio > 0.0 && bounds.min_ratio < bounds.max_ratio);
  try {
    return GuardedPredictor(CrossArchPredictor::load(path), bounds);
  } catch (const std::exception& e) {
    GuardedPredictor degraded;
    degraded.bounds_ = bounds;
    degraded.last_error_ = e.what();
    return degraded;
  }
}

Rpv GuardedPredictor::predict(const sim::RunProfile& profile) {
  if (!healthy_) {
    ++fallbacks_;
    return neutral_rpv();
  }
  Rpv rpv;
  try {
    rpv = predictor_.predict(profile);
  } catch (const std::exception& e) {
    last_error_ = e.what();
    ++fallbacks_;
    return neutral_rpv();
  }
  if (!plausible(rpv)) {
    last_error_ = "predicted RPV outside plausibility bounds";
    ++fallbacks_;
    return neutral_rpv();
  }
  return rpv;
}

}  // namespace mphpc::core
