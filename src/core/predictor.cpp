#include "core/predictor.hpp"

#include <filesystem>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"
#include "common/strings.hpp"
#include "ml/serialize.hpp"

namespace mphpc::core {

void CrossArchPredictor::train(const Dataset& dataset,
                               std::span<const std::size_t> rows, ThreadPool* pool) {
  MPHPC_EXPECTS(dataset.num_rows() > 0);
  pipeline_ = dataset.pipeline();
  model_ = ml::GbtRegressor(options_.gbt);
  const ml::Matrix x = dataset.features(rows);
  const ml::Matrix y = dataset.targets(rows);
  model_.fit(x, y, pool);
  recompile();
}

void CrossArchPredictor::recompile() {
  compiled_ = model_.fitted()
                  ? ml::CompiledEnsemble::compile(
                        model_, ml::CompileOptions{.quantize = options_.quantize})
                  : ml::CompiledEnsemble{};
}

void CrossArchPredictor::set_quantized(bool quantize) {
  if (options_.quantize == quantize) return;
  options_.quantize = quantize;
  if (model_.fitted()) recompile();
}

namespace {

/// Everything that must match for a checkpoint to continue the *same*
/// fit: the GBT configuration and the training matrix shape. Stored as
/// the manifest's full contents and compared verbatim on resume.
std::string train_fingerprint(const ml::GbtOptions& o, std::size_t rows,
                              std::size_t cols) {
  std::string s = "mphpc-train-checkpoint v1\n";
  s += "rows " + std::to_string(rows) + "\n";
  s += "features " + std::to_string(cols) + "\n";
  s += "options " + std::to_string(o.n_rounds) + " " + std::to_string(o.max_depth) +
       " " + format_double(o.learning_rate) + " " + format_double(o.lambda) + " " +
       format_double(o.gamma) + " " + format_double(o.min_child_weight) + " " +
       format_double(o.subsample) + " " + format_double(o.colsample) + " " +
       std::to_string(static_cast<int>(o.objective)) + " " +
       format_double(o.huber_delta) + " " +
       std::to_string(static_cast<int>(o.tree_method)) + " " +
       std::to_string(o.max_bins) + " " + std::to_string(o.seed) + "\n";
  return s;
}

/// Thrown out of the checkpoint callback to unwind fit_resumable when
/// TrainCheckpoint::stop asks to end the run. Checkpoints fire between
/// boosting rounds, with no pool work in flight, so unwinding is safe.
struct TrainStopped {};

}  // namespace

bool CrossArchPredictor::train_checkpointed(const Dataset& dataset,
                                            const TrainCheckpoint& ckpt,
                                            std::span<const std::size_t> rows,
                                            ThreadPool* pool) {
  MPHPC_EXPECTS(dataset.num_rows() > 0);
  MPHPC_EXPECTS(!ckpt.path.empty() && ckpt.every >= 0);
  pipeline_ = dataset.pipeline();
  const ml::Matrix x = dataset.features(rows);
  const ml::Matrix y = dataset.targets(rows);
  const std::string manifest_path = ckpt.path + ".manifest";
  const std::string fingerprint = train_fingerprint(options_.gbt, x.rows(), x.cols());

  model_ = ml::GbtRegressor(options_.gbt);
  if (ckpt.resume && std::filesystem::exists(ckpt.path) &&
      std::filesystem::exists(manifest_path)) {
    // A checkpoint trained under different options (or data) would resume
    // into a silently different model — refuse rather than guess.
    if (ml::load_text(manifest_path) != fingerprint) {
      throw std::runtime_error("checkpoint manifest does not match the training "
                               "configuration: " + manifest_path);
    }
    CrossArchPredictor partial = load(ckpt.path);
    model_ = std::move(partial.model_);
    model_.set_options(options_.gbt);
  }

  if (ckpt.every > 0) {
    // The manifest is pure configuration, so it is written once up front;
    // each checkpoint write then atomically replaces the model file. A
    // crash at any point leaves a (manifest, model) pair that resumes
    // correctly or no checkpoint at all — never a torn state.
    atomic_write_text(manifest_path, fingerprint);
  }
  const ml::GbtRegressor::ProgressFn on_checkpoint = [&](int) {
    save(ckpt.path);
    if (ckpt.stop && ckpt.stop()) throw TrainStopped{};
  };
  try {
    model_.fit_resumable(
        x, y, ckpt.every,
        ckpt.every > 0 ? on_checkpoint : ml::GbtRegressor::ProgressFn{}, pool);
  } catch (const TrainStopped&) {
    // Stopped at a checkpoint boundary: the checkpoint just written plus
    // the manifest resume this exact fit, so both stay on disk.
    return false;
  }
  recompile();

  std::error_code ec;  // best-effort cleanup; the final model is what matters
  std::filesystem::remove(ckpt.path, ec);
  std::filesystem::remove(manifest_path, ec);
  return true;
}

Rpv CrossArchPredictor::predict(const sim::RunProfile& profile) const {
  MPHPC_EXPECTS(trained());
  const FeaturePipeline::FeatureVector f = pipeline_.features(profile);
  std::array<double, arch::kNumSystems> ratios{};
  compiled_.predict_row(f, ratios);
  return Rpv(ratios);
}

std::vector<Rpv> CrossArchPredictor::predict_rpvs(
    std::span<const sim::RunProfile> profiles, ThreadPool* pool) const {
  MPHPC_EXPECTS(trained());
  std::vector<Rpv> out;
  if (profiles.empty()) return out;
  if (profiles.size() == 1) {
    // Serve hot path: a single request skips the Matrix round trip and
    // runs the scratch-reusing row kernel (no per-call tile state).
    out.push_back(predict(profiles.front()));
    return out;
  }
  ml::Matrix x(profiles.size(), FeaturePipeline::kNumFeatures);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const FeaturePipeline::FeatureVector f = pipeline_.features(profiles[i]);
    std::copy(f.begin(), f.end(), x.row(i).begin());
  }
  const ml::Matrix y = compiled_.predict(x, pool);
  out.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::array<double, arch::kNumSystems> ratios{};
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) ratios[k] = y(i, k);
    out.emplace_back(ratios);
  }
  return out;
}

ml::Matrix CrossArchPredictor::predict(const ml::Matrix& features,
                                       ThreadPool* pool) const {
  MPHPC_EXPECTS(trained());
  return compiled_.predict(features, pool);
}

namespace {
constexpr std::string_view kSectionMarker = "=== model ===";
}  // namespace

std::string CrossArchPredictor::serialize_text() const {
  MPHPC_EXPECTS(trained());
  std::string text = pipeline_.serialize();
  text += std::string(kSectionMarker) + "\n";
  text += model_.serialize();
  return text;
}

void CrossArchPredictor::save(const std::string& path) const {
  ml::save_text(serialize_text(), path);
}

CrossArchPredictor CrossArchPredictor::from_text(std::string_view text) {
  const std::size_t pos = text.find(kSectionMarker);
  if (pos == std::string_view::npos) {
    throw ParseError("predictor text missing section marker");
  }
  CrossArchPredictor predictor;
  predictor.pipeline_ = FeaturePipeline::deserialize(text.substr(0, pos));
  predictor.model_ =
      ml::GbtRegressor::deserialize(text.substr(pos + kSectionMarker.size()));
  predictor.recompile();
  return predictor;
}

CrossArchPredictor CrossArchPredictor::load(const std::string& path) {
  try {
    return from_text(ml::load_text(path));
  } catch (const ParseError& e) {
    throw ParseError(std::string(e.what()) + ": " + path);
  }
}

CrossArchPredictor CrossArchPredictor::from_parts(FeaturePipeline pipeline,
                                                  ml::GbtRegressor model) {
  MPHPC_EXPECTS(model.fitted());
  CrossArchPredictor predictor;
  predictor.pipeline_ = std::move(pipeline);
  predictor.model_ = std::move(model);
  predictor.options_.gbt = predictor.model_.options();
  predictor.recompile();
  return predictor;
}

void CrossArchPredictor::warm_refit(const ml::Matrix& x, const ml::Matrix& y,
                                    int extra_rounds, ThreadPool* pool) {
  MPHPC_EXPECTS(trained());
  model_.warm_start_fit(x, y, extra_rounds, pool);
  options_.gbt = model_.options();
  recompile();
}

GuardedPredictor::GuardedPredictor(CrossArchPredictor predictor,
                                   const RpvGuardOptions& bounds)
    : bounds_(bounds) {
  MPHPC_EXPECTS(bounds.min_ratio > 0.0 && bounds.min_ratio < bounds.max_ratio);
  model_ = std::make_shared<const CrossArchPredictor>(std::move(predictor));
  if (!model_->trained()) last_error_ = "predictor is untrained";
}

GuardedPredictor::GuardedPredictor(GuardedPredictor&& other) noexcept
    : model_(std::move(other.model_)),
      bounds_(other.bounds_),
      fallbacks_(other.fallbacks_.load(std::memory_order_relaxed)),
      forced_degraded_(other.forced_degraded_.load(std::memory_order_relaxed)),
      last_error_(std::move(other.last_error_)) {}

GuardedPredictor& GuardedPredictor::operator=(GuardedPredictor&& other) noexcept {
  if (this != &other) {
    model_ = std::move(other.model_);
    bounds_ = other.bounds_;
    fallbacks_.store(other.fallbacks_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    forced_degraded_.store(other.forced_degraded_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

GuardedPredictor GuardedPredictor::load(const std::string& path,
                                        const RpvGuardOptions& bounds) {
  MPHPC_EXPECTS(bounds.min_ratio > 0.0 && bounds.min_ratio < bounds.max_ratio);
  try {
    return GuardedPredictor(CrossArchPredictor::load(path), bounds);
  } catch (const std::exception& e) {
    GuardedPredictor degraded;
    degraded.bounds_ = bounds;
    degraded.last_error_ = e.what();
    return degraded;
  }
}

void GuardedPredictor::record_error(const std::string& message) {
  const std::lock_guard lock(mutex_);
  last_error_ = message;
}

std::string GuardedPredictor::last_error() const {
  const std::lock_guard lock(mutex_);
  return last_error_;
}

std::shared_ptr<const CrossArchPredictor> GuardedPredictor::snapshot() const {
  const std::lock_guard lock(mutex_);
  return model_;
}

void GuardedPredictor::swap_model(CrossArchPredictor next) {
  // Build the shared_ptr outside the lock; the swap itself is two pointer
  // writes, so readers are never blocked behind a model copy.
  auto fresh = std::make_shared<const CrossArchPredictor>(std::move(next));
  const bool trained = fresh->trained();
  const std::lock_guard lock(mutex_);
  model_ = std::move(fresh);
  if (trained) {
    last_error_.clear();
  } else {
    last_error_ = "predictor is untrained";
  }
}

void GuardedPredictor::set_forced_degraded(bool on, const std::string& reason) {
  forced_degraded_.store(on, std::memory_order_relaxed);
  if (on && !reason.empty()) record_error(reason);
}

bool GuardedPredictor::healthy() const {
  if (forced_degraded_.load(std::memory_order_relaxed)) return false;
  const auto model = snapshot();
  return model != nullptr && model->trained();
}

Rpv GuardedPredictor::predict(const sim::RunProfile& profile) {
  const auto model = snapshot();
  if (model == nullptr || !model->trained() ||
      forced_degraded_.load(std::memory_order_relaxed)) {
    bump_fallbacks();
    return neutral_rpv();
  }
  Rpv rpv;
  try {
    rpv = model->predict(profile);
  } catch (const std::exception& e) {
    record_error(e.what());
    bump_fallbacks();
    return neutral_rpv();
  }
  if (!plausible(rpv)) {
    record_error("predicted RPV outside plausibility bounds");
    bump_fallbacks();
    return neutral_rpv();
  }
  return rpv;
}

std::vector<Rpv> GuardedPredictor::predict_rpvs(
    std::span<const sim::RunProfile> profiles, ThreadPool* pool,
    std::vector<std::uint8_t>* fallback_out) {
  if (fallback_out != nullptr) fallback_out->assign(profiles.size(), 0);
  const auto model = snapshot();
  if (model == nullptr || !model->trained() ||
      forced_degraded_.load(std::memory_order_relaxed)) {
    bump_fallbacks(static_cast<long long>(profiles.size()));
    if (fallback_out != nullptr) fallback_out->assign(profiles.size(), 1);
    return std::vector<Rpv>(profiles.size(), neutral_rpv());
  }
  std::vector<Rpv> rpvs;
  try {
    rpvs = model->predict_rpvs(profiles, pool);
  } catch (const std::exception& e) {
    record_error(e.what());
    bump_fallbacks(static_cast<long long>(profiles.size()));
    if (fallback_out != nullptr) fallback_out->assign(profiles.size(), 1);
    return std::vector<Rpv>(profiles.size(), neutral_rpv());
  }
  for (std::size_t i = 0; i < rpvs.size(); ++i) {
    if (!plausible(rpvs[i])) {
      record_error("predicted RPV outside plausibility bounds");
      bump_fallbacks();
      rpvs[i] = neutral_rpv();
      if (fallback_out != nullptr) (*fallback_out)[i] = 1;
    }
  }
  return rpvs;
}

}  // namespace mphpc::core
