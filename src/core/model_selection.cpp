#include "core/model_selection.hpp"

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "ml/gbt.hpp"
#include "ml/linear_regressor.hpp"
#include "ml/mean_regressor.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace mphpc::core {

std::string_view to_string(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kMean: return "mean";
    case ModelKind::kLinear: return "linear";
    case ModelKind::kForest: return "decision forest";
    case ModelKind::kXgboost: return "xgboost";
  }
  return "unknown";
}

std::unique_ptr<ml::Regressor> make_model(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kMean:
      return std::make_unique<ml::MeanRegressor>();
    case ModelKind::kLinear: {
      ml::LinearOptions options;
      options.l2 = 1e-6;
      return std::make_unique<ml::LinearRegressor>(options);
    }
    case ModelKind::kForest: {
      ml::ForestOptions options;
      options.n_trees = 100;
      options.max_depth = 16;
      options.min_samples_leaf = 2;
      options.seed = seed;
      return std::make_unique<ml::RandomForest>(options);
    }
    case ModelKind::kXgboost: {
      ml::GbtOptions options;
      options.seed = seed;
      return std::make_unique<ml::GbtRegressor>(options);
    }
  }
  throw ContractViolation("unknown model kind");
}

EvalMetrics evaluate(const ml::Matrix& truth, const ml::Matrix& pred) {
  EvalMetrics m;
  m.mae = ml::mean_absolute_error(truth, pred);
  m.sos = ml::same_order_score(truth, pred);
  m.rmse = ml::root_mean_squared_error(truth, pred);
  m.r2 = ml::r2_score(truth, pred);
  return m;
}

EvalMetrics train_and_evaluate(ml::Regressor& model, const ml::Matrix& x,
                               const ml::Matrix& y, const data::TrainTestSplit& split,
                               ThreadPool* pool) {
  MPHPC_EXPECTS(!split.train.empty() && !split.test.empty());
  const ml::Matrix x_train = x.select_rows(split.train);
  const ml::Matrix y_train = y.select_rows(split.train);
  model.fit(x_train, y_train, pool);
  const ml::Matrix x_test = x.select_rows(split.test);
  const ml::Matrix y_test = y.select_rows(split.test);
  return evaluate(y_test, model.predict(x_test));
}

double cross_validated_mae(ModelKind kind, const ml::Matrix& x, const ml::Matrix& y,
                           std::span<const std::size_t> rows, int folds,
                           std::uint64_t seed, ThreadPool* pool) {
  MPHPC_EXPECTS(folds >= 2);
  // Work over positions within `rows`, then map back to dataset rows.
  const auto fold_plan = data::k_fold(rows.size(), folds, seed);
  double mae_sum = 0.0;
  for (const auto& fold : fold_plan) {
    std::vector<std::size_t> train_rows;
    train_rows.reserve(fold.train.size());
    for (const std::size_t p : fold.train) train_rows.push_back(rows[p]);
    std::vector<std::size_t> val_rows;
    val_rows.reserve(fold.validation.size());
    for (const std::size_t p : fold.validation) val_rows.push_back(rows[p]);

    const auto model = make_model(kind, derive_seed(seed, "cv-model"));
    model->fit(x.select_rows(train_rows), y.select_rows(train_rows), pool);
    const ml::Matrix pred = model->predict(x.select_rows(val_rows));
    mae_sum += ml::mean_absolute_error(y.select_rows(val_rows), pred);
  }
  return mae_sum / static_cast<double>(fold_plan.size());
}

std::vector<ModelEvaluation> compare_models(const ml::Matrix& x, const ml::Matrix& y,
                                            std::span<const ModelKind> kinds,
                                            const ComparisonOptions& options,
                                            ThreadPool* pool) {
  const data::TrainTestSplit split =
      data::train_test_split(x.rows(), options.test_fraction, options.split_seed);

  std::vector<ModelEvaluation> results;
  results.reserve(kinds.size());
  for (const ModelKind kind : kinds) {
    ModelEvaluation eval;
    eval.kind = kind;
    const auto model = make_model(kind, options.model_seed);
    eval.test = train_and_evaluate(*model, x, y, split, pool);
    if (options.run_cv) {
      eval.cv_mae = cross_validated_mae(kind, x, y, split.train, options.cv_folds,
                                        derive_seed(options.split_seed, "cv"), pool);
    }
    results.push_back(eval);
  }
  return results;
}

}  // namespace mphpc::core
