#include "core/dataset.hpp"

#include <map>

#include "common/contract.hpp"

namespace mphpc::core {

std::vector<std::string> Dataset::feature_column_names() {
  std::vector<std::string> names;
  names.reserve(FeaturePipeline::kNumFeatures);
  for (const auto name : FeaturePipeline::feature_names()) names.emplace_back(name);
  return names;
}

std::vector<std::string> Dataset::target_column_names() {
  std::vector<std::string> names;
  names.reserve(arch::kNumSystems);
  for (const arch::SystemId id : arch::kAllSystems) {
    names.push_back("rpv_" + std::string(arch::to_string(id)));
  }
  return names;
}

std::vector<std::string> Dataset::time_column_names() {
  std::vector<std::string> names;
  names.reserve(arch::kNumSystems);
  for (const arch::SystemId id : arch::kAllSystems) {
    names.push_back("time_" + std::string(arch::to_string(id)));
  }
  return names;
}

namespace {

ml::Matrix extract(const data::Table& table, const std::vector<std::string>& cols,
                   std::span<const std::size_t> rows) {
  if (rows.empty()) {
    return {table.num_rows(), cols.size(), table.to_row_major(cols)};
  }
  const data::Table subset = table.select_rows(rows);
  return {subset.num_rows(), cols.size(), subset.to_row_major(cols)};
}

}  // namespace

ml::Matrix Dataset::features(std::span<const std::size_t> rows) const {
  return extract(table_, feature_column_names(), rows);
}

ml::Matrix Dataset::targets(std::span<const std::size_t> rows) const {
  return extract(table_, target_column_names(), rows);
}

double Dataset::time_on(std::size_t row, arch::SystemId system) const {
  MPHPC_EXPECTS(row < num_rows());
  return table_.numeric(time_column_names()[static_cast<std::size_t>(system)])[row];
}

Rpv Dataset::true_rpv(std::size_t row) const {
  MPHPC_EXPECTS(row < num_rows());
  SystemTimes times{};
  const auto names = time_column_names();
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
    times[k] = table_.numeric(names[k])[row];
  }
  const auto source = arch::parse_system(systems()[row]);
  MPHPC_EXPECTS(source.has_value());
  return Rpv::relative_to(times, *source);
}

Dataset build_dataset(std::span<const sim::RunProfile> profiles) {
  MPHPC_EXPECTS(!profiles.empty());

  // Observed times per (app, input) group: [system][scale].
  struct GroupTimes {
    double time[arch::kNumSystems][workload::kNumScaleClasses] = {};
    bool seen[arch::kNumSystems][workload::kNumScaleClasses] = {};
  };
  std::map<std::pair<std::string, int>, GroupTimes> groups;
  for (const auto& p : profiles) {
    auto& g = groups[{p.app, p.input_index}];
    const auto s = static_cast<std::size_t>(p.system);
    const auto c = static_cast<std::size_t>(p.config.scale_class);
    g.time[s][c] = p.time_s;
    g.seen[s][c] = true;
  }
  for (const auto& [key, g] : groups) {
    for (std::size_t s = 0; s < arch::kNumSystems; ++s) {
      for (std::size_t c = 0; c < workload::kNumScaleClasses; ++c) {
        if (!g.seen[s][c]) {
          throw ContractViolation("incomplete profile group for app '" + key.first +
                                  "' input " + std::to_string(key.second));
        }
      }
    }
  }

  // Raw features for every profile, then fit the standardizers over all
  // rows (paper §V-D: normalization statistics come from the full corpus).
  constexpr std::size_t kF = FeaturePipeline::kNumFeatures;
  std::vector<double> raw(profiles.size() * kF);
  for (std::size_t r = 0; r < profiles.size(); ++r) {
    const auto f = FeaturePipeline::raw_features(profiles[r]);
    std::copy(f.begin(), f.end(), raw.begin() + static_cast<std::ptrdiff_t>(r * kF));
  }
  Dataset dataset;
  dataset.pipeline_.fit(raw, profiles.size());

  // Assemble the table.
  data::Table& t = dataset.table_;
  t.add_text_column("app");
  t.add_numeric_column("input");
  t.add_text_column("system");
  t.add_text_column("scale");
  t.add_numeric_column("time_s");
  for (const auto& name : Dataset::feature_column_names()) t.add_numeric_column(name);
  for (const auto& name : Dataset::target_column_names()) t.add_numeric_column(name);
  for (const auto& name : Dataset::time_column_names()) t.add_numeric_column(name);

  std::vector<double> numbers;
  std::vector<std::string> strings;
  for (std::size_t r = 0; r < profiles.size(); ++r) {
    const auto& p = profiles[r];
    const auto& g = groups[{p.app, p.input_index}];
    const auto scale_idx = static_cast<std::size_t>(p.config.scale_class);

    SystemTimes times{};
    for (std::size_t s = 0; s < arch::kNumSystems; ++s) times[s] = g.time[s][scale_idx];
    const Rpv rpv = Rpv::relative_to(times, p.system);

    FeaturePipeline::FeatureVector f{};
    std::copy(raw.begin() + static_cast<std::ptrdiff_t>(r * kF),
              raw.begin() + static_cast<std::ptrdiff_t>((r + 1) * kF), f.begin());
    dataset.pipeline_.transform(f);

    numbers.clear();
    strings.clear();
    strings.emplace_back(p.app);
    numbers.push_back(static_cast<double>(p.input_index));
    strings.emplace_back(arch::to_string(p.system));
    strings.emplace_back(workload::to_string(p.config.scale_class));
    numbers.push_back(p.time_s);
    for (const double v : f) numbers.push_back(v);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) numbers.push_back(rpv[k]);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) numbers.push_back(times[k]);
    t.append_row(numbers, strings);
  }
  return dataset;
}

}  // namespace mphpc::core
