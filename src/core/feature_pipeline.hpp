// The derived-feature pipeline (paper Table III, left side; §V-D).
//
// From a run's raw counters it computes the final 21 features:
//   - six instruction-class intensities (ratios of total instructions)
//   - eight magnitude features (cache misses, I/O bytes, page-table size,
//     memory stalls) standardized to zero mean / unit variance with
//     statistics fitted on the training corpus and persisted with the model
//   - nodes, cores, uses-GPU
//   - the four-way one-hot encoding of the source architecture.
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>

#include "sim/profiler.hpp"

namespace mphpc::core {

class FeaturePipeline {
 public:
  static constexpr std::size_t kNumFeatures = 21;

  /// Canonical feature order; also the dataset's feature column names.
  [[nodiscard]] static const std::array<std::string_view, kNumFeatures>&
  feature_names() noexcept;

  /// Index range [kFirstStandardized, kFirstStandardized+kNumStandardized)
  /// of the z-scored magnitude features within the canonical order.
  static constexpr std::size_t kFirstStandardized = 6;
  static constexpr std::size_t kNumStandardized = 8;

  using FeatureVector = std::array<double, kNumFeatures>;

  /// Raw (pre-standardization) features of one profiled run.
  [[nodiscard]] static FeatureVector raw_features(const sim::RunProfile& profile);

  /// Fits the standardizers over raw feature rows (row-major, 21 columns).
  void fit(std::span<const double> raw_rows, std::size_t n_rows);

  /// Standardizes a raw feature vector in place. Must be fitted.
  void transform(FeatureVector& features) const;

  /// raw_features + transform in one call.
  [[nodiscard]] FeatureVector features(const sim::RunProfile& profile) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  [[nodiscard]] double mean(std::size_t standardized_index) const;
  [[nodiscard]] double stddev(std::size_t standardized_index) const;

  /// Round-trippable text form ("mean std" per standardized feature).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static FeaturePipeline deserialize(std::string_view text);

 private:
  std::array<double, kNumStandardized> means_{};
  std::array<double, kNumStandardized> stds_{};
  bool fitted_ = false;
};

}  // namespace mphpc::core
