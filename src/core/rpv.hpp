// Relative Performance Vectors (paper §IV).
//
// For an (application, input) pair executed on all N systems,
// rpv(a, i, s)[k] is the performance of the pair on system k relative to
// system s. Following the paper's worked example (10 min on X, 8 on Y,
// 21 on Z -> RPV relative to X = [1.0, 0.8, 2.1]), entries are *time
// ratios* t_k / t_s: lower is faster.
//
// Note: the paper's Algorithm 2 writes `argmax rpv` for the fastest
// machine, which contradicts the example's time-ratio convention. We keep
// the example's convention as primary and expose `speedup()` (its
// reciprocal, higher is faster) for consumers that want an argmax; the
// model-based scheduler picks the fastest machine either way.
#pragma once

#include <array>

#include "arch/architecture.hpp"

namespace mphpc::core {

/// Execution times of one (app, input, scale) across the four systems.
using SystemTimes = std::array<double, arch::kNumSystems>;

class Rpv {
 public:
  Rpv() = default;

  /// Explicit construction from time ratios.
  explicit Rpv(const std::array<double, arch::kNumSystems>& ratios) noexcept
      : ratios_(ratios) {}

  /// rpv(a, i, s): times relative to system `reference`. All times must be
  /// positive.
  [[nodiscard]] static Rpv relative_to(const SystemTimes& times,
                                       arch::SystemId reference);

  /// rpv(a, i, min): relative to the system with the *lowest* performance
  /// (largest time) — every entry <= 1.
  [[nodiscard]] static Rpv relative_to_min(const SystemTimes& times);

  /// rpv(a, i, max): relative to the system with the *highest* performance
  /// (smallest time) — every entry >= 1.
  [[nodiscard]] static Rpv relative_to_max(const SystemTimes& times);

  /// Time ratio for system k (1.0 for the reference system).
  [[nodiscard]] double time_ratio(arch::SystemId k) const noexcept {
    return ratios_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double operator[](std::size_t k) const noexcept { return ratios_[k]; }

  /// Reciprocal view: relative speed, higher is faster.
  [[nodiscard]] double speedup(arch::SystemId k) const noexcept {
    return 1.0 / time_ratio(k);
  }

  /// System predicted fastest (smallest time ratio; lowest id on ties).
  [[nodiscard]] arch::SystemId fastest() const noexcept;

  /// System predicted slowest (largest time ratio; lowest id on ties).
  [[nodiscard]] arch::SystemId slowest() const noexcept;

  /// Systems ordered fastest-to-slowest (stable on ties).
  [[nodiscard]] std::array<arch::SystemId, arch::kNumSystems> order() const;

  [[nodiscard]] const std::array<double, arch::kNumSystems>& values() const noexcept {
    return ratios_;
  }

 private:
  std::array<double, arch::kNumSystems> ratios_{};
};

/// Plausibility bounds for predicted RPV entries. Observed cross-system
/// time ratios in the study span roughly [1/16, 16]; the defaults leave
/// generous slack while still rejecting wild extrapolations (and, via
/// min_ratio > 0, non-positive entries).
struct RpvGuardOptions {
  double min_ratio = 1e-3;
  double max_ratio = 1e3;
};

/// True when every entry of `rpv` is finite, positive, and within
/// [bounds.min_ratio, bounds.max_ratio]. The gate a predicted RPV must
/// pass before a scheduler may act on it.
[[nodiscard]] bool is_plausible_rpv(const Rpv& rpv,
                                    const RpvGuardOptions& bounds = {}) noexcept;

/// The degraded-mode RPV: all systems tied (ratio 1), so consumers that
/// sort by it fall back to inventory order instead of acting on garbage.
[[nodiscard]] Rpv neutral_rpv() noexcept;

}  // namespace mphpc::core
