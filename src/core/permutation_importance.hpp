// Permutation feature importance: the model-agnostic complement to the
// gain importances of Fig. 6. For each feature, shuffle its column in the
// evaluation set and measure the MAE increase; features whose corruption
// hurts predictions most matter most. Unlike gain importance it reflects
// what the *fitted* model actually relies on at prediction time, which is
// useful for auditing the Fig. 6 discussion (see EXPERIMENTS.md F6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/importance.hpp"
#include "ml/model.hpp"

namespace mphpc::core {

struct PermutationOptions {
  int repeats = 3;           ///< shuffles per feature (averaged)
  std::uint64_t seed = 99;
};

/// MAE increase per feature when that feature's evaluation column is
/// permuted, in feature order (not sorted). `model` must be fitted;
/// `x`/`y` are the evaluation set.
[[nodiscard]] std::vector<double> permutation_importances(
    const ml::Regressor& model, const ml::Matrix& x, const ml::Matrix& y,
    const PermutationOptions& options = {}, ThreadPool* pool = nullptr);

/// Convenience: named, sorted report (same shape as importance_report).
[[nodiscard]] std::vector<FeatureImportance> permutation_report(
    const ml::Regressor& model, const ml::Matrix& x, const ml::Matrix& y,
    std::span<const std::string> feature_names,
    const PermutationOptions& options = {}, ThreadPool* pool = nullptr);

}  // namespace mphpc::core
