#include "core/permutation_importance.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace mphpc::core {

std::vector<double> permutation_importances(const ml::Regressor& model,
                                            const ml::Matrix& x, const ml::Matrix& y,
                                            const PermutationOptions& options,
                                            ThreadPool* pool) {
  MPHPC_EXPECTS(model.fitted());
  MPHPC_EXPECTS(x.rows() == y.rows() && x.rows() > 1);
  MPHPC_EXPECTS(options.repeats >= 1);

  const double baseline = ml::mean_absolute_error(y, model.predict(x));
  std::vector<double> importances(x.cols(), 0.0);

  const auto evaluate_feature = [&](std::size_t f) {
    Rng rng(derive_seed(options.seed, "perm", static_cast<std::uint64_t>(f)));
    double total = 0.0;
    for (int rep = 0; rep < options.repeats; ++rep) {
      ml::Matrix corrupted = x;
      // Permute column f.
      const auto perm = permutation(rng, x.rows());
      for (std::size_t r = 0; r < x.rows(); ++r) {
        corrupted(r, f) = x(perm[r], f);
      }
      total += ml::mean_absolute_error(y, model.predict(corrupted));
    }
    importances[f] = total / options.repeats - baseline;
  };

  if (pool != nullptr) {
    pool->parallel_for(0, x.cols(), evaluate_feature);
  } else {
    for (std::size_t f = 0; f < x.cols(); ++f) evaluate_feature(f);
  }
  return importances;
}

std::vector<FeatureImportance> permutation_report(
    const ml::Regressor& model, const ml::Matrix& x, const ml::Matrix& y,
    std::span<const std::string> feature_names, const PermutationOptions& options,
    ThreadPool* pool) {
  MPHPC_EXPECTS(feature_names.size() == x.cols());
  const auto importances = permutation_importances(model, x, y, options, pool);
  std::vector<FeatureImportance> report;
  report.reserve(feature_names.size());
  for (std::size_t f = 0; f < feature_names.size(); ++f) {
    report.push_back({feature_names[f], importances[f]});
  }
  std::stable_sort(report.begin(), report.end(),
                   [](const FeatureImportance& a, const FeatureImportance& b) {
                     return a.importance > b.importance;
                   });
  return report;
}

}  // namespace mphpc::core
