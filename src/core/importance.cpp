#include "core/importance.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mphpc::core {

std::vector<FeatureImportance> importance_report(
    const ml::Regressor& model, std::span<const std::string> feature_names) {
  const auto importances = model.feature_importances();
  MPHPC_EXPECTS(importances.has_value());
  MPHPC_EXPECTS(importances->size() == feature_names.size());
  std::vector<FeatureImportance> report;
  report.reserve(feature_names.size());
  for (std::size_t f = 0; f < feature_names.size(); ++f) {
    report.push_back({feature_names[f], (*importances)[f]});
  }
  std::stable_sort(report.begin(), report.end(),
                   [](const FeatureImportance& a, const FeatureImportance& b) {
                     return a.importance > b.importance;
                   });
  return report;
}

std::vector<std::string> top_k_features(std::span<const FeatureImportance> report,
                                        std::size_t k) {
  MPHPC_EXPECTS(k > 0);
  std::vector<std::string> out;
  out.reserve(std::min(k, report.size()));
  for (std::size_t i = 0; i < report.size() && i < k; ++i) {
    out.push_back(report[i].feature);
  }
  return out;
}

std::vector<std::size_t> top_k_feature_indices(
    std::span<const FeatureImportance> report,
    std::span<const std::string> feature_names, std::size_t k) {
  const auto top = top_k_features(report, k);
  std::vector<std::size_t> indices;
  indices.reserve(top.size());
  for (const auto& name : top) {
    for (std::size_t f = 0; f < feature_names.size(); ++f) {
      if (feature_names[f] == name) {
        indices.push_back(f);
        break;
      }
    }
  }
  MPHPC_ENSURES(indices.size() == top.size());
  std::sort(indices.begin(), indices.end());
  return indices;
}

}  // namespace mphpc::core
