// Model zoo and evaluation harness (paper §VI): builds each comparator
// model (mean baseline, linear regression, decision forest, XGBoost-style
// GBT), runs the 90/10 train-test protocol with 5-fold cross-validation on
// the training portion, and reports MAE / SOS / RMSE / R^2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "data/split.hpp"
#include "ml/model.hpp"

namespace mphpc::core {

enum class ModelKind : std::uint8_t { kMean = 0, kLinear = 1, kForest = 2, kXgboost = 3 };

inline constexpr std::array<ModelKind, 4> kAllModelKinds = {
    ModelKind::kMean, ModelKind::kLinear, ModelKind::kForest, ModelKind::kXgboost};

[[nodiscard]] std::string_view to_string(ModelKind kind) noexcept;

/// Factory with the hyper-parameters used throughout the reproduction.
/// `seed` feeds every stochastic component of the model.
[[nodiscard]] std::unique_ptr<ml::Regressor> make_model(ModelKind kind,
                                                        std::uint64_t seed = 13);

struct EvalMetrics {
  double mae = 0.0;
  double sos = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;
};

/// Computes all four metrics of `pred` against `truth`.
[[nodiscard]] EvalMetrics evaluate(const ml::Matrix& truth, const ml::Matrix& pred);

/// Fits `model` on the split's train rows and evaluates on its test rows.
[[nodiscard]] EvalMetrics train_and_evaluate(ml::Regressor& model, const ml::Matrix& x,
                                             const ml::Matrix& y,
                                             const data::TrainTestSplit& split,
                                             ThreadPool* pool = nullptr);

/// K-fold cross-validated MAE of a fresh `kind` model over the given rows.
[[nodiscard]] double cross_validated_mae(ModelKind kind, const ml::Matrix& x,
                                         const ml::Matrix& y,
                                         std::span<const std::size_t> rows, int folds,
                                         std::uint64_t seed, ThreadPool* pool = nullptr);

struct ModelEvaluation {
  ModelKind kind = ModelKind::kMean;
  EvalMetrics test;                 ///< held-out test metrics
  std::optional<double> cv_mae;     ///< 5-fold CV MAE on the training rows
};

struct ComparisonOptions {
  double test_fraction = 0.10;
  int cv_folds = 5;
  bool run_cv = true;
  std::uint64_t split_seed = 42;
  std::uint64_t model_seed = 13;
};

/// The full paper §VI protocol over every model kind.
[[nodiscard]] std::vector<ModelEvaluation> compare_models(
    const ml::Matrix& x, const ml::Matrix& y, std::span<const ModelKind> kinds,
    const ComparisonOptions& options, ThreadPool* pool = nullptr);

}  // namespace mphpc::core
