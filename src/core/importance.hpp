// Feature-importance reporting (paper §VI-B, Fig. 6): pairs model gain
// importances with feature names, ranks them, and supports the top-k
// feature-selection pass the paper uses to re-train on the most impactful
// counters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace mphpc::core {

struct FeatureImportance {
  std::string feature;
  double importance = 0.0;
};

/// Importances of a fitted model paired with names, sorted descending
/// (stable: equal scores keep feature order). Throws ContractViolation if
/// the model does not expose importances or sizes mismatch.
[[nodiscard]] std::vector<FeatureImportance> importance_report(
    const ml::Regressor& model, std::span<const std::string> feature_names);

/// The k highest-importance feature names, in rank order.
[[nodiscard]] std::vector<std::string> top_k_features(
    std::span<const FeatureImportance> report, std::size_t k);

/// Indices (into `feature_names`) of the k highest-importance features,
/// ascending — the form consumed by matrix column selection.
[[nodiscard]] std::vector<std::size_t> top_k_feature_indices(
    std::span<const FeatureImportance> report,
    std::span<const std::string> feature_names, std::size_t k);

}  // namespace mphpc::core
