// CrossArchPredictor — the library's headline API.
//
// Train on an MP-HPC dataset; afterwards, given hardware counters
// collected on *one* architecture (a RunProfile), predict the job's
// Relative Performance Vector across all four systems. Persisted models
// bundle the fitted feature pipeline with the boosted-tree ensemble so a
// deployment can score new runs without the training corpus.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/rpv.hpp"
#include "ml/compiled_ensemble.hpp"
#include "ml/gbt.hpp"

namespace mphpc::core {

class CrossArchPredictor {
 public:
  struct Options {
    ml::GbtOptions gbt;
  };

  explicit CrossArchPredictor(Options options = Options()) : options_(options) {}

  /// Trains the RPV model on the dataset (optionally restricted to the
  /// given rows, e.g. a train split). Copies the dataset's fitted feature
  /// pipeline into the predictor.
  void train(const Dataset& dataset, std::span<const std::size_t> rows = {},
             ThreadPool* pool = nullptr);

  /// Crash-safe training: persist the partial model to `path` every
  /// `every` boosting rounds (atomically), alongside a `path + ".manifest"`
  /// fingerprint of the training configuration and data shape.
  struct TrainCheckpoint {
    std::string path;     ///< checkpoint file (a loadable predictor)
    int every = 0;        ///< rounds between checkpoints (0 = no checkpoints)
    bool resume = false;  ///< continue from `path` when present
  };

  /// train() with periodic checkpointing. With `resume`, a compatible
  /// checkpoint at `ckpt.path` seeds the fit and training continues from
  /// the interrupted round, producing a final model bit-identical to an
  /// uninterrupted train() (see GbtRegressor::fit_resumable); a
  /// checkpoint whose manifest does not match the current configuration
  /// is an error, and a missing checkpoint trains from scratch. The
  /// checkpoint and manifest are removed once training completes.
  void train_checkpointed(const Dataset& dataset, const TrainCheckpoint& ckpt,
                          std::span<const std::size_t> rows = {},
                          ThreadPool* pool = nullptr);

  /// Predicts the RPV of a freshly profiled run from its raw counters.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile) const;

  /// Batch RPV prediction: featurizes every profile and runs one compiled
  /// batch predict (bit-identical to calling predict() per profile).
  /// `pool` distributes row chunks; results do not depend on it.
  [[nodiscard]] std::vector<Rpv> predict_rpvs(
      std::span<const sim::RunProfile> profiles, ThreadPool* pool = nullptr) const;

  /// Batch prediction over already-standardized feature rows (as produced
  /// by Dataset::features). `pool` distributes row chunks.
  [[nodiscard]] ml::Matrix predict(const ml::Matrix& features,
                                   ThreadPool* pool = nullptr) const;

  [[nodiscard]] bool trained() const noexcept { return model_.fitted(); }
  [[nodiscard]] const ml::GbtRegressor& model() const noexcept { return model_; }
  /// The flattened inference engine (compiled at train/load time).
  [[nodiscard]] const ml::CompiledEnsemble& compiled() const noexcept {
    return compiled_;
  }
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }

  /// Persists pipeline + model to a single file; load() restores it.
  void save(const std::string& path) const;
  [[nodiscard]] static CrossArchPredictor load(const std::string& path);

 private:
  /// Rebuilds the compiled engine from model_ (called whenever the model
  /// changes: train, checkpointed train, load). The compile-on-load
  /// contract: whenever trained() holds, compiled_ serves predictions.
  void recompile();

  Options options_;
  FeaturePipeline pipeline_;
  ml::GbtRegressor model_;
  ml::CompiledEnsemble compiled_;
};

/// Degradation wrapper around CrossArchPredictor for use inside long
/// simulations and services: predict() never throws on model trouble.
/// Every predicted RPV is validated (finite, positive, within
/// RpvGuardOptions plausibility bounds); on a violation — or when the
/// wrapped model is untrained, failed to load, or throws — it returns the
/// neutral RPV and increments a fallback counter instead of taking the
/// caller down mid-run.
class GuardedPredictor {
 public:
  /// Degraded from the start: every predict() falls back.
  GuardedPredictor() = default;

  explicit GuardedPredictor(CrossArchPredictor predictor,
                            const RpvGuardOptions& bounds = {});

  /// Loads a persisted model; on *any* load failure (missing file,
  /// truncated or corrupt model text) returns a degraded predictor whose
  /// last_error() explains why, rather than throwing.
  [[nodiscard]] static GuardedPredictor load(const std::string& path,
                                             const RpvGuardOptions& bounds = {});

  /// Predicts the RPV of a profiled run; neutral RPV on any failure.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile);

  /// Batch form of predict(): one compiled batch inference, then per-row
  /// plausibility guarding — row i falls back to the neutral RPV (and
  /// bumps the fallback counter) independently of the others. Degraded
  /// predictors return all-neutral; a batch-wide exception degrades every
  /// row. Equivalent to calling predict() per profile.
  [[nodiscard]] std::vector<Rpv> predict_rpvs(
      std::span<const sim::RunProfile> profiles, ThreadPool* pool = nullptr);

  /// Validates an already-computed RPV against this guard's bounds.
  [[nodiscard]] bool plausible(const Rpv& rpv) const noexcept {
    return is_plausible_rpv(rpv, bounds_);
  }

  /// True when a trained model is available (predictions may still fall
  /// back individually if they land outside the plausibility bounds).
  [[nodiscard]] bool healthy() const noexcept { return healthy_; }
  [[nodiscard]] long long fallback_count() const noexcept { return fallbacks_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }
  [[nodiscard]] const RpvGuardOptions& bounds() const noexcept { return bounds_; }

 private:
  CrossArchPredictor predictor_;
  RpvGuardOptions bounds_{};
  bool healthy_ = false;
  long long fallbacks_ = 0;
  std::string last_error_;
};

}  // namespace mphpc::core
