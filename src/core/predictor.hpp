// CrossArchPredictor — the library's headline API.
//
// Train on an MP-HPC dataset; afterwards, given hardware counters
// collected on *one* architecture (a RunProfile), predict the job's
// Relative Performance Vector across all four systems. Persisted models
// bundle the fitted feature pipeline with the boosted-tree ensemble so a
// deployment can score new runs without the training corpus.
#pragma once

#include <span>
#include <string>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/rpv.hpp"
#include "ml/gbt.hpp"

namespace mphpc::core {

class CrossArchPredictor {
 public:
  struct Options {
    ml::GbtOptions gbt;
  };

  explicit CrossArchPredictor(Options options = Options()) : options_(options) {}

  /// Trains the RPV model on the dataset (optionally restricted to the
  /// given rows, e.g. a train split). Copies the dataset's fitted feature
  /// pipeline into the predictor.
  void train(const Dataset& dataset, std::span<const std::size_t> rows = {},
             ThreadPool* pool = nullptr);

  /// Predicts the RPV of a freshly profiled run from its raw counters.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile) const;

  /// Batch prediction over already-standardized feature rows (as produced
  /// by Dataset::features).
  [[nodiscard]] ml::Matrix predict(const ml::Matrix& features) const;

  [[nodiscard]] bool trained() const noexcept { return model_.fitted(); }
  [[nodiscard]] const ml::GbtRegressor& model() const noexcept { return model_; }
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }

  /// Persists pipeline + model to a single file; load() restores it.
  void save(const std::string& path) const;
  [[nodiscard]] static CrossArchPredictor load(const std::string& path);

 private:
  Options options_;
  FeaturePipeline pipeline_;
  ml::GbtRegressor model_;
};

}  // namespace mphpc::core
