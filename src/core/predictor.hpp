// CrossArchPredictor — the library's headline API.
//
// Train on an MP-HPC dataset; afterwards, given hardware counters
// collected on *one* architecture (a RunProfile), predict the job's
// Relative Performance Vector across all four systems. Persisted models
// bundle the fitted feature pipeline with the boosted-tree ensemble so a
// deployment can score new runs without the training corpus.
#pragma once

#include <span>
#include <string>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/rpv.hpp"
#include "ml/gbt.hpp"

namespace mphpc::core {

class CrossArchPredictor {
 public:
  struct Options {
    ml::GbtOptions gbt;
  };

  explicit CrossArchPredictor(Options options = Options()) : options_(options) {}

  /// Trains the RPV model on the dataset (optionally restricted to the
  /// given rows, e.g. a train split). Copies the dataset's fitted feature
  /// pipeline into the predictor.
  void train(const Dataset& dataset, std::span<const std::size_t> rows = {},
             ThreadPool* pool = nullptr);

  /// Crash-safe training: persist the partial model to `path` every
  /// `every` boosting rounds (atomically), alongside a `path + ".manifest"`
  /// fingerprint of the training configuration and data shape.
  struct TrainCheckpoint {
    std::string path;     ///< checkpoint file (a loadable predictor)
    int every = 0;        ///< rounds between checkpoints (0 = no checkpoints)
    bool resume = false;  ///< continue from `path` when present
  };

  /// train() with periodic checkpointing. With `resume`, a compatible
  /// checkpoint at `ckpt.path` seeds the fit and training continues from
  /// the interrupted round, producing a final model bit-identical to an
  /// uninterrupted train() (see GbtRegressor::fit_resumable); a
  /// checkpoint whose manifest does not match the current configuration
  /// is an error, and a missing checkpoint trains from scratch. The
  /// checkpoint and manifest are removed once training completes.
  void train_checkpointed(const Dataset& dataset, const TrainCheckpoint& ckpt,
                          std::span<const std::size_t> rows = {},
                          ThreadPool* pool = nullptr);

  /// Predicts the RPV of a freshly profiled run from its raw counters.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile) const;

  /// Batch prediction over already-standardized feature rows (as produced
  /// by Dataset::features).
  [[nodiscard]] ml::Matrix predict(const ml::Matrix& features) const;

  [[nodiscard]] bool trained() const noexcept { return model_.fitted(); }
  [[nodiscard]] const ml::GbtRegressor& model() const noexcept { return model_; }
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }

  /// Persists pipeline + model to a single file; load() restores it.
  void save(const std::string& path) const;
  [[nodiscard]] static CrossArchPredictor load(const std::string& path);

 private:
  Options options_;
  FeaturePipeline pipeline_;
  ml::GbtRegressor model_;
};

/// Degradation wrapper around CrossArchPredictor for use inside long
/// simulations and services: predict() never throws on model trouble.
/// Every predicted RPV is validated (finite, positive, within
/// RpvGuardOptions plausibility bounds); on a violation — or when the
/// wrapped model is untrained, failed to load, or throws — it returns the
/// neutral RPV and increments a fallback counter instead of taking the
/// caller down mid-run.
class GuardedPredictor {
 public:
  /// Degraded from the start: every predict() falls back.
  GuardedPredictor() = default;

  explicit GuardedPredictor(CrossArchPredictor predictor,
                            const RpvGuardOptions& bounds = {});

  /// Loads a persisted model; on *any* load failure (missing file,
  /// truncated or corrupt model text) returns a degraded predictor whose
  /// last_error() explains why, rather than throwing.
  [[nodiscard]] static GuardedPredictor load(const std::string& path,
                                             const RpvGuardOptions& bounds = {});

  /// Predicts the RPV of a profiled run; neutral RPV on any failure.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile);

  /// Validates an already-computed RPV against this guard's bounds.
  [[nodiscard]] bool plausible(const Rpv& rpv) const noexcept {
    return is_plausible_rpv(rpv, bounds_);
  }

  /// True when a trained model is available (predictions may still fall
  /// back individually if they land outside the plausibility bounds).
  [[nodiscard]] bool healthy() const noexcept { return healthy_; }
  [[nodiscard]] long long fallback_count() const noexcept { return fallbacks_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }
  [[nodiscard]] const RpvGuardOptions& bounds() const noexcept { return bounds_; }

 private:
  CrossArchPredictor predictor_;
  RpvGuardOptions bounds_{};
  bool healthy_ = false;
  long long fallbacks_ = 0;
  std::string last_error_;
};

}  // namespace mphpc::core
