// CrossArchPredictor — the library's headline API.
//
// Train on an MP-HPC dataset; afterwards, given hardware counters
// collected on *one* architecture (a RunProfile), predict the job's
// Relative Performance Vector across all four systems. Persisted models
// bundle the fitted feature pipeline with the boosted-tree ensemble so a
// deployment can score new runs without the training corpus.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/rpv.hpp"
#include "ml/compiled_ensemble.hpp"
#include "ml/gbt.hpp"

namespace mphpc::core {

class CrossArchPredictor {
 public:
  struct Options {
    ml::GbtOptions gbt;
    /// Compile the inference engine in quantized bin-code mode (see
    /// ml::CompileOptions::quantize). Models that exceed the code ranges
    /// fall back to the exact engine; quantized() reports what serves.
    bool quantize = false;
  };

  CrossArchPredictor() = default;
  explicit CrossArchPredictor(Options options) : options_(options) {}

  /// Trains the RPV model on the dataset (optionally restricted to the
  /// given rows, e.g. a train split). Copies the dataset's fitted feature
  /// pipeline into the predictor.
  void train(const Dataset& dataset, std::span<const std::size_t> rows = {},
             ThreadPool* pool = nullptr);

  /// Crash-safe training: persist the partial model to `path` every
  /// `every` boosting rounds (atomically), alongside a `path + ".manifest"`
  /// fingerprint of the training configuration and data shape.
  struct TrainCheckpoint {
    std::string path;     ///< checkpoint file (a loadable predictor)
    int every = 0;        ///< rounds between checkpoints (0 = no checkpoints)
    bool resume = false;  ///< continue from `path` when present
    /// Cooperative stop, polled right after each checkpoint write (so it
    /// only fires with `every > 0`). Returning true ends training at that
    /// boundary: the just-written checkpoint and manifest stay on disk
    /// for a later `resume` run and train_checkpointed returns false.
    std::function<bool()> stop;
  };

  /// train() with periodic checkpointing. With `resume`, a compatible
  /// checkpoint at `ckpt.path` seeds the fit and training continues from
  /// the interrupted round, producing a final model bit-identical to an
  /// uninterrupted train() (see GbtRegressor::fit_resumable); a
  /// checkpoint whose manifest does not match the current configuration
  /// is an error, and a missing checkpoint trains from scratch. The
  /// checkpoint and manifest are removed once training completes.
  /// Returns true when training ran to completion, false when
  /// `ckpt.stop` ended it early at a checkpoint boundary.
  bool train_checkpointed(const Dataset& dataset, const TrainCheckpoint& ckpt,
                          std::span<const std::size_t> rows = {},
                          ThreadPool* pool = nullptr);

  /// Predicts the RPV of a freshly profiled run from its raw counters.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile) const;

  /// Batch RPV prediction: featurizes every profile and runs one compiled
  /// batch predict (bit-identical to calling predict() per profile).
  /// `pool` distributes row chunks; results do not depend on it.
  [[nodiscard]] std::vector<Rpv> predict_rpvs(
      std::span<const sim::RunProfile> profiles, ThreadPool* pool = nullptr) const;

  /// Batch prediction over already-standardized feature rows (as produced
  /// by Dataset::features). `pool` distributes row chunks.
  [[nodiscard]] ml::Matrix predict(const ml::Matrix& features,
                                   ThreadPool* pool = nullptr) const;

  [[nodiscard]] bool trained() const noexcept { return model_.fitted(); }
  [[nodiscard]] const ml::GbtRegressor& model() const noexcept { return model_; }
  /// The flattened inference engine (compiled at train/load time).
  [[nodiscard]] const ml::CompiledEnsemble& compiled() const noexcept {
    return compiled_;
  }
  /// True when predictions are served by the quantized bin-code engine.
  [[nodiscard]] bool quantized() const noexcept { return compiled_.quantized(); }

  /// Switches the inference engine between exact and quantized modes by
  /// recompiling the current model (a no-op before training; the option
  /// then applies to the eventual train/load compile).
  void set_quantized(bool quantize);
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }

  /// Persists pipeline + model to a single file; load() restores it.
  void save(const std::string& path) const;
  [[nodiscard]] static CrossArchPredictor load(const std::string& path);

  /// In-memory forms of save()/load(): serialize_text() is exactly the
  /// bytes save() writes, from_text() parses them back (and recompiles).
  /// The serve model store wraps these with its own integrity header.
  [[nodiscard]] std::string serialize_text() const;
  [[nodiscard]] static CrossArchPredictor from_text(std::string_view text);

  /// Assembles a predictor from an already-fitted pipeline + model (e.g.
  /// a cold rebuild on a feedback window) and compiles it.
  [[nodiscard]] static CrossArchPredictor from_parts(FeaturePipeline pipeline,
                                                     ml::GbtRegressor model);

  /// Online refit: continues boosting this predictor's model with
  /// `extra_rounds` more trees trained on a new feature/target window
  /// (standardized rows as produced by FeaturePipeline / Dataset), then
  /// recompiles. Deterministic per generation; see
  /// ml::GbtRegressor::warm_start_fit.
  void warm_refit(const ml::Matrix& x, const ml::Matrix& y, int extra_rounds,
                  ThreadPool* pool = nullptr);

 private:
  /// Rebuilds the compiled engine from model_ (called whenever the model
  /// changes: train, checkpointed train, load). The compile-on-load
  /// contract: whenever trained() holds, compiled_ serves predictions.
  void recompile();

  Options options_;
  FeaturePipeline pipeline_;
  ml::GbtRegressor model_;
  ml::CompiledEnsemble compiled_;
};

/// Degradation wrapper around CrossArchPredictor for use inside long
/// simulations and services: predict() never throws on model trouble.
/// Every predicted RPV is validated (finite, positive, within
/// RpvGuardOptions plausibility bounds); on a violation — or when the
/// wrapped model is untrained, failed to load, or throws — it returns the
/// neutral RPV and increments a fallback counter instead of taking the
/// caller down mid-run.
///
/// Thread-safe for the serve hot path: the wrapped model lives behind a
/// shared_ptr that readers snapshot under a brief lock and then use
/// lock-free (RCU-style), so swap_model() can publish a freshly refitted
/// model while predictions are in flight on the old one — in-flight calls
/// finish on their snapshot, new calls see the new model. Fallback
/// counting is atomic (no lost increments under concurrency). The drift
/// detector's hook is set_forced_degraded(): while forced, every predict
/// falls back to the neutral RPV regardless of model health. Moving a
/// GuardedPredictor is NOT thread-safe against concurrent use of the
/// source.
class GuardedPredictor {
 public:
  /// Degraded from the start: every predict() falls back.
  GuardedPredictor() = default;

  explicit GuardedPredictor(CrossArchPredictor predictor,
                            const RpvGuardOptions& bounds = {});

  GuardedPredictor(GuardedPredictor&& other) noexcept;
  GuardedPredictor& operator=(GuardedPredictor&& other) noexcept;
  GuardedPredictor(const GuardedPredictor&) = delete;
  GuardedPredictor& operator=(const GuardedPredictor&) = delete;

  /// Loads a persisted model; on *any* load failure (missing file,
  /// truncated or corrupt model text) returns a degraded predictor whose
  /// last_error() explains why, rather than throwing.
  [[nodiscard]] static GuardedPredictor load(const std::string& path,
                                             const RpvGuardOptions& bounds = {});

  /// Predicts the RPV of a profiled run; neutral RPV on any failure.
  [[nodiscard]] Rpv predict(const sim::RunProfile& profile);

  /// Batch form of predict(): one compiled batch inference, then per-row
  /// plausibility guarding — row i falls back to the neutral RPV (and
  /// bumps the fallback counter) independently of the others. Degraded
  /// predictors return all-neutral; a batch-wide exception degrades every
  /// row. Equivalent to calling predict() per profile. When `fallback_out`
  /// is non-null it is resized to profiles.size() with 1 for every row
  /// that fell back (the serve protocol reports this per reply).
  [[nodiscard]] std::vector<Rpv> predict_rpvs(
      std::span<const sim::RunProfile> profiles, ThreadPool* pool = nullptr,
      std::vector<std::uint8_t>* fallback_out = nullptr);

  /// Atomically publishes `next` as the serving model: calls that already
  /// snapshotted the old model finish on it; subsequent calls use `next`.
  /// Clears last_error() if `next` is trained.
  void swap_model(CrossArchPredictor next);

  /// The current model (nullptr when degraded-from-start). The snapshot
  /// stays valid — and serves predictions — even if swap_model() replaces
  /// it a nanosecond later.
  [[nodiscard]] std::shared_ptr<const CrossArchPredictor> snapshot() const;

  /// Drift hook: while forced, every predict falls back (and counts as a
  /// fallback) even though the model is loaded. `reason` lands in
  /// last_error() when non-empty.
  void set_forced_degraded(bool on, const std::string& reason = "");
  [[nodiscard]] bool forced_degraded() const noexcept {
    return forced_degraded_.load(std::memory_order_relaxed);
  }

  /// Validates an already-computed RPV against this guard's bounds.
  [[nodiscard]] bool plausible(const Rpv& rpv) const noexcept {
    return is_plausible_rpv(rpv, bounds_);
  }

  /// True when a trained model is available and the guard is not forced
  /// degraded (predictions may still fall back individually if they land
  /// outside the plausibility bounds).
  [[nodiscard]] bool healthy() const;
  [[nodiscard]] long long fallback_count() const noexcept {
    return fallbacks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string last_error() const;
  [[nodiscard]] const RpvGuardOptions& bounds() const noexcept { return bounds_; }

 private:
  void record_error(const std::string& message);
  void bump_fallbacks(long long by = 1) noexcept {
    fallbacks_.fetch_add(by, std::memory_order_relaxed);
  }

  /// Current model; readers copy the pointer under mutex_ and predict on
  /// the copy without any lock. Never points at a mutable predictor.
  std::shared_ptr<const CrossArchPredictor> model_;
  RpvGuardOptions bounds_{};
  mutable std::mutex mutex_;  ///< guards model_ pointer + last_error_
  std::atomic<long long> fallbacks_{0};
  std::atomic<bool> forced_degraded_{false};
  std::string last_error_;
};

}  // namespace mphpc::core
