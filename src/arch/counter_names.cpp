#include "arch/counter_names.hpp"

namespace mphpc::arch {

std::string_view to_string(Device d) noexcept {
  return d == Device::kCpu ? "cpu" : "gpu";
}

std::string_view to_string(CounterKind kind) noexcept {
  switch (kind) {
    case CounterKind::kTotalInstructions: return "total_instructions";
    case CounterKind::kBranchInstructions: return "branch_instructions";
    case CounterKind::kStoreInstructions: return "store_instructions";
    case CounterKind::kLoadInstructions: return "load_instructions";
    case CounterKind::kSpFpInstructions: return "sp_fp_instructions";
    case CounterKind::kDpFpInstructions: return "dp_fp_instructions";
    case CounterKind::kIntArithInstructions: return "int_arith_instructions";
    case CounterKind::kL1LoadMisses: return "l1_load_misses";
    case CounterKind::kL1StoreMisses: return "l1_store_misses";
    case CounterKind::kL2LoadMisses: return "l2_load_misses";
    case CounterKind::kL2StoreMisses: return "l2_store_misses";
    case CounterKind::kIoBytesWritten: return "io_bytes_written";
    case CounterKind::kIoBytesRead: return "io_bytes_read";
    case CounterKind::kPageTableSize: return "page_table_size";
    case CounterKind::kMemStallCycles: return "mem_stall_cycles";
    case CounterKind::kTotalCycles: return "total_cycles";
  }
  return "unknown";
}

std::optional<CounterKind> parse_counter_kind(std::string_view name) noexcept {
  for (const CounterKind kind : kAllCounterKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

namespace {

// PAPI preset names used on all four CPUs; the integer-arithmetic event is
// a native event whose prefix differs per micro-architecture.
std::string_view cpu_name(SystemId system, CounterKind kind) noexcept {
  switch (kind) {
    case CounterKind::kTotalInstructions: return "PAPI_TOT_INS";
    case CounterKind::kBranchInstructions: return "PAPI_BR_INS";
    case CounterKind::kStoreInstructions: return "PAPI_SR_INS";
    case CounterKind::kLoadInstructions: return "PAPI_LD_INS";
    case CounterKind::kSpFpInstructions: return "PAPI_SP_OPS";
    case CounterKind::kDpFpInstructions: return "PAPI_DP_OPS";
    case CounterKind::kIntArithInstructions:
      switch (system) {
        case SystemId::kQuartz: return "bdw::ARITH";
        case SystemId::kRuby: return "clx::ARITH";
        case SystemId::kLassen: return "pwr9::ARITH";
        case SystemId::kCorona: return "rome::ARITH";
      }
      return "ARITH";
    case CounterKind::kL1LoadMisses: return "PAPI_L1_LDM";
    case CounterKind::kL1StoreMisses: return "PAPI_L1_STM";
    case CounterKind::kL2LoadMisses: return "PAPI_L2_LDM";
    case CounterKind::kL2StoreMisses: return "PAPI_L2_STM";
    case CounterKind::kIoBytesWritten: return "io::bytes_written";
    case CounterKind::kIoBytesRead: return "io::bytes_read";
    case CounterKind::kPageTableSize: return "ept::size";
    case CounterKind::kMemStallCycles: return "PAPI_MEM_SCY";
    case CounterKind::kTotalCycles: return "PAPI_TOT_CYC";
  }
  return "-";
}

// CUPTI metric names on Lassen's V100s.
std::string_view cupti_name(CounterKind kind) noexcept {
  switch (kind) {
    case CounterKind::kTotalInstructions: return "inst_executed";
    case CounterKind::kBranchInstructions: return "cf_executed";
    case CounterKind::kStoreInstructions:
      return "inst_executed_local_stores+inst_executed_global_stores";
    case CounterKind::kLoadInstructions:
      return "inst_executed_local_loads+inst_executed_global_loads";
    case CounterKind::kSpFpInstructions: return "flop_count_sp";
    case CounterKind::kDpFpInstructions: return "flop_count_dp";
    case CounterKind::kIntArithInstructions: return "inst_integer";
    case CounterKind::kL1LoadMisses: return "local_load_requests*(1-local_hit_rate)";
    case CounterKind::kL1StoreMisses: return "local_store_requests*(1-local_hit_rate)";
    case CounterKind::kL2LoadMisses: return "gld_transactions*(1-gld_efficiency)";
    case CounterKind::kL2StoreMisses: return "gst_transactions*(1-gst_efficiency)";
    case CounterKind::kIoBytesWritten: return "io::bytes_written";  // OS-side
    case CounterKind::kIoBytesRead: return "io::bytes_read";        // OS-side
    case CounterKind::kPageTableSize: return "-";
    case CounterKind::kMemStallCycles: return "GINST:STL_ANY";
    case CounterKind::kTotalCycles: return "elapsed_cycles_sm";
  }
  return "-";
}

// rocprofiler counter names on Corona's MI50s.
std::string_view rocm_name(CounterKind kind) noexcept {
  switch (kind) {
    case CounterKind::kTotalInstructions: return "SQ_INSTS";
    case CounterKind::kBranchInstructions: return "SQ_INSTS_BRANCH";
    case CounterKind::kStoreInstructions: return "SQ_INSTS_FLAT+SQ_INSTS_SMEM_STORE";
    case CounterKind::kLoadInstructions: return "SQ_INSTS_FLAT+SQ_INSTS_SMEM_LOAD";
    case CounterKind::kSpFpInstructions: return "SQ_INSTS_VALU_ADD_F32";
    case CounterKind::kDpFpInstructions: return "SQ_INSTS_VALU_ADD_F64";
    case CounterKind::kIntArithInstructions: return "SQ_INSTS_VALU_INT32";
    case CounterKind::kL1LoadMisses: return "TCP_TCC_READ_REQ_sum";
    case CounterKind::kL1StoreMisses: return "TCP_TCC_WRITE_REQ_sum";
    case CounterKind::kL2LoadMisses: return "TCC_MISS_sum*TCC_EA_RDREQ";
    case CounterKind::kL2StoreMisses: return "TCC_MISS_sum*TCC_EA_WRREQ";
    case CounterKind::kIoBytesWritten: return "io::bytes_written";  // OS-side
    case CounterKind::kIoBytesRead: return "io::bytes_read";        // OS-side
    case CounterKind::kPageTableSize: return "-";
    case CounterKind::kMemStallCycles: return "MemUnitStalled";
    case CounterKind::kTotalCycles: return "GRBM_GUI_ACTIVE";
  }
  return "-";
}

}  // namespace

std::string_view counter_source_name(SystemId system, Device device,
                                     CounterKind kind) noexcept {
  if (device == Device::kCpu) return cpu_name(system, kind);
  switch (system) {
    case SystemId::kLassen: return cupti_name(kind);
    case SystemId::kCorona: return rocm_name(kind);
    case SystemId::kQuartz:
    case SystemId::kRuby:
      return "-";  // CPU-only systems have no GPU counters
  }
  return "-";
}

}  // namespace mphpc::arch
