#include "arch/architecture.hpp"

#include "common/strings.hpp"

namespace mphpc::arch {

std::string_view to_string(SystemId id) noexcept {
  switch (id) {
    case SystemId::kQuartz: return "quartz";
    case SystemId::kRuby: return "ruby";
    case SystemId::kLassen: return "lassen";
    case SystemId::kCorona: return "corona";
  }
  return "unknown";
}

std::optional<SystemId> parse_system(std::string_view name) noexcept {
  const std::string lower = to_lower(name);
  for (const SystemId id : kAllSystems) {
    if (lower == to_string(id)) return id;
  }
  return std::nullopt;
}

}  // namespace mphpc::arch
