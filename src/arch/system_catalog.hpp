// The catalog of the four study systems (paper Table I), with
// micro-architectural parameters filled in from public specifications.
#pragma once

#include <array>

#include "arch/architecture.hpp"

namespace mphpc::arch {

/// Value-type catalog of the four systems. Copyable; no global state.
class SystemCatalog {
 public:
  /// Builds the default catalog matching Table I.
  SystemCatalog();

  /// Spec lookup by id (always succeeds — ids are a closed enum).
  [[nodiscard]] const ArchitectureSpec& get(SystemId id) const noexcept {
    return systems_[static_cast<std::size_t>(id)];
  }

  /// Spec lookup by name; throws mphpc::LookupError if unknown.
  [[nodiscard]] const ArchitectureSpec& get(std::string_view name) const;

  [[nodiscard]] const std::array<ArchitectureSpec, kNumSystems>& all() const noexcept {
    return systems_;
  }

 private:
  std::array<ArchitectureSpec, kNumSystems> systems_;
};

}  // namespace mphpc::arch
