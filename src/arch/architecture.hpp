// Architecture descriptions for the four systems in Table I of the paper.
//
// The real study ran on physical LLNL clusters; here each system is an
// analytic machine model: enough micro-architectural parameters for the
// simulator (src/sim) to produce execution times and hardware counters with
// the qualitative structure the paper's ML model learns from (CPU vs GPU
// suitability, cache capacity effects, bandwidth limits, scaling).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mphpc::arch {

/// The four systems of the study, in the paper's one-hot encoding order.
enum class SystemId : std::uint8_t { kQuartz = 0, kRuby = 1, kLassen = 2, kCorona = 3 };

inline constexpr std::size_t kNumSystems = 4;

inline constexpr std::array<SystemId, kNumSystems> kAllSystems = {
    SystemId::kQuartz, SystemId::kRuby, SystemId::kLassen, SystemId::kCorona};

/// Stable lowercase identifier ("quartz", "ruby", "lassen", "corona").
[[nodiscard]] std::string_view to_string(SystemId id) noexcept;

/// Parses a system name (case-insensitive); returns nullopt if unknown.
[[nodiscard]] std::optional<SystemId> parse_system(std::string_view name) noexcept;

/// CPU micro-parameters of one node.
struct CpuSpec {
  std::string model;           ///< marketing name, e.g. "Intel Xeon E5-2695 v4"
  int cores_per_node = 0;      ///< physical cores per node
  double clock_ghz = 0.0;      ///< nominal clock
  double flops_per_cycle = 0;  ///< peak double-precision flops/cycle/core (FMA+SIMD)
  double sp_throughput_ratio = 2.0;  ///< single- vs double-precision throughput ratio
  double l1_kib = 32.0;        ///< L1 data cache per core
  double l2_kib = 256.0;       ///< L2 cache per core
  double l3_mib = 0.0;         ///< last-level cache per node (shared)
  double mem_bw_gbs = 0.0;     ///< node DRAM bandwidth, GB/s
  double mem_latency_ns = 90;  ///< DRAM access latency
  double ipc_scale = 1.0;      ///< relative scalar issue throughput vs baseline
  double branch_miss_penalty_cycles = 15.0;  ///< pipeline refill cost
  double branch_predictor_accuracy = 0.95;   ///< baseline prediction rate

  /// Peak node double-precision GFLOP/s.
  [[nodiscard]] double peak_dp_gflops() const noexcept {
    return cores_per_node * clock_ghz * flops_per_cycle;
  }
};

/// GPU micro-parameters of one device.
struct GpuSpec {
  std::string model;            ///< e.g. "NVIDIA V100"
  int per_node = 0;             ///< devices per node
  double peak_sp_tflops = 0.0;  ///< single-precision peak per device
  double peak_dp_tflops = 0.0;  ///< double-precision peak per device
  double mem_bw_gbs = 0.0;      ///< HBM bandwidth per device, GB/s
  double mem_gib = 16.0;        ///< device memory capacity
  double l2_mib = 6.0;          ///< device L2 cache
  double kernel_launch_us = 8;  ///< per-kernel launch overhead
  double divergence_penalty = 6.0;  ///< slowdown factor at full branch divergence
  double pcie_bw_gbs = 16.0;    ///< host<->device transfer bandwidth
  /// Fraction of peak the software stack realistically sustains (compiler,
  /// libraries, runtime maturity).
  double software_efficiency = 1.0;
};

/// Inter-node network characteristics.
struct NetworkSpec {
  double latency_us = 1.5;   ///< small-message latency
  double bw_gbs = 12.5;      ///< per-node injection bandwidth
};

/// One system: the unit the scheduler assigns jobs to and the simulator
/// executes runs on.
struct ArchitectureSpec {
  SystemId id = SystemId::kQuartz;
  std::string name;           ///< lowercase identifier, matches to_string(id)
  CpuSpec cpu;
  std::optional<GpuSpec> gpu;  ///< engaged only on GPU systems
  NetworkSpec network;
  int nodes = 0;               ///< cluster size, used by the scheduler
  double io_bw_gbs = 10.0;     ///< parallel filesystem bandwidth per node
  double os_noise_sigma = 0.02;  ///< log-space run-to-run noise floor

  [[nodiscard]] bool has_gpu() const noexcept { return gpu.has_value(); }

  /// Peak node-level double-precision GFLOP/s including GPUs.
  [[nodiscard]] double peak_node_dp_gflops() const noexcept {
    double peak = cpu.peak_dp_gflops();
    if (gpu) peak += gpu->per_node * gpu->peak_dp_tflops * 1e3;
    return peak;
  }
};

}  // namespace mphpc::arch
