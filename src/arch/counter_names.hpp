// Raw hardware counter taxonomy (paper Table III, right-hand side).
//
// Counter *names* differ per architecture and measurement stack (PAPI on
// CPUs, CUPTI on NVIDIA GPUs, rocprofiler on AMD GPUs) while measuring
// similar underlying quantities. The simulator produces values keyed by
// the semantic `CounterKind`; this header carries the per-architecture
// display/source names so profiles, CSV exports, and the Table III bench
// mirror what the real collection pipeline records.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "arch/architecture.hpp"

namespace mphpc::arch {

/// Which device the counters were collected from.
enum class Device : std::uint8_t { kCpu = 0, kGpu = 1 };

[[nodiscard]] std::string_view to_string(Device d) noexcept;

/// Semantic counter kinds recorded during every run.
enum class CounterKind : std::uint8_t {
  kTotalInstructions = 0,
  kBranchInstructions,
  kStoreInstructions,
  kLoadInstructions,
  kSpFpInstructions,
  kDpFpInstructions,
  kIntArithInstructions,
  kL1LoadMisses,
  kL1StoreMisses,
  kL2LoadMisses,
  kL2StoreMisses,
  kIoBytesWritten,
  kIoBytesRead,
  kPageTableSize,
  kMemStallCycles,
  kTotalCycles,
};

inline constexpr std::size_t kNumCounterKinds = 16;

inline constexpr std::array<CounterKind, kNumCounterKinds> kAllCounterKinds = {
    CounterKind::kTotalInstructions, CounterKind::kBranchInstructions,
    CounterKind::kStoreInstructions, CounterKind::kLoadInstructions,
    CounterKind::kSpFpInstructions,  CounterKind::kDpFpInstructions,
    CounterKind::kIntArithInstructions, CounterKind::kL1LoadMisses,
    CounterKind::kL1StoreMisses,     CounterKind::kL2LoadMisses,
    CounterKind::kL2StoreMisses,     CounterKind::kIoBytesWritten,
    CounterKind::kIoBytesRead,       CounterKind::kPageTableSize,
    CounterKind::kMemStallCycles,    CounterKind::kTotalCycles,
};

/// Stable snake_case identifier for CSV headers ("branch_instructions", ...).
[[nodiscard]] std::string_view to_string(CounterKind kind) noexcept;

/// Parses a counter kind identifier; nullopt if unknown.
[[nodiscard]] std::optional<CounterKind> parse_counter_kind(std::string_view name) noexcept;

/// The architecture-native source counter (or counter expression) that the
/// real collection stack would read for this semantic kind on this
/// system/device, mirroring Table III. Example:
///   counter_source_name(SystemId::kLassen, Device::kGpu,
///                       CounterKind::kBranchInstructions) == "cf_executed"
/// Returns "-" when the paper's stack has no equivalent on that device
/// (e.g. per-GPU I/O counters, which are recorded OS-side instead).
[[nodiscard]] std::string_view counter_source_name(SystemId system, Device device,
                                                   CounterKind kind) noexcept;

}  // namespace mphpc::arch
