#include "arch/system_catalog.hpp"

#include "common/error.hpp"

namespace mphpc::arch {

namespace {

ArchitectureSpec make_quartz() {
  ArchitectureSpec s;
  s.id = SystemId::kQuartz;
  s.name = "quartz";
  s.cpu.model = "Intel Xeon E5-2695 v4";
  s.cpu.cores_per_node = 36;
  s.cpu.clock_ghz = 2.1;
  s.cpu.flops_per_cycle = 16.0;  // AVX2: 2 FMA ports x 4 doubles x 2 flops
  s.cpu.sp_throughput_ratio = 2.0;
  s.cpu.l1_kib = 32.0;
  s.cpu.l2_kib = 256.0;
  s.cpu.l3_mib = 90.0;  // 45 MiB per socket, dual socket
  s.cpu.mem_bw_gbs = 130.0;
  s.cpu.mem_latency_ns = 95.0;
  s.cpu.ipc_scale = 1.0;
  s.cpu.branch_miss_penalty_cycles = 15.0;
  s.cpu.branch_predictor_accuracy = 0.93;
  s.network.latency_us = 1.5;
  s.network.bw_gbs = 12.0;  // Omni-Path 100 Gb/s
  s.nodes = 3018;
  s.io_bw_gbs = 10.0;
  s.os_noise_sigma = 0.013;
  return s;
}

ArchitectureSpec make_ruby() {
  ArchitectureSpec s;
  s.id = SystemId::kRuby;
  s.name = "ruby";
  s.cpu.model = "Intel Xeon CLX-8276";
  s.cpu.cores_per_node = 56;
  s.cpu.clock_ghz = 2.2;
  s.cpu.flops_per_cycle = 32.0;  // AVX-512: 2 FMA ports x 8 doubles x 2 flops
  s.cpu.sp_throughput_ratio = 2.0;
  s.cpu.l1_kib = 32.0;
  s.cpu.l2_kib = 1024.0;
  s.cpu.l3_mib = 77.0;  // 38.5 MiB per socket, dual socket
  s.cpu.mem_bw_gbs = 280.0;
  s.cpu.mem_latency_ns = 90.0;
  s.cpu.ipc_scale = 1.2;
  s.cpu.branch_miss_penalty_cycles = 16.0;
  s.cpu.branch_predictor_accuracy = 0.97;
  s.network.latency_us = 1.4;
  s.network.bw_gbs = 12.0;
  s.nodes = 1512;
  s.io_bw_gbs = 12.0;
  s.os_noise_sigma = 0.010;
  return s;
}

ArchitectureSpec make_lassen() {
  ArchitectureSpec s;
  s.id = SystemId::kLassen;
  s.name = "lassen";
  s.cpu.model = "IBM Power9";
  s.cpu.cores_per_node = 44;
  s.cpu.clock_ghz = 3.5;
  s.cpu.flops_per_cycle = 8.0;  // 2 x (2-wide VSX FMA)
  s.cpu.sp_throughput_ratio = 2.0;
  s.cpu.l1_kib = 32.0;
  s.cpu.l2_kib = 512.0;
  s.cpu.l3_mib = 120.0;
  s.cpu.mem_bw_gbs = 340.0;
  s.cpu.mem_latency_ns = 85.0;
  s.cpu.ipc_scale = 0.85;
  s.cpu.branch_miss_penalty_cycles = 13.0;
  s.cpu.branch_predictor_accuracy = 0.92;
  GpuSpec g;
  g.model = "NVIDIA V100";
  g.per_node = 4;
  g.peak_sp_tflops = 15.7;
  g.peak_dp_tflops = 7.8;
  g.mem_bw_gbs = 900.0;
  g.software_efficiency = 1.0;
  g.mem_gib = 16.0;
  g.l2_mib = 6.0;
  g.kernel_launch_us = 8.0;
  g.divergence_penalty = 6.0;
  g.pcie_bw_gbs = 62.5;  // NVLink2 host link
  s.gpu = g;
  s.network.latency_us = 1.2;
  s.network.bw_gbs = 25.0;  // dual-rail EDR InfiniBand
  s.nodes = 795;
  s.io_bw_gbs = 15.0;
  s.os_noise_sigma = 0.015;
  return s;
}

ArchitectureSpec make_corona() {
  ArchitectureSpec s;
  s.id = SystemId::kCorona;
  s.name = "corona";
  s.cpu.model = "AMD Rome";
  s.cpu.cores_per_node = 48;
  s.cpu.clock_ghz = 2.8;
  s.cpu.flops_per_cycle = 16.0;  // AVX2-class: 2 FMA x 4 doubles x 2 flops
  s.cpu.sp_throughput_ratio = 2.0;
  s.cpu.l1_kib = 32.0;
  s.cpu.l2_kib = 512.0;
  s.cpu.l3_mib = 128.0;  // half the chiplet L3 variants
  s.cpu.mem_bw_gbs = 205.0;
  s.cpu.mem_latency_ns = 105.0;
  s.cpu.ipc_scale = 0.92;  // early Rome, derated clocks under GPU power budget
  s.cpu.branch_miss_penalty_cycles = 17.0;
  s.cpu.branch_predictor_accuracy = 0.96;
  GpuSpec g;
  g.model = "AMD MI50";
  g.per_node = 8;
  g.peak_sp_tflops = 13.3;
  g.peak_dp_tflops = 6.6;
  g.mem_bw_gbs = 1024.0;
  g.mem_gib = 32.0;
  g.l2_mib = 4.0;
  g.kernel_launch_us = 12.0;   // HIP launch overhead slightly higher
  g.divergence_penalty = 7.0;  // wave64 diverges harder than warp32
  g.pcie_bw_gbs = 32.0;
  g.software_efficiency = 0.72;  // 2020-era ROCm stack vs mature CUDA
  s.gpu = g;
  s.network.latency_us = 1.6;
  s.network.bw_gbs = 12.0;
  s.nodes = 121;
  s.io_bw_gbs = 8.0;
  s.os_noise_sigma = 0.018;
  return s;
}

}  // namespace

SystemCatalog::SystemCatalog()
    : systems_{make_quartz(), make_ruby(), make_lassen(), make_corona()} {}

const ArchitectureSpec& SystemCatalog::get(std::string_view name) const {
  const auto id = parse_system(name);
  if (!id) throw LookupError("unknown system: '" + std::string(name) + "'");
  return get(*id);
}

}  // namespace mphpc::arch
