// ServeCore — the transport-independent heart of `mphpc serve`.
//
// Owns the guarded predictor, the crash-safe model store, the drift
// detector, and the sliding feedback window. The Server (server.hpp)
// feeds it parsed requests from whatever transport is in use; tests feed
// it lines directly. Responsibilities:
//
//   predict   batch-featurize + one compiled inference per run of
//             consecutive predict requests; per-row plausibility guard.
//   feedback  turn measured times into an RPV target, shadow-predict to
//             feed the drift detector (even while degraded — recovery
//             needs the error stream), append to the sliding window.
//   refit     when enough feedback accumulated and drift is quiet,
//             warm-start the boosted model on the window (or cold-rebuild
//             once the ensemble hits its round budget), persist the new
//             generation to the store FIRST, then atomically hot-swap it
//             into the guard. A SIGKILL anywhere in that sequence leaves
//             a loadable store: either the old generation or the new one.
//   drift     a tripped detector forces the guard degraded (neutral RPVs)
//             and freezes refits until the rolling error recovers.
//
// Thread model: predict paths are lock-free on a model snapshot;
// feedback and stats take the core mutex; run_refit is called from a
// single dedicated thread. All public entry points are safe to call
// concurrently except run_refit (one caller at a time).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/feature_pipeline.hpp"
#include "core/predictor.hpp"
#include "serve/drift.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"

namespace mphpc::serve {

struct ServeOptions {
  std::string state_dir;   ///< required: model store lives here
  std::string model_path;  ///< bootstrap model when the store is empty
  /// Serve through the quantized bin-code inference engine (losslessly
  /// recompiled at bootstrap and after every refit/reload; models that
  /// exceed the code ranges keep the exact engine). Stats report which
  /// engine actually serves.
  bool quantize = false;
  core::RpvGuardOptions bounds{};
  DriftOptions drift{};
  std::size_t drift_max_apps = 64;   ///< per-app drift LRU bound (0 = global-only)
  std::size_t drift_app_window = 0;  ///< per-app window (0 = max(4, window/4))
  std::size_t window_capacity = 4096;  ///< feedback rows kept for refits
  std::size_t refit_every = 256;       ///< feedbacks per refit (0 = never)
  std::size_t min_refit_rows = 32;     ///< smallest window worth refitting on
  int refit_rounds = 20;               ///< extra boosting rounds per refit
  int max_model_rounds = 2000;         ///< warm-start budget before compaction
  int cold_rounds = 200;               ///< rounds for a compaction rebuild
  // Fleet identity + coordination (set by the supervisor path; the
  // defaults describe a standalone single-process daemon).
  int worker_id = 0;                 ///< reported by stats
  long long restarts_observed = 0;   ///< prior incarnations of this slot
  bool use_lease = false;            ///< elect a single refitter on disk
  double lease_ttl_s = 30.0;         ///< silent-holder takeover threshold
};

class ServeCore {
 public:
  /// Bootstraps the serving model: a valid store in state_dir wins (it is
  /// the survivor of the last run), else model_path seeds the store at
  /// generation 0. Throws std::runtime_error when neither yields a model
  /// — a daemon with nothing to serve is a configuration error, not a
  /// degraded state.
  explicit ServeCore(ServeOptions options);

  /// Parses and serves one request line; never throws on bad input (the
  /// reply is a structured error instead).
  [[nodiscard]] std::string handle_line(std::string_view line,
                                        ThreadPool* pool = nullptr);

  /// Serves a batch of parsed requests, one reply per request in order.
  /// Runs of consecutive predict requests share one compiled batch
  /// inference.
  [[nodiscard]] std::vector<std::string> handle_requests(
      std::span<const Request> requests, ThreadPool* pool = nullptr);

  /// Serves one parsed request (shutdown gets an ok ack; the transport
  /// owns the actual drain).
  [[nodiscard]] std::string handle_request(const Request& request,
                                           ThreadPool* pool = nullptr);

  [[nodiscard]] std::string stats_reply(std::string_view id);

  /// True when enough feedback has accumulated for a refit and drift has
  /// not frozen learning.
  [[nodiscard]] bool refit_pending() const;

  /// Runs one refit cycle if one is pending: fit on the window, persist
  /// the new generation, hot-swap. Single-caller (the refit thread).
  /// With use_lease, refits only while holding the on-disk refit lease
  /// (non-holders return false and keep following the store instead).
  /// Returns true when a new generation was published. Throws on
  /// persistence failure — the caller decides whether that is fatal.
  bool run_refit(ThreadPool* pool = nullptr);

  /// Converges this core on the store's published generation: peeks the
  /// header and, when it differs from the generation/fingerprint served
  /// here, loads and hot-swaps the stored model. This is how follower
  /// workers pick up a leader's refits. Returns true when a swap
  /// happened. Never throws (a torn or corrupt store read is retried on
  /// the next poll).
  bool follow_store() noexcept;

  /// Persists the current model/generation to the store (idempotent;
  /// called on clean shutdown so a --model bootstrap without any refit
  /// still leaves a store behind). In lease mode the write is skipped
  /// when the store already holds our generation or newer — a draining
  /// follower must not clobber the leader's latest publish.
  void flush();

  [[nodiscard]] long long generation() const;
  [[nodiscard]] std::string fingerprint() const;
  [[nodiscard]] bool degraded() const { return !guard_.healthy(); }
  [[nodiscard]] core::GuardedPredictor& guard() noexcept { return guard_; }
  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }
  [[nodiscard]] const ModelStore& store() const noexcept { return store_; }
  /// Non-fatal bootstrap diagnostics (e.g. "store was corrupt, fell back
  /// to --model"); empty when bootstrap was clean.
  [[nodiscard]] const std::string& bootstrap_note() const noexcept {
    return bootstrap_note_;
  }

  /// Transport-level events folded into the stats reply. Sheds are
  /// attributed to the shed request's lane so operators can see the
  /// priority policy working (feedback shed before predict).
  void note_shed(Op op = Op::kPredict) noexcept {
    shed_.fetch_add(1, std::memory_order_relaxed);
    (op == Op::kFeedback ? shed_feedback_ : shed_predict_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void note_deadline_expired() noexcept {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Latest per-lane intake depths, sampled by the transport for stats.
  void note_lane_depths(std::size_t predict_depth,
                        std::size_t feedback_depth) noexcept {
    lane_predict_depth_.store(static_cast<long long>(predict_depth),
                              std::memory_order_relaxed);
    lane_feedback_depth_.store(static_cast<long long>(feedback_depth),
                               std::memory_order_relaxed);
  }

 private:
  struct WindowRow {
    std::array<double, core::FeaturePipeline::kNumFeatures> x{};
    std::array<double, arch::kNumSystems> y{};
  };

  void bootstrap();
  [[nodiscard]] std::string handle_feedback(const Request& request);
  [[nodiscard]] std::string shutdown_reply(std::string_view id) const;
  /// Applies the per-app drift override to one predict result: a tripped
  /// app's prediction is replaced with the neutral RPV and flagged as a
  /// fallback, leaving other apps' predictions untouched.
  void apply_app_degrade(const sim::RunProfile& profile, core::Rpv& rpv,
                         std::uint8_t& fallback);

  ServeOptions options_;
  ModelStore store_;
  core::GuardedPredictor guard_;
  RefitLease lease_;
  std::string bootstrap_note_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mutex_;  ///< guards window_, generation_, fingerprint_
  std::deque<WindowRow> window_;
  std::size_t pending_feedback_ = 0;
  long long generation_ = 0;
  std::string fingerprint_;

  /// Separate from mutex_ so the (hot) predict path's per-app drift check
  /// never contends with a refit's window copy.
  mutable std::mutex drift_mutex_;
  DriftMap drift_;

  std::atomic<long long> predicts_{0};
  std::atomic<long long> feedbacks_{0};
  std::atomic<long long> refits_{0};
  std::atomic<long long> reloads_{0};
  std::atomic<long long> request_errors_{0};
  std::atomic<long long> shed_{0};
  std::atomic<long long> shed_predict_{0};
  std::atomic<long long> shed_feedback_{0};
  std::atomic<long long> deadline_expired_{0};
  std::atomic<long long> app_fallbacks_{0};
  std::atomic<long long> lane_predict_depth_{0};
  std::atomic<long long> lane_feedback_depth_{0};
};

}  // namespace mphpc::serve
