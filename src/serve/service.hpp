// ServeCore — the transport-independent heart of `mphpc serve`.
//
// Owns the guarded predictor, the crash-safe model store, the drift
// detector, and the sliding feedback window. The Server (server.hpp)
// feeds it parsed requests from whatever transport is in use; tests feed
// it lines directly. Responsibilities:
//
//   predict   batch-featurize + one compiled inference per run of
//             consecutive predict requests; per-row plausibility guard.
//   feedback  turn measured times into an RPV target, shadow-predict to
//             feed the drift detector (even while degraded — recovery
//             needs the error stream), append to the sliding window.
//   refit     when enough feedback accumulated and drift is quiet,
//             warm-start the boosted model on the window (or cold-rebuild
//             once the ensemble hits its round budget), persist the new
//             generation to the store FIRST, then atomically hot-swap it
//             into the guard. A SIGKILL anywhere in that sequence leaves
//             a loadable store: either the old generation or the new one.
//   drift     a tripped detector forces the guard degraded (neutral RPVs)
//             and freezes refits until the rolling error recovers.
//
// Thread model: predict paths are lock-free on a model snapshot;
// feedback and stats take the core mutex; run_refit is called from a
// single dedicated thread. All public entry points are safe to call
// concurrently except run_refit (one caller at a time).
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/feature_pipeline.hpp"
#include "core/predictor.hpp"
#include "serve/drift.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"

namespace mphpc::serve {

struct ServeOptions {
  std::string state_dir;   ///< required: model store lives here
  std::string model_path;  ///< bootstrap model when the store is empty
  core::RpvGuardOptions bounds{};
  DriftOptions drift{};
  std::size_t window_capacity = 4096;  ///< feedback rows kept for refits
  std::size_t refit_every = 256;       ///< feedbacks per refit (0 = never)
  std::size_t min_refit_rows = 32;     ///< smallest window worth refitting on
  int refit_rounds = 20;               ///< extra boosting rounds per refit
  int max_model_rounds = 2000;         ///< warm-start budget before compaction
  int cold_rounds = 200;               ///< rounds for a compaction rebuild
};

class ServeCore {
 public:
  /// Bootstraps the serving model: a valid store in state_dir wins (it is
  /// the survivor of the last run), else model_path seeds the store at
  /// generation 0. Throws std::runtime_error when neither yields a model
  /// — a daemon with nothing to serve is a configuration error, not a
  /// degraded state.
  explicit ServeCore(ServeOptions options);

  /// Parses and serves one request line; never throws on bad input (the
  /// reply is a structured error instead).
  [[nodiscard]] std::string handle_line(std::string_view line,
                                        ThreadPool* pool = nullptr);

  /// Serves a batch of parsed requests, one reply per request in order.
  /// Runs of consecutive predict requests share one compiled batch
  /// inference.
  [[nodiscard]] std::vector<std::string> handle_requests(
      std::span<const Request> requests, ThreadPool* pool = nullptr);

  /// Serves one parsed request (shutdown gets an ok ack; the transport
  /// owns the actual drain).
  [[nodiscard]] std::string handle_request(const Request& request,
                                           ThreadPool* pool = nullptr);

  [[nodiscard]] std::string stats_reply(std::string_view id);

  /// True when enough feedback has accumulated for a refit and drift has
  /// not frozen learning.
  [[nodiscard]] bool refit_pending() const;

  /// Runs one refit cycle if one is pending: fit on the window, persist
  /// the new generation, hot-swap. Single-caller (the refit thread).
  /// Returns true when a new generation was published. Throws on
  /// persistence failure — the caller decides whether that is fatal.
  bool run_refit(ThreadPool* pool = nullptr);

  /// Persists the current model/generation to the store (idempotent;
  /// called on clean shutdown so a --model bootstrap without any refit
  /// still leaves a store behind).
  void flush();

  [[nodiscard]] long long generation() const;
  [[nodiscard]] std::string fingerprint() const;
  [[nodiscard]] bool degraded() const { return !guard_.healthy(); }
  [[nodiscard]] core::GuardedPredictor& guard() noexcept { return guard_; }
  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }
  [[nodiscard]] const ModelStore& store() const noexcept { return store_; }
  /// Non-fatal bootstrap diagnostics (e.g. "store was corrupt, fell back
  /// to --model"); empty when bootstrap was clean.
  [[nodiscard]] const std::string& bootstrap_note() const noexcept {
    return bootstrap_note_;
  }

  /// Transport-level events folded into the stats reply.
  void note_shed() noexcept { shed_.fetch_add(1, std::memory_order_relaxed); }
  void note_deadline_expired() noexcept {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct WindowRow {
    std::array<double, core::FeaturePipeline::kNumFeatures> x{};
    std::array<double, arch::kNumSystems> y{};
  };

  void bootstrap();
  [[nodiscard]] std::string handle_feedback(const Request& request);
  [[nodiscard]] std::string shutdown_reply(std::string_view id) const;

  ServeOptions options_;
  ModelStore store_;
  core::GuardedPredictor guard_;
  std::string bootstrap_note_;

  mutable std::mutex mutex_;  ///< guards window_, drift_, generation_, fingerprint_
  std::deque<WindowRow> window_;
  DriftDetector drift_;
  std::size_t pending_feedback_ = 0;
  long long generation_ = 0;
  std::string fingerprint_;

  std::atomic<long long> predicts_{0};
  std::atomic<long long> feedbacks_{0};
  std::atomic<long long> refits_{0};
  std::atomic<long long> request_errors_{0};
  std::atomic<long long> shed_{0};
  std::atomic<long long> deadline_expired_{0};
};

}  // namespace mphpc::serve
