// Supervisor — the fault-tolerant process tree over `mphpc serve`.
//
// `mphpc serve --workers N` runs one supervisor that forks N worker
// processes. All workers inherit the SAME listening Unix-socket fd
// (created once, before the first fork), so the kernel load-balances
// accept() across them and a worker death severs only the connections
// that worker held — the socket itself stays live. Each worker also gets
// the write end of a private heartbeat pipe.
//
// The supervisor's event loop watches three things:
//
//   waitpid     per-known-pid WNOHANG (never -1: a supervisor embedded
//               in a test process must not reap unrelated children).
//               A worker that exits 0 finished a clean drain (EOF or a
//               shutdown request landed on it) — that is a fleet-wide
//               instruction, so the group drains and run() returns 0. A
//               worker killed by a signal or exiting nonzero crashed and
//               is restarted with backoff.
//   heartbeats  each worker beats ~2x/second while provably serving
//               (server.hpp's maybe_heartbeat). A worker silent past
//               heartbeat_timeout_s is declared hung and SIGKILLed; the
//               waitpid path then restarts it like any other crash.
//   the latch   SIGTERM/SIGINT to the supervisor propagates as SIGTERM
//               to every worker, workers drain and exit 143, and run()
//               returns 128+signal — the same "interrupted but flushed"
//               convention the single-process daemon documents.
//
// Restart discipline reuses sched::RetryPolicy (the simulator's capped
// exponential backoff, jitter included): slot attempt k restarts after
// delay_s(k, u) with a deterministic jitter draw derived from the seed,
// the slot, and the incarnation count. A worker that stays up
// stable_after_s resets its slot's attempt streak; one that flaps past
// max_attempts escalates — the whole group drains and run() returns 1,
// because a worker that cannot hold a socket open is a configuration
// problem supervision cannot fix.
//
// Restarted incarnations get MPHPC_SERVE_FAULT scrubbed from their
// environment, so an injected fault (fault_inject.hpp) kills only first
// incarnations and the recovery path always runs clean — exactly what
// the crash-recovery tests need.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/faults.hpp"

namespace mphpc::serve {

struct SupervisorOptions {
  int workers = 2;
  /// Restart backoff per slot. The serve CLI defaults are much tighter
  /// than the simulator's (a prediction service should come back in
  /// fractions of a second, not minutes).
  sched::RetryPolicy restart{.max_attempts = 6,
                             .base_delay_s = 0.25,
                             .multiplier = 2.0,
                             .max_delay_s = 10.0,
                             .jitter = 0.25};
  double heartbeat_timeout_s = 10.0;  ///< silence that means "hung"
  double stable_after_s = 30.0;       ///< uptime that resets a slot's streak
  std::uint64_t seed = 1;             ///< jitter determinism
  std::string log_tag = "serve.sup";
};

/// What a forked worker is given to run with.
struct WorkerEnv {
  int slot = 0;            ///< stable worker index in [0, workers)
  long long restarts = 0;  ///< prior incarnations of this slot
  int heartbeat_fd = -1;   ///< write end of this worker's liveness pipe
};

class Supervisor {
 public:
  /// The worker body, run in the forked child; its return value becomes
  /// the worker's exit code (the child _exit()s with it — no unwinding
  /// back into supervisor stack frames, no double-flushed buffers).
  using WorkerMain = std::function<int(const WorkerEnv&)>;

  /// Observable lifecycle transitions, for tests and log correlation.
  enum class Event {
    kSpawned,           ///< detail = restarts so far on this slot
    kExited,            ///< detail = raw waitpid status
    kHung,              ///< detail = seconds silent (rounded)
    kRestartScheduled,  ///< detail = delay in milliseconds
    kEscalated,         ///< detail = attempts burned on the slot
    kDraining,          ///< detail = signal propagated (0 = clean)
  };
  using EventHook = std::function<void(Event event, int slot, long long detail)>;

  /// `log` receives human-readable progress lines (nullptr = silent).
  Supervisor(SupervisorOptions options, WorkerMain worker_main,
             std::ostream* log = nullptr);

  /// Tests hook lifecycle events; must be set before run().
  void set_event_hook(EventHook hook) { hook_ = std::move(hook); }

  /// Runs the fleet until a drain finishes. Returns 0 (a worker drained
  /// cleanly), 128+signal (SIGTERM/SIGINT propagated), or 1 (a slot
  /// flapped past the retry budget and the group was escalated down).
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    int pid = -1;            ///< -1: not running
    int heartbeat_fd = -1;   ///< read end (-1 when not running)
    long long restarts = 0;  ///< total incarnations spawned minus one
    int attempt = 0;         ///< crashes in the current flap streak
    Clock::time_point spawned_at{};
    Clock::time_point last_beat{};
    bool restart_pending = false;
    Clock::time_point restart_at{};
  };

  void log_line(const std::string& message);
  void emit(Event event, int slot, long long detail);
  void spawn(int slot);
  void drain_heartbeat(Slot& slot);
  /// Reaps exited workers; returns the slot index of a clean (exit 0)
  /// worker, or -1.
  int reap(bool& escalated);
  void kill_hung();
  void start_due_restarts();
  /// Propagates `sig` (0 = none) to live workers and waits them out,
  /// SIGKILLing stragglers after the heartbeat timeout.
  void drain_group(int sig);

  SupervisorOptions options_;
  WorkerMain worker_main_;
  std::ostream* log_;
  EventHook hook_;
  std::vector<Slot> slots_;
  bool draining_ = false;
};

}  // namespace mphpc::serve
