// Server — the transport and threading shell around ServeCore.
//
// Request lifecycle:
//   intake (main thread)   poll()s the shutdown latch's wake fd plus
//                          stdin (stdio mode) or a Unix-domain listener
//                          and its client connections; splits complete
//                          JSONL lines, parses them, and either replies
//                          immediately (parse error -> bad_request,
//                          draining -> shutting_down) or enqueues the
//                          request with its arrival time.
//   queue (two lanes)      bounded; predict/stats ride the priority lane,
//                          feedback the best-effort lane. At capacity the
//                          OLDEST FEEDBACK is shed first (a lost label
//                          costs a little model freshness; a lost predict
//                          stalls a scheduler decision), then the oldest
//                          predict — staleness is worth less than
//                          freshness, and the queue can never grow
//                          without bound.
//   batcher (one thread)   pops up to batch_max requests (predict lane
//                          first), expires those whose deadline passed
//                          (deadline_exceeded), serves the rest through
//                          ServeCore (consecutive predicts share one
//                          compiled batch inference), writes replies, and
//                          kicks the refit thread when feedback has
//                          accumulated.
//   refit (one thread)     runs ServeCore::run_refit off the request
//                          path; a refit failure is logged, never fatal.
//                          With store_poll_s set it also wakes on a timer
//                          and follows the shared store, which is how a
//                          supervised worker converges on a sibling's
//                          published generation.
//
// Supervised-worker mode: the supervisor hands each worker an inherited
// listening fd (listen_fd — the kernel load-balances accepts across
// workers) and the write end of a heartbeat pipe. The intake loop's tick
// writes a heartbeat byte whenever the daemon is provably live — the
// queue is empty or the batcher made progress since the last beat — so a
// worker hung at accept OR wedged mid-reply under load both go silent
// and get SIGKILLed by the supervisor's watchdog.
//
// Shutdown: a SIGINT/SIGTERM (via ShutdownLatch), a shutdown request, or
// EOF stops intake; the batcher drains everything already queued, the
// model is flushed to the store, and run() returns 0 — or 128+signal
// when a signal started the drain, so wrappers can tell "interrupted
// but flushed" from a clean stop. SIGKILL needs no handling here — the
// store's atomic write protocol guarantees a restartable model at
// every instant.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace mphpc::serve {

struct ServerOptions {
  std::string socket_path;     ///< empty: stdio mode (stdin -> stdout)
  int listen_fd = -1;          ///< inherited listener (supervised worker);
                               ///< overrides socket_path, never closed here
  int heartbeat_fd = -1;       ///< liveness pipe to the supervisor (-1: none)
  double store_poll_s = 0.0;   ///< follow the shared store this often (0: off)
  std::string log_tag = "serve";  ///< log-line prefix ("serve.w2" in a fleet)
  std::size_t queue_cap = 1024;
  std::size_t batch_max = 64;
  int deadline_ms = 0;         ///< per-request serve deadline (0 = none)
  std::size_t pool_threads = 0;  ///< inference pool size (0 = hardware)
};

/// A parsed request waiting to be served, with its reply destination.
struct Pending {
  Request request;
  int fd = 1;  ///< reply destination
  std::chrono::steady_clock::time_point arrival{};
};

/// The bounded two-lane intake queue: predict/stats in the priority
/// lane, feedback in the best-effort lane. Shedding at capacity takes
/// the oldest feedback first, then the oldest predict. Plain container
/// — callers (the Server, tests) provide their own locking.
class IntakeQueue {
 public:
  explicit IntakeQueue(std::size_t capacity);

  /// Admits `pending`, shedding and returning a victim when the queue is
  /// at capacity (nullopt otherwise). The new request is always
  /// admitted; the victim is never the request just pushed unless every
  /// older request outranks it.
  [[nodiscard]] std::optional<Pending> push(Pending pending);

  /// Moves up to `max` requests into `out`, priority lane first (so the
  /// batcher's consecutive-predict batching sees unbroken predict runs).
  std::size_t pop_batch(std::size_t max, std::vector<Pending>& out);

  [[nodiscard]] bool empty() const noexcept {
    return predict_.empty() && feedback_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return predict_.size() + feedback_.size();
  }
  [[nodiscard]] std::size_t predict_depth() const noexcept {
    return predict_.size();
  }
  [[nodiscard]] std::size_t feedback_depth() const noexcept {
    return feedback_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Pending> predict_;   ///< predict + stats (priority lane)
  std::deque<Pending> feedback_;  ///< feedback (shed-first lane)
};

/// Creates, binds, and listens on a Unix-domain socket at `path`
/// (unlinking any stale socket first). Returns the listening fd; throws
/// on failure. The supervisor calls this once and forks workers that
/// inherit the fd.
[[nodiscard]] int listen_unix(const std::string& path);

class Server {
 public:
  /// `log` receives human-readable progress lines (nullptr = silent);
  /// protocol replies never go through it.
  Server(ServeCore& core, ServerOptions options, std::ostream* log = nullptr);

  /// Runs the daemon until EOF / shutdown request / SIGINT / SIGTERM,
  /// then drains and returns the process exit code: 0 on a clean drain
  /// (EOF or shutdown request), 128+signal when a signal tripped it.
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    int fd = -1;
    std::string buffer;
    bool discarding = false;  ///< oversized line: drop bytes to next newline
  };

  void log_line(const std::string& message);
  [[nodiscard]] int setup_listener();
  void intake_loop(int listen_fd);
  void maybe_heartbeat();
  bool read_connection(Connection& conn);  ///< false when closed/EOF
  void handle_input_line(int fd, std::string_view line);
  void enqueue(Pending pending);
  void write_reply(int fd, std::string_view reply);

  void batcher_loop();
  void serve_batch(std::vector<Pending>& batch);
  void refit_loop();
  void begin_drain(const char* why);

  /// Reply-fd lifecycle. Every queued Pending holds a reference on its
  /// reply fd, so a disconnect observed by intake cannot close an fd the
  /// batcher still has replies for (close would let accept() recycle the
  /// number and misdeliver those replies). retire_fd() — the disconnect
  /// path — closes immediately when nothing is queued for the fd and
  /// otherwise defers the close to the release_fd() that drops the last
  /// reference. stdio fds (<= 2) are borrowed, never closed.
  void retain_fd(int fd);
  void release_fd(int fd);
  void retire_fd(int fd);

  ServeCore& core_;
  ServerOptions options_;
  std::ostream* log_;
  ThreadPool pool_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  IntakeQueue queue_;
  bool stop_batcher_ = false;
  bool draining_ = false;

  std::mutex refit_mutex_;
  std::condition_variable refit_cv_;
  bool refit_kick_ = false;
  bool stop_refit_ = false;

  std::mutex write_mutex_;
  std::vector<Connection> connections_;

  std::mutex fd_mutex_;
  std::map<int, std::size_t> fd_refs_;  ///< fd -> queued replies
  std::set<int> fd_dead_;  ///< disconnected; close when refs drop to zero

  /// Bumped by the batcher every time it completes a batch; the intake
  /// tick compares against last_batcher_steps_ to decide whether the
  /// daemon has earned a heartbeat.
  std::atomic<unsigned long long> batcher_steps_{0};
  unsigned long long last_batcher_steps_ = 0;
};

}  // namespace mphpc::serve
