// Server — the transport and threading shell around ServeCore.
//
// Request lifecycle:
//   intake (main thread)   poll()s the shutdown latch's wake fd plus
//                          stdin (stdio mode) or a Unix-domain listener
//                          and its client connections; splits complete
//                          JSONL lines, parses them, and either replies
//                          immediately (parse error -> bad_request,
//                          draining -> shutting_down) or enqueues the
//                          request with its arrival time.
//   queue (bounded)        at capacity the OLDEST request is shed with an
//                          `overloaded` reply and the new one admitted —
//                          staleness is worth less than freshness, and
//                          the queue can never grow without bound.
//   batcher (one thread)   pops up to batch_max requests, expires those
//                          whose deadline passed (deadline_exceeded),
//                          serves the rest through ServeCore (consecutive
//                          predicts share one compiled batch inference),
//                          writes replies, and kicks the refit thread
//                          when feedback has accumulated.
//   refit (one thread)     runs ServeCore::run_refit off the request
//                          path; a refit failure is logged, never fatal.
//
// Shutdown: a SIGINT/SIGTERM (via ShutdownLatch), a shutdown request, or
// EOF stops intake; the batcher drains everything already queued, the
// model is flushed to the store, and run() returns 0 — or 128+signal
// when a signal started the drain, so wrappers can tell "interrupted
// but flushed" from a clean stop. SIGKILL needs no handling here — the
// store's atomic write protocol guarantees a restartable model at
// every instant.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace mphpc::serve {

struct ServerOptions {
  std::string socket_path;     ///< empty: stdio mode (stdin -> stdout)
  std::size_t queue_cap = 1024;
  std::size_t batch_max = 64;
  int deadline_ms = 0;         ///< per-request serve deadline (0 = none)
  std::size_t pool_threads = 0;  ///< inference pool size (0 = hardware)
};

class Server {
 public:
  /// `log` receives human-readable progress lines (nullptr = silent);
  /// protocol replies never go through it.
  Server(ServeCore& core, ServerOptions options, std::ostream* log = nullptr);

  /// Runs the daemon until EOF / shutdown request / SIGINT / SIGTERM,
  /// then drains and returns the process exit code: 0 on a clean drain
  /// (EOF or shutdown request), 128+signal when a signal tripped it.
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    int fd = 1;  ///< reply destination
    Clock::time_point arrival{};
  };

  struct Connection {
    int fd = -1;
    std::string buffer;
    bool discarding = false;  ///< oversized line: drop bytes to next newline
  };

  void log_line(const std::string& message);
  [[nodiscard]] int setup_listener();
  void intake_loop(int listen_fd);
  bool read_connection(Connection& conn);  ///< false when closed/EOF
  void handle_input_line(int fd, std::string_view line);
  void enqueue(Pending pending);
  void write_reply(int fd, std::string_view reply);

  void batcher_loop();
  void serve_batch(std::vector<Pending>& batch);
  void refit_loop();
  void begin_drain(const char* why);

  /// Reply-fd lifecycle. Every queued Pending holds a reference on its
  /// reply fd, so a disconnect observed by intake cannot close an fd the
  /// batcher still has replies for (close would let accept() recycle the
  /// number and misdeliver those replies). retire_fd() — the disconnect
  /// path — closes immediately when nothing is queued for the fd and
  /// otherwise defers the close to the release_fd() that drops the last
  /// reference. stdio fds (<= 2) are borrowed, never closed.
  void retain_fd(int fd);
  void release_fd(int fd);
  void retire_fd(int fd);

  ServeCore& core_;
  ServerOptions options_;
  std::ostream* log_;
  ThreadPool pool_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_batcher_ = false;
  bool draining_ = false;

  std::mutex refit_mutex_;
  std::condition_variable refit_cv_;
  bool refit_kick_ = false;
  bool stop_refit_ = false;

  std::mutex write_mutex_;
  std::vector<Connection> connections_;

  std::mutex fd_mutex_;
  std::map<int, std::size_t> fd_refs_;  ///< fd -> queued replies
  std::set<int> fd_dead_;  ///< disconnected; close when refs drop to zero
};

}  // namespace mphpc::serve
