// Crash-safe persistence for the serve daemon's current model.
//
// The store is a SINGLE self-verifying file written with
// atomic_write_text, so there is no multi-file commit protocol to tear:
// a SIGKILL at any instant — including mid-refit — leaves either the
// previous complete model or the new complete model on disk, never a
// mix. The first line is an integrity header
//
//   mphpc-serve-model v1 <generation> <fnv1a64-of-body>
//
// followed by the CrossArchPredictor text form; load() recomputes the
// body hash and refuses a file whose header disagrees (bit rot, manual
// edits). The hash doubles as the model fingerprint reported by the
// stats op and asserted byte-identical by the kill-and-restart test.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/predictor.hpp"

namespace mphpc::serve {

class ModelStore {
 public:
  explicit ModelStore(std::string path);

  struct StoredModel {
    core::CrossArchPredictor predictor;
    std::string fingerprint;  ///< fnv1a64 of the serialized model body
    long long generation = 0;
  };

  /// Loads the stored model. Returns nullopt when no store file exists;
  /// throws ParseError on a present-but-invalid file (bad header,
  /// fingerprint mismatch, unparseable model) so the caller can decide
  /// whether a bootstrap fallback is available.
  [[nodiscard]] std::optional<StoredModel> load() const;

  /// Atomically persists `predictor` as generation `generation`; returns
  /// the fingerprint written into the header.
  std::string store(const core::CrossArchPredictor& predictor,
                    long long generation) const;

  /// Fingerprint of a serialized model body (fnv1a64, formatted as the
  /// 16-digit hex the header and stats op use).
  [[nodiscard]] static std::string fingerprint_of(std::string_view body);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace mphpc::serve
