// Crash-safe persistence for the serve daemon's current model.
//
// The store is a SINGLE self-verifying file written with
// atomic_write_text, so there is no multi-file commit protocol to tear:
// a SIGKILL at any instant — including mid-refit — leaves either the
// previous complete model or the new complete model on disk, never a
// mix. The first line is an integrity header
//
//   mphpc-serve-model v1 <generation> <fnv1a64-of-body>
//
// followed by the CrossArchPredictor text form; load() recomputes the
// body hash and refuses a file whose header disagrees (bit rot, manual
// edits). The hash doubles as the model fingerprint reported by the
// stats op and asserted byte-identical by the kill-and-restart test.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/predictor.hpp"

namespace mphpc::serve {

class ModelStore {
 public:
  explicit ModelStore(std::string path);

  struct StoredModel {
    core::CrossArchPredictor predictor;
    std::string fingerprint;  ///< fnv1a64 of the serialized model body
    long long generation = 0;
  };

  struct Header {
    long long generation = 0;
    std::string fingerprint;
  };

  /// Loads the stored model. Returns nullopt when no store file exists;
  /// throws ParseError on a present-but-invalid file (bad header,
  /// fingerprint mismatch, unparseable model) so the caller can decide
  /// whether a bootstrap fallback is available.
  [[nodiscard]] std::optional<StoredModel> load() const;

  /// Reads just the first line — (generation, fingerprint) — without
  /// parsing or verifying the body. This is the cheap poll multi-worker
  /// followers use to notice a leader's publish; a follower that sees a
  /// new header does the full (verifying) load() before swapping, so a
  /// torn read here costs a retry, never a bad model. Returns nullopt
  /// when no store file exists; throws ParseError on a malformed header.
  [[nodiscard]] std::optional<Header> peek_header() const;

  /// Atomically persists `predictor` as generation `generation`; returns
  /// the fingerprint written into the header.
  std::string store(const core::CrossArchPredictor& predictor,
                    long long generation) const;

  /// Fingerprint of a serialized model body (fnv1a64, formatted as the
  /// 16-digit hex the header and stats op use).
  [[nodiscard]] static std::string fingerprint_of(std::string_view body);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Advisory refit lease for a multi-worker fleet sharing one ModelStore.
///
/// At most one worker should burn CPU refitting at a time, so workers
/// elect a refitter through a lock file next to the store: acquisition
/// is open(O_CREAT|O_EXCL) — atomic on every POSIX filesystem — with the
/// holder's identity written as the file content for the stats op. The
/// holder refreshes the lease mtime while refitting; a candidate that
/// finds the file older than `ttl_s` declares the holder dead (crashed
/// mid-refit, SIGKILLed) and takes over by unlinking and re-racing the
/// O_EXCL create, which leaves exactly one winner.
///
/// The lease is an OPTIMIZATION, not a correctness boundary: store
/// writes are atomic and monotone in generation, so two simultaneous
/// refitters (possible across a stale takeover) waste cycles but cannot
/// tear state — followers converge on whichever generation landed last.
class RefitLease {
 public:
  /// A null lease: try_acquire() always succeeds, nothing touches disk.
  /// Single-process serving uses this so the code path is uniform.
  RefitLease() = default;

  /// A real lease at `path` (conventionally `<state_dir>/refit.lease`)
  /// identifying this process as `holder`; a holder silent for `ttl_s`
  /// seconds is considered dead.
  RefitLease(std::string path, std::string holder, double ttl_s);

  ~RefitLease();
  RefitLease(const RefitLease&) = delete;
  RefitLease& operator=(const RefitLease&) = delete;
  RefitLease(RefitLease&& other) noexcept;
  RefitLease& operator=(RefitLease&& other) noexcept;

  /// Tries to become the refitter. Returns true on success (including
  /// re-entry while already held). Takes over a stale holder.
  [[nodiscard]] bool try_acquire();

  /// Bumps the lease mtime so long refits aren't mistaken for death.
  /// No-op unless held.
  void refresh() noexcept;

  /// Releases the lease (unlinks the file). No-op unless held.
  void release() noexcept;

  [[nodiscard]] bool held() const noexcept { return held_; }
  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
  [[nodiscard]] const std::string& holder() const noexcept { return holder_; }

  /// The current holder's identity as recorded in the lease file, or ""
  /// when no lease file exists (idle fleet / null lease).
  [[nodiscard]] std::string read_holder() const;

 private:
  [[nodiscard]] bool create_exclusive();
  [[nodiscard]] double age_s() const;

  std::string path_;
  std::string holder_;
  double ttl_s_ = 30.0;
  bool held_ = false;
};

}  // namespace mphpc::serve
