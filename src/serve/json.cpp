#include "serve/json.hpp"

#include <cstddef>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace mphpc::serve {

namespace {

/// Deepest permitted nesting of arrays/objects. The protocol needs three
/// levels; the cap exists so "[[[[..." from a client is an error, not a
/// stack overflow.
constexpr int kMaxDepth = 64;

bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

/// Recursive-descent parser over a string_view; tracks a byte position
/// for error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) noexcept {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) noexcept {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n': return null_value();
      default: return number_value();
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string_token();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.items_.push_back(value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    v.string_ = parse_string_token();
    return v;
  }

  JsonValue bool_value() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    if (consume_word("true")) {
      v.bool_ = true;
    } else if (consume_word("false")) {
      v.bool_ = false;
    } else {
      fail("invalid literal");
    }
    return v;
  }

  JsonValue null_value() {
    if (!consume_word("null")) fail("invalid literal");
    return JsonValue{};
  }

  JsonValue number_value() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    try {
      v.number_ = parse_double(text_.substr(start, pos_ - start));
    } catch (const ParseError&) {
      fail("invalid number '" + std::string(text_.substr(start, pos_ - start)) + "'");
    }
    return v;
  }

  /// Parses a quoted string with escapes (\" \\ \/ \b \f \n \r \t \uXXXX;
  /// basic-plane \u only — the protocol is ASCII identifiers + free-text
  /// error strings).
  std::string parse_string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // UTF-8 encode (surrogates pass through as-is; the protocol never
    // emits them, and a lone surrogate still round-trips as bytes).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0U | (code >> 6U));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    } else {
      out += static_cast<char>(0xE0U | (code >> 12U));
      out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  MPHPC_EXPECTS(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  MPHPC_EXPECTS(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  MPHPC_EXPECTS(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  MPHPC_EXPECTS(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  MPHPC_EXPECTS(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace mphpc::serve
