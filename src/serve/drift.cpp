#include "serve/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace mphpc::serve {

DriftDetector::DriftDetector(DriftOptions options) : options_(options) {
  MPHPC_EXPECTS(options.window >= 1);
  MPHPC_EXPECTS(options.recover_mae > 0.0 &&
                options.recover_mae < options.trip_mae);
  errors_.assign(options_.window, 0.0);
}

double DriftDetector::rolling_mae() const noexcept {
  if (count_ == 0) return 0.0;
  // Recomputed from the buffer in fixed order rather than kept as a
  // running sum: the window is small and this keeps the mean exactly
  // reproducible regardless of how many observations ever flowed through.
  double sum = 0.0;
  for (std::size_t i = 0; i < count_; ++i) sum += errors_[i];
  return sum / static_cast<double>(count_);
}

DriftDetector::State DriftDetector::observe(double abs_error) {
  MPHPC_EXPECTS(std::isfinite(abs_error) && abs_error >= 0.0);
  errors_[head_] = abs_error;
  head_ = (head_ + 1) % options_.window;
  if (count_ < options_.window) ++count_;

  // State transitions only consider a full window: a handful of bad (or
  // good) observations right after startup must not flip the service.
  if (count_ == options_.window) {
    const double mae = rolling_mae();
    if (state_ == State::kHealthy && mae > options_.trip_mae) {
      state_ = State::kTripped;
      ++trips_;
    } else if (state_ == State::kTripped && mae < options_.recover_mae) {
      state_ = State::kHealthy;
      ++recoveries_;
    }
  }
  return state_;
}

DriftMap::DriftMap(DriftMapOptions options)
    : options_(options), app_options_(options.global), global_(options.global) {
  if (options_.app_window == 0) {
    options_.app_window = std::max<std::size_t>(4, options_.global.window / 4);
  }
  app_options_.window = options_.app_window;
}

DriftMap::Entry* DriftMap::touch(std::string_view app) {
  if (options_.max_apps == 0) return nullptr;
  const auto found = index_.find(std::string(app));
  if (found != index_.end()) {
    lru_.splice(lru_.begin(), lru_, found->second);
    return &*found->second;
  }
  if (lru_.size() >= options_.max_apps) {
    // Evict the coldest app. Its history (trips included) is forgotten;
    // the global detector is what keeps covering it from now on.
    index_.erase(lru_.back().app);
    lru_.pop_back();
  }
  lru_.push_front(Entry{std::string(app), DriftDetector(app_options_)});
  index_.emplace(lru_.front().app, lru_.begin());
  return &lru_.front();
}

DriftMap::Outcome DriftMap::observe(std::string_view app, double abs_error) {
  Entry* entry = touch(app);
  bool quarantined = false;
  if (entry != nullptr) {
    // Feed the app detector first so an observation that trips the app
    // is itself kept OUT of the global window (quarantine includes the
    // tripping sample's successors; the pre-trip samples already
    // contributed, which is what lets genuinely global drift still trip
    // the fleet detector).
    entry->detector.observe(abs_error);
    quarantined = entry->detector.tripped();
  }
  if (!quarantined) global_.observe(abs_error);
  return Outcome{global_.tripped(), quarantined};
}

bool DriftMap::degraded(std::string_view app) const {
  return global_.tripped() || app_tripped(app);
}

bool DriftMap::app_tripped(std::string_view app) const {
  const auto found = index_.find(std::string(app));
  return found != index_.end() && found->second->detector.tripped();
}

std::size_t DriftMap::apps_tripped() const {
  std::size_t tripped = 0;
  for (const Entry& entry : lru_) {
    if (entry.detector.tripped()) ++tripped;
  }
  return tripped;
}

std::vector<std::string> DriftMap::tripped_apps() const {
  std::vector<std::string> apps;
  for (const Entry& entry : lru_) {
    if (entry.detector.tripped()) apps.push_back(entry.app);
  }
  return apps;
}

}  // namespace mphpc::serve
