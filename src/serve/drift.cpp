#include "serve/drift.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mphpc::serve {

DriftDetector::DriftDetector(DriftOptions options) : options_(options) {
  MPHPC_EXPECTS(options.window >= 1);
  MPHPC_EXPECTS(options.recover_mae > 0.0 &&
                options.recover_mae < options.trip_mae);
  errors_.assign(options_.window, 0.0);
}

double DriftDetector::rolling_mae() const noexcept {
  if (count_ == 0) return 0.0;
  // Recomputed from the buffer in fixed order rather than kept as a
  // running sum: the window is small and this keeps the mean exactly
  // reproducible regardless of how many observations ever flowed through.
  double sum = 0.0;
  for (std::size_t i = 0; i < count_; ++i) sum += errors_[i];
  return sum / static_cast<double>(count_);
}

DriftDetector::State DriftDetector::observe(double abs_error) {
  MPHPC_EXPECTS(std::isfinite(abs_error) && abs_error >= 0.0);
  errors_[head_] = abs_error;
  head_ = (head_ + 1) % options_.window;
  if (count_ < options_.window) ++count_;

  // State transitions only consider a full window: a handful of bad (or
  // good) observations right after startup must not flip the service.
  if (count_ == options_.window) {
    const double mae = rolling_mae();
    if (state_ == State::kHealthy && mae > options_.trip_mae) {
      state_ = State::kTripped;
      ++trips_;
    } else if (state_ == State::kTripped && mae < options_.recover_mae) {
      state_ = State::kHealthy;
      ++recoveries_;
    }
  }
  return state_;
}

}  // namespace mphpc::serve
