// Minimal JSON parser for the serve protocol.
//
// `mphpc serve` reads newline-delimited JSON requests from untrusted
// clients, so the parser must never crash on malformed input: every
// syntax error throws ParseError with a position, which the server turns
// into a structured error reply. The writer side reuses common
// JsonWriter; this is the matching read side, covering exactly the JSON
// the protocol needs (objects, arrays, strings, numbers, bools, null)
// with a recursion-depth cap so a hostile request cannot blow the stack.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mphpc::serve {

/// An immutable parsed JSON value. Object members preserve source order
/// (lookups are linear — protocol objects are small by construction).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document; trailing non-whitespace is an
  /// error. Throws ParseError (with a byte offset) on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; ContractViolation on a kind mismatch (protocol code
  /// checks kinds first and reports its own, friendlier errors).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup (first match); nullptr when absent or when this
  /// value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // arrays
  std::vector<std::pair<std::string, JsonValue>> members_;  // objects
};

}  // namespace mphpc::serve
