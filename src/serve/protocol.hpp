// The `mphpc serve` wire protocol: newline-delimited JSON requests and
// replies (one object per line).
//
// Requests (client -> daemon):
//   {"op":"predict","id":"p1","profile":{...}}        -> RPV prediction
//   {"op":"feedback","id":"f1","profile":{...},
//    "times":{"quartz":10.0,"ruby":8.0,...}}          -> training feedback
//   {"op":"stats","id":"s1"}                          -> service counters
//   {"op":"shutdown","id":"q1"}                       -> drain and exit
//
// The profile object carries the run's identity, resources, and raw
// hardware counters keyed by their snake_case kind names (see
// arch/counter_names.hpp); `total_instructions` must be positive because
// every intensity feature divides by it.
//
// Replies (daemon -> client) echo the request id:
//   {"id":"p1","ok":true,"op":"predict","rpv":[...],"fastest":"ruby",
//    "fallback":false}
//   {"id":"f1","ok":false,"code":"bad_request","error":"..."}
// Error codes: bad_request, overloaded, deadline_exceeded, shutting_down,
// internal.
#pragma once

#include <string>
#include <string_view>

#include "core/rpv.hpp"
#include "sim/profiler.hpp"

namespace mphpc::serve {

enum class Op { kPredict, kFeedback, kStats, kShutdown };

[[nodiscard]] std::string_view to_string(Op op) noexcept;

/// One parsed request. `times` is meaningful for feedback only.
struct Request {
  Op op = Op::kPredict;
  std::string id;
  sim::RunProfile profile;
  core::SystemTimes times{};
};

/// Parses one request line. Throws ParseError with a client-safe message
/// on any malformed or semantically invalid input (unknown op, missing
/// profile fields, non-positive counters/times, ...).
[[nodiscard]] Request parse_request(std::string_view line);

/// Success reply for a predict request (single line, no newline).
[[nodiscard]] std::string predict_reply(std::string_view id, const core::Rpv& rpv,
                                        bool fallback);

/// Success reply for a feedback request: acknowledges ingestion and
/// reports the drift state the observation left behind.
[[nodiscard]] std::string feedback_reply(std::string_view id, bool degraded,
                                         double rolling_mae);

/// Error reply (single line, no newline). `code` is one of the protocol
/// error codes listed above.
[[nodiscard]] std::string error_reply(std::string_view id, std::string_view code,
                                      std::string_view message);

}  // namespace mphpc::serve
