// Prediction-drift detection for the online service (two-state machine
// with hysteresis).
//
// Every feedback observation contributes one scalar: the mean absolute
// error between the RPV the current model predicts for the completed run
// and the RPV its measured times imply. The detector keeps the last
// `window` errors in a ring buffer; when the window is full and the
// rolling mean exceeds `trip_mae`, the service trips into degraded mode
// (predictions fall back to neutral, refits freeze so the model cannot
// learn from the suspect data). It recovers only once the rolling mean —
// still tracked against the frozen model — drops below the strictly
// lower `recover_mae`, so a stream hovering near the threshold cannot
// flap the service between modes.
//
// DriftMap layers per-app isolation on top: each app name gets its own
// (smaller-window) detector from a bounded LRU, so one misbehaving
// workload degrades only its own predictions while the global detector
// — fed by the NON-tripped apps — still guards the fleet as a whole and
// covers apps evicted from (or never admitted to) the map.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mphpc::serve {

struct DriftOptions {
  std::size_t window = 64;   ///< rolling-error window (observations)
  double trip_mae = 0.75;    ///< full-window mean abs error that trips
  double recover_mae = 0.35; ///< hysteresis: recover below this (< trip)
};

class DriftDetector {
 public:
  enum class State { kHealthy, kTripped };

  explicit DriftDetector(DriftOptions options = {});

  /// Records one |prediction - truth| observation and returns the state
  /// it leaves the detector in. Not thread-safe; the service serializes
  /// feedback in arrival order.
  State observe(double abs_error);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool tripped() const noexcept { return state_ == State::kTripped; }

  /// Mean of the errors currently in the window (0 when empty).
  [[nodiscard]] double rolling_mae() const noexcept;
  [[nodiscard]] std::size_t samples() const noexcept { return count_; }
  [[nodiscard]] long long trips() const noexcept { return trips_; }
  [[nodiscard]] long long recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] const DriftOptions& options() const noexcept { return options_; }

 private:
  DriftOptions options_;
  std::vector<double> errors_;  ///< ring buffer, capacity options_.window
  std::size_t head_ = 0;        ///< next slot to overwrite
  std::size_t count_ = 0;       ///< valid entries (<= window)
  State state_ = State::kHealthy;
  long long trips_ = 0;
  long long recoveries_ = 0;
};

struct DriftMapOptions {
  DriftOptions global;       ///< the fleet-wide fallback detector
  std::size_t max_apps = 64; ///< LRU bound on per-app detectors (0 = global-only)
  /// Per-app window; 0 derives max(4, global.window / 4), so a single
  /// bad app trips its own detector well before it could fill the
  /// global window.
  std::size_t app_window = 0;
};

/// Per-app drift detectors over a global fallback.
///
/// Semantics, chosen so one poisoned workload cannot sink the fleet:
///  - Every observation feeds the app's own detector (created on first
///    sight, LRU-evicted past `max_apps`).
///  - An observation feeds the GLOBAL detector only while its app is
///    not tripped ("quarantine"): once app A trips, its garbage errors
///    stop dragging the global mean up, so apps B..Z stay healthy. The
///    app keeps observing its own stream and rejoins the global pool
///    after it recovers.
///  - `degraded(app)` is the OR of the global state and the app state —
///    the global detector still covers evicted/unseen apps and genuine
///    fleet-wide drift (many apps degrading at once trips global before
///    any single small app window fills).
///
/// With max_apps == 0 the map degenerates to exactly the single global
/// detector (the pre-multi-app behavior, kept for the legacy tests and
/// the --drift-max-apps 0 escape hatch).
class DriftMap {
 public:
  explicit DriftMap(DriftMapOptions options = {});

  struct Outcome {
    bool global_tripped = false;
    bool app_tripped = false;
  };

  /// Records one observation attributed to `app`. Not thread-safe; the
  /// service serializes feedback in arrival order.
  Outcome observe(std::string_view app, double abs_error);

  /// Should predictions for `app` fall back to neutral?
  [[nodiscard]] bool degraded(std::string_view app) const;

  /// Has `app` itself tripped? (false for unseen/evicted apps even while
  /// the global detector is tripped — callers use this to tell "your
  /// workload drifted" from "the fleet drifted").
  [[nodiscard]] bool app_tripped(std::string_view app) const;

  [[nodiscard]] const DriftDetector& global() const noexcept { return global_; }
  [[nodiscard]] std::size_t apps_tracked() const noexcept { return lru_.size(); }
  [[nodiscard]] std::size_t apps_tripped() const;
  /// Names of currently tripped apps, in most-recently-used order.
  [[nodiscard]] std::vector<std::string> tripped_apps() const;
  [[nodiscard]] const DriftMapOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    std::string app;
    DriftDetector detector;
  };

  /// Returns the entry for `app`, creating (and LRU-evicting) as needed;
  /// nullptr when per-app tracking is disabled.
  Entry* touch(std::string_view app);

  DriftMapOptions options_;
  DriftOptions app_options_;  ///< global options with the app window
  DriftDetector global_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace mphpc::serve
