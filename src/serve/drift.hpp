// Prediction-drift detection for the online service (two-state machine
// with hysteresis).
//
// Every feedback observation contributes one scalar: the mean absolute
// error between the RPV the current model predicts for the completed run
// and the RPV its measured times imply. The detector keeps the last
// `window` errors in a ring buffer; when the window is full and the
// rolling mean exceeds `trip_mae`, the service trips into degraded mode
// (predictions fall back to neutral, refits freeze so the model cannot
// learn from the suspect data). It recovers only once the rolling mean —
// still tracked against the frozen model — drops below the strictly
// lower `recover_mae`, so a stream hovering near the threshold cannot
// flap the service between modes.
#pragma once

#include <cstddef>
#include <vector>

namespace mphpc::serve {

struct DriftOptions {
  std::size_t window = 64;   ///< rolling-error window (observations)
  double trip_mae = 0.75;    ///< full-window mean abs error that trips
  double recover_mae = 0.35; ///< hysteresis: recover below this (< trip)
};

class DriftDetector {
 public:
  enum class State { kHealthy, kTripped };

  explicit DriftDetector(DriftOptions options = {});

  /// Records one |prediction - truth| observation and returns the state
  /// it leaves the detector in. Not thread-safe; the service serializes
  /// feedback in arrival order.
  State observe(double abs_error);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool tripped() const noexcept { return state_ == State::kTripped; }

  /// Mean of the errors currently in the window (0 when empty).
  [[nodiscard]] double rolling_mae() const noexcept;
  [[nodiscard]] std::size_t samples() const noexcept { return count_; }
  [[nodiscard]] long long trips() const noexcept { return trips_; }
  [[nodiscard]] long long recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] const DriftOptions& options() const noexcept { return options_; }

 private:
  DriftOptions options_;
  std::vector<double> errors_;  ///< ring buffer, capacity options_.window
  std::size_t head_ = 0;        ///< next slot to overwrite
  std::size_t count_ = 0;       ///< valid entries (<= window)
  State state_ = State::kHealthy;
  long long trips_ = 0;
  long long recoveries_ = 0;
};

}  // namespace mphpc::serve
