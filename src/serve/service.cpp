#include "serve/service.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include <unistd.h>

#include "common/contract.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "serve/fault_inject.hpp"

namespace mphpc::serve {

namespace {

DriftMapOptions drift_map_options(const ServeOptions& options) {
  DriftMapOptions map;
  map.global = options.drift;
  map.max_apps = options.drift_max_apps;
  map.app_window = options.drift_app_window;
  return map;
}

RefitLease make_lease(const ServeOptions& options) {
  if (!options.use_lease) return RefitLease{};
  return RefitLease(options.state_dir + "/refit.lease",
                    "worker-" + std::to_string(options.worker_id) + " pid " +
                        std::to_string(::getpid()),
                    options.lease_ttl_s);
}

}  // namespace

ServeCore::ServeCore(ServeOptions options)
    : options_(std::move(options)),
      store_(options_.state_dir + "/serve_model.txt"),
      lease_(make_lease(options_)),
      drift_(drift_map_options(options_)) {
  MPHPC_EXPECTS(!options_.state_dir.empty());
  MPHPC_EXPECTS(options_.window_capacity >= 1 && options_.min_refit_rows >= 1);
  MPHPC_EXPECTS(options_.refit_rounds >= 1 && options_.cold_rounds >= 1);
  MPHPC_EXPECTS(options_.max_model_rounds >= 1);
  bootstrap();
}

void ServeCore::bootstrap() {
  // The store is the survivor of the last run and always wins: after a
  // crash the daemon must come back serving exactly the model it last
  // persisted, not the (older) --model file.
  std::optional<ModelStore::StoredModel> stored;
  try {
    stored = store_.load();
  } catch (const std::exception& e) {
    bootstrap_note_ = std::string("model store unusable (") + e.what() + ")";
  }
  if (stored.has_value()) {
    generation_ = stored->generation;
    fingerprint_ = std::move(stored->fingerprint);
    stored->predictor.set_quantized(options_.quantize);
    guard_ = core::GuardedPredictor(std::move(stored->predictor), options_.bounds);
    return;
  }
  if (options_.model_path.empty()) {
    throw std::runtime_error(
        "serve: no model to serve: state dir has no stored model" +
        (bootstrap_note_.empty() ? std::string() : " (" + bootstrap_note_ + ")") +
        " and no --model was given");
  }
  // Seed the store immediately so a SIGKILL before the first refit still
  // restarts from a persisted generation 0.
  core::CrossArchPredictor seeded = core::CrossArchPredictor::load(options_.model_path);
  seeded.set_quantized(options_.quantize);
  generation_ = 0;
  fingerprint_ = store_.store(seeded, generation_);
  guard_ = core::GuardedPredictor(std::move(seeded), options_.bounds);
}

std::string ServeCore::handle_line(std::string_view line, ThreadPool* pool) {
  MPHPC_EXPECTS(pool == nullptr || pool->size() >= 1);
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    return error_reply("", "bad_request", e.what());
  }
  return handle_request(request, pool);
}

std::string ServeCore::handle_request(const Request& request, ThreadPool* pool) {
  MPHPC_EXPECTS(pool == nullptr || pool->size() >= 1);
  try {
    switch (request.op) {
      case Op::kPredict: {
        std::vector<std::uint8_t> fallback;
        std::vector<core::Rpv> rpvs = guard_.predict_rpvs(
            std::span<const sim::RunProfile>(&request.profile, 1), pool,
            &fallback);
        apply_app_degrade(request.profile, rpvs.front(), fallback.front());
        predicts_.fetch_add(1, std::memory_order_relaxed);
        return predict_reply(request.id, rpvs.front(), fallback.front() != 0);
      }
      case Op::kFeedback:
        return handle_feedback(request);
      case Op::kStats:
        return stats_reply(request.id);
      case Op::kShutdown:
        return shutdown_reply(request.id);
    }
    return error_reply(request.id, "internal", "unhandled op");
  } catch (const std::exception& e) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    return error_reply(request.id, "internal", e.what());
  }
}

std::vector<std::string> ServeCore::handle_requests(
    std::span<const Request> requests, ThreadPool* pool) {
  MPHPC_EXPECTS(pool == nullptr || pool->size() >= 1);
  std::vector<std::string> replies(requests.size());
  std::size_t i = 0;
  while (i < requests.size()) {
    if (requests[i].op != Op::kPredict) {
      replies[i] = handle_request(requests[i], pool);
      ++i;
      continue;
    }
    // Batch the run of consecutive predicts through one compiled predict.
    std::size_t j = i;
    std::vector<sim::RunProfile> profiles;
    while (j < requests.size() && requests[j].op == Op::kPredict) {
      profiles.push_back(requests[j].profile);
      ++j;
    }
    std::vector<std::uint8_t> fallback;
    std::vector<core::Rpv> rpvs;
    try {
      rpvs = guard_.predict_rpvs(profiles, pool, &fallback);
      predicts_.fetch_add(static_cast<long long>(profiles.size()),
                          std::memory_order_relaxed);
      for (std::size_t k = 0; k < profiles.size(); ++k) {
        apply_app_degrade(profiles[k], rpvs[k], fallback[k]);
        replies[i + k] =
            predict_reply(requests[i + k].id, rpvs[k], fallback[k] != 0);
      }
    } catch (const std::exception& e) {
      request_errors_.fetch_add(static_cast<long long>(profiles.size()),
                                std::memory_order_relaxed);
      for (std::size_t k = 0; k < profiles.size(); ++k) {
        replies[i + k] = error_reply(requests[i + k].id, "internal", e.what());
      }
    }
    i = j;
  }
  return replies;
}

void ServeCore::apply_app_degrade(const sim::RunProfile& profile,
                                  core::Rpv& rpv, std::uint8_t& fallback) {
  if (options_.drift_max_apps == 0 || fallback != 0) return;
  bool tripped = false;
  {
    const std::lock_guard lock(drift_mutex_);
    tripped = drift_.app_tripped(profile.app);
  }
  if (!tripped) return;
  // This app's own drift detector tripped while the fleet stayed
  // healthy: degrade just its predictions to the neutral RPV, exactly
  // the fallback a globally tripped guard would produce.
  rpv = core::neutral_rpv();
  fallback = 1;
  app_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

std::string ServeCore::handle_feedback(const Request& request) {
  const core::Rpv target =
      core::Rpv::relative_to(request.times, request.profile.system);
  const auto model = guard_.snapshot();
  feedbacks_.fetch_add(1, std::memory_order_relaxed);
  if (model == nullptr || !model->trained()) {
    // No model to compare against or learn on top of — acknowledge, but
    // there is nothing to window.
    return feedback_reply(request.id, !guard_.healthy(), 0.0);
  }

  // Shadow-predict against the current (possibly frozen) model: while the
  // guard is forced degraded this error stream is exactly what decides
  // recovery, so it must keep flowing.
  const core::Rpv predicted = model->predict(request.profile);
  double err = 0.0;
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
    err += std::abs(predicted[k] - target[k]);
  }
  err /= static_cast<double>(arch::kNumSystems);

  const auto features = model->pipeline().features(request.profile);
  WindowRow row;
  row.x = features;
  row.y = target.values();

  bool degraded_now = false;
  bool quarantined = false;
  double mae_now = 0.0;
  {
    const std::lock_guard lock(drift_mutex_);
    // Forced-degraded (and the refit freeze) follow the GLOBAL detector
    // only; a single tripped app quarantines itself without dragging the
    // fleet into neutral predictions.
    const bool was_tripped = drift_.global().tripped();
    const DriftMap::Outcome outcome = drift_.observe(request.profile.app, err);
    mae_now = drift_.global().rolling_mae();
    if (!was_tripped && outcome.global_tripped) {
      guard_.set_forced_degraded(
          true, "drift tripped: rolling MAE " + format_double(mae_now) +
                    " over " + std::to_string(drift_.global().samples()) +
                    " completions");
    } else if (was_tripped && !outcome.global_tripped) {
      guard_.set_forced_degraded(false);
    }
    quarantined = outcome.app_tripped;
    degraded_now = guard_.forced_degraded() || quarantined;
  }
  if (!quarantined) {
    // A tripped app's rows are kept OUT of the refit window: learning
    // from a drifting workload's labels is how one bad app poisons
    // everyone else's model.
    const std::lock_guard lock(mutex_);
    window_.push_back(row);
    while (window_.size() > options_.window_capacity) window_.pop_front();
    ++pending_feedback_;
  }
  return feedback_reply(request.id, degraded_now, mae_now);
}

bool ServeCore::refit_pending() const {
  if (options_.refit_every == 0) return false;
  {
    const std::lock_guard lock(drift_mutex_);
    if (drift_.global().tripped()) return false;
  }
  const std::lock_guard lock(mutex_);
  return pending_feedback_ >= options_.refit_every &&
         window_.size() >= options_.min_refit_rows;
}

bool ServeCore::run_refit(ThreadPool* pool) {
  MPHPC_EXPECTS(options_.refit_rounds >= 1 && options_.cold_rounds >= 1);
  if (!refit_pending()) return false;
  // Fleet mode: converge on the newest published generation first so a
  // warm refit extends the leader's latest model, not a stale one, then
  // take (or fail to take) the refit lease. A non-holder simply keeps
  // its window and tries again next tick — by then either the holder
  // published (follow_store picks it up) or died (TTL takeover).
  if (lease_.enabled()) {
    (void)follow_store();
    if (!lease_.try_acquire()) return false;
  }
  // Release the lease on every exit from here on, including throws from
  // persistence — a lease that outlives its refit blocks the fleet for a
  // full TTL.
  struct LeaseGuard {
    RefitLease& lease;
    ~LeaseGuard() { lease.release(); }
  } lease_guard{lease_};

  const auto snapshot = guard_.snapshot();
  if (snapshot == nullptr || !snapshot->trained()) return false;

  ml::Matrix x;
  ml::Matrix y;
  long long next_generation = 0;
  {
    const std::lock_guard lock(mutex_);
    const std::size_t n = window_.size();
    x = ml::Matrix(n, core::FeaturePipeline::kNumFeatures);
    y = ml::Matrix(n, arch::kNumSystems);
    for (std::size_t r = 0; r < n; ++r) {
      const WindowRow& row = window_[r];
      for (std::size_t c = 0; c < row.x.size(); ++c) x(r, c) = row.x[c];
      for (std::size_t c = 0; c < row.y.size(); ++c) y(r, c) = row.y[c];
    }
    pending_feedback_ = 0;
    next_generation = generation_ + 1;
  }

  // Fault point: a crash here loses this refit's work but no state — the
  // store still holds the previous generation.
  fault_point(FaultSite::kMidRefit);

  core::CrossArchPredictor next = *snapshot;
  if (next.model().rounds_completed() + options_.refit_rounds >
      options_.max_model_rounds) {
    // Generational compaction: the ensemble hit its round budget, so
    // rebuild from scratch on the current window instead of growing
    // without bound. Seed derives from the generation so each rebuild is
    // deterministic and distinct.
    ml::GbtOptions opt = next.model().options();
    opt.n_rounds = options_.cold_rounds;
    opt.seed = derive_seed(opt.seed, "serve-cold",
                           static_cast<std::uint64_t>(next_generation));
    ml::GbtRegressor fresh(opt);
    fresh.fit(x, y, pool);
    next = core::CrossArchPredictor::from_parts(snapshot->pipeline(),
                                                std::move(fresh));
  } else {
    next.warm_refit(x, y, options_.refit_rounds, pool);
  }
  // A compaction rebuild comes back with default compile options; keep
  // every published generation on the configured engine.
  next.set_quantized(options_.quantize);

  // The fit can be long; prove the lease holder is still alive before
  // publishing so a slow refit isn't mistaken for a dead one.
  lease_.refresh();

  // Fault point: the new model is fit but NOT yet persisted or
  // published. A crash here must leave the store byte-identical to the
  // previous generation — the property FaultInjectTest asserts.
  fault_point(FaultSite::kPrePublish);

  // Persist BEFORE publishing: if the process dies between these two
  // statements the store already holds the new generation; if it dies
  // before the store write, the old generation still serves. Either way
  // a restart loads a complete model.
  std::string fingerprint = store_.store(next, next_generation);
  guard_.swap_model(std::move(next));
  {
    const std::lock_guard lock(mutex_);
    generation_ = next_generation;
    fingerprint_ = std::move(fingerprint);
  }
  refits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ServeCore::follow_store() noexcept {
  try {
    const auto header = store_.peek_header();
    if (!header.has_value()) return false;
    {
      const std::lock_guard lock(mutex_);
      if (header->generation == generation_ &&
          header->fingerprint == fingerprint_) {
        return false;
      }
    }
    // The header moved: someone else published. Do the full verifying
    // load OUTSIDE the lock (it parses a whole model), then re-check —
    // losing a race here just means we adopt the even-newer state.
    auto stored = store_.load();
    if (!stored.has_value()) return false;
    {
      const std::lock_guard lock(mutex_);
      if (stored->generation == generation_ &&
          stored->fingerprint == fingerprint_) {
        return false;
      }
      generation_ = stored->generation;
      fingerprint_ = std::move(stored->fingerprint);
    }
    stored->predictor.set_quantized(options_.quantize);
    guard_.swap_model(std::move(stored->predictor));
    reloads_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception&) {
    // A corrupt or vanishing store is not fatal to a follower — it keeps
    // serving its current model and retries on the next poll.
    return false;
  }
}

void ServeCore::flush() {
  const auto snapshot = guard_.snapshot();
  if (snapshot == nullptr || !snapshot->trained()) return;
  long long generation = 0;
  {
    const std::lock_guard lock(mutex_);
    generation = generation_;
  }
  if (lease_.enabled()) {
    // A draining fleet member must not roll the store back: skip the
    // write when the store already holds our generation or newer.
    try {
      const auto header = store_.peek_header();
      if (header.has_value() && header->generation >= generation) return;
    } catch (const std::exception&) {
      // Unreadable header: fall through and repair the store.
    }
  }
  (void)store_.store(*snapshot, generation);
}

long long ServeCore::generation() const {
  const std::lock_guard lock(mutex_);
  return generation_;
}

std::string ServeCore::fingerprint() const {
  const std::lock_guard lock(mutex_);
  return fingerprint_;
}

std::string ServeCore::stats_reply(std::string_view id) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "stats");
  w.field("healthy", guard_.healthy());
  w.field("degraded", guard_.forced_degraded());
  {
    const auto uptime = std::chrono::steady_clock::now() - started_;
    w.field("uptime_s", std::chrono::duration<double>(uptime).count());
  }
  w.field("worker_id", options_.worker_id);
  w.field("restarts_observed", options_.restarts_observed);
  {
    const std::lock_guard lock(mutex_);
    w.field("generation", generation_);
    w.field("fingerprint", fingerprint_);
    w.field("window_rows", window_.size());
  }
  {
    const std::lock_guard lock(drift_mutex_);
    w.begin_object("drift");
    w.field("state", drift_.global().tripped() ? "tripped" : "healthy");
    w.field("rolling_mae", drift_.global().rolling_mae());
    w.field("samples", drift_.global().samples());
    w.field("trips", drift_.global().trips());
    w.field("recoveries", drift_.global().recoveries());
    w.field("apps_tracked", drift_.apps_tracked());
    w.field("apps_tripped", drift_.apps_tripped());
    w.begin_array("tripped_apps");
    for (const std::string& app : drift_.tripped_apps()) w.value(app);
    w.end_array();
    w.end_object();
  }
  w.begin_object("refit_lease");
  w.field("enabled", lease_.enabled());
  w.field("holder", lease_.read_holder());
  w.end_object();
  const auto snapshot = guard_.snapshot();
  w.field("model_rounds",
          snapshot == nullptr ? 0 : snapshot->model().rounds_completed());
  // Which inference engine actually serves (quantize may be requested but
  // skipped when a model exceeds the bin-code ranges).
  w.field("quantized", snapshot != nullptr && snapshot->quantized());
  w.begin_object("counters");
  w.field("predicts", predicts_.load(std::memory_order_relaxed));
  w.field("feedbacks", feedbacks_.load(std::memory_order_relaxed));
  w.field("fallbacks", guard_.fallback_count());
  w.field("app_fallbacks", app_fallbacks_.load(std::memory_order_relaxed));
  w.field("refits", refits_.load(std::memory_order_relaxed));
  w.field("reloads", reloads_.load(std::memory_order_relaxed));
  w.field("request_errors", request_errors_.load(std::memory_order_relaxed));
  w.field("shed", shed_.load(std::memory_order_relaxed));
  w.field("deadline_expired", deadline_expired_.load(std::memory_order_relaxed));
  w.end_object();
  w.begin_object("lanes");
  w.begin_object("predict");
  w.field("depth", lane_predict_depth_.load(std::memory_order_relaxed));
  w.field("shed", shed_predict_.load(std::memory_order_relaxed));
  w.end_object();
  w.begin_object("feedback");
  w.field("depth", lane_feedback_depth_.load(std::memory_order_relaxed));
  w.field("shed", shed_feedback_.load(std::memory_order_relaxed));
  w.end_object();
  w.end_object();
  if (!bootstrap_note_.empty()) w.field("bootstrap_note", bootstrap_note_);
  w.end_object();
  return w.str();
}

std::string ServeCore::shutdown_reply(std::string_view id) const {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "shutdown");
  w.field("draining", true);
  w.end_object();
  return w.str();
}

}  // namespace mphpc::serve
