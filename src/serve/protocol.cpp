#include "serve/protocol.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "serve/json.hpp"
#include "sim/counter_synth.hpp"

namespace mphpc::serve {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ParseError(what); }

/// Required member of `kind` string, or fail with the field name.
const JsonValue& require(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) bad("missing required field '" + std::string(key) + "'");
  return *v;
}

std::string get_string(const JsonValue& obj, std::string_view key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_string()) bad("field '" + std::string(key) + "' must be a string");
  return v.as_string();
}

double get_number(const JsonValue& v, std::string_view key) {
  if (!v.is_number()) bad("field '" + std::string(key) + "' must be a number");
  const double d = v.as_number();
  if (!std::isfinite(d)) bad("field '" + std::string(key) + "' must be finite");
  return d;
}

/// Optional numeric member with a default.
double opt_number(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : get_number(*v, key);
}

int opt_int(const JsonValue& obj, std::string_view key, int fallback) {
  const double d = opt_number(obj, key, static_cast<double>(fallback));
  // Range-check BEFORE casting: double->int overflow is undefined
  // behavior, and clients control this value. Both int bounds are
  // exactly representable as doubles, so the comparisons are precise.
  if (d < static_cast<double>(std::numeric_limits<int>::min()) ||
      d > static_cast<double>(std::numeric_limits<int>::max()) ||
      d != std::floor(d)) {
    bad("field '" + std::string(key) + "' must be an integer in int range");
  }
  return static_cast<int>(d);
}

bool opt_bool(const JsonValue& obj, std::string_view key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) bad("field '" + std::string(key) + "' must be a boolean");
  return v->as_bool();
}

workload::ScaleClass parse_scale_class(std::string_view name) {
  for (const workload::ScaleClass s : workload::kAllScaleClasses) {
    if (workload::to_string(s) == name) return s;
  }
  bad("unknown scale class '" + std::string(name) + "' (1core|1node|2node)");
}

sim::RunProfile parse_profile(const JsonValue& obj) {
  sim::RunProfile p;
  p.app = get_string(obj, "app");
  if (p.app.empty()) bad("profile.app must be non-empty");

  const std::string system = get_string(obj, "system");
  const auto sys = arch::parse_system(system);
  if (!sys.has_value()) bad("unknown system '" + system + "'");
  p.system = *sys;

  p.input_index = opt_int(obj, "input_index", 0);
  p.input_scale = opt_number(obj, "input_scale", 1.0);
  if (p.input_scale <= 0.0) bad("profile.input_scale must be positive");

  if (const JsonValue* scale = obj.find("scale"); scale != nullptr) {
    if (!scale->is_string()) bad("profile.scale must be a string");
    p.config.scale_class = parse_scale_class(scale->as_string());
  }
  p.config.nodes = opt_int(obj, "nodes", 1);
  p.config.ranks = opt_int(obj, "ranks", 1);
  p.config.cores = opt_int(obj, "cores", 1);
  p.config.gpus = opt_int(obj, "gpus", 0);
  if (p.config.nodes < 1 || p.config.ranks < 1 || p.config.cores < 1 ||
      p.config.gpus < 0) {
    bad("profile resources must be positive (nodes/ranks/cores) and gpus >= 0");
  }
  p.config.uses_gpu = opt_bool(obj, "uses_gpu", p.config.gpus > 0);
  if (const JsonValue* device = obj.find("device"); device != nullptr) {
    if (!device->is_string()) bad("profile.device must be a string");
    const std::string& d = device->as_string();
    if (d == "cpu") {
      p.device = arch::Device::kCpu;
    } else if (d == "gpu") {
      p.device = arch::Device::kGpu;
    } else {
      bad("unknown device '" + d + "' (cpu|gpu)");
    }
  }

  p.time_s = opt_number(obj, "time_s", 0.0);
  if (p.time_s < 0.0) bad("profile.time_s must be non-negative");

  const JsonValue& counters = require(obj, "counters");
  if (!counters.is_object()) bad("profile.counters must be an object");
  for (const auto& [name, value] : counters.members()) {
    const auto kind = arch::parse_counter_kind(name);
    if (!kind.has_value()) bad("unknown counter '" + name + "'");
    const double v = get_number(value, name);
    if (v < 0.0) bad("counter '" + name + "' must be non-negative");
    sim::set(p.counters, *kind, v);
  }
  if (sim::get(p.counters, arch::CounterKind::kTotalInstructions) <= 0.0) {
    bad("counter 'total_instructions' must be positive");
  }
  return p;
}

core::SystemTimes parse_times(const JsonValue& obj) {
  core::SystemTimes times{};
  std::size_t seen = 0;
  for (const auto& [name, value] : obj.members()) {
    const auto sys = arch::parse_system(name);
    if (!sys.has_value()) bad("unknown system '" + name + "' in times");
    const double t = get_number(value, name);
    if (t <= 0.0) bad("times." + name + " must be positive");
    const std::size_t idx = static_cast<std::size_t>(*sys);
    // A repeated key would count toward `seen` twice and leave another
    // system's slot at 0, tripping a contract check deep in Rpv instead
    // of a bad_request here. Times are already required positive, so a
    // non-zero slot means the key appeared before.
    if (times[idx] > 0.0) bad("duplicate system '" + name + "' in times");
    times[idx] = t;
    ++seen;
  }
  if (seen != arch::kNumSystems) {
    bad("times must name all " + std::to_string(arch::kNumSystems) + " systems");
  }
  return times;
}

}  // namespace

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kPredict: return "predict";
    case Op::kFeedback: return "feedback";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(std::string_view line) {
  const JsonValue root = JsonValue::parse(line);
  if (!root.is_object()) bad("request must be a JSON object");

  Request req;
  if (const JsonValue* id = root.find("id"); id != nullptr) {
    if (!id->is_string()) bad("field 'id' must be a string");
    req.id = id->as_string();
  }

  const std::string op = get_string(root, "op");
  if (op == "predict") {
    req.op = Op::kPredict;
  } else if (op == "feedback") {
    req.op = Op::kFeedback;
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "shutdown") {
    req.op = Op::kShutdown;
  } else {
    bad("unknown op '" + op + "'");
  }

  if (req.op == Op::kPredict || req.op == Op::kFeedback) {
    const JsonValue& profile = require(root, "profile");
    if (!profile.is_object()) bad("field 'profile' must be an object");
    req.profile = parse_profile(profile);
  }
  if (req.op == Op::kFeedback) {
    const JsonValue& times = require(root, "times");
    if (!times.is_object()) bad("field 'times' must be an object");
    req.times = parse_times(times);
  }
  return req;
}

std::string predict_reply(std::string_view id, const core::Rpv& rpv,
                          bool fallback) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "predict");
  w.begin_array("rpv");
  for (const double r : rpv.values()) w.value(r);
  w.end_array();
  w.field("fastest", arch::to_string(rpv.fastest()));
  w.field("fallback", fallback);
  w.end_object();
  return w.str();
}

std::string feedback_reply(std::string_view id, bool degraded,
                           double rolling_mae) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "feedback");
  w.field("degraded", degraded);
  w.field("rolling_mae", rolling_mae);
  w.end_object();
  return w.str();
}

std::string error_reply(std::string_view id, std::string_view code,
                        std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("ok", false);
  w.field("code", code);
  w.field("error", message);
  w.end_object();
  return w.str();
}

}  // namespace mphpc::serve
