#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/contract.hpp"
#include "common/shutdown.hpp"
#include "common/strings.hpp"
#include "serve/fault_inject.hpp"

namespace mphpc::serve {

namespace {

/// A request line larger than this is rejected outright — the protocol's
/// objects are a few hundred bytes; a megabyte of "line" is a bug or an
/// attack, not a request.
constexpr std::size_t kMaxLineBytes = 1U << 20U;

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr = {};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::copy(path.begin(), path.end(), addr.sun_path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on " + path + ": " + err);
  }
  return fd;
}

IntakeQueue::IntakeQueue(std::size_t capacity) : capacity_(capacity) {
  MPHPC_EXPECTS(capacity >= 1);
}

std::optional<Pending> IntakeQueue::push(Pending pending) {
  std::optional<Pending> victim;
  if (size() >= capacity_) {
    // Shed the OLDEST request from the lowest-priority non-empty lane: a
    // dropped feedback costs a little model freshness, a dropped predict
    // stalls a scheduler decision, and in either lane the oldest entry
    // is the one most likely past its deadline already. The client
    // learns immediately via the overload reply instead of waiting on a
    // queue that cannot keep up.
    std::deque<Pending>& lane = feedback_.empty() ? predict_ : feedback_;
    victim = std::move(lane.front());
    lane.pop_front();
  }
  if (pending.request.op == Op::kFeedback) {
    feedback_.push_back(std::move(pending));
  } else {
    predict_.push_back(std::move(pending));
  }
  return victim;
}

std::size_t IntakeQueue::pop_batch(std::size_t max, std::vector<Pending>& out) {
  std::size_t taken = 0;
  // Priority lane drains first. Feedback can only starve while the
  // predict lane stays saturated — exactly the overload regime in which
  // feedback is the designated sacrifice.
  for (std::deque<Pending>* lane : {&predict_, &feedback_}) {
    while (taken < max && !lane->empty()) {
      out.push_back(std::move(lane->front()));
      lane->pop_front();
      ++taken;
    }
  }
  return taken;
}

Server::Server(ServeCore& core, ServerOptions options, std::ostream* log)
    : core_(core),
      options_(std::move(options)),
      log_(log),
      pool_(options_.pool_threads),
      queue_(options_.queue_cap) {
  MPHPC_EXPECTS(options_.queue_cap >= 1 && options_.batch_max >= 1);
  MPHPC_EXPECTS(options_.deadline_ms >= 0 && options_.store_poll_s >= 0.0);
}

void Server::log_line(const std::string& message) {
  if (log_ == nullptr) return;
  *log_ << "[" << options_.log_tag << "] " << message << '\n';
  log_->flush();
}

void Server::retain_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  ++fd_refs_[fd];
}

void Server::release_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  const auto it = fd_refs_.find(fd);
  MPHPC_EXPECTS(it != fd_refs_.end() && it->second > 0);
  if (--it->second > 0) return;
  fd_refs_.erase(it);
  if (fd_dead_.erase(fd) > 0) ::close(fd);
}

void Server::retire_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  if (fd_refs_.find(fd) == fd_refs_.end()) {
    ::close(fd);
    return;
  }
  fd_dead_.insert(fd);
}

int Server::setup_listener() { return listen_unix(options_.socket_path); }

int Server::run() {
  ShutdownLatch::instance().install();
  // A client that disconnects mid-reply must not kill the daemon.
  struct sigaction ignore_pipe = {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, nullptr);

  // A borrowed listener is shared with sibling workers: accept() must
  // not block when a sibling wins the race for a connection poll() saw,
  // so the shared open file description goes nonblocking. Heartbeats
  // must never wedge the intake loop on a slow supervisor either.
  const bool borrowed_listener = options_.listen_fd >= 0;
  int listen_fd = options_.listen_fd;
  if (borrowed_listener) {
    (void)::fcntl(listen_fd, F_SETFL,
                  ::fcntl(listen_fd, F_GETFL, 0) | O_NONBLOCK);
  } else if (!options_.socket_path.empty()) {
    listen_fd = setup_listener();
  }
  if (options_.heartbeat_fd >= 0) {
    (void)::fcntl(options_.heartbeat_fd, F_SETFL,
                  ::fcntl(options_.heartbeat_fd, F_GETFL, 0) | O_NONBLOCK);
  }
  log_line(listen_fd < 0 ? "listening on stdin (stdio mode)"
           : borrowed_listener
               ? "listening on inherited fd " + std::to_string(listen_fd)
               : "listening on " + options_.socket_path);
  if (!core_.bootstrap_note().empty()) log_line(core_.bootstrap_note());
  log_line("serving generation " + std::to_string(core_.generation()) +
           " fingerprint " + core_.fingerprint());

  std::thread batcher([this] { batcher_loop(); });
  std::thread refitter([this] { refit_loop(); });

  intake_loop(listen_fd);

  // Intake has stopped; let the batcher drain everything already queued,
  // then stop both workers and persist the final model.
  {
    const std::lock_guard lock(queue_mutex_);
    stop_batcher_ = true;
  }
  queue_cv_.notify_all();
  batcher.join();
  {
    const std::lock_guard lock(refit_mutex_);
    stop_refit_ = true;
  }
  refit_cv_.notify_all();
  refitter.join();

  core_.flush();
  for (Connection& conn : connections_) {
    if (conn.fd > 2) ::close(conn.fd);  // never close stdio fds
  }
  connections_.clear();
  {
    // The drained batcher released every queued reply, so deferred-close
    // fds should all be gone; sweep whatever is left regardless.
    const std::lock_guard lock(fd_mutex_);
    for (const int fd : fd_dead_) ::close(fd);
    fd_dead_.clear();
    fd_refs_.clear();
  }
  if (listen_fd >= 0 && !borrowed_listener) {
    // An inherited listener belongs to the supervisor (and to sibling
    // workers still accepting on it); only a listener we created gets
    // closed and its socket path unlinked.
    ::close(listen_fd);
    ::unlink(options_.socket_path.c_str());
  }
  log_line("drained; model generation " + std::to_string(core_.generation()) +
           " flushed");
  const ShutdownLatch& latch = ShutdownLatch::instance();
  return latch.requested() ? latch.exit_code() : 0;
}

void Server::intake_loop(int listen_fd) {
  ShutdownLatch& latch = ShutdownLatch::instance();
  if (listen_fd < 0) {
    connections_.push_back(Connection{0, std::string(), false});
  }
  for (;;) {
    if (latch.requested()) {
      begin_drain("signal");
      return;
    }
    {
      const std::lock_guard lock(queue_mutex_);
      if (draining_) return;
    }

    std::vector<pollfd> fds;
    fds.push_back(pollfd{latch.wake_fd(), POLLIN, 0});
    std::size_t listen_index = 0;
    const bool has_listener = listen_fd >= 0;
    if (has_listener) {
      listen_index = fds.size();
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    for (const Connection& conn : connections_) {
      fds.push_back(pollfd{conn.fd, POLLIN, 0});
    }

    // The 500 ms tick is a safety net for the (pipe-less) install failure
    // path (signals normally wake the poll via the latch fd immediately)
    // and doubles as the heartbeat cadence toward the supervisor.
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_line(std::string("poll failed: ") + std::strerror(errno));
      begin_drain("poll failure");
      return;
    }
    maybe_heartbeat();
    if (ready == 0) continue;

    if (has_listener && (fds[listen_index].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        // Fault point: a crash/hang here models a worker dying while
        // admitting a connection — the client sees a reset, never a
        // half-served request.
        fault_point(FaultSite::kAccept);
        connections_.push_back(Connection{client, std::string(), false});
        continue;  // pollfd set changed; rebuild before reading
      }
    }

    for (std::size_t i = connections_.size(); i > 0; --i) {
      const std::size_t idx = i - 1;
      const short revents = fds[conn_base + idx].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!read_connection(connections_[idx])) {
        if (connections_[idx].fd == 0) {
          // EOF on stdin IS the shutdown request in stdio mode.
          begin_drain("stdin EOF");
          return;
        }
        // Closes now unless queued requests still hold this fd, in which
        // case the last reply release closes it (an immediate close would
        // let accept() recycle the number for a different client).
        retire_fd(connections_[idx].fd);
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
      }
    }
    {
      const std::lock_guard lock(queue_mutex_);
      if (draining_) return;
    }
  }
}

void Server::maybe_heartbeat() {
  if (options_.heartbeat_fd < 0) return;
  // A heartbeat asserts "this worker is serving", not just "the intake
  // thread is scheduled": beat only while the queue is empty (nothing to
  // prove) or the batcher finished a batch since the last beat. A worker
  // wedged mid-reply under load stops beating even though intake still
  // polls, and the supervisor's watchdog takes it out.
  bool queue_empty = false;
  {
    const std::lock_guard lock(queue_mutex_);
    queue_empty = queue_.empty();
  }
  const unsigned long long steps = batcher_steps_.load(std::memory_order_relaxed);
  if (!queue_empty && steps == last_batcher_steps_) return;
  last_batcher_steps_ = steps;
  const char beat = '.';
  ssize_t n = 0;
  do {
    n = ::write(options_.heartbeat_fd, &beat, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN (supervisor slow to drain) and EPIPE (supervisor gone) are
  // both fine: the pipe's only job is edge-triggered liveness.
}

bool Server::read_connection(Connection& conn) {
  char buf[65536];
  const ssize_t n = ::read(conn.fd, buf, sizeof buf);
  if (n == 0) return false;
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  conn.buffer.append(buf, static_cast<std::size_t>(n));

  std::size_t pos = 0;
  while ((pos = conn.buffer.find('\n')) != std::string::npos) {
    const std::string line = conn.buffer.substr(0, pos);
    conn.buffer.erase(0, pos + 1);
    if (conn.discarding) {
      conn.discarding = false;  // the oversized line finally ended
      continue;
    }
    handle_input_line(conn.fd, line);
  }
  if (conn.buffer.size() > kMaxLineBytes && !conn.discarding) {
    write_reply(conn.fd == 0 ? 1 : conn.fd,
                error_reply("", "bad_request", "request line exceeds 1 MiB"));
    conn.buffer.clear();
    conn.discarding = true;
  }
  return true;
}

void Server::handle_input_line(int fd, std::string_view line) {
  if (trim(line).empty()) return;
  const int reply_fd = fd == 0 ? 1 : fd;  // stdio mode replies on stdout
  {
    const std::lock_guard lock(queue_mutex_);
    if (draining_) {
      write_reply(reply_fd,
                  error_reply("", "shutting_down", "daemon is draining"));
      return;
    }
  }
  Pending pending;
  try {
    pending.request = parse_request(line);
  } catch (const std::exception& e) {
    write_reply(reply_fd, error_reply("", "bad_request", e.what()));
    return;
  }
  if (pending.request.op == Op::kShutdown) {
    write_reply(reply_fd, core_.handle_request(pending.request));
    begin_drain("shutdown request");
    return;
  }
  pending.fd = reply_fd;
  pending.arrival = Clock::now();
  retain_fd(reply_fd);  // released when the reply (or shed/expiry) is written
  enqueue(std::move(pending));
}

void Server::enqueue(Pending pending) {
  std::optional<Pending> victim;
  {
    const std::lock_guard lock(queue_mutex_);
    victim = queue_.push(std::move(pending));
    core_.note_lane_depths(queue_.predict_depth(), queue_.feedback_depth());
  }
  queue_cv_.notify_one();
  if (victim.has_value()) {
    const bool was_feedback = victim->request.op == Op::kFeedback;
    core_.note_shed(victim->request.op);
    write_reply(victim->fd,
                error_reply(victim->request.id, "overloaded",
                            was_feedback
                                ? "queue full: oldest feedback shed"
                                : "queue full: oldest predict shed"));
    release_fd(victim->fd);
  }
}

void Server::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_batcher_ || !queue_.empty(); });
      if (queue_.empty() && stop_batcher_) return;
      batch.reserve(std::min(options_.batch_max, queue_.size()));
      (void)queue_.pop_batch(options_.batch_max, batch);
      core_.note_lane_depths(queue_.predict_depth(), queue_.feedback_depth());
    }
    serve_batch(batch);
    batcher_steps_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::serve_batch(std::vector<Pending>& batch) {
  const Clock::time_point now = Clock::now();
  std::vector<Request> live;
  std::vector<std::size_t> live_index;
  bool saw_feedback = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    if (options_.deadline_ms > 0 &&
        now - p.arrival > std::chrono::milliseconds(options_.deadline_ms)) {
      core_.note_deadline_expired();
      write_reply(p.fd, error_reply(p.request.id, "deadline_exceeded",
                                    "request exceeded its serve deadline"));
      release_fd(p.fd);
      continue;
    }
    if (p.request.op == Op::kFeedback) saw_feedback = true;
    live_index.push_back(i);
    live.push_back(p.request);
  }
  if (!live.empty()) {
    const std::vector<std::string> replies = core_.handle_requests(live, &pool_);
    for (std::size_t k = 0; k < replies.size(); ++k) {
      write_reply(batch[live_index[k]].fd, replies[k]);
    }
    for (const std::size_t i : live_index) release_fd(batch[i].fd);
  }
  if (saw_feedback && core_.refit_pending()) {
    {
      const std::lock_guard lock(refit_mutex_);
      refit_kick_ = true;
    }
    refit_cv_.notify_one();
  }
}

void Server::refit_loop() {
  const bool polling = options_.store_poll_s > 0.0;
  const auto poll_tick = std::chrono::duration<double>(options_.store_poll_s);
  for (;;) {
    {
      std::unique_lock lock(refit_mutex_);
      const auto woken = [this] { return stop_refit_ || refit_kick_; };
      if (polling) {
        // Wake on the poll tick even without a kick: a pure follower
        // (all its feedback shed, or a sibling holds the lease) must
        // still notice the leader's publishes.
        (void)refit_cv_.wait_for(lock, poll_tick, woken);
      } else {
        refit_cv_.wait(lock, woken);
      }
      refit_kick_ = false;
      if (stop_refit_) return;
    }
    try {
      if (polling && core_.follow_store()) {
        log_line("follow: loaded generation " +
                 std::to_string(core_.generation()) + " fingerprint " +
                 core_.fingerprint());
      }
      if (core_.run_refit(&pool_)) {
        log_line("refit: published generation " +
                 std::to_string(core_.generation()) + " fingerprint " +
                 core_.fingerprint());
      }
    } catch (const std::exception& e) {
      // A refit failure (e.g. disk full during persist) must not take the
      // serving path down: the old generation keeps serving.
      log_line(std::string("refit failed (serving continues): ") + e.what());
    }
  }
}

void Server::write_reply(int fd, std::string_view reply) {
  std::string line(reply);
  line += '\n';
  const std::lock_guard lock(write_mutex_);
  // Fault point: kShortWrite truncates the reply to half its bytes (a
  // torn line the client's JSONL parser must reject), crash/hang model a
  // worker dying with the reply in flight.
  const FaultAction fault = FaultInjector::instance().at(FaultSite::kMidReply);
  FaultInjector::execute(fault);
  if (fault == FaultAction::kShortWrite) line.resize(line.size() / 2);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone (EPIPE et al.) — drop the reply, not the daemon
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::begin_drain(const char* why) {
  {
    const std::lock_guard lock(queue_mutex_);
    if (draining_) return;
    draining_ = true;
  }
  log_line(std::string("draining (") + why + ")");
}

}  // namespace mphpc::serve
