#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/contract.hpp"
#include "common/shutdown.hpp"
#include "common/strings.hpp"

namespace mphpc::serve {

namespace {

/// A request line larger than this is rejected outright — the protocol's
/// objects are a few hundred bytes; a megabyte of "line" is a bug or an
/// attack, not a request.
constexpr std::size_t kMaxLineBytes = 1U << 20U;

}  // namespace

Server::Server(ServeCore& core, ServerOptions options, std::ostream* log)
    : core_(core),
      options_(std::move(options)),
      log_(log),
      pool_(options_.pool_threads) {
  MPHPC_EXPECTS(options_.queue_cap >= 1 && options_.batch_max >= 1);
  MPHPC_EXPECTS(options_.deadline_ms >= 0);
}

void Server::log_line(const std::string& message) {
  if (log_ == nullptr) return;
  *log_ << "[serve] " << message << '\n';
  log_->flush();
}

void Server::retain_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  ++fd_refs_[fd];
}

void Server::release_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  const auto it = fd_refs_.find(fd);
  MPHPC_EXPECTS(it != fd_refs_.end() && it->second > 0);
  if (--it->second > 0) return;
  fd_refs_.erase(it);
  if (fd_dead_.erase(fd) > 0) ::close(fd);
}

void Server::retire_fd(int fd) {
  if (fd <= 2) return;
  const std::lock_guard lock(fd_mutex_);
  if (fd_refs_.find(fd) == fd_refs_.end()) {
    ::close(fd);
    return;
  }
  fd_dead_.insert(fd);
}

int Server::setup_listener() {
  sockaddr_un addr = {};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options_.socket_path);
  }
  ::unlink(options_.socket_path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::copy(options_.socket_path.begin(), options_.socket_path.end(),
            addr.sun_path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on " + options_.socket_path +
                             ": " + err);
  }
  return fd;
}

int Server::run() {
  ShutdownLatch::instance().install();
  // A client that disconnects mid-reply must not kill the daemon.
  struct sigaction ignore_pipe = {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, nullptr);

  int listen_fd = -1;
  if (!options_.socket_path.empty()) listen_fd = setup_listener();
  log_line(options_.socket_path.empty()
               ? "listening on stdin (stdio mode)"
               : "listening on " + options_.socket_path);
  if (!core_.bootstrap_note().empty()) log_line(core_.bootstrap_note());
  log_line("serving generation " + std::to_string(core_.generation()) +
           " fingerprint " + core_.fingerprint());

  std::thread batcher([this] { batcher_loop(); });
  std::thread refitter([this] { refit_loop(); });

  intake_loop(listen_fd);

  // Intake has stopped; let the batcher drain everything already queued,
  // then stop both workers and persist the final model.
  {
    const std::lock_guard lock(queue_mutex_);
    stop_batcher_ = true;
  }
  queue_cv_.notify_all();
  batcher.join();
  {
    const std::lock_guard lock(refit_mutex_);
    stop_refit_ = true;
  }
  refit_cv_.notify_all();
  refitter.join();

  core_.flush();
  for (Connection& conn : connections_) {
    if (conn.fd > 2) ::close(conn.fd);  // never close stdio fds
  }
  connections_.clear();
  {
    // The drained batcher released every queued reply, so deferred-close
    // fds should all be gone; sweep whatever is left regardless.
    const std::lock_guard lock(fd_mutex_);
    for (const int fd : fd_dead_) ::close(fd);
    fd_dead_.clear();
    fd_refs_.clear();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(options_.socket_path.c_str());
  }
  log_line("drained; model generation " + std::to_string(core_.generation()) +
           " flushed");
  const ShutdownLatch& latch = ShutdownLatch::instance();
  return latch.requested() ? latch.exit_code() : 0;
}

void Server::intake_loop(int listen_fd) {
  ShutdownLatch& latch = ShutdownLatch::instance();
  if (listen_fd < 0) {
    connections_.push_back(Connection{0, std::string(), false});
  }
  for (;;) {
    if (latch.requested()) {
      begin_drain("signal");
      return;
    }
    {
      const std::lock_guard lock(queue_mutex_);
      if (draining_) return;
    }

    std::vector<pollfd> fds;
    fds.push_back(pollfd{latch.wake_fd(), POLLIN, 0});
    std::size_t listen_index = 0;
    const bool has_listener = listen_fd >= 0;
    if (has_listener) {
      listen_index = fds.size();
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    for (const Connection& conn : connections_) {
      fds.push_back(pollfd{conn.fd, POLLIN, 0});
    }

    // The 500 ms tick is a safety net for the (pipe-less) install failure
    // path; signals normally wake the poll via the latch fd immediately.
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_line(std::string("poll failed: ") + std::strerror(errno));
      begin_drain("poll failure");
      return;
    }
    if (ready == 0) continue;

    if (has_listener && (fds[listen_index].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        connections_.push_back(Connection{client, std::string(), false});
        continue;  // pollfd set changed; rebuild before reading
      }
    }

    for (std::size_t i = connections_.size(); i > 0; --i) {
      const std::size_t idx = i - 1;
      const short revents = fds[conn_base + idx].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!read_connection(connections_[idx])) {
        if (connections_[idx].fd == 0) {
          // EOF on stdin IS the shutdown request in stdio mode.
          begin_drain("stdin EOF");
          return;
        }
        // Closes now unless queued requests still hold this fd, in which
        // case the last reply release closes it (an immediate close would
        // let accept() recycle the number for a different client).
        retire_fd(connections_[idx].fd);
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
      }
    }
    {
      const std::lock_guard lock(queue_mutex_);
      if (draining_) return;
    }
  }
}

bool Server::read_connection(Connection& conn) {
  char buf[65536];
  const ssize_t n = ::read(conn.fd, buf, sizeof buf);
  if (n == 0) return false;
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  conn.buffer.append(buf, static_cast<std::size_t>(n));

  std::size_t pos = 0;
  while ((pos = conn.buffer.find('\n')) != std::string::npos) {
    const std::string line = conn.buffer.substr(0, pos);
    conn.buffer.erase(0, pos + 1);
    if (conn.discarding) {
      conn.discarding = false;  // the oversized line finally ended
      continue;
    }
    handle_input_line(conn.fd, line);
  }
  if (conn.buffer.size() > kMaxLineBytes && !conn.discarding) {
    write_reply(conn.fd == 0 ? 1 : conn.fd,
                error_reply("", "bad_request", "request line exceeds 1 MiB"));
    conn.buffer.clear();
    conn.discarding = true;
  }
  return true;
}

void Server::handle_input_line(int fd, std::string_view line) {
  if (trim(line).empty()) return;
  const int reply_fd = fd == 0 ? 1 : fd;  // stdio mode replies on stdout
  {
    const std::lock_guard lock(queue_mutex_);
    if (draining_) {
      write_reply(reply_fd,
                  error_reply("", "shutting_down", "daemon is draining"));
      return;
    }
  }
  Pending pending;
  try {
    pending.request = parse_request(line);
  } catch (const std::exception& e) {
    write_reply(reply_fd, error_reply("", "bad_request", e.what()));
    return;
  }
  if (pending.request.op == Op::kShutdown) {
    write_reply(reply_fd, core_.handle_request(pending.request));
    begin_drain("shutdown request");
    return;
  }
  pending.fd = reply_fd;
  pending.arrival = Clock::now();
  retain_fd(reply_fd);  // released when the reply (or shed/expiry) is written
  enqueue(std::move(pending));
}

void Server::enqueue(Pending pending) {
  Pending victim;
  bool shed = false;
  {
    const std::lock_guard lock(queue_mutex_);
    if (queue_.size() >= options_.queue_cap) {
      // Shed the OLDEST request: it is the most likely to be past its
      // deadline already, and the client learns immediately via the
      // overload reply instead of waiting on a queue that cannot keep up.
      victim = std::move(queue_.front());
      queue_.pop_front();
      shed = true;
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  if (shed) {
    core_.note_shed();
    write_reply(victim.fd,
                error_reply(victim.request.id, "overloaded",
                            "queue full: oldest request shed"));
    release_fd(victim.fd);
  }
}

void Server::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_batcher_ || !queue_.empty(); });
      if (queue_.empty() && stop_batcher_) return;
      const std::size_t take = std::min(options_.batch_max, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    serve_batch(batch);
  }
}

void Server::serve_batch(std::vector<Pending>& batch) {
  const Clock::time_point now = Clock::now();
  std::vector<Request> live;
  std::vector<std::size_t> live_index;
  bool saw_feedback = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    if (options_.deadline_ms > 0 &&
        now - p.arrival > std::chrono::milliseconds(options_.deadline_ms)) {
      core_.note_deadline_expired();
      write_reply(p.fd, error_reply(p.request.id, "deadline_exceeded",
                                    "request exceeded its serve deadline"));
      release_fd(p.fd);
      continue;
    }
    if (p.request.op == Op::kFeedback) saw_feedback = true;
    live_index.push_back(i);
    live.push_back(p.request);
  }
  if (!live.empty()) {
    const std::vector<std::string> replies = core_.handle_requests(live, &pool_);
    for (std::size_t k = 0; k < replies.size(); ++k) {
      write_reply(batch[live_index[k]].fd, replies[k]);
    }
    for (const std::size_t i : live_index) release_fd(batch[i].fd);
  }
  if (saw_feedback && core_.refit_pending()) {
    {
      const std::lock_guard lock(refit_mutex_);
      refit_kick_ = true;
    }
    refit_cv_.notify_one();
  }
}

void Server::refit_loop() {
  for (;;) {
    {
      std::unique_lock lock(refit_mutex_);
      refit_cv_.wait(lock, [this] { return stop_refit_ || refit_kick_; });
      refit_kick_ = false;
      if (stop_refit_) return;
    }
    try {
      if (core_.run_refit(&pool_)) {
        log_line("refit: published generation " +
                 std::to_string(core_.generation()) + " fingerprint " +
                 core_.fingerprint());
      }
    } catch (const std::exception& e) {
      // A refit failure (e.g. disk full during persist) must not take the
      // serving path down: the old generation keeps serving.
      log_line(std::string("refit failed (serving continues): ") + e.what());
    }
  }
}

void Server::write_reply(int fd, std::string_view reply) {
  std::string line(reply);
  line += '\n';
  const std::lock_guard lock(write_mutex_);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone (EPIPE et al.) — drop the reply, not the daemon
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::begin_drain(const char* why) {
  {
    const std::lock_guard lock(queue_mutex_);
    if (draining_) return;
    draining_ = true;
  }
  log_line(std::string("draining (") + why + ")");
}

}  // namespace mphpc::serve
