#include "serve/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/shutdown.hpp"
#include "serve/fault_inject.hpp"

namespace mphpc::serve {

namespace {

/// Event-loop cadence: short enough to honor sub-100ms restart backoffs
/// (the tests use them) without busy-waiting.
constexpr int kPollMs = 50;

double seconds_since(std::chrono::steady_clock::time_point then,
                     std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options, WorkerMain worker_main,
                       std::ostream* log)
    : options_(std::move(options)),
      worker_main_(std::move(worker_main)),
      log_(log) {
  MPHPC_EXPECTS(options_.workers >= 1 && worker_main_ != nullptr);
  MPHPC_EXPECTS(options_.heartbeat_timeout_s > 0.0 &&
                options_.stable_after_s > 0.0);
  MPHPC_EXPECTS(options_.restart.max_attempts >= 1);
  slots_.resize(static_cast<std::size_t>(options_.workers));
}

void Supervisor::log_line(const std::string& message) {
  if (log_ == nullptr) return;
  *log_ << "[" << options_.log_tag << "] " << message << '\n';
  log_->flush();
}

void Supervisor::emit(Event event, int slot, long long detail) {
  if (hook_) hook_(event, slot, detail);
}

void Supervisor::spawn(int slot_index) {
  Slot& slot = slots_[static_cast<std::size_t>(slot_index)];
  MPHPC_EXPECTS(slot.pid < 0);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("supervisor: pipe() failed: ") +
                             std::strerror(errno));
  }

  const long long restarts = slot.restarts;
  const int pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    throw std::runtime_error(std::string("supervisor: fork() failed: ") +
                             std::strerror(errno));
  }

  if (pid == 0) {
    // Child. Drop every supervisor-side fd it inherited: the read end of
    // its own pipe and both ends of every sibling's (a worker holding a
    // dead sibling's write end would keep that pipe from ever reporting
    // HUP).
    ::close(pipe_fds[0]);
    for (const Slot& other : slots_) {
      if (other.heartbeat_fd >= 0) ::close(other.heartbeat_fd);
    }
    // The child starts its own signal lifecycle: the latch must not
    // inherit a tripped state from the supervisor's process image.
    ShutdownLatch::instance().reset();
    if (restarts > 0) {
      // A restarted incarnation runs CLEAN: the injected fault already
      // fired (that is why we are restarting), and recovery must not
      // re-trip it. Scrub both the env (future arms) and the injector
      // singleton (it may have armed pre-fork in this image).
      ::unsetenv("MPHPC_SERVE_FAULT");
      FaultInjector::instance().disarm();
    }
    WorkerEnv env;
    env.slot = slot_index;
    env.restarts = restarts;
    env.heartbeat_fd = pipe_fds[1];
    int code = 1;
    try {
      code = worker_main_(env);
    } catch (const std::exception& e) {
      // Writing to the supervisor's log stream from the child is safe:
      // the fork snapshotted the stream, and worker stderr is line-ish.
      log_line("worker " + std::to_string(slot_index) +
               " failed: " + std::string(e.what()));
    }
    // _exit, not exit: unwinding through the supervisor's static state
    // (twice-flushed streams, re-run destructors) is how forked children
    // corrupt shared files.
    ::_exit(code);
  }

  // Parent. The read end goes nonblocking so drain_heartbeat can slurp
  // whatever is buffered and return instead of blocking on a quiet pipe.
  ::close(pipe_fds[1]);
  (void)::fcntl(pipe_fds[0], F_SETFL,
                ::fcntl(pipe_fds[0], F_GETFL, 0) | O_NONBLOCK);
  slot.pid = pid;
  slot.heartbeat_fd = pipe_fds[0];
  slot.spawned_at = Clock::now();
  slot.last_beat = slot.spawned_at;
  slot.restart_pending = false;
  log_line("spawned worker " + std::to_string(slot_index) + " (pid " +
           std::to_string(pid) + ", restarts " + std::to_string(restarts) +
           ")");
  emit(Event::kSpawned, slot_index, restarts);
}

void Supervisor::drain_heartbeat(Slot& slot) {
  char buffer[256];
  for (;;) {
    const ssize_t n = ::read(slot.heartbeat_fd, buffer, sizeof buffer);
    if (n > 0) {
      slot.last_beat = Clock::now();
      if (n < static_cast<ssize_t>(sizeof buffer)) return;
      continue;  // more may be buffered
    }
    // 0 = writer gone (waitpid owns that story); <0 = EAGAIN/EINTR.
    return;
  }
}

int Supervisor::reap(bool& escalated) {
  escalated = false;
  const Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pid < 0) continue;
    int status = 0;
    // Per-known-pid, never waitpid(-1): a supervisor running inside a
    // test binary must not reap children it did not fork.
    const int reaped = ::waitpid(slot.pid, &status, WNOHANG);
    if (reaped != slot.pid) continue;

    const double uptime_s = seconds_since(slot.spawned_at, now);
    ::close(slot.heartbeat_fd);
    slot.heartbeat_fd = -1;
    slot.pid = -1;
    emit(Event::kExited, static_cast<int>(i), status);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // A clean exit means this worker completed a drain (EOF or a
      // shutdown request): that instruction is fleet-wide.
      log_line("worker " + std::to_string(i) + " drained cleanly");
      return static_cast<int>(i);
    }

    const std::string why =
        WIFSIGNALED(status)
            ? "killed by signal " + std::to_string(WTERMSIG(status))
            : "exited " + std::to_string(WIFEXITED(status)
                                             ? WEXITSTATUS(status)
                                             : status);
    // A long stable run forgives past flaps; a quick death extends the
    // current streak and the backoff that comes with it.
    if (uptime_s >= options_.stable_after_s) slot.attempt = 0;
    slot.attempt += 1;
    slot.restarts += 1;
    if (slot.attempt >= options_.restart.max_attempts) {
      log_line("worker " + std::to_string(i) + " " + why + "; slot burned " +
               std::to_string(slot.attempt) +
               " attempts — escalating to group drain");
      emit(Event::kEscalated, static_cast<int>(i), slot.attempt);
      escalated = true;
      return -1;
    }
    const double u =
        Rng(derive_seed(options_.seed, "supervisor", static_cast<int>(i),
                        slot.restarts))
            .uniform();
    const double delay_s = options_.restart.delay_s(slot.attempt, u);
    slot.restart_pending = true;
    slot.restart_at =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(delay_s));
    const long long delay_ms = std::llround(delay_s * 1000.0);
    log_line("worker " + std::to_string(i) + " " + why + " after " +
             std::to_string(uptime_s) + " s; restart " +
             std::to_string(slot.restarts) + " in " +
             std::to_string(delay_ms) + " ms");
    emit(Event::kRestartScheduled, static_cast<int>(i), delay_ms);
  }
  return -1;
}

void Supervisor::kill_hung() {
  const Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pid < 0) continue;
    const double silent_s = seconds_since(slot.last_beat, now);
    if (silent_s <= options_.heartbeat_timeout_s) continue;
    log_line("worker " + std::to_string(i) + " (pid " +
             std::to_string(slot.pid) + ") silent for " +
             std::to_string(silent_s) + " s — killing as hung");
    emit(Event::kHung, static_cast<int>(i),
         std::llround(silent_s));
    // SIGKILL, not SIGTERM: a hung worker by definition is not running
    // its drain path. The reap path restarts it like any crash.
    (void)::kill(slot.pid, SIGKILL);
    // Push last_beat forward so we do not re-kill every tick while the
    // zombie waits for its waitpid.
    slot.last_beat = now;
  }
}

void Supervisor::start_due_restarts() {
  const Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pid >= 0 || !slot.restart_pending) continue;
    if (now < slot.restart_at) continue;
    spawn(static_cast<int>(i));
  }
}

void Supervisor::drain_group(int sig) {
  draining_ = true;
  emit(Event::kDraining, -1, sig);
  log_line(sig == 0 ? "draining group (clean)"
                    : "draining group (signal " + std::to_string(sig) + ")");
  for (Slot& slot : slots_) {
    slot.restart_pending = false;  // no resurrections during a drain
    if (slot.pid >= 0) (void)::kill(slot.pid, SIGTERM);
  }

  const Clock::time_point started = Clock::now();
  bool killed_stragglers = false;
  for (;;) {
    bool any_live = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.pid < 0) continue;
      int status = 0;
      if (::waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
        ::close(slot.heartbeat_fd);
        slot.heartbeat_fd = -1;
        slot.pid = -1;
        emit(Event::kExited, static_cast<int>(i), status);
        continue;
      }
      any_live = true;
    }
    if (!any_live) break;
    if (!killed_stragglers &&
        seconds_since(started, Clock::now()) > options_.heartbeat_timeout_s) {
      // A worker that ignored SIGTERM for a whole heartbeat timeout is
      // hung; its store state is crash-safe by construction, so SIGKILL
      // loses nothing a drain would have saved.
      for (Slot& slot : slots_) {
        if (slot.pid >= 0) (void)::kill(slot.pid, SIGKILL);
      }
      killed_stragglers = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  log_line("group drained");
}

int Supervisor::run() {
  ShutdownLatch& latch = ShutdownLatch::instance();
  latch.install();
  log_line("supervising " + std::to_string(options_.workers) +
           " workers (restart budget " +
           std::to_string(options_.restart.max_attempts) +
           " attempts/slot, heartbeat timeout " +
           std::to_string(options_.heartbeat_timeout_s) + " s)");
  for (int i = 0; i < options_.workers; ++i) spawn(i);

  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{latch.wake_fd(), POLLIN, 0});
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].heartbeat_fd < 0) continue;
      fd_slot.push_back(i);
      fds.push_back(pollfd{slots_[i].heartbeat_fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             kPollMs);
    if (ready < 0 && errno != EINTR) {
      log_line(std::string("poll failed: ") + std::strerror(errno));
      drain_group(SIGTERM);
      return 1;
    }
    for (std::size_t k = 0; k < fd_slot.size(); ++k) {
      if ((fds[k + 1].revents & POLLIN) != 0) {
        drain_heartbeat(slots_[fd_slot[k]]);
      }
    }

    if (latch.requested()) {
      drain_group(latch.signal_number());
      return latch.exit_code();
    }

    bool escalated = false;
    const int clean_slot = reap(escalated);
    if (escalated) {
      drain_group(SIGTERM);
      return 1;
    }
    if (clean_slot >= 0) {
      drain_group(0);
      // The latch may have tripped while the clean drain ran; a signal
      // still wins the exit-code convention.
      return latch.requested() ? latch.exit_code() : 0;
    }

    kill_hung();
    start_due_restarts();
  }
}

}  // namespace mphpc::serve
