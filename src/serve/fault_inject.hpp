// Deterministic fault injection for the live serving stack.
//
// `sched/faults.hpp` gave the *simulator* seeded, replayable failures;
// this seam applies the same discipline to the *daemon*. Four sites on
// the request/refit path are tagged with a named fault point:
//
//   site          points
//   accept        crash-accept, hang-accept
//   mid-reply     crash-mid-reply, short-write-mid-reply, hang-mid-reply
//   pre-publish   crash-pre-publish, hang-pre-publish
//   mid-refit     crash-mid-refit, hang-mid-refit
//
// The injector is armed from the environment:
//
//   MPHPC_SERVE_FAULT=<point>[:<nth>]
//
// fires the point's action exactly on the <nth> (1-based, default 1)
// time its site is reached in this process, and never again. Actions:
// `crash` raises SIGKILL against the own process (no unwinding, no
// atexit — exactly what a crash-safety test wants), `hang` blocks the
// calling thread forever (what a heartbeat watchdog must detect), and
// `short-write` returns to the call site, which writes a torn reply.
//
// The seam is compiled in always — production binaries carry it — and
// costs one relaxed atomic load per site when unarmed, so there is no
// "test build" whose behavior differs from the shipped one. The
// supervisor clears MPHPC_SERVE_FAULT for restarted workers, so a fault
// hits first incarnations only and recovery runs clean.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace mphpc::serve {

enum class FaultSite { kAccept, kMidReply, kPrePublish, kMidRefit };
enum class FaultAction { kNone, kCrash, kHang, kShortWrite };

[[nodiscard]] std::string_view to_string(FaultSite site) noexcept;
[[nodiscard]] std::string_view to_string(FaultAction action) noexcept;

class FaultInjector {
 public:
  /// The process-wide injector, armed from MPHPC_SERVE_FAULT on first
  /// use (empty/unset env leaves it disarmed).
  [[nodiscard]] static FaultInjector& instance();

  /// Arms from a spec ("<point>[:<nth>]"); throws std::invalid_argument
  /// on an unknown point or a non-positive nth. Resets hit counters.
  void arm(std::string_view spec);

  /// Disarms and resets hit counters (tests).
  void disarm() noexcept;

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Records one occurrence of `site` and returns the action to perform
  /// — kNone unless this is exactly the armed point's nth occurrence.
  /// Thread-safe; the nth occurrence fires on exactly one caller.
  [[nodiscard]] FaultAction at(FaultSite site) noexcept;

  /// Occurrences of `site` observed since arming (tests).
  [[nodiscard]] long long hits(FaultSite site) const noexcept;

  /// Performs `action`: kCrash raises SIGKILL (does not return), kHang
  /// blocks forever, kNone/kShortWrite return (short writes are the
  /// call site's job — only it knows what "half the bytes" means).
  static void execute(FaultAction action) noexcept;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  FaultSite site_ = FaultSite::kAccept;
  FaultAction action_ = FaultAction::kNone;
  long long nth_ = 1;
  std::atomic<long long> counts_[4]{};
};

/// Check-and-execute helper for sites whose only meaningful actions are
/// crash/hang. Returns the action for sites that must handle
/// kShortWrite themselves.
inline FaultAction fault_point(FaultSite site) noexcept {
  const FaultAction action = FaultInjector::instance().at(site);
  FaultInjector::execute(action);
  return action;
}

}  // namespace mphpc::serve
