#include "serve/model_store.hpp"

#include <filesystem>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "ml/serialize.hpp"

namespace mphpc::serve {

namespace {
constexpr std::string_view kMagic = "mphpc-serve-model v1 ";
}  // namespace

ModelStore::ModelStore(std::string path) : path_(std::move(path)) {
  MPHPC_EXPECTS(!path_.empty());
}

std::string ModelStore::fingerprint_of(std::string_view body) {
  return format_hex64(fnv1a_64(body));
}

std::optional<ModelStore::StoredModel> ModelStore::load() const {
  if (!std::filesystem::exists(path_)) return std::nullopt;
  const std::string text = ml::load_text(path_);

  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos || !starts_with(text, kMagic)) {
    throw ParseError("serve model store has a bad header: " + path_);
  }
  const std::string_view header =
      std::string_view(text).substr(kMagic.size(), eol - kMagic.size());
  const std::size_t space = header.find(' ');
  if (space == std::string_view::npos) {
    throw ParseError("serve model store header missing fingerprint: " + path_);
  }

  StoredModel stored;
  try {
    stored.generation =
        static_cast<long long>(parse_double(header.substr(0, space)));
  } catch (const ParseError&) {
    throw ParseError("serve model store header has a bad generation: " + path_);
  }
  stored.fingerprint = std::string(trim(header.substr(space + 1)));

  const std::string_view body = std::string_view(text).substr(eol + 1);
  if (fingerprint_of(body) != stored.fingerprint) {
    throw ParseError("serve model store fingerprint mismatch (corrupt body): " +
                     path_);
  }
  stored.predictor = core::CrossArchPredictor::from_text(body);
  return stored;
}

std::string ModelStore::store(const core::CrossArchPredictor& predictor,
                              long long generation) const {
  MPHPC_EXPECTS(predictor.trained() && generation >= 0);
  const std::string body = predictor.serialize_text();
  std::string fingerprint = fingerprint_of(body);
  std::string text = std::string(kMagic) + std::to_string(generation) + " " +
                     fingerprint + "\n";
  text += body;
  atomic_write_text(path_, text);
  return fingerprint;
}

}  // namespace mphpc::serve
