#include "serve/model_store.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "ml/serialize.hpp"

namespace mphpc::serve {

namespace {

constexpr std::string_view kMagic = "mphpc-serve-model v1 ";

// Parses "<generation> <fingerprint>" (the header after kMagic).
ModelStore::Header parse_header_fields(std::string_view fields,
                                       const std::string& path) {
  const std::size_t space = fields.find(' ');
  if (space == std::string_view::npos) {
    throw ParseError("serve model store header missing fingerprint: " + path);
  }
  ModelStore::Header header;
  try {
    header.generation =
        static_cast<long long>(parse_double(fields.substr(0, space)));
  } catch (const ParseError&) {
    throw ParseError("serve model store header has a bad generation: " + path);
  }
  header.fingerprint = std::string(trim(fields.substr(space + 1)));
  return header;
}

}  // namespace

ModelStore::ModelStore(std::string path) : path_(std::move(path)) {
  MPHPC_EXPECTS(!path_.empty());
}

std::string ModelStore::fingerprint_of(std::string_view body) {
  return format_hex64(fnv1a_64(body));
}

std::optional<ModelStore::StoredModel> ModelStore::load() const {
  if (!std::filesystem::exists(path_)) return std::nullopt;
  const std::string text = ml::load_text(path_);

  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos || !starts_with(text, kMagic)) {
    throw ParseError("serve model store has a bad header: " + path_);
  }
  const Header header = parse_header_fields(
      std::string_view(text).substr(kMagic.size(), eol - kMagic.size()), path_);

  StoredModel stored;
  stored.generation = header.generation;
  stored.fingerprint = header.fingerprint;

  const std::string_view body = std::string_view(text).substr(eol + 1);
  if (fingerprint_of(body) != stored.fingerprint) {
    throw ParseError("serve model store fingerprint mismatch (corrupt body): " +
                     path_);
  }
  stored.predictor = core::CrossArchPredictor::from_text(body);
  return stored;
}

std::optional<ModelStore::Header> ModelStore::peek_header() const {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw std::system_error(errno, std::generic_category(),
                            "serve model store open failed: " + path_);
  }
  // The header is one short line; 4 KiB is orders of magnitude more than
  // "mphpc-serve-model v1 <int64> <16 hex digits>" can occupy.
  char buffer[4096];
  std::size_t filled = 0;
  while (filled < sizeof(buffer)) {
    const ssize_t n = ::read(fd, buffer + filled, sizeof(buffer) - filled);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(),
                              "serve model store read failed: " + path_);
    }
    if (n == 0) break;
    filled += static_cast<std::size_t>(n);
    if (std::string_view(buffer, filled).find('\n') != std::string_view::npos) {
      break;
    }
  }
  ::close(fd);
  const std::string_view text(buffer, filled);
  const std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos || !starts_with(text, kMagic)) {
    throw ParseError("serve model store has a bad header: " + path_);
  }
  return parse_header_fields(text.substr(kMagic.size(), eol - kMagic.size()),
                             path_);
}

std::string ModelStore::store(const core::CrossArchPredictor& predictor,
                              long long generation) const {
  MPHPC_EXPECTS(predictor.trained() && generation >= 0);
  const std::string body = predictor.serialize_text();
  std::string fingerprint = fingerprint_of(body);
  std::string text = std::string(kMagic) + std::to_string(generation) + " " +
                     fingerprint + "\n";
  text += body;
  atomic_write_text(path_, text);
  return fingerprint;
}

RefitLease::RefitLease(std::string path, std::string holder, double ttl_s)
    : path_(std::move(path)), holder_(std::move(holder)), ttl_s_(ttl_s) {
  MPHPC_EXPECTS(!path_.empty() && !holder_.empty() && ttl_s_ > 0.0);
}

RefitLease::~RefitLease() { release(); }

RefitLease::RefitLease(RefitLease&& other) noexcept
    : path_(std::move(other.path_)),
      holder_(std::move(other.holder_)),
      ttl_s_(other.ttl_s_),
      held_(other.held_) {
  other.path_.clear();
  other.held_ = false;
}

RefitLease& RefitLease::operator=(RefitLease&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    holder_ = std::move(other.holder_);
    ttl_s_ = other.ttl_s_;
    held_ = other.held_;
    other.path_.clear();
    other.held_ = false;
  }
  return *this;
}

bool RefitLease::create_exclusive() {
  // O_EXCL is the atomic election: of N racing workers exactly one
  // creates the file; everyone else gets EEXIST.
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // Best-effort holder identity for observability; an empty lease file
  // still locks correctly.
  const char* data = holder_.data();
  std::size_t left = holder_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  ::close(fd);
  held_ = true;
  return true;
}

double RefitLease::age_s() const {
  struct stat st{};
  if (::stat(path_.c_str(), &st) != 0) return -1.0;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double now_s = std::chrono::duration<double>(now).count();
  const double mtime_s = static_cast<double>(st.st_mtim.tv_sec) +
                         static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  return now_s - mtime_s;
}

bool RefitLease::try_acquire() {
  if (!enabled() || held_) return true;
  if (create_exclusive()) return true;
  // Someone holds it. A fresh lease means a live refitter — yield. A
  // stale one means its holder died without release(); unlink and
  // re-race the O_EXCL create so concurrent takeovers still elect
  // exactly one winner.
  const double age = age_s();
  if (age >= 0.0 && age <= ttl_s_) return false;
  ::unlink(path_.c_str());
  return create_exclusive();
}

void RefitLease::refresh() noexcept {
  if (!held_) return;
  // utimensat(UTIME_NOW) bumps mtime without rewriting content.
  const struct timespec times[2] = {{0, UTIME_NOW}, {0, UTIME_NOW}};
  (void)::utimensat(AT_FDCWD, path_.c_str(), times, 0);
}

void RefitLease::release() noexcept {
  if (!held_) return;
  (void)::unlink(path_.c_str());
  held_ = false;
}

std::string RefitLease::read_holder() const {
  if (!enabled()) return {};
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {};
  char buffer[256];
  ssize_t n = 0;
  do {
    n = ::read(fd, buffer, sizeof(buffer) - 1);
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  if (n <= 0) return {};
  return std::string(buffer, static_cast<std::size_t>(n));
}

}  // namespace mphpc::serve
