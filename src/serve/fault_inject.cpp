#include "serve/fault_inject.hpp"

#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <unistd.h>

namespace mphpc::serve {
namespace {

struct PointSpec {
  std::string_view name;
  FaultSite site;
  FaultAction action;
};

// The catalog of nameable fault points. Order is documentation order
// (accept -> reply -> publish -> refit along the request/refit path).
constexpr PointSpec kPoints[] = {
    {"crash-accept", FaultSite::kAccept, FaultAction::kCrash},
    {"hang-accept", FaultSite::kAccept, FaultAction::kHang},
    {"crash-mid-reply", FaultSite::kMidReply, FaultAction::kCrash},
    {"hang-mid-reply", FaultSite::kMidReply, FaultAction::kHang},
    {"short-write-mid-reply", FaultSite::kMidReply, FaultAction::kShortWrite},
    {"crash-pre-publish", FaultSite::kPrePublish, FaultAction::kCrash},
    {"hang-pre-publish", FaultSite::kPrePublish, FaultAction::kHang},
    {"crash-mid-refit", FaultSite::kMidRefit, FaultAction::kCrash},
    {"hang-mid-refit", FaultSite::kMidRefit, FaultAction::kHang},
};

}  // namespace

std::string_view to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kAccept:
      return "accept";
    case FaultSite::kMidReply:
      return "mid-reply";
    case FaultSite::kPrePublish:
      return "pre-publish";
    case FaultSite::kMidRefit:
      return "mid-refit";
  }
  return "?";
}

std::string_view to_string(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kHang:
      return "hang";
    case FaultAction::kShortWrite:
      return "short-write";
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  static const bool armed_from_env = [] {
    const char* spec = std::getenv("MPHPC_SERVE_FAULT");
    if (spec != nullptr && *spec != '\0') injector.arm(spec);
    return true;
  }();
  (void)armed_from_env;
  return injector;
}

void FaultInjector::arm(std::string_view spec) {
  std::string_view point = spec;
  long long nth = 1;
  if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
    point = spec.substr(0, colon);
    const std::string nth_text(spec.substr(colon + 1));
    char* end = nullptr;
    nth = std::strtoll(nth_text.c_str(), &end, 10);
    if (end == nth_text.c_str() || *end != '\0' || nth <= 0) {
      throw std::invalid_argument("MPHPC_SERVE_FAULT: bad occurrence count '" +
                                  nth_text + "' (want a positive integer)");
    }
  }
  for (const PointSpec& candidate : kPoints) {
    if (candidate.name == point) {
      site_ = candidate.site;
      action_ = candidate.action;
      nth_ = nth;
      for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
      armed_.store(true, std::memory_order_release);
      return;
    }
  }
  throw std::invalid_argument("MPHPC_SERVE_FAULT: unknown fault point '" +
                              std::string(point) + "'");
}

void FaultInjector::disarm() noexcept {
  armed_.store(false, std::memory_order_release);
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

FaultAction FaultInjector::at(FaultSite site) noexcept {
  if (!armed_.load(std::memory_order_acquire)) return FaultAction::kNone;
  const auto index = static_cast<int>(site);
  // fetch_add gives every occurrence a unique ordinal, so even with
  // concurrent callers exactly one sees count == nth_ and fires.
  const long long count =
      counts_[index].fetch_add(1, std::memory_order_relaxed) + 1;
  if (site != site_ || count != nth_) return FaultAction::kNone;
  return action_;
}

long long FaultInjector::hits(FaultSite site) const noexcept {
  return counts_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

void FaultInjector::execute(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
    case FaultAction::kShortWrite:
      return;
    case FaultAction::kCrash:
      // SIGKILL on self: no unwinding, no atexit, no flush — the closest
      // portable stand-in for a power loss at this instruction.
      (void)::kill(::getpid(), SIGKILL);
      // Unreachable in practice; pause forever rather than return into
      // code that assumed the crash happened.
      [[fallthrough]];
    case FaultAction::kHang:
      // Block this thread forever without burning CPU. Heartbeats from
      // this thread stop; the supervisor's watchdog is what ends us.
      for (;;) ::poll(nullptr, 0, -1);
  }
}

}  // namespace mphpc::serve
