// mphpc-lint: repo-specific static analysis for the mphpc tree.
//
// Enforces the project's correctness conventions (DESIGN.md "Correctness
// toolchain") without libclang: files are tokenized just enough to strip
// comments and string/char literals, then scanned line-by-line by each
// rule. Registered as the `lint.mphpc` ctest, so `ctest` fails when a
// banned pattern is introduced.
//
// Rules (ids are what the suppression syntax refers to):
//   nondeterminism      rand()/srand()/std::random_device outside
//                       common/rng.hpp — all randomness must flow through
//                       the seeded mphpc::Rng streams
//   unordered-iteration range-for over a std::unordered_{map,set} variable
//                       — iteration order is unspecified and feeds
//                       nondeterminism into anything order-sensitive
//   io-in-lib           std::cout/std::cerr/printf in src/ — library code
//                       reports through return values and exceptions;
//                       only tools/ and bench/ own process output
//   raw-new             raw new/delete — ownership is vector/unique_ptr
//   pragma-once         every header starts with #pragma once
//   no-float            float where the repo-wide numeric type is double
//   function-size       function bodies over the line budget
//
// Suppressions:
//   // lint:allow rule1,rule2        suppress on that source line
//   // lint:allow-file rule1,rule2   suppress for the whole file
//
// Usage: mphpc_lint [--max-function-lines=N] [--report=FILE] [--list-rules]
//        <root>
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
// --report=FILE duplicates the findings into FILE (the `lint.mphpc` ctest
// points this at the build directory so the source tree stays clean).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

constexpr const char* kAllRules[] = {
    "nondeterminism", "unordered-iteration", "io-in-lib", "raw-new",
    "pragma-once",    "no-float",            "function-size"};

struct Violation {
  std::string file;  // path relative to the scan root
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct FileContext {
  std::string rel_path;             // relative to scan root, '/' separators
  std::vector<std::string> raw;     // original lines
  std::vector<std::string> code;    // comments and literals stripped
  std::set<std::string> file_allow; // rules suppressed file-wide
  // line number (1-based) -> rules suppressed on that line
  std::map<std::size_t, std::set<std::string>> line_allow;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `needle` occurs in `line` as a whole word (no identifier
/// character on either side).
bool contains_word(std::string_view line, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Strips //, /* */, "..."/'...' and raw-string literals, preserving line
/// structure so rule hits report real line numbers. Stripped spans become
/// spaces (keeps column-ish alignment and word boundaries intact).
std::vector<std::string> strip_comments_and_literals(
    const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  std::vector<std::string> out;
  out.reserve(raw.size());

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kCode: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
                     (i == 0 || !is_word_char(line[i - 1]))) {
            // Raw string literal: R"delim( ... )delim"
            std::size_t open = line.find('(', i + 2);
            if (open == std::string::npos) {
              i = line.size();  // malformed; bail on this line
            } else {
              const std::size_t delim_len = open - (i + 2);
              raw_delim.clear();
              raw_delim.reserve(delim_len + 2);
              raw_delim.push_back(')');
              raw_delim.append(line.data() + i + 2, delim_len);
              raw_delim.push_back('"');
              state = State::kRawString;
              i = open + 1;
            }
          } else if (c == '"') {
            state = State::kString;
            ++i;
          } else if (c == '\'') {
            state = State::kChar;
            ++i;
          } else {
            code[i] = c;
            ++i;
          }
          break;
        }
        case State::kBlockComment: {
          const std::size_t close = line.find("*/", i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + 2;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\') {
            i += 2;
          } else if (c == quote) {
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
      }
    }
    // Unterminated ordinary string/char at end of line: treat as closed
    // (the compiler would reject it anyway; multiline continuation via
    // backslash is not used in this tree).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

std::vector<std::string> split_rule_list(std::string_view s) {
  std::vector<std::string> rules;
  std::string cur;
  for (const char c : s) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) rules.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) rules.push_back(std::move(cur));
  return rules;
}

/// Parses `// lint:allow ...` and `// lint:allow-file ...` markers from
/// the raw lines (they live in comments, which the code view strips).
void parse_suppressions(FileContext& ctx) {
  for (std::size_t ln = 0; ln < ctx.raw.size(); ++ln) {
    const std::string& line = ctx.raw[ln];
    const std::size_t file_pos = line.find("lint:allow-file");
    if (file_pos != std::string::npos) {
      for (auto& r : split_rule_list(
               std::string_view(line).substr(file_pos + 15))) {
        ctx.file_allow.insert(std::move(r));
      }
      continue;
    }
    const std::size_t pos = line.find("lint:allow");
    if (pos != std::string::npos) {
      for (auto& r :
           split_rule_list(std::string_view(line).substr(pos + 10))) {
        ctx.line_allow[ln + 1].insert(std::move(r));
      }
    }
  }
}

bool suppressed(const FileContext& ctx, const std::string& rule,
                std::size_t line) {
  if (ctx.file_allow.count(rule) > 0) return true;
  const auto it = ctx.line_allow.find(line);
  return it != ctx.line_allow.end() && it->second.count(rule) > 0;
}

void report(std::vector<Violation>& out, const FileContext& ctx,
            std::size_t line, const char* rule, std::string message) {
  if (!suppressed(ctx, rule, line)) {
    out.push_back({ctx.rel_path, line, rule, std::move(message)});
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_dir(const FileContext& ctx, std::string_view dir) {
  return starts_with(ctx.rel_path, std::string(dir) + "/");
}

// ---------------------------------------------------------------- rules

void rule_nondeterminism(const FileContext& ctx, std::vector<Violation>& out) {
  // The seeded-Rng header is the one place allowed to talk about raw
  // entropy sources (it documents why it does not use them).
  if (ctx.rel_path.size() >= 14 &&
      ctx.rel_path.compare(ctx.rel_path.size() - 14, 14, "common/rng.hpp") == 0) {
    return;
  }
  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    const std::string& line = ctx.code[ln];
    if (contains_word(line, "rand") || contains_word(line, "srand")) {
      report(out, ctx, ln + 1, "nondeterminism",
             "rand()/srand() is banned; use mphpc::Rng with a derived seed");
    }
    if (line.find("random_device") != std::string::npos) {
      report(out, ctx, ln + 1, "nondeterminism",
             "std::random_device is banned outside common/rng.hpp; "
             "experiments must be bit-reproducible");
    }
  }
}

void rule_unordered_iteration(const FileContext& ctx,
                              std::vector<Violation>& out) {
  // Pass 1: names of variables/members declared with an unordered
  // container type in this file.
  std::set<std::string> unordered_names;
  for (const std::string& line : ctx.code) {
    for (const char* kind : {"unordered_map", "unordered_set"}) {
      std::size_t pos = line.find(kind);
      while (pos != std::string::npos) {
        // Skip the template argument list by matching angle brackets.
        std::size_t i = pos + std::string_view(kind).size();
        if (i < line.size() && line[i] == '<') {
          int depth = 0;
          for (; i < line.size(); ++i) {
            if (line[i] == '<') ++depth;
            if (line[i] == '>' && --depth == 0) {
              ++i;
              break;
            }
          }
          while (i < line.size() &&
                 (line[i] == ' ' || line[i] == '&' || line[i] == '*')) {
            ++i;
          }
          std::string name;
          while (i < line.size() && is_word_char(line[i])) name += line[i++];
          if (!name.empty()) unordered_names.insert(std::move(name));
        }
        pos = line.find(kind, pos + 1);
      }
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-for statements whose range expression is such a name.
  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    const std::string& line = ctx.code[ln];
    const std::size_t for_pos = line.find("for ");
    const std::size_t colon = line.find(" : ");
    if (for_pos == std::string::npos || colon == std::string::npos) continue;
    std::size_t i = colon + 3;
    std::string name;
    while (i < line.size() && is_word_char(line[i])) name += line[i++];
    if (unordered_names.count(name) > 0) {
      report(out, ctx, ln + 1, "unordered-iteration",
             "range-for over unordered container '" + name +
                 "' has unspecified order; iterate a sorted copy or an "
                 "ordered container when the result feeds output");
    }
  }
}

void rule_io_in_lib(const FileContext& ctx, std::vector<Violation>& out) {
  if (!in_dir(ctx, "src")) return;  // tools/, bench/, tests/ own their output
  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    const std::string& line = ctx.code[ln];
    if (line.find("std::cout") != std::string::npos ||
        line.find("std::cerr") != std::string::npos) {
      report(out, ctx, ln + 1, "io-in-lib",
             "std::cout/std::cerr in library code; take a std::ostream& or "
             "return data to the caller");
    }
    if (contains_word(line, "printf") || contains_word(line, "puts")) {
      report(out, ctx, ln + 1, "io-in-lib",
             "printf-family I/O in library code; format with "
             "common/strings.hpp helpers instead");
    }
  }
}

void rule_raw_new(const FileContext& ctx, std::vector<Violation>& out) {
  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    const std::string& line = ctx.code[ln];
    if (contains_word(line, "new")) {
      report(out, ctx, ln + 1, "raw-new",
             "raw 'new' is banned; use containers, std::make_unique, or "
             "value semantics");
    }
    if (contains_word(line, "delete")) {
      // "= delete" declarations are idiomatic and allowed.
      const std::size_t pos = line.find("delete");
      std::size_t j = pos;
      while (j > 0 && line[j - 1] == ' ') --j;
      if (j > 0 && line[j - 1] == '=') continue;
      report(out, ctx, ln + 1, "raw-new",
             "raw 'delete' is banned; ownership must be RAII-managed");
    }
  }
}

void rule_pragma_once(const FileContext& ctx, std::vector<Violation>& out) {
  if (ctx.rel_path.size() < 4 ||
      ctx.rel_path.compare(ctx.rel_path.size() - 4, 4, ".hpp") != 0) {
    return;
  }
  for (const std::string& line : ctx.raw) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  report(out, ctx, 1, "pragma-once", "header is missing #pragma once");
}

void rule_no_float(const FileContext& ctx, std::vector<Violation>& out) {
  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    if (contains_word(ctx.code[ln], "float")) {
      report(out, ctx, ln + 1, "no-float",
             "'float' is banned; the repo-wide numeric type is double "
             "(counter values span 12 orders of magnitude)");
    }
  }
}

/// Function-size heuristic: a '{' whose statement "head" (text since the
/// previous ';', '{' or '}') looks like a function signature opens a
/// body; the body's line span is checked against the budget. Control
/// statements, aggregates ('=') and type definitions are excluded.
void rule_function_size(const FileContext& ctx, std::size_t budget,
                        std::vector<Violation>& out) {
  static const char* kNotAFunction[] = {"if",     "for",   "while", "switch",
                                        "catch",  "class", "struct", "enum",
                                        "union",  "namespace", "do", "else",
                                        "return"};
  struct Open {
    bool is_function = false;
    std::size_t start_line = 0;
    std::string head;
  };
  std::vector<Open> stack;
  std::string head;

  for (std::size_t ln = 0; ln < ctx.code.size(); ++ln) {
    for (const char c : ctx.code[ln]) {
      if (c == '{') {
        Open open;
        open.start_line = ln + 1;
        open.head = head;
        const bool has_call_syntax =
            head.find('(') != std::string::npos &&
            head.find(')') != std::string::npos;
        bool keyword = head.find('=') != std::string::npos;
        for (const char* kw : kNotAFunction) {
          // Match the keyword as the first word or after whitespace.
          const std::size_t pos = head.find(kw);
          if (pos != std::string::npos && contains_word(head, kw)) {
            keyword = true;
            break;
          }
        }
        open.is_function = has_call_syntax && !keyword;
        stack.push_back(std::move(open));
        head.clear();
      } else if (c == '}') {
        if (!stack.empty()) {
          const Open open = stack.back();
          stack.pop_back();
          if (open.is_function) {
            const std::size_t body_lines = ln + 1 - open.start_line + 1;
            if (body_lines > budget) {
              report(out, ctx, open.start_line, "function-size",
                     "function body spans " + std::to_string(body_lines) +
                         " lines (budget " + std::to_string(budget) +
                         "); extract helpers");
            }
          }
        }
        head.clear();
      } else if (c == ';') {
        head.clear();
      } else {
        head += c;
      }
    }
    head += ' ';  // line break acts as whitespace in the statement head
  }
}

// ------------------------------------------------------------- driver

std::vector<fs::path> collect_files(const fs::path& root) {
  std::vector<fs::path> files;
  std::vector<fs::path> scan_dirs;
  for (const char* dir : {"src", "tests", "bench", "tools"}) {
    if (fs::is_directory(root / dir)) scan_dirs.push_back(root / dir);
  }
  if (scan_dirs.empty()) scan_dirs.push_back(root);  // standalone mode
  for (const fs::path& dir : scan_dirs) {
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool lint_file(const fs::path& root, const fs::path& path,
               std::size_t function_budget, std::vector<Violation>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mphpc_lint: cannot read " << path.string() << "\n";
    return false;
  }
  FileContext ctx;
  ctx.rel_path = fs::relative(path, root).generic_string();
  std::string line;
  while (std::getline(in, line)) ctx.raw.push_back(line);
  ctx.code = strip_comments_and_literals(ctx.raw);
  parse_suppressions(ctx);

  rule_nondeterminism(ctx, out);
  rule_unordered_iteration(ctx, out);
  rule_io_in_lib(ctx, out);
  rule_raw_new(ctx, out);
  rule_pragma_once(ctx, out);
  rule_no_float(ctx, out);
  rule_function_size(ctx, function_budget, out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t function_budget = 150;
  fs::path root;
  fs::path report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* rule : kAllRules) std::cout << rule << "\n";
      return 0;
    }
    if (starts_with(arg, "--max-function-lines=")) {
      function_budget = static_cast<std::size_t>(
          std::stoul(std::string(arg.substr(21))));
      continue;
    }
    if (starts_with(arg, "--report=")) {
      report_path = fs::path(std::string(arg.substr(9)));
      continue;
    }
    if (starts_with(arg, "--")) {
      std::cerr << "mphpc_lint: unknown option " << arg << "\n";
      return 2;
    }
    if (!root.empty()) {
      std::cerr << "mphpc_lint: multiple roots given\n";
      return 2;
    }
    root = fs::path(std::string(arg));
  }
  if (root.empty()) {
    std::cerr << "usage: mphpc_lint [--max-function-lines=N] [--report=FILE] "
                 "[--list-rules] <root>\n";
    return 2;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "mphpc_lint: not a directory: " << root.string() << "\n";
    return 2;
  }

  const std::vector<fs::path> files = collect_files(root);
  std::vector<Violation> violations;
  bool io_ok = true;
  for (const fs::path& f : files) {
    io_ok = lint_file(root, f, function_budget, violations) && io_ok;
  }

  std::ostringstream report;
  for (const Violation& v : violations) {
    report << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
           << "\n";
  }
  report << "mphpc_lint: " << violations.size() << " violation(s) in "
         << files.size() << " file(s) scanned\n";
  std::cout << report.str();
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << report.str();
    if (!out) {
      std::cerr << "mphpc_lint: cannot write report " << report_path.string()
                << "\n";
      return 2;
    }
  }
  if (!io_ok) return 2;
  return violations.empty() ? 0 : 1;
}
