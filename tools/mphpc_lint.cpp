// mphpc-lint: repo-specific static analysis for the mphpc tree.
//
// Enforces the project's correctness conventions (DESIGN.md "Correctness
// toolchain") without libclang. v2 rebuilds the scanner around a real
// token stream (identifier / keyword / literal / punctuator, with brace
// and paren nesting tracked) plus a two-pass cross-file symbol index:
// pass 1 indexes declarations in src/**/*.hpp (public functions, class
// members, mutex/atomic fields), pass 2 runs every rule over definitions
// with that index available. Registered as the `lint.mphpc` ctest, so
// `ctest` fails when a banned pattern is introduced.
//
// Rules (ids are what the suppression syntax refers to):
//   nondeterminism      rand()/srand()/std::random_device outside
//                       common/rng.hpp — all randomness must flow through
//                       the seeded mphpc::Rng streams
//   unordered-iteration range-for over a std::unordered_{map,set} variable
//                       — iteration order is unspecified and feeds
//                       nondeterminism into anything order-sensitive
//   io-in-lib           std::cout/std::cerr/printf in src/ — library code
//                       reports through return values and exceptions;
//                       only tools/ and bench/ own process output
//   raw-new             raw new/delete — ownership is vector/unique_ptr
//   pragma-once         every header starts with #pragma once
//   no-float            float where the repo-wide numeric type is double
//   function-size       function bodies over the line budget
//   ref-capture-in-parallel
//                       a by-reference lambda handed to ThreadPool::submit
//                       / parallel_chunks / parallel_for that writes a
//                       captured non-atomic variable shared across chunks
//                       (writes under a lock_guard/unique_lock scope or
//                       through a per-chunk subscript are exempt)
//   lock-held-blocking-call
//                       calling ThreadPool submit/wait_idle/parallel_* or
//                       std::condition_variable::wait while a lock_guard/
//                       unique_lock over a *different* mutex is in scope —
//                       lock-ordering / deadlock hazard
//   contract-coverage   public functions declared in src/**/*.hpp whose
//                       definitions contain no MPHPC_EXPECTS/ASSERT/ENSURES
//                       yet take pointer/span/index parameters (the
//                       cross-file index makes the decl->def match)
//   raw-artifact-write  std::ofstream/fopen/freopen anywhere in src/
//                       outside common/atomic_file.cpp — every artifact
//                       goes through mphpc::atomic_write_text (crash-safe
//                       write-temp -> fsync -> rename)
//   unordered-accumulation
//                       floating-point '+=' into a shared accumulator
//                       inside a parallel_chunks/parallel_for body — the
//                       summation order depends on the thread count even
//                       when the write itself is lock-protected
//   quantized-compare   an ordering comparison mixing a declared double
//                       with a declared uint8_t and no cast at the site —
//                       uint8_t here means quantized bin codes (ordinal
//                       cut indices, see ml/compiled_ensemble.hpp), and
//                       comparing one against a raw feature double
//                       silently promotes the code to its index *value*:
//                       a unit error. static_cast at the site states the
//                       intent and satisfies the rule
//
// Suppressions (all three forms take a comma/space separated rule list):
//   // lint:allow rule1,rule2            suppress on that source line
//   // lint:allow-next-line rule1,rule2  suppress on the following line
//   // lint:allow-file rule1,rule2       suppress for the whole file
//
// Baseline ratchet:
//   --baseline=FILE loads a checked-in JSON baseline (tools/
//   lint_baseline.json). Findings covered by the baseline are reported as
//   warnings and do not affect the exit status; findings beyond the
//   baselined count for a (file, rule) pair are errors. A baseline entry
//   whose findings have (partly) disappeared is itself an error
//   ("baseline-stale"): the baseline may only shrink, so fixing a
//   violation forces the matching entry to be removed in the same change.
//   --write-baseline=FILE snapshots the current findings (exit 0).
//
// Reports:
//   --format=text (default) or --format=json selects the stdout format.
//   --report=FILE duplicates the report into FILE (parent directories are
//   created; a .json extension selects the JSON form regardless of
//   --format). The JSON schema is "mphpc-lint-report-v1":
//     {"schema","root","files_scanned","errors","warnings",
//      "per_rule":{rule:{"errors","warnings"}},
//      "findings":[{"file","line","rule","severity","message"}]}
//
// Usage: mphpc_lint [--max-function-lines=N] [--format=text|json]
//        [--report=FILE] [--baseline=FILE] [--write-baseline=FILE]
//        [--only=r1,r2] [--disable=r1,r2] [--jobs=N] [--list-rules] <root>
// Exit status: 0 clean (baselined warnings allowed), 1 errors found,
// 2 usage/IO error. The file scan runs on a ThreadPool (--jobs=N, 0 =
// hardware concurrency, 1 = serial); per-file results are merged in
// sorted file order so the output is identical at any thread count.
#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.hpp"
#include "common/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kAllRules[] = {
    "nondeterminism",       "unordered-iteration",
    "io-in-lib",            "raw-new",
    "pragma-once",          "no-float",
    "function-size",        "ref-capture-in-parallel",
    "lock-held-blocking-call", "contract-coverage",
    "raw-artifact-write",   "unordered-accumulation",
    "quantized-compare"};

bool is_known_rule(std::string_view r) {
  for (const char* rule : kAllRules) {
    if (r == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------- tokens

enum class TokKind { kIdent, kKeyword, kLiteral, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based source line
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "alignas",  "alignof",   "auto",     "bool",      "break",
      "case",     "catch",     "char",     "class",     "const",
      "consteval", "constexpr", "constinit", "continue", "decltype",
      "default",  "delete",    "do",       "double",    "else",
      "enum",     "explicit",  "extern",   "false",     "float",
      "for",      "friend",    "goto",     "if",        "inline",
      "int",      "long",      "mutable",  "namespace", "new",
      "noexcept", "nullptr",   "operator", "private",   "protected",
      "public",   "register",  "return",   "short",     "signed",
      "sizeof",   "static",    "struct",   "switch",    "template",
      "this",     "throw",     "true",     "try",       "typedef",
      "typename", "union",     "unsigned", "using",     "virtual",
      "void",     "volatile",  "while"};
  return kKeywords.count(s) > 0;
}

/// Strips //, /* */, "..."/'...' and raw-string literals, preserving line
/// structure so rule hits report real line numbers. Stripped spans become
/// spaces, except that the opening quote of a string/char literal is kept
/// as a one-character marker so the tokenizer can emit a literal token.
std::vector<std::string> strip_comments_and_literals(
    const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  std::vector<std::string> out;
  out.reserve(raw.size());

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kCode: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
                     (i == 0 || !is_word_char(line[i - 1]))) {
            // Raw string literal: R"delim( ... )delim"
            std::size_t open = line.find('(', i + 2);
            if (open == std::string::npos) {
              i = line.size();  // malformed; bail on this line
            } else {
              const std::size_t delim_len = open - (i + 2);
              raw_delim.clear();
              raw_delim.reserve(delim_len + 2);
              raw_delim.push_back(')');
              raw_delim.append(line.data() + i + 2, delim_len);
              raw_delim.push_back('"');
              code[i] = '"';  // literal marker
              state = State::kRawString;
              i = open + 1;
            }
          } else if (c == '"') {
            code[i] = '"';  // literal marker
            state = State::kString;
            ++i;
          } else if (c == '\'') {
            code[i] = '\'';  // literal marker
            state = State::kChar;
            ++i;
          } else {
            code[i] = c;
            ++i;
          }
          break;
        }
        case State::kBlockComment: {
          const std::size_t close = line.find("*/", i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + 2;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\') {
            i += 2;
          } else if (c == quote) {
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
      }
    }
    // Unterminated ordinary string/char at end of line: treat as closed
    // (the compiler would reject it anyway; multiline continuation via
    // backslash is not used in this tree).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

/// Marks preprocessor lines (and their backslash continuations); those
/// lines are excluded from the token stream so #include <...> and macro
/// definitions cannot confuse nesting or rule patterns.
std::vector<char> preprocessor_lines(const std::vector<std::string>& raw) {
  std::vector<char> pp(raw.size(), 0);
  bool continued = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bool is_pp = continued;
    if (!is_pp) {
      for (const char c : raw[i]) {
        if (c == ' ' || c == '\t') continue;
        is_pp = c == '#';
        break;
      }
    }
    pp[i] = is_pp ? 1 : 0;
    continued = is_pp && !raw[i].empty() && raw[i].back() == '\\';
  }
  return pp;
}

/// Greedy tokenizer over the stripped code view. Multi-character
/// punctuators are emitted as single tokens so rules can distinguish
/// '=' from '==' and '::' from ':'.
std::vector<Token> tokenize(const std::vector<std::string>& code,
                            const std::vector<char>& pp) {
  static const char* kPunct3[] = {"<<=", ">>=", "->*", "..."};
  static const char* kPunct2[] = {"::", "->", "++", "--", "+=", "-=", "*=",
                                  "/=", "%=", "&=", "|=", "^=", "==", "!=",
                                  "<=", ">=", "&&", "||", "<<", ">>"};
  std::vector<Token> toks;
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    if (ln < pp.size() && pp[ln] != 0) continue;
    const std::string& s = code[ln];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      Token tok;
      tok.line = ln + 1;
      if (is_word_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        while (i < s.size() && is_word_char(s[i])) tok.text += s[i++];
        tok.kind = is_keyword(tok.text) ? TokKind::kKeyword : TokKind::kIdent;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        // Number literal, including 1e-5 / 0x1.8p-3 exponent forms.
        while (i < s.size() &&
               (is_word_char(s[i]) || s[i] == '.' ||
                ((s[i] == '+' || s[i] == '-') && i > 0 &&
                 (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                  s[i - 1] == 'P')))) {
          tok.text += s[i++];
        }
        tok.kind = TokKind::kLiteral;
      } else if (c == '"' || c == '\'') {
        tok.text = c;
        tok.kind = TokKind::kLiteral;
        ++i;
      } else {
        tok.kind = TokKind::kPunct;
        bool matched = false;
        for (const char* p : kPunct3) {
          if (s.compare(i, 3, p) == 0) {
            tok.text = p;
            i += 3;
            matched = true;
            break;
          }
        }
        if (!matched) {
          for (const char* p : kPunct2) {
            if (s.compare(i, 2, p) == 0) {
              tok.text = p;
              i += 2;
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          tok.text = c;
          ++i;
        }
      }
      toks.push_back(std::move(tok));
    }
  }
  return toks;
}

// ----------------------------------------------------------- file context

struct FileContext {
  std::string rel_path;             // relative to scan root, '/' separators
  bool in_src = false;              // under src/
  bool is_header = false;           // .hpp/.h
  std::vector<std::string> raw;     // original lines
  std::vector<std::string> code;    // comments and literals stripped
  std::vector<Token> toks;          // token stream over `code`
  std::set<std::string> file_allow; // rules suppressed file-wide
  // line number (1-based) -> rules suppressed on that line
  std::map<std::size_t, std::set<std::string>> line_allow;
};

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool warning = false;  // true when covered by the baseline
};

std::vector<std::string> split_rule_list(std::string_view s) {
  std::vector<std::string> rules;
  std::string cur;
  for (const char c : s) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) rules.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) rules.push_back(std::move(cur));
  return rules;
}

/// Parses `lint:allow`, `lint:allow-next-line` and `lint:allow-file`
/// markers from the raw lines (they live in comments, which the code view
/// strips). Checked longest-marker-first because they share a prefix.
void parse_suppressions(FileContext& ctx) {
  for (std::size_t ln = 0; ln < ctx.raw.size(); ++ln) {
    const std::string& line = ctx.raw[ln];
    const std::size_t next_pos = line.find("lint:allow-next-line");
    if (next_pos != std::string::npos) {
      for (auto& r :
           split_rule_list(std::string_view(line).substr(next_pos + 20))) {
        ctx.line_allow[ln + 2].insert(std::move(r));
      }
      continue;
    }
    const std::size_t file_pos = line.find("lint:allow-file");
    if (file_pos != std::string::npos) {
      for (auto& r :
           split_rule_list(std::string_view(line).substr(file_pos + 15))) {
        ctx.file_allow.insert(std::move(r));
      }
      continue;
    }
    const std::size_t pos = line.find("lint:allow");
    if (pos != std::string::npos) {
      for (auto& r : split_rule_list(std::string_view(line).substr(pos + 10))) {
        ctx.line_allow[ln + 1].insert(std::move(r));
      }
    }
  }
}

bool suppressed(const FileContext& ctx, const std::string& rule,
                std::size_t line) {
  if (ctx.file_allow.count(rule) > 0) return true;
  const auto it = ctx.line_allow.find(line);
  return it != ctx.line_allow.end() && it->second.count(rule) > 0;
}

void report(std::vector<Finding>& out, const FileContext& ctx,
            std::size_t line, const char* rule, std::string message) {
  if (!suppressed(ctx, rule, line)) {
    out.push_back({ctx.rel_path, line, rule, std::move(message), false});
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// ----------------------------------------------------- token navigation

/// t[i] must be "<". Returns the index just past the matching ">",
/// treating ">>" as two closers. Bails out (returns i + 1) when the span
/// does not look like a template argument list after all.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  std::size_t steps = 0;
  for (std::size_t j = i; j < t.size() && steps < 400; ++j, ++steps) {
    if (t[j].kind != TokKind::kPunct) continue;
    const std::string& x = t[j].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return j + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (x == ";" || x == "{") {
      break;  // statement ended: it was a comparison, not a template list
    }
  }
  return i + 1;
}

/// t[i] must be `open`. Returns the index of the matching `close`, or
/// t.size() when unbalanced.
std::size_t match_close(const std::vector<Token>& t, std::size_t i,
                        const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == open) {
      ++depth;
    } else if (t[j].text == close && --depth == 0) {
      return j;
    }
  }
  return t.size();
}

bool tok_is(const std::vector<Token>& t, std::size_t j, const char* text) {
  return j < t.size() && t[j].text == text;
}

/// Joins token texts over [b, e) — used for mutex expressions in messages.
std::string join_tokens(const std::vector<Token>& t, std::size_t b,
                        std::size_t e) {
  std::string s;
  for (std::size_t j = b; j < e && j < t.size(); ++j) s += t[j].text;
  return s;
}

// ------------------------------------------------- function definitions

/// A function definition found in the token stream: `cls` is the class
/// from a `Cls::name` qualifier or the enclosing class for inline member
/// definitions; `body_open`/`body_close` index the '{' and '}' tokens.
struct FnDef {
  std::string cls;
  std::string name;
  std::size_t line = 0;       // line of the name token (or the '{')
  std::size_t head_begin = 0; // first token of the signature
  std::size_t body_open = 0;
  std::size_t body_close = 0;
  std::size_t paren_open = 0;  // '(' of the parameter list (0 = unknown)
};

/// Extracts the `Cls::name (` candidate from a statement head [b, e).
/// Returns false for heads with no callable-looking paren group (control
/// statements are rejected separately by head_is_function).
bool signature_name(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    FnDef& def) {
  int paren = 0;
  int angle = 0;
  for (std::size_t j = b; j < e; ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    const std::string& x = t[j].text;
    if (x == "<") {
      ++angle;
    } else if (x == ">") {
      angle = std::max(0, angle - 1);
    } else if (x == ">>") {
      angle = std::max(0, angle - 2);
    } else if (x == "(") {
      if (paren == 0 && angle == 0 && j > b &&
          t[j - 1].kind == TokKind::kIdent) {
        const bool dtor =
            j >= b + 2 && t[j - 2].kind == TokKind::kPunct && t[j - 2].text == "~";
        if (!dtor) {
          def.name = t[j - 1].text;
          def.line = t[j - 1].line;
          def.paren_open = j;
          def.cls.clear();
          if (j >= b + 3 && t[j - 2].text == "::" &&
              t[j - 3].kind == TokKind::kIdent) {
            def.cls = t[j - 3].text;
          }
          return true;
        }
      }
      ++paren;
    } else if (x == ")") {
      paren = std::max(0, paren - 1);
    }
  }
  return false;
}

/// Mirrors the v1 heuristic: a head is a function signature when it has a
/// '('/')' pair and contains neither '=' nor a control/type keyword.
bool head_is_function(const std::vector<Token>& t, std::size_t b,
                      std::size_t e) {
  static const std::set<std::string> kNotAFunction = {
      "if",    "for",   "while",     "switch", "catch", "class", "struct",
      "enum",  "union", "namespace", "do",     "else",  "return"};
  bool has_open = false;
  bool has_close = false;
  for (std::size_t j = b; j < e; ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "(") has_open = true;
      if (tok.text == ")") has_close = true;
      if (tok.text == "=") return false;
    } else if (tok.kind == TokKind::kKeyword && kNotAFunction.count(tok.text) > 0) {
      return false;
    }
  }
  return has_open && has_close;
}

/// Scope classification for the brace walker.
struct Scope {
  enum class Kind { kOther, kFunction, kClass, kNamespace };
  Kind kind = Kind::kOther;
  std::string name;   // class or namespace name
  FnDef def;          // valid when kind == kFunction
  std::size_t open = 0;
};

/// Classifies the '{' at token index j given its statement head [head, j)
/// and the enclosing class stack (for inline member definitions).
Scope classify_scope(const std::vector<Token>& t, std::size_t head,
                     std::size_t j, const std::vector<Scope>& stack) {
  Scope s;
  s.open = j;
  bool saw_enum = false;
  std::size_t class_kw = t.size();
  bool saw_namespace = false;
  for (std::size_t k = head; k < j; ++k) {
    if (t[k].kind != TokKind::kKeyword) continue;
    if (t[k].text == "enum") saw_enum = true;
    if (t[k].text == "class" || t[k].text == "struct") class_kw = k;
    if (t[k].text == "namespace") saw_namespace = true;
  }
  if (saw_namespace) {
    s.kind = Scope::Kind::kNamespace;
    for (std::size_t k = head; k < j; ++k) {
      if (t[k].kind == TokKind::kKeyword && t[k].text == "namespace") {
        // Qualified names (`namespace mphpc::detail`) keep the last
        // component — that is the one the detail/internal exemption needs.
        for (std::size_t q = k + 1; q < j; ++q) {
          if (t[q].kind == TokKind::kIdent) {
            s.name = t[q].text;
          } else if (!tok_is(t, q, "::")) {
            break;
          }
        }
      }
    }
    return s;
  }
  if (class_kw != t.size() && !saw_enum) {
    s.kind = Scope::Kind::kClass;
    for (std::size_t k = class_kw + 1; k < j; ++k) {
      if (t[k].kind == TokKind::kIdent) {
        s.name = t[k].text;
        break;
      }
      if (t[k].kind == TokKind::kPunct && t[k].text != "[" && t[k].text != "]") {
        break;  // attributes only; ':' or similar ends the name search
      }
    }
    return s;
  }
  if (head_is_function(t, head, j) && signature_name(t, head, j, s.def)) {
    s.kind = Scope::Kind::kFunction;
    s.def.head_begin = head;
    s.def.body_open = j;
    if (s.def.cls.empty()) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == Scope::Kind::kClass) {
          s.def.cls = it->name;
          break;
        }
      }
    }
    return s;
  }
  s.kind = Scope::Kind::kOther;
  return s;
}

/// Walks the token stream and returns every function definition (token
/// span of the body plus the resolved Cls::name), innermost-first.
std::vector<FnDef> find_function_defs(const FileContext& ctx) {
  const std::vector<Token>& t = ctx.toks;
  std::vector<FnDef> defs;
  std::vector<Scope> stack;
  std::size_t head = 0;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "{") {
      stack.push_back(classify_scope(t, head, j, stack));
      head = j + 1;
    } else if (t[j].text == "}") {
      if (!stack.empty()) {
        Scope s = std::move(stack.back());
        stack.pop_back();
        if (s.kind == Scope::Kind::kFunction) {
          s.def.body_close = j;
          if (s.def.line == 0) s.def.line = t[s.open].line;
          defs.push_back(std::move(s.def));
        }
      }
      head = j + 1;
    } else if (t[j].text == ";") {
      head = j + 1;
    }
  }
  return defs;
}

// ----------------------------------------------------------- symbol index

/// A public function declared in a src/ header.
struct PublicFn {
  std::string file;
  std::size_t line = 0;
  bool wants_contracts = false;  // takes pointer/span/index parameters
};

/// Cross-file index built in pass 1 over src/**/*.hpp: public functions
/// keyed "Cls::name" (members) or "name" (free functions), plus the names
/// of mutex/atomic/condition_variable members and locals (used to exempt
/// synchronized state from the capture rules).
struct SymbolIndex {
  std::map<std::string, PublicFn> fns;
  std::set<std::string> sync_names;
};

/// Records every identifier declared with a synchronization type:
/// `std::mutex m`, `std::atomic<int> n`, `std::condition_variable cv`...
void collect_sync_names(const std::vector<Token>& t,
                        std::set<std::string>& out) {
  static const std::set<std::string> kSyncTypes = {
      "mutex",       "shared_mutex",          "recursive_mutex",
      "atomic",      "atomic_flag",           "condition_variable",
      "condition_variable_any"};
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent || kSyncTypes.count(t[j].text) == 0) {
      continue;
    }
    std::size_t k = j + 1;
    if (tok_is(t, k, "<")) k = skip_angles(t, k);
    if (k < t.size() && t[k].kind == TokKind::kIdent) out.insert(t[k].text);
  }
}

/// True when the parameter list (popen .. its matching close) contains a
/// pointer, a std::span, or a size_t parameter with an index-like name —
/// the shapes MPHPC_EXPECTS exists to validate at entry points.
bool params_want_contracts(const std::vector<Token>& t, std::size_t popen) {
  const std::size_t pclose = match_close(t, popen, "(", ")");
  bool has_size_t = false;
  bool has_index_name = false;
  for (std::size_t j = popen + 1; j < pclose; ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::kPunct && tok.text == "*") return true;
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "span") return true;
      if (tok.text == "size_t") has_size_t = true;
      std::string lower = tok.text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                     });
      if (lower.find("idx") != std::string::npos ||
          lower.find("index") != std::string::npos) {
        has_index_name = true;
      }
    }
  }
  return has_size_t && has_index_name;
}

/// Pass 1 over one src/ header: records public function declarations
/// (both `;`-terminated prototypes and inline `{` definitions) and
/// synchronization member names into the index.
void index_header(const FileContext& ctx, SymbolIndex& idx) {
  collect_sync_names(ctx.toks, idx.sync_names);
  const std::vector<Token>& t = ctx.toks;

  struct Ctx {
    Scope::Kind kind = Scope::Kind::kOther;
    std::string name;
    bool access_public = true;
  };
  std::vector<Ctx> stack;
  std::size_t head = 0;

  const auto in_detail_namespace = [&stack]() {
    for (const Ctx& c : stack) {
      if (c.kind == Scope::Kind::kNamespace &&
          (c.name == "detail" || c.name == "internal")) {
        return true;
      }
    }
    return false;
  };
  const auto record = [&](std::size_t b, std::size_t e) {
    // Declarations are indexable from namespace scope or a public class
    // section. Reject heads carrying control keywords or a '=' outside
    // parens (member initializers), but allow default arguments and the
    // pure-virtual `= 0` tail.
    for (const Ctx& c : stack) {
      if (c.kind == Scope::Kind::kFunction) return;  // inside a body
    }
    if (!stack.empty() && stack.back().kind == Scope::Kind::kClass &&
        !stack.back().access_public) {
      return;
    }
    if (in_detail_namespace()) return;
    int paren = 0;
    for (std::size_t k = b; k < e; ++k) {
      if (t[k].kind != TokKind::kPunct) continue;
      if (t[k].text == "(") ++paren;
      if (t[k].text == ")") paren = std::max(0, paren - 1);
      if (t[k].text == "=" && paren == 0) {
        const bool pure_virtual =
            k + 1 < e && t[k + 1].kind == TokKind::kLiteral && t[k + 1].text == "0";
        if (!pure_virtual) return;
      }
    }
    FnDef def;
    if (!head_is_function(t, b, std::min(e, t.size())) &&
        /* allow `= 0` heads that head_is_function rejects: re-test below */
        true) {
      // head_is_function rejects any '='; re-run the keyword/paren test
      // with the `= 0` tail cut off.
      std::size_t cut = e;
      for (std::size_t k = b; k < e; ++k) {
        if (t[k].kind == TokKind::kPunct && t[k].text == "=") {
          cut = k;
          break;
        }
      }
      if (!head_is_function(t, b, cut)) return;
      e = cut;
    }
    if (!signature_name(t, b, e, def)) return;
    if (def.cls.empty() && !stack.empty() &&
        stack.back().kind == Scope::Kind::kClass) {
      def.cls = stack.back().name;
    }
    const std::string key =
        def.cls.empty() ? def.name : def.cls + "::" + def.name;
    PublicFn& fn = idx.fns[key];
    if (fn.file.empty()) {
      fn.file = ctx.rel_path;
      fn.line = def.line;
    }
    fn.wants_contracts =
        fn.wants_contracts || params_want_contracts(t, def.paren_open);
  };

  for (std::size_t j = 0; j < t.size(); ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::kKeyword &&
        (tok.text == "public" || tok.text == "private" ||
         tok.text == "protected") &&
        tok_is(t, j + 1, ":") && !stack.empty() &&
        stack.back().kind == Scope::Kind::kClass) {
      stack.back().access_public = tok.text == "public";
      head = j + 2;
      ++j;
      continue;
    }
    if (tok.kind != TokKind::kPunct) continue;
    if (tok.text == "{") {
      // Reuse the definition classifier; also index inline definitions.
      std::vector<Scope> dummy;
      for (const Ctx& c : stack) {
        Scope s;
        s.kind = c.kind;
        s.name = c.name;
        dummy.push_back(std::move(s));
      }
      const Scope s = classify_scope(t, head, j, dummy);
      if (s.kind == Scope::Kind::kFunction) record(head, j);
      Ctx c;
      c.kind = s.kind;
      c.name = s.name;
      c.access_public = true;
      if (s.kind == Scope::Kind::kClass) {
        // `class` starts private, `struct` starts public.
        for (std::size_t k = head; k < j; ++k) {
          if (t[k].kind == TokKind::kKeyword) {
            if (t[k].text == "class") c.access_public = false;
            if (t[k].text == "struct") c.access_public = true;
          }
        }
      }
      stack.push_back(std::move(c));
      head = j + 1;
    } else if (tok.text == "}") {
      if (!stack.empty()) stack.pop_back();
      head = j + 1;
    } else if (tok.text == ";") {
      record(head, j);
      head = j + 1;
    }
  }
}

// ---------------------------------------------------------------- rules

void rule_nondeterminism(const FileContext& ctx, std::vector<Finding>& out) {
  // The seeded-Rng header is the one place allowed to talk about raw
  // entropy sources (it documents why it does not use them).
  if (ends_with(ctx.rel_path, "common/rng.hpp")) return;
  for (const Token& tok : ctx.toks) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "rand" || tok.text == "srand") {
      report(out, ctx, tok.line, "nondeterminism",
             "rand()/srand() is banned; use mphpc::Rng with a derived seed");
    } else if (tok.text == "random_device") {
      report(out, ctx, tok.line, "nondeterminism",
             "std::random_device is banned outside common/rng.hpp; "
             "experiments must be bit-reproducible");
    }
  }
}

void rule_unordered_iteration(const FileContext& ctx,
                              std::vector<Finding>& out) {
  const std::vector<Token>& t = ctx.toks;
  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent ||
        (t[j].text != "unordered_map" && t[j].text != "unordered_set")) {
      continue;
    }
    if (!tok_is(t, j + 1, "<")) continue;
    std::size_t k = skip_angles(t, j + 1);
    while (k < t.size() && t[k].kind == TokKind::kPunct &&
           (t[k].text == "&" || t[k].text == "*")) {
      ++k;
    }
    if (k < t.size() && t[k].kind == TokKind::kKeyword && t[k].text == "const") {
      ++k;
    }
    if (k < t.size() && t[k].kind == TokKind::kIdent) {
      unordered_names.insert(t[k].text);
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-for statements whose range expression is such a name.
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (t[j].kind != TokKind::kKeyword || t[j].text != "for" ||
        !tok_is(t, j + 1, "(")) {
      continue;
    }
    const std::size_t close = match_close(t, j + 1, "(", ")");
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (t[k].kind != TokKind::kPunct) continue;
      if (t[k].text == "(") ++depth;
      if (t[k].text == ")") --depth;
      if (t[k].text == ":" && depth == 1 && k + 1 < close &&
          t[k + 1].kind == TokKind::kIdent &&
          unordered_names.count(t[k + 1].text) > 0) {
        report(out, ctx, t[k + 1].line, "unordered-iteration",
               "range-for over unordered container '" + t[k + 1].text +
                   "' has unspecified order; iterate a sorted copy or an "
                   "ordered container when the result feeds output");
      }
    }
  }
}

void rule_io_in_lib(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.in_src) return;  // tools/, bench/, tests/ own their output
  const std::vector<Token>& t = ctx.toks;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent) continue;
    if ((t[j].text == "cout" || t[j].text == "cerr") && j > 0 &&
        t[j - 1].text == "::") {
      report(out, ctx, t[j].line, "io-in-lib",
             "std::cout/std::cerr in library code; take a std::ostream& or "
             "return data to the caller");
    } else if (t[j].text == "printf" || t[j].text == "puts") {
      report(out, ctx, t[j].line, "io-in-lib",
             "printf-family I/O in library code; format with "
             "common/strings.hpp helpers instead");
    }
  }
}

void rule_raw_new(const FileContext& ctx, std::vector<Finding>& out) {
  const std::vector<Token>& t = ctx.toks;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kKeyword) continue;
    if (t[j].text == "new") {
      report(out, ctx, t[j].line, "raw-new",
             "raw 'new' is banned; use containers, std::make_unique, or "
             "value semantics");
    } else if (t[j].text == "delete") {
      // "= delete" declarations are idiomatic and allowed.
      if (j > 0 && t[j - 1].kind == TokKind::kPunct && t[j - 1].text == "=") {
        continue;
      }
      report(out, ctx, t[j].line, "raw-new",
             "raw 'delete' is banned; ownership must be RAII-managed");
    }
  }
}

void rule_pragma_once(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ends_with(ctx.rel_path, ".hpp")) return;
  for (const std::string& line : ctx.raw) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  report(out, ctx, 1, "pragma-once", "header is missing #pragma once");
}

void rule_no_float(const FileContext& ctx, std::vector<Finding>& out) {
  for (const Token& tok : ctx.toks) {
    if (tok.kind == TokKind::kKeyword && tok.text == "float") {
      report(out, ctx, tok.line, "no-float",
             "'float' is banned; the repo-wide numeric type is double "
             "(counter values span 12 orders of magnitude)");
    }
  }
}

void rule_function_size(const FileContext& ctx, std::size_t budget,
                        const std::vector<FnDef>& defs,
                        std::vector<Finding>& out) {
  const std::vector<Token>& t = ctx.toks;
  for (const FnDef& def : defs) {
    const std::size_t open_line = t[def.body_open].line;
    const std::size_t close_line = t[def.body_close].line;
    const std::size_t body_lines = close_line - open_line + 1;
    if (body_lines > budget) {
      report(out, ctx, open_line, "function-size",
             "function body spans " + std::to_string(body_lines) +
                 " lines (budget " + std::to_string(budget) +
                 "); extract helpers");
    }
  }
}

// ----------------------------------------- parallel-lambda shared engine

/// One write to a captured variable inside a lambda handed to the pool.
struct ParWrite {
  std::string target;
  std::string op;        // "=", "+=", "++", ...
  std::size_t line = 0;
  bool locked = false;       // under an active lock_guard/unique_lock scope
  bool captured_ref = false; // captured by reference (default or explicit)
};

/// A by-reference lambda argument of submit/parallel_chunks/parallel_for.
struct ParLambda {
  std::string call;  // "submit", "parallel_chunks", "parallel_for"
  std::size_t line = 0;
  std::vector<ParWrite> writes;
};

/// True when token j looks like a call site (not a definition signature):
/// preceded by '.', '->', a statement boundary, or an argument separator.
bool looks_like_call(const std::vector<Token>& t, std::size_t j) {
  if (j == 0) return true;
  const Token& p = t[j - 1];
  if (p.kind != TokKind::kPunct) return false;  // `void submit(`: a signature
  if (p.text == "::" || p.text == "~") return false;  // `Cls::submit(`: a def
  return p.text == "." || p.text == "->" || p.text == ";" || p.text == "{" ||
         p.text == "}" || p.text == "(" || p.text == ",";
}

/// Collects identifiers declared inside [b, e): parameters, `Type name`
/// declarations, range-for variables, and structured bindings. Preceding
/// '&'/'*' with a type before them count as declarations too.
std::set<std::string> collect_locals(const std::vector<Token>& t,
                                     std::size_t b, std::size_t e) {
  std::set<std::string> locals;
  const auto type_ish = [&](std::size_t k) {
    if (t[k].kind == TokKind::kIdent) return true;
    if (t[k].kind == TokKind::kKeyword) {
      return t[k].text == "auto" || t[k].text == "const" ||
             t[k].text == "double" || t[k].text == "int" ||
             t[k].text == "bool" || t[k].text == "char" ||
             t[k].text == "long" || t[k].text == "short" ||
             t[k].text == "unsigned" || t[k].text == "signed";
    }
    return false;
  };
  for (std::size_t j = b; j < e && j < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent) continue;
    // Structured binding: auto [a, b] = ...
    if (t[j].text.empty()) continue;
    if (j > b && t[j - 1].kind == TokKind::kPunct &&
        (t[j - 1].text == "&" || t[j - 1].text == "*")) {
      if (j >= b + 2 && type_ish(j - 2)) locals.insert(t[j].text);
      continue;
    }
    if (j > b && type_ish(j - 1) &&
        !(t[j - 1].kind == TokKind::kKeyword && t[j - 1].text == "return")) {
      // `size_t i`, `double s`, `auto it` — require a declarator follow-up
      // so plain expressions `a b` (invalid C++ anyway) don't register.
      if (j + 1 < e && t[j + 1].kind == TokKind::kPunct &&
          (t[j + 1].text == "=" || t[j + 1].text == ";" ||
           t[j + 1].text == ":" || t[j + 1].text == "," ||
           t[j + 1].text == ")" || t[j + 1].text == "{" ||
           t[j + 1].text == "(" || t[j + 1].text == "[")) {
        locals.insert(t[j].text);
      }
    }
  }
  // Structured bindings: idents between `auto [` ... `]`.
  for (std::size_t j = b; j + 1 < e && j + 1 < t.size(); ++j) {
    if (t[j].kind == TokKind::kKeyword && t[j].text == "auto" &&
        tok_is(t, j + 1, "[")) {
      const std::size_t close = match_close(t, j + 1, "[", "]");
      for (std::size_t k = j + 2; k < close; ++k) {
        if (t[k].kind == TokKind::kIdent) locals.insert(t[k].text);
      }
    }
  }
  return locals;
}

/// Marks, for every token in [b, e), whether a lock_guard/unique_lock/
/// scoped_lock scope is active at that point (scope = from the lock
/// declaration to the close of its enclosing brace, or to `.unlock()`).
std::vector<char> lock_active_map(const std::vector<Token>& t, std::size_t b,
                                  std::size_t e) {
  static const std::set<std::string> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  std::vector<char> active(e > b ? e - b : 0, 0);
  struct Lock {
    std::string name;
    int depth;
  };
  std::vector<Lock> locks;
  int depth = 0;
  for (std::size_t j = b; j < e && j < t.size(); ++j) {
    if (t[j].kind == TokKind::kPunct) {
      if (t[j].text == "{") ++depth;
      if (t[j].text == "}") {
        --depth;
        while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      }
    } else if (t[j].kind == TokKind::kIdent) {
      if (kLockTypes.count(t[j].text) > 0) {
        std::size_t k = j + 1;
        if (tok_is(t, k, "<")) k = skip_angles(t, k);
        if (k < e && t[k].kind == TokKind::kIdent) {
          locks.push_back({t[k].text, depth});
        }
      } else if (!locks.empty() && tok_is(t, j + 1, ".") &&
                 j + 2 < e && t[j + 2].text == "unlock") {
        for (std::size_t li = locks.size(); li > 0; --li) {
          if (locks[li - 1].name == t[j].text) {
            locks.erase(locks.begin() + static_cast<std::ptrdiff_t>(li - 1));
            break;
          }
        }
      }
    }
    active[j - b] = locks.empty() ? 0 : 1;
  }
  return active;
}

/// Parses the capture list [lb+1, rb) of a lambda: by-ref default (`&`),
/// explicit `&name` captures, and by-value captures (plain names, `=`).
struct Captures {
  bool by_ref_default = false;
  std::set<std::string> ref_caps;
  std::set<std::string> value_caps;
};

Captures parse_captures(const std::vector<Token>& t, std::size_t lb,
                        std::size_t rb) {
  Captures c;
  for (std::size_t j = lb + 1; j < rb; ++j) {
    if (t[j].kind == TokKind::kPunct && t[j].text == "&") {
      if (j + 1 < rb && t[j + 1].kind == TokKind::kIdent) {
        c.ref_caps.insert(t[j + 1].text);
        ++j;
      } else {
        c.by_ref_default = true;
      }
    } else if (t[j].kind == TokKind::kIdent) {
      c.value_caps.insert(t[j].text);
      // init captures `x = expr`: skip the initializer tokens
      if (j + 1 < rb && t[j + 1].kind == TokKind::kPunct &&
          t[j + 1].text == "=") {
        while (j + 1 < rb && !tok_is(t, j + 1, ",")) ++j;
      }
    }
  }
  return c;
}

/// Whether `name` is captured by reference under `c`.
bool captured_by_ref(const Captures& c, const std::string& name) {
  if (c.ref_caps.count(name) > 0) return true;
  return c.by_ref_default && c.value_caps.count(name) == 0;
}

/// Finds every by-reference lambda handed to ThreadPool::submit /
/// parallel_chunks / parallel_for and records the writes to captured
/// variables inside its body. Shared by ref-capture-in-parallel and
/// unordered-accumulation.
std::vector<ParLambda> analyze_parallel_lambdas(const FileContext& ctx,
                                                const SymbolIndex& idx) {
  static const std::set<std::string> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  const std::vector<Token>& t = ctx.toks;
  std::set<std::string> sync = idx.sync_names;
  collect_sync_names(t, sync);
  std::vector<ParLambda> out;

  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent) continue;
    if (t[j].text != "submit" && t[j].text != "parallel_chunks" &&
        t[j].text != "parallel_for") {
      continue;
    }
    if (!tok_is(t, j + 1, "(") || !looks_like_call(t, j)) continue;
    const std::size_t call_close = match_close(t, j + 1, "(", ")");

    // Locate a lambda among the arguments: '[' whose ']' is followed by a
    // parameter list or a body brace.
    for (std::size_t k = j + 2; k < call_close; ++k) {
      if (!tok_is(t, k, "[")) continue;
      const std::size_t rb = match_close(t, k, "[", "]");
      if (rb >= call_close) break;
      std::size_t body_open = rb + 1;
      std::size_t params_open = 0;
      if (tok_is(t, body_open, "(")) {
        params_open = body_open;
        body_open = match_close(t, body_open, "(", ")") + 1;
      }
      while (body_open < call_close &&
             (t[body_open].kind == TokKind::kKeyword ||  // mutable/noexcept
              tok_is(t, body_open, "->") ||
              (t[body_open].kind == TokKind::kIdent &&
               !tok_is(t, body_open, "{")))) {
        ++body_open;  // skip trailing-return tokens until the body brace
      }
      if (!tok_is(t, body_open, "{")) continue;
      const std::size_t body_close = match_close(t, body_open, "{", "}");

      ParLambda lam;
      lam.call = t[j].text;
      lam.line = t[j].line;
      const Captures caps = parse_captures(t, k, rb);
      std::set<std::string> locals =
          collect_locals(t, body_open + 1, body_close);
      if (params_open != 0) {
        const std::size_t pc = match_close(t, params_open, "(", ")");
        for (std::size_t p = params_open + 1; p < pc; ++p) {
          if (t[p].kind == TokKind::kIdent) locals.insert(t[p].text);
        }
      }
      const std::vector<char> locked =
          lock_active_map(t, body_open, body_close);

      for (std::size_t w = body_open + 1; w < body_close; ++w) {
        std::string target;
        std::string op;
        std::size_t target_idx = 0;
        if (t[w].kind == TokKind::kIdent && w + 1 < body_close &&
            t[w + 1].kind == TokKind::kPunct &&
            kAssignOps.count(t[w + 1].text) > 0) {
          // `x = ...` / `x += ...`: reject member access (`a.x = ...`) and
          // subscripted per-chunk writes (`part[c] += ...` never matches —
          // the op there follows ']').
          if (w > body_open && t[w - 1].kind == TokKind::kPunct &&
              (t[w - 1].text == "." || t[w - 1].text == "->" ||
               t[w - 1].text == "::")) {
            continue;
          }
          target = t[w].text;
          op = t[w + 1].text;
          target_idx = w;
        } else if (t[w].kind == TokKind::kPunct &&
                   (t[w].text == "++" || t[w].text == "--")) {
          if (w + 1 < body_close && t[w + 1].kind == TokKind::kIdent) {
            target = t[w + 1].text;
            target_idx = w + 1;
          } else if (w > body_open && t[w - 1].kind == TokKind::kIdent) {
            target = t[w - 1].text;
            target_idx = w - 1;
          }
          op = t[w].text;
        }
        if (target.empty() || locals.count(target) > 0 ||
            sync.count(target) > 0) {
          continue;
        }
        ParWrite pw;
        pw.target = target;
        pw.op = op;
        pw.line = t[target_idx].line;
        pw.locked = locked[target_idx - body_open] != 0;
        pw.captured_ref = captured_by_ref(caps, target);
        lam.writes.push_back(std::move(pw));
      }
      out.push_back(std::move(lam));
      k = body_close;  // continue searching after this lambda
    }
    j = call_close;
  }
  return out;
}

/// True when `name` is declared `double` somewhere in this file.
bool declared_double(const FileContext& ctx, const std::string& name) {
  const std::vector<Token>& t = ctx.toks;
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (t[j].kind == TokKind::kKeyword && t[j].text == "double") {
      std::size_t k = j + 1;
      if (t[k].kind == TokKind::kPunct && (t[k].text == "&" || t[k].text == "*")) {
        ++k;
      }
      if (k < t.size() && t[k].kind == TokKind::kIdent && t[k].text == name) {
        return true;
      }
    }
  }
  return false;
}

void rule_ref_capture_in_parallel(const FileContext& ctx,
                                  const std::vector<ParLambda>& lambdas,
                                  std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  for (const ParLambda& lam : lambdas) {
    for (const ParWrite& w : lam.writes) {
      if (!w.captured_ref || w.locked) continue;
      report(out, ctx, w.line, "ref-capture-in-parallel",
             "lambda given to ThreadPool::" + lam.call +
                 " writes captured '" + w.target +
                 "' by reference; chunks race on it — make it per-chunk, "
                 "std::atomic, or lock-protected");
    }
  }
}

void rule_unordered_accumulation(const FileContext& ctx,
                                 const std::vector<ParLambda>& lambdas,
                                 std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  for (const ParLambda& lam : lambdas) {
    if (lam.call == "submit") continue;  // single task: no chunk ordering
    for (const ParWrite& w : lam.writes) {
      if (!w.captured_ref) continue;
      if (w.op != "+=" && w.op != "-=") continue;
      if (!declared_double(ctx, w.target)) continue;
      report(out, ctx, w.line, "unordered-accumulation",
             "floating-point '" + w.op + "' into shared '" + w.target +
                 "' inside a " + lam.call +
                 " body is ordering-dependent (even under a lock); "
                 "accumulate per-chunk and reduce in fixed order");
    }
  }
}

/// True when `name` is declared with a `uint8_t` type in this file —
/// plain, pointer/reference, or as a container element, as in
/// `std::vector<std::uint8_t> codes` (the '>' of the template argument
/// list sits between the type and the name).
bool declared_uint8(const FileContext& ctx, const std::string& name) {
  const std::vector<Token>& t = ctx.toks;
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent || t[j].text != "uint8_t") continue;
    std::size_t k = j + 1;
    while (k < t.size() && t[k].kind == TokKind::kPunct &&
           (t[k].text == "&" || t[k].text == "*" || t[k].text == ">")) {
      ++k;
    }
    if (k < t.size() && t[k].kind == TokKind::kIdent && t[k].text == name) {
      return true;
    }
  }
  return false;
}

/// quantized-compare: ordering comparisons whose operands mix a declared
/// double with a declared uint8_t. Bin codes are ordinal cut indices —
/// `codes[f] <= threshold` quietly promotes the code to its index value
/// and compares apples to metres. An explicit static_cast near the site
/// is the sanctioned spelling when the mix really is intended.
void rule_quantized_compare(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  const std::vector<Token>& t = ctx.toks;
  // Terminal identifier of the operand left of token k: walks backwards
  // over one balanced []-subscript (`codes[f] <= x` names `codes`).
  const auto left_operand = [&t](std::size_t k) -> std::string {
    if (t[k].kind == TokKind::kPunct && t[k].text == "]") {
      int depth = 0;
      while (k > 0) {
        if (t[k].kind == TokKind::kPunct && t[k].text == "]") ++depth;
        if (t[k].kind == TokKind::kPunct && t[k].text == "[") {
          if (--depth == 0) {
            --k;
            break;
          }
        }
        --k;
      }
    }
    return t[k].kind == TokKind::kIdent ? t[k].text : std::string();
  };
  for (std::size_t j = 1; j + 1 < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    const std::string& op = t[j].text;
    if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
    const std::string lhs = left_operand(j - 1);
    const std::string rhs =
        t[j + 1].kind == TokKind::kIdent ? t[j + 1].text : std::string();
    if (lhs.empty() || rhs.empty()) continue;
    const bool mixed =
        (declared_uint8(ctx, lhs) && declared_double(ctx, rhs)) ||
        (declared_double(ctx, lhs) && declared_uint8(ctx, rhs));
    if (!mixed) continue;
    bool cast_near = false;
    for (std::size_t k = j >= 8 ? j - 8 : 0; k < std::min(t.size(), j + 8);
         ++k) {
      if (t[k].kind == TokKind::kIdent && t[k].text == "static_cast") {
        cast_near = true;
        break;
      }
    }
    if (cast_near) continue;
    report(out, ctx, t[j].line, "quantized-compare",
           "'" + lhs + " " + op + " " + rhs +
               "' compares a double against a uint8_t bin code; codes are "
               "ordinal cut indices, not feature values — static_cast at "
               "the site if the mix is intended");
  }
}

void rule_lock_held_blocking_call(const FileContext& ctx,
                                  const std::vector<FnDef>& defs,
                                  std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  static const std::set<std::string> kPoolBlocking = {
      "submit", "wait_idle", "parallel_for", "parallel_chunks"};
  static const std::set<std::string> kCvWait = {"wait", "wait_for",
                                                "wait_until"};
  const std::vector<Token>& t = ctx.toks;
  for (const FnDef& def : defs) {
    struct Lock {
      std::string name;
      std::string mutex;
      int depth;
    };
    std::vector<Lock> locks;
    int depth = 0;
    for (std::size_t j = def.body_open; j <= def.body_close && j < t.size();
         ++j) {
      if (t[j].kind == TokKind::kPunct) {
        if (t[j].text == "{") ++depth;
        if (t[j].text == "}") {
          --depth;
          while (!locks.empty() && locks.back().depth > depth) {
            locks.pop_back();
          }
        }
        continue;
      }
      if (t[j].kind != TokKind::kIdent) continue;
      if (kLockTypes.count(t[j].text) > 0) {
        std::size_t k = j + 1;
        if (tok_is(t, k, "<")) k = skip_angles(t, k);
        if (k < t.size() && t[k].kind == TokKind::kIdent &&
            tok_is(t, k + 1, "(")) {
          const std::size_t close = match_close(t, k + 1, "(", ")");
          locks.push_back(
              {t[k].text, join_tokens(t, k + 2, close), depth});
          j = close;
        }
        continue;
      }
      if (!locks.empty() && tok_is(t, j + 1, ".") && j + 2 < t.size() &&
          t[j + 2].text == "unlock") {
        for (std::size_t li = locks.size(); li > 0; --li) {
          if (locks[li - 1].name == t[j].text) {
            locks.erase(locks.begin() + static_cast<std::ptrdiff_t>(li - 1));
            break;
          }
        }
        continue;
      }
      if (kPoolBlocking.count(t[j].text) > 0 && tok_is(t, j + 1, "(") &&
          looks_like_call(t, j) && !locks.empty()) {
        report(out, ctx, t[j].line, "lock-held-blocking-call",
               "ThreadPool::" + t[j].text + " called while '" +
                   locks.back().name + "' holds mutex '" +
                   locks.back().mutex +
                   "'; release the lock before blocking on the pool");
        continue;
      }
      if (kCvWait.count(t[j].text) > 0 && j > 0 && t[j - 1].text == "." &&
          tok_is(t, j + 1, "(") && !locks.empty()) {
        // First argument of cv.wait(lock, ...): the lock it owns.
        const std::size_t close = match_close(t, j + 1, "(", ")");
        std::string own;
        if (j + 2 < close && t[j + 2].kind == TokKind::kIdent) {
          own = t[j + 2].text;
        }
        for (const Lock& l : locks) {
          if (l.name != own) {
            report(out, ctx, t[j].line, "lock-held-blocking-call",
                   "condition variable wait while '" + l.name +
                       "' holds mutex '" + l.mutex +
                       "' (not the wait lock); waiting can deadlock or "
                       "invert lock order — release it first");
          }
        }
        j = j + 1;
      }
    }
  }
}

void rule_contract_coverage(const FileContext& ctx, const SymbolIndex& idx,
                            const std::vector<FnDef>& defs,
                            std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  const std::vector<Token>& t = ctx.toks;
  for (const FnDef& def : defs) {
    if (def.name.empty()) continue;
    const std::string key =
        def.cls.empty() ? def.name : def.cls + "::" + def.name;
    const auto it = idx.fns.find(key);
    if (it == idx.fns.end() || !it->second.wants_contracts) continue;
    // The index merges overloads under one key; only flag definitions
    // whose own parameter list carries pointer/span/index shapes, so a
    // field(double) overload is not blamed for field(const char*).
    if (def.paren_open == 0 || !params_want_contracts(t, def.paren_open)) {
      continue;
    }
    bool has_contract = false;
    for (std::size_t j = def.body_open; j <= def.body_close && j < t.size();
         ++j) {
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text == "MPHPC_EXPECTS" || t[j].text == "MPHPC_ASSERT" ||
           t[j].text == "MPHPC_ENSURES")) {
        has_contract = true;
        break;
      }
    }
    if (!has_contract) {
      report(out, ctx, def.line, "contract-coverage",
             "public function '" + key +
                 "' takes pointer/span/index parameters but its definition "
                 "has no MPHPC_EXPECTS/MPHPC_ASSERT (declared at " +
                 it->second.file + ":" + std::to_string(it->second.line) +
                 "); validate at the entry point");
    }
  }
}

void rule_raw_artifact_write(const FileContext& ctx,
                             std::vector<Finding>& out) {
  if (!ctx.in_src) return;
  if (ctx.rel_path == "src/common/atomic_file.cpp") return;
  for (const Token& tok : ctx.toks) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "ofstream" || tok.text == "fopen" ||
        tok.text == "freopen") {
      report(out, ctx, tok.line, "raw-artifact-write",
             "direct file write ('" + tok.text +
                 "') in library code; route artifacts through "
                 "mphpc::atomic_write_text (crash-safe temp+rename)");
    }
  }
}

// -------------------------------------------------------------- baseline

/// (file, rule) -> accepted finding count.
using BaselineMap = std::map<std::pair<std::string, std::string>, std::size_t>;

std::string extract_json_string(const std::string& block,
                                const std::string& key) {
  const std::size_t kpos = block.find("\"" + key + "\"");
  if (kpos == std::string::npos) return "";
  const std::size_t colon = block.find(':', kpos);
  if (colon == std::string::npos) return "";
  const std::size_t open = block.find('"', colon);
  if (open == std::string::npos) return "";
  std::string out;
  for (std::size_t i = open + 1; i < block.size(); ++i) {
    if (block[i] == '\\' && i + 1 < block.size()) {
      out += block[i + 1];
      ++i;
    } else if (block[i] == '"') {
      return out;
    } else {
      out += block[i];
    }
  }
  return "";
}

std::size_t extract_json_count(const std::string& block) {
  const std::size_t kpos = block.find("\"count\"");
  if (kpos == std::string::npos) return 0;
  std::size_t i = block.find(':', kpos);
  if (i == std::string::npos) return 0;
  ++i;
  while (i < block.size() &&
         std::isspace(static_cast<unsigned char>(block[i])) != 0) {
    ++i;
  }
  std::size_t n = 0;
  while (i < block.size() &&
         std::isdigit(static_cast<unsigned char>(block[i])) != 0) {
    n = n * 10 + static_cast<std::size_t>(block[i] - '0');
    ++i;
  }
  return n;
}

/// Parses tools/lint_baseline.json (schema mphpc-lint-baseline-v1: a flat
/// "entries" array of {file, rule, count} objects). Tolerant of
/// whitespace/ordering; returns false on anything that does not look like
/// a baseline file.
bool parse_baseline(const std::string& text, BaselineMap& out) {
  if (text.find("mphpc-lint-baseline-v1") == std::string::npos) return false;
  const std::size_t entries = text.find("\"entries\"");
  if (entries == std::string::npos) return false;
  std::size_t pos = text.find('[', entries);
  if (pos == std::string::npos) return false;
  const std::size_t end = text.find(']', pos);
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos || (end != std::string::npos && open > end)) {
      break;
    }
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) return false;
    const std::string block = text.substr(open, close - open + 1);
    const std::string file = extract_json_string(block, "file");
    const std::string rule = extract_json_string(block, "rule");
    const std::size_t count = extract_json_count(block);
    if (file.empty() || rule.empty() || count == 0) return false;
    out[{file, rule}] += count;
    pos = close + 1;
  }
  return true;
}

std::string baseline_to_json(const BaselineMap& counts) {
  mphpc::JsonWriter w;
  w.begin_object();
  w.field("schema", "mphpc-lint-baseline-v1");
  w.begin_array("entries");
  for (const auto& [key, count] : counts) {
    w.begin_object();
    w.field("file", key.first);
    w.field("rule", key.second);
    w.field("count", count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

/// Marks the first `count` findings of each baselined (file, rule) pair —
/// in sorted line order — as warnings. Returns the per-pair number of
/// findings the baseline actually absorbed (for staleness detection).
BaselineMap apply_baseline(const BaselineMap& base,
                           std::vector<Finding>& findings) {
  BaselineMap used;
  for (Finding& f : findings) {
    const auto key = std::make_pair(f.file, f.rule);
    const auto it = base.find(key);
    if (it != base.end() && used[key] < it->second) {
      f.warning = true;
      ++used[key];
    }
  }
  return used;
}

// -------------------------------------------------------------- rendering

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

std::size_t count_errors(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.warning) ++n;
  }
  return n;
}

std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned, bool baseline_loaded) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": ";
    if (f.warning) out << "warning: ";
    out << "[" << f.rule << "] " << f.message << "\n";
  }
  const std::size_t errors = count_errors(findings);
  out << "mphpc_lint: " << errors << " violation(s)";
  if (baseline_loaded) {
    out << ", " << (findings.size() - errors) << " baselined warning(s)";
  }
  out << " in " << files_scanned << " file(s) scanned\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        const std::string& root, std::size_t files_scanned) {
  const std::size_t errors = count_errors(findings);
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_rule;
  for (const Finding& f : findings) {
    auto& counts = per_rule[f.rule];
    if (f.warning) {
      ++counts.second;
    } else {
      ++counts.first;
    }
  }
  mphpc::JsonWriter w;
  w.begin_object();
  w.field("schema", "mphpc-lint-report-v1");
  w.field("root", root);
  w.field("files_scanned", files_scanned);
  w.field("errors", errors);
  w.field("warnings", findings.size() - errors);
  w.begin_object("per_rule");
  for (const auto& [rule, counts] : per_rule) {
    w.begin_object(rule);
    w.field("errors", counts.first);
    w.field("warnings", counts.second);
    w.end_object();
  }
  w.end_object();
  w.begin_array("findings");
  for (const Finding& f : findings) {
    w.begin_object();
    w.field("file", f.file);
    w.field("line", f.line);
    w.field("rule", f.rule);
    w.field("severity", f.warning ? "warning" : "error");
    w.field("message", f.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

// ---------------------------------------------------------------- driver

struct Options {
  std::size_t budget = 150;
  bool json = false;
  std::size_t jobs = 0;  // 0 = hardware concurrency, 1 = serial
  fs::path root;
  fs::path report_path;
  fs::path baseline_path;
  fs::path write_baseline_path;
  std::set<std::string> only;
  std::set<std::string> disable;
};

bool rule_enabled(const Options& opts, const std::string& rule) {
  if (!opts.only.empty()) return opts.only.count(rule) > 0;
  return opts.disable.count(rule) == 0;
}

std::vector<fs::path> collect_files(const fs::path& root) {
  std::vector<fs::path> files;
  std::vector<fs::path> scan_dirs;
  for (const char* dir : {"src", "tests", "bench", "tools"}) {
    if (fs::is_directory(root / dir)) scan_dirs.push_back(root / dir);
  }
  if (scan_dirs.empty()) scan_dirs.push_back(root);  // standalone mode
  for (const fs::path& dir : scan_dirs) {
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool load_file(const fs::path& root, const fs::path& path, FileContext& ctx) {
  std::ifstream in(path);
  if (!in) return false;
  ctx.rel_path = fs::relative(path, root).generic_string();
  ctx.in_src = starts_with(ctx.rel_path, "src/");
  const std::string ext = path.extension().string();
  ctx.is_header = ext == ".hpp" || ext == ".h";
  std::string line;
  while (std::getline(in, line)) ctx.raw.push_back(std::move(line));
  ctx.code = strip_comments_and_literals(ctx.raw);
  ctx.toks = tokenize(ctx.code, preprocessor_lines(ctx.raw));
  parse_suppressions(ctx);
  return true;
}

/// Pass 2 over one file: every enabled rule, then per-(rule, line) dedup
/// so token-level rules report once per source line like v1 did.
std::vector<Finding> analyze_file(const FileContext& ctx, const Options& opts,
                                  const SymbolIndex& idx) {
  const auto en = [&opts](const char* rule) {
    return rule_enabled(opts, rule);
  };
  std::vector<Finding> raw;
  if (en("nondeterminism")) rule_nondeterminism(ctx, raw);
  if (en("unordered-iteration")) rule_unordered_iteration(ctx, raw);
  if (en("io-in-lib")) rule_io_in_lib(ctx, raw);
  if (en("raw-new")) rule_raw_new(ctx, raw);
  if (en("pragma-once")) rule_pragma_once(ctx, raw);
  if (en("no-float")) rule_no_float(ctx, raw);
  if (en("raw-artifact-write")) rule_raw_artifact_write(ctx, raw);
  if (en("quantized-compare")) rule_quantized_compare(ctx, raw);

  if (en("function-size") || en("lock-held-blocking-call") ||
      en("contract-coverage")) {
    const std::vector<FnDef> defs = find_function_defs(ctx);
    if (en("function-size")) rule_function_size(ctx, opts.budget, defs, raw);
    if (en("lock-held-blocking-call")) rule_lock_held_blocking_call(ctx, defs, raw);
    if (en("contract-coverage")) rule_contract_coverage(ctx, idx, defs, raw);
  }
  if (ctx.in_src &&
      (en("ref-capture-in-parallel") || en("unordered-accumulation"))) {
    const std::vector<ParLambda> lambdas = analyze_parallel_lambdas(ctx, idx);
    if (en("ref-capture-in-parallel")) {
      rule_ref_capture_in_parallel(ctx, lambdas, raw);
    }
    if (en("unordered-accumulation")) {
      rule_unordered_accumulation(ctx, lambdas, raw);
    }
  }

  std::vector<Finding> out;
  std::set<std::pair<std::string, std::size_t>> seen;
  for (Finding& f : raw) {
    if (seen.insert({f.rule, f.line}).second) out.push_back(std::move(f));
  }
  return out;
}

/// Duplicates the rendered report into `path`, creating parent directories
/// first. Returns false when the path cannot be written.
bool write_report_file(const fs::path& path, const std::string& text) {
  std::error_code ec;
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path(), ec);  // failure -> open fails
  }
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  out.flush();
  return static_cast<bool>(out);
}

int run(const Options& opts) {
  const std::vector<fs::path> files = collect_files(opts.root);

  // Load + tokenize every file on the pool; slots keep sorted file order
  // so the merged output is identical at any --jobs value.
  std::vector<FileContext> ctxs(files.size());
  std::vector<char> ok(files.size(), 1);
  mphpc::ThreadPool pool(opts.jobs == 1 ? 1 : opts.jobs);
  pool.parallel_for(0, files.size(), [&](std::size_t i) {
    try {
      ok[i] = load_file(opts.root, files[i], ctxs[i]) ? 1 : 0;
    } catch (const std::exception&) {
      ok[i] = 0;
    }
  });

  // Pass 1 (serial, order-stable): cross-file symbol index over headers.
  SymbolIndex idx;
  for (const FileContext& ctx : ctxs) {
    if (ctx.in_src && ctx.is_header) index_header(ctx, idx);
  }

  // Pass 2: rules per file, merged in sorted file order.
  std::vector<std::vector<Finding>> slots(files.size());
  pool.parallel_for(0, files.size(), [&](std::size_t i) {
    try {
      if (ok[i] != 0) slots[i] = analyze_file(ctxs[i], opts, idx);
    } catch (const std::exception&) {
      ok[i] = 0;
    }
  });

  bool io_ok = true;
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (ok[i] == 0) {
      std::cerr << "mphpc_lint: cannot read " << files[i].string() << "\n";
      io_ok = false;
      continue;
    }
    for (Finding& f : slots[i]) findings.push_back(std::move(f));
  }
  sort_findings(findings);

  if (!opts.write_baseline_path.empty()) {
    BaselineMap counts;
    for (const Finding& f : findings) ++counts[{f.file, f.rule}];
    if (!write_report_file(opts.write_baseline_path,
                           baseline_to_json(counts))) {
      std::cerr << "mphpc_lint: cannot write baseline "
                << opts.write_baseline_path.string() << "\n";
      return 2;
    }
    std::cout << "mphpc_lint: wrote baseline ("
              << counts.size() << " entries, " << findings.size()
              << " finding(s)) to " << opts.write_baseline_path.string()
              << "\n";
    return io_ok ? 0 : 2;
  }

  bool baseline_loaded = false;
  if (!opts.baseline_path.empty()) {
    std::ifstream in(opts.baseline_path);
    if (!in) {
      std::cerr << "mphpc_lint: cannot read baseline "
                << opts.baseline_path.string() << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    BaselineMap base;
    if (!parse_baseline(ss.str(), base)) {
      std::cerr << "mphpc_lint: cannot parse baseline "
                << opts.baseline_path.string()
                << " (expected schema mphpc-lint-baseline-v1)\n";
      return 2;
    }
    baseline_loaded = true;
    const BaselineMap used = apply_baseline(base, findings);
    // Ratchet: a baseline entry that over-counts the remaining findings is
    // itself an error — the baseline may only shrink.
    for (const auto& [key, count] : base) {
      if (!rule_enabled(opts, key.second)) continue;
      const auto it = used.find(key);
      const std::size_t absorbed = it == used.end() ? 0 : it->second;
      if (absorbed < count) {
        findings.push_back(
            {key.first, 0, "baseline-stale",
             "baseline lists " + std::to_string(count) + " '" + key.second +
                 "' finding(s) but only " + std::to_string(absorbed) +
                 " remain; the baseline may only shrink — remove the fixed "
                 "entries from tools/lint_baseline.json",
             false});
      }
    }
    sort_findings(findings);
  }

  const std::string text = opts.json
                               ? render_json(findings, opts.root.string(),
                                             files.size())
                               : render_text(findings, files.size(),
                                             baseline_loaded);
  std::cout << text;
  if (!opts.report_path.empty()) {
    const bool report_json =
        opts.report_path.extension() == ".json" || opts.json;
    const std::string report_text =
        report_json ? render_json(findings, opts.root.string(), files.size())
                    : text;
    if (!write_report_file(opts.report_path, report_text)) {
      std::cerr << "mphpc_lint: cannot write report "
                << opts.report_path.string() << "\n";
      return 2;
    }
  }
  if (!io_ok) return 2;
  return count_errors(findings) == 0 ? 0 : 1;
}

/// Parses argv into opts. Returns -1 to proceed, otherwise the exit code.
int parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* rule : kAllRules) std::cout << rule << "\n";
      return 0;
    }
    if (starts_with(arg, "--max-function-lines=")) {
      opts.budget =
          static_cast<std::size_t>(std::stoul(std::string(arg.substr(21))));
    } else if (starts_with(arg, "--format=")) {
      const std::string_view fmt = arg.substr(9);
      if (fmt != "text" && fmt != "json") {
        std::cerr << "mphpc_lint: unknown format '" << fmt
                  << "' (expected text or json)\n";
        return 2;
      }
      opts.json = fmt == "json";
    } else if (starts_with(arg, "--jobs=")) {
      opts.jobs =
          static_cast<std::size_t>(std::stoul(std::string(arg.substr(7))));
    } else if (starts_with(arg, "--report=")) {
      opts.report_path = fs::path(std::string(arg.substr(9)));
    } else if (starts_with(arg, "--baseline=")) {
      opts.baseline_path = fs::path(std::string(arg.substr(11)));
    } else if (starts_with(arg, "--write-baseline=")) {
      opts.write_baseline_path = fs::path(std::string(arg.substr(17)));
    } else if (starts_with(arg, "--only=") || starts_with(arg, "--disable=")) {
      const bool is_only = starts_with(arg, "--only=");
      for (const std::string& r :
           split_rule_list(arg.substr(is_only ? 7 : 10))) {
        if (!is_known_rule(r)) {
          std::cerr << "mphpc_lint: unknown rule '" << r
                    << "' (see --list-rules)\n";
          return 2;
        }
        (is_only ? opts.only : opts.disable).insert(r);
      }
    } else if (starts_with(arg, "--")) {
      std::cerr << "mphpc_lint: unknown option " << arg << "\n";
      return 2;
    } else if (!opts.root.empty()) {
      std::cerr << "mphpc_lint: multiple roots given\n";
      return 2;
    } else {
      opts.root = fs::path(std::string(arg));
    }
  }
  if (opts.root.empty()) {
    std::cerr << "usage: mphpc_lint [--max-function-lines=N] "
                 "[--format=text|json] [--report=FILE] [--baseline=FILE] "
                 "[--write-baseline=FILE] [--only=r1,r2] [--disable=r1,r2] "
                 "[--jobs=N] [--list-rules] <root>\n";
    return 2;
  }
  if (!fs::is_directory(opts.root)) {
    std::cerr << "mphpc_lint: not a directory: " << opts.root.string() << "\n";
    return 2;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    const int parse_status = parse_args(argc, argv, opts);
    if (parse_status >= 0) return parse_status;
    return run(opts);
  } catch (const std::exception& e) {
    std::cerr << "mphpc_lint: " << e.what() << "\n";
    return 2;
  }
}
