#!/usr/bin/env python3
"""Per-rule findings summary + ratchet diff for an mphpc_lint JSON report.

Usage: tools/lint_summary.py BUILD_DIR/lint_report.json tools/lint_baseline.json

Reads the "mphpc-lint-report-v1" report the `lint.mphpc` ctest writes into
the build tree and diffs it against the checked-in ratchet baseline:

  - a per-rule table of error/warning counts,
  - RATCHET GROWTH: findings not absorbed by the baseline (new violations),
  - RATCHET STALE: baseline entries counting more findings than remain
    (the baseline may only shrink; remove the fixed entries).

Exit status: 0 when the ratchet is clean, 1 on growth or staleness (the
lint.mphpc ctest fails in the same situations; this is the human-readable
view ci.sh prints per lane).
"""
import collections
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    report_path, baseline_path = sys.argv[1], sys.argv[2]
    with open(report_path) as fh:
        report = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if report.get("schema") != "mphpc-lint-report-v1":
        print(f"lint_summary: {report_path}: unexpected schema", file=sys.stderr)
        return 2

    per_rule = report.get("per_rule", {})
    width = max([len(r) for r in per_rule] + [len("rule")])
    print(f"lint: {report.get('files_scanned', 0)} file(s) scanned, "
          f"{report.get('errors', 0)} error(s), "
          f"{report.get('warnings', 0)} baselined warning(s)")
    if per_rule:
        print(f"  {'rule'.ljust(width)}  errors  baselined")
        for rule in sorted(per_rule):
            counts = per_rule[rule]
            print(f"  {rule.ljust(width)}  "
                  f"{counts.get('errors', 0):>6}  {counts.get('warnings', 0):>9}")

    base = {(e["file"], e["rule"]): e["count"]
            for e in baseline.get("entries", [])}
    absorbed = collections.Counter()
    growth = []
    for f in report.get("findings", []):
        if f["severity"] == "warning":
            absorbed[(f["file"], f["rule"])] += 1
        else:
            growth.append(f)
    stale = {k: (count, absorbed.get(k, 0))
             for k, count in sorted(base.items())
             if absorbed.get(k, 0) < count}

    ok = True
    for f in growth:
        ok = False
        print(f"RATCHET GROWTH: {f['file']}:{f['line']}: [{f['rule']}] "
              f"{f['message']}")
    for (path, rule), (count, remain) in stale.items():
        ok = False
        print(f"RATCHET STALE: {path} [{rule}]: baseline lists {count} but "
              f"{remain} remain — shrink tools/lint_baseline.json")
    if ok:
        print(f"ratchet: clean ({len(base)} baseline entr"
              f"{'y' if len(base) == 1 else 'ies'}, "
              f"{sum(base.values())} absorbed finding(s))")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
