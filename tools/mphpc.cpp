// mphpc — command-line front end to the library.
//
//   mphpc dataset  [--inputs N] [--campaign-dir DIR] [--out FILE.csv]
//   mphpc train    [--inputs N] [--out MODEL] [--rounds N] [--depth N] [--bins B]
//                  [--tree-method exact|hist] [--quantize]
//                  [--checkpoint-every K] [--resume]
//                  (checkpointed runs default --campaign-dir to MODEL.campaign)
//   mphpc evaluate [--inputs N] [--model MODEL] [--quantize]
//   mphpc predict  --app NAME [--system SYS] [--scale 1core|1node|2node]
//                  [--model MODEL]
//   mphpc schedule [--jobs N] [--inputs N] [--strategy all|rr|random|user|model|oracle]
//   mphpc sched-faults [--jobs N] [--inputs N] [--node-mtbf-h H] [--mttr-h H]
//                  [--kill-prob P] [--max-attempts K] [--seed S]
//                  [--checkpoint-overhead-s C] [--checkpoint-interval-s I]
//                  [--swf FILE] [--swf-procs-per-node P] [--swf-max-nodes N]
//                  [--out FILE.json]
//   mphpc sched-scale [--jobs N] [--depth D] [--arrival-rate R]
//                  [--node-mtbf-h H] [--mttr-h H] [--kill-prob P]
//                  [--max-attempts K] [--seed S] [--out FILE.json]
//   mphpc serve    --state-dir DIR [--model MODEL] [--quantize] [--socket PATH]
//                  [--refit-every K] [--drift-window N] [--trip-mae X]
//                  [--recover-mae X] [--queue-cap N] [--batch-max N]
//                  [--deadline-ms MS] [--threads N]
//
// Every command is deterministic for a given set of flags (serve excepted:
// it reacts to whatever requests arrive).
//
// The long-running commands (train --checkpoint-every, sched-scale, serve)
// install the ShutdownLatch: SIGINT/SIGTERM flushes their on-disk state at
// the next natural boundary and exits 128+signal, so wrappers can tell
// "interrupted but resumable" apart from failure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "arch/system_catalog.hpp"
#include "common/atomic_file.hpp"
#include "common/json_writer.hpp"
#include "common/shutdown.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dataset.hpp"
#include "core/model_selection.hpp"
#include "core/predictor.hpp"
#include "data/csv.hpp"
#include "data/split.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/faults.hpp"
#include "sched/swf.hpp"
#include "sched/workload_gen.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace {

using namespace mphpc;

/// Minimal `--flag value` parser; flags without a value are "true".
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

core::Dataset build_dataset(const Args& args,
                            const std::string& default_campaign_dir = "") {
  const int inputs = args.get_int("inputs", 12);
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  sim::CampaignOptions options;
  options.inputs_per_app = inputs;
  // With --campaign-dir the collection campaign is interruptible: each
  // profiled (app, input) shard persists there and re-runs skip it.
  options.checkpoint_dir = args.get("campaign-dir", default_campaign_dir);
  std::printf("building dataset (%d inputs/app)...\n", inputs);
  return core::build_dataset(
      sim::run_campaign(apps, systems, options, &ThreadPool::shared()));
}

core::CrossArchPredictor::Options predictor_options(const Args& args) {
  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = args.get_int("rounds", 200);
  options.gbt.max_depth = args.get_int("depth", 7);
  options.gbt.max_bins = args.get_int("bins", options.gbt.max_bins);
  const std::string method = args.get("tree-method", "exact");
  if (method == "hist") {
    options.gbt.tree_method = ml::TreeMethod::kHist;
  } else if (method != "exact") {
    throw std::runtime_error("unknown --tree-method '" + method +
                             "' (exact|hist)");
  }
  // Serving-side knob: the model text is identical either way, only the
  // compiled inference engine changes (losslessly; see CompileOptions).
  options.quantize = args.has("quantize");
  return options;
}

core::CrossArchPredictor train_predictor(const core::Dataset& dataset,
                                         const Args& args) {
  const auto options = predictor_options(args);
  core::CrossArchPredictor predictor(options);
  Timer timer;
  predictor.train(dataset, {}, &ThreadPool::shared());
  std::printf("trained in %.1f s (%d rounds, depth %d)\n", timer.seconds(),
              options.gbt.n_rounds, options.gbt.max_depth);
  return predictor;
}

int cmd_dataset(const Args& args) {
  const auto dataset = build_dataset(args);
  const std::string out = args.get("out", "mphpc_dataset.csv");
  data::write_csv_file(dataset.table(), out);
  std::printf("wrote %zu rows x %zu columns to %s\n", dataset.num_rows(),
              dataset.table().num_columns(), out.c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const auto options = predictor_options(args);  // validates flags up front
  const std::string out = args.get("out", "mphpc_model.txt");
  const int every = args.get_int("checkpoint-every", 0);
  const bool resume = args.has("resume");
  // An interruptible training run implies an interruptible data campaign:
  // without an explicit --campaign-dir, cache profiling shards next to
  // the checkpoint so a killed `train --resume` skips completed items too.
  const std::string default_campaign_dir =
      (every > 0 || resume) ? out + ".campaign" : "";
  if (!default_campaign_dir.empty() && !args.has("campaign-dir")) {
    std::printf("campaign cache: %s\n", default_campaign_dir.c_str());
  }
  // A checkpointed run is interruptible end to end: SIGINT/SIGTERM stops
  // at the next checkpoint boundary with the checkpoint flushed, and the
  // process exits 128+signal so callers know the run can be --resume'd.
  ShutdownLatch& latch = ShutdownLatch::instance();
  if (every > 0 || resume) latch.install();
  const auto dataset = build_dataset(args, default_campaign_dir);
  core::CrossArchPredictor predictor(options);
  Timer timer;
  if (every > 0 || resume) {
    if (latch.requested()) {
      std::printf("interrupted before training; campaign shards are cached\n");
      return latch.exit_code();
    }
    core::CrossArchPredictor::TrainCheckpoint ckpt;
    ckpt.path = out + ".ckpt";
    ckpt.every = every;
    ckpt.resume = resume;
    ckpt.stop = [&latch] { return latch.requested(); };
    if (!predictor.train_checkpointed(dataset, ckpt, {}, &ThreadPool::shared())) {
      std::printf("interrupted after %.1f s: checkpoint flushed to %s "
                  "(continue with --resume)\n",
                  timer.seconds(), ckpt.path.c_str());
      return latch.exit_code();
    }
  } else {
    predictor.train(dataset, {}, &ThreadPool::shared());
  }
  std::printf("trained in %.1f s (%d rounds, depth %d)\n", timer.seconds(),
              options.gbt.n_rounds, options.gbt.max_depth);
  predictor.save(out);
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto dataset = build_dataset(args);
  const auto split = data::train_test_split(dataset.num_rows(), 0.10, 42);
  const auto x_test = dataset.features(split.test);
  const auto y_test = dataset.targets(split.test);

  core::EvalMetrics metrics;
  if (args.has("model")) {
    auto predictor = core::CrossArchPredictor::load(args.get("model", ""));
    predictor.set_quantized(args.has("quantize"));
    metrics = core::evaluate(y_test, predictor.predict(x_test));
  } else {
    const auto options = predictor_options(args);
    core::CrossArchPredictor predictor(options);
    predictor.train(dataset, split.train, &ThreadPool::shared());
    metrics = core::evaluate(y_test, predictor.predict(x_test));
  }
  std::printf("test MAE  = %.4f (paper: 0.11)\n", metrics.mae);
  std::printf("test SOS  = %.4f (paper: 0.86)\n", metrics.sos);
  std::printf("test RMSE = %.4f, R^2 = %.4f\n", metrics.rmse, metrics.r2);
  return 0;
}

int cmd_predict(const Args& args) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const std::string app_name = args.get("app", "");
  if (app_name.empty() || !apps.contains(app_name)) {
    std::fprintf(stderr, "predict requires --app with one of the 20 catalog apps\n");
    return 2;
  }
  const std::string system = args.get("system", "quartz");
  if (!arch::parse_system(system)) {
    std::fprintf(stderr, "unknown system '%s'\n", system.c_str());
    return 2;
  }
  const std::string scale_name = args.get("scale", "1node");
  workload::ScaleClass scale = workload::ScaleClass::kOneNode;
  if (scale_name == "1core") scale = workload::ScaleClass::kOneCore;
  else if (scale_name == "2node") scale = workload::ScaleClass::kTwoNodes;
  else if (scale_name != "1node") {
    std::fprintf(stderr, "unknown scale '%s' (1core|1node|2node)\n",
                 scale_name.c_str());
    return 2;
  }

  core::CrossArchPredictor predictor = [&] {
    if (args.has("model")) {
      return core::CrossArchPredictor::load(args.get("model", ""));
    }
    const auto dataset = build_dataset(args);
    return train_predictor(dataset, args);
  }();

  const auto& base = apps.get(app_name);
  const auto inputs = workload::make_inputs(base, 1, 2027);
  const sim::Profiler profiler(2027);
  const auto profile = profiler.profile(base, inputs[0], scale, systems.get(system));
  const core::Rpv rpv = predictor.predict(profile);

  std::printf("\n%s (%s scale) profiled on %s, %.1f s wall time\n",
              app_name.c_str(), scale_name.c_str(), system.c_str(), profile.time_s);
  TablePrinter table({"system", "predicted time ratio", "predicted speedup"});
  for (const arch::SystemId id : arch::kAllSystems) {
    table.add_row({std::string(arch::to_string(id)),
                   format_fixed(rpv.time_ratio(id), 3),
                   format_fixed(rpv.speedup(id), 2) + "x"});
  }
  table.print();
  std::printf("predicted fastest: %s\n",
              std::string(arch::to_string(rpv.fastest())).c_str());
  return 0;
}

int cmd_schedule(const Args& args) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto dataset = build_dataset(args);
  const auto predictor = train_predictor(dataset, args);
  const auto predictions = predictor.predict(dataset.features());
  const auto jobs =
      sched::sample_jobs(dataset, predictions, apps,
                         static_cast<std::size_t>(args.get_int("jobs", 10000)), 7);
  const auto machines = sched::default_cluster(systems);

  const std::string which = args.get("strategy", "all");
  std::vector<std::pair<std::string, std::unique_ptr<sched::MachineAssigner>>> all;
  const auto want = [&](const char* key) { return which == "all" || which == key; };
  if (want("rr")) all.emplace_back("Round-Robin",
                                   std::make_unique<sched::RoundRobinAssigner>());
  if (want("random")) all.emplace_back("Random",
                                       std::make_unique<sched::RandomAssigner>(11));
  if (want("user")) all.emplace_back("User+RR",
                                     std::make_unique<sched::UserRoundRobinAssigner>());
  if (want("model")) all.emplace_back("Model-based",
                                      std::make_unique<sched::ModelBasedAssigner>());
  if (want("oracle")) all.emplace_back("Oracle",
                                       std::make_unique<sched::OracleAssigner>());
  if (all.empty()) {
    std::fprintf(stderr, "unknown strategy '%s'\n", which.c_str());
    return 2;
  }

  TablePrinter table({"strategy", "makespan (h)", "avg bounded slowdown"});
  for (auto& [label, assigner] : all) {
    const auto result = sched::simulate(jobs, machines, *assigner);
    table.add_row({label, format_fixed(result.makespan_s / 3600.0, 3),
                   format_fixed(result.avg_bounded_slowdown, 2)});
  }
  table.print();
  return 0;
}

double sum_over_machines(const std::array<double, arch::kNumSystems>& values) {
  double total = 0.0;
  for (const double v : values) total += v;
  return total;
}

/// Checkpoint-strategy comparison under the identical fault trace, run on
/// the guarded model-based assigner. "none" IS the headline faulty run
/// (a zero-interval policy is bit-identical to no policy, so rerunning
/// would be wasted work); "fixed" uses --checkpoint-interval-s; "optimal"
/// uses the Young/Daly interval derived from the trace MTBF; "adaptive"
/// re-estimates the MTBF online from observed failures (no prior) and
/// hands each attempt the Young/Daly interval for the current estimate.
void report_checkpoint_comparison(const std::vector<sched::Job>& jobs,
                                  const std::vector<sched::Machine>& machines,
                                  const sched::FaultTrace& trace,
                                  sched::SimulationResult no_checkpoint,
                                  double fixed_interval_s, double optimal_interval_s,
                                  double overhead_s, JsonWriter& json) {
  struct CheckpointEntry {
    std::string policy;
    sched::CheckpointPolicy checkpoint;
    sched::SimulationResult result;
  };
  std::vector<CheckpointEntry> ckpt_runs;
  ckpt_runs.push_back({"none", {}, std::move(no_checkpoint)});
  ckpt_runs.push_back({"fixed", {fixed_interval_s, overhead_s}, {}});
  ckpt_runs.push_back({"optimal", {optimal_interval_s, overhead_s}, {}});
  ckpt_runs.push_back({"adaptive", {}, {}});
  for (std::size_t c = 1; c < ckpt_runs.size(); ++c) {
    sched::GuardedModelBasedAssigner assigner;
    sched::SchedulerOptions options;
    // Fresh planner per simulation: it accumulates the failures it
    // observes and must never be shared across runs.
    sched::AdaptiveYoungDalyPlanner adaptive(overhead_s, /*prior_mtbf_s=*/0.0);
    if (ckpt_runs[c].policy == "adaptive") {
      options.planner = &adaptive;
    } else {
      options.checkpoint = ckpt_runs[c].checkpoint;
    }
    ckpt_runs[c].result = sched::simulate(jobs, machines, assigner, trace, options);
  }

  TablePrinter ckpt_table({"checkpointing", "interval (s)", "makespan (h)",
                           "lost node-h", "recovered node-h", "overhead node-h",
                           "abandoned"});
  json.begin_array("checkpoint_strategies");
  for (const CheckpointEntry& entry : ckpt_runs) {
    const auto& result = entry.result;
    const double lost = sum_over_machines(result.lost_node_seconds);
    const double recovered = sum_over_machines(result.recovered_node_seconds);
    const double overhead =
        sum_over_machines(result.checkpoint_overhead_node_seconds);
    json.begin_object();
    json.field("policy", entry.policy);
    json.field("interval_s", entry.checkpoint.interval_s);
    json.field("overhead_s", entry.checkpoint.overhead_s);
    json.field("makespan_h", result.makespan_s / 3600.0);
    json.field("avg_bounded_slowdown", result.avg_bounded_slowdown);
    json.field("completed_jobs", result.completed_jobs);
    json.field("abandoned_jobs", result.abandoned_jobs);
    json.field("jobs_killed", result.jobs_killed);
    json.field("total_retries", result.total_retries);
    json.field("lost_node_seconds", lost);
    json.field("recovered_node_seconds", recovered);
    json.field("checkpoint_overhead_node_seconds", overhead);
    json.field("checkpoints_written", result.checkpoints_written);
    json.end_object();
    ckpt_table.add_row({entry.policy,
                        entry.policy == "adaptive"
                            ? std::string("online")
                            : format_fixed(entry.checkpoint.interval_s, 0),
                        format_fixed(result.makespan_s / 3600.0, 3),
                        format_fixed(lost / 3600.0, 1),
                        format_fixed(recovered / 3600.0, 1),
                        format_fixed(overhead / 3600.0, 1),
                        std::to_string(result.abandoned_jobs)});
  }
  json.end_array();
  std::printf("\ncheckpoint/restart comparison (guarded model-based strategy):\n");
  ckpt_table.print();
}

/// Workload for cmd_sched_faults: either a replayed SWF trace (submit
/// times, node counts and runtimes from the trace, cross-architecture
/// runtime shape from sampled dataset rows — predictions are the rows'
/// true RPVs, so no model training is needed) or the classic
/// model-predicted sample of the dataset.
std::vector<sched::Job> load_faults_workload(
    const Args& args, const core::Dataset& dataset,
    const workload::AppCatalog& apps,
    const std::vector<sched::Machine>& machines) {
  if (!args.has("swf")) {
    const auto predictor = train_predictor(dataset, args);
    const auto predictions = predictor.predict(dataset.features());
    return sched::sample_jobs(
        dataset, predictions, apps,
        static_cast<std::size_t>(args.get_int("jobs", 10000)), 7);
  }
  const auto trace = sched::read_swf_file(args.get("swf", ""));
  sched::SwfMapOptions map_options;
  map_options.procs_per_node = args.get_int("swf-procs-per-node", 36);
  int min_nodes = std::numeric_limits<int>::max();
  for (const auto& m : machines) min_nodes = std::min(min_nodes, m.total_nodes);
  map_options.max_nodes = std::min(args.get_int("swf-max-nodes", 2), min_nodes);
  map_options.seed = 7;
  sched::SwfMapStats stats;
  auto jobs = sched::jobs_from_swf(trace, dataset, apps, map_options, &stats);
  std::printf(
      "SWF trace %s: %zu jobs mapped, %zu skipped (no runtime), "
      "%zu skipped (no processors)\n",
      args.get("swf", "").c_str(), stats.mapped, stats.skipped_no_runtime,
      stats.skipped_no_procs);
  if (jobs.empty()) {
    throw std::runtime_error("SWF trace mapped to zero usable jobs");
  }
  return jobs;
}

/// Reruns the §VII strategy comparison under fault injection: a fault-free
/// baseline per strategy fixes the fault-trace horizon, then each strategy
/// replays the same seeded trace. Emits a JSON report alongside the table.
int cmd_sched_faults(const Args& args) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto dataset = build_dataset(args);
  const auto machines = sched::default_cluster(systems);
  const auto jobs = load_faults_workload(args, dataset, apps, machines);

  const double node_mtbf_h = args.get_double("node-mtbf-h", 200.0);
  const double mttr_h = args.get_double("mttr-h", 2.0);
  const double kill_prob = args.get_double("kill-prob", 0.02);
  sched::RetryPolicy retry;
  retry.max_attempts = args.get_int("max-attempts", retry.max_attempts);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double ckpt_overhead_s = args.get_double("checkpoint-overhead-s", 60.0);
  const double ckpt_interval_s = args.get_double("checkpoint-interval-s", 3600.0);

  using AssignerFactory = std::function<std::unique_ptr<sched::MachineAssigner>()>;
  const std::vector<std::pair<std::string, AssignerFactory>> strategies = {
      {"Round-Robin", [] { return std::make_unique<sched::RoundRobinAssigner>(); }},
      {"Random", [] { return std::make_unique<sched::RandomAssigner>(11); }},
      {"User+RR", [] { return std::make_unique<sched::UserRoundRobinAssigner>(); }},
      {"Model-based (guarded)",
       [] { return std::make_unique<sched::GuardedModelBasedAssigner>(); }},
      {"Oracle", [] { return std::make_unique<sched::OracleAssigner>(); }},
  };

  // Fault-free baselines; the longest one sizes the trace horizon with
  // headroom for retries pushing the faulty makespan out.
  std::vector<sched::SimulationResult> baselines;
  double max_makespan_s = 0.0;
  for (const auto& [label, factory] : strategies) {
    auto assigner = factory();
    baselines.push_back(sched::simulate(jobs, machines, *assigner));
    max_makespan_s = std::max(max_makespan_s, baselines.back().makespan_s);
  }
  const double horizon_s = 4.0 * max_makespan_s;

  const auto model = sched::FaultModel::uniform(node_mtbf_h * 3600.0, mttr_h * 3600.0,
                                                kill_prob, retry, seed);
  const auto trace = model.generate(machines, horizon_s);
  std::printf("fault trace: %zu node events over %.1f h horizon\n",
              trace.events.size(), horizon_s / 3600.0);

  // Checkpoint strategies: the observed per-node MTBF of this very trace
  // feeds the Young/Daly optimal interval. No failures in the horizon
  // makes checkpointing pointless — the "optimal" policy degenerates to
  // disabled.
  const double trace_mtbf_s = sched::trace_node_mtbf_s(trace, machines, horizon_s);
  const double optimal_interval_s =
      std::isfinite(trace_mtbf_s) && ckpt_overhead_s > 0.0
          ? sched::young_daly_interval(ckpt_overhead_s, trace_mtbf_s)
          : 0.0;

  JsonWriter json;
  json.begin_object();
  json.begin_object("config");
  json.field("jobs", jobs.size());
  json.field("node_mtbf_h", node_mtbf_h);
  json.field("mttr_h", mttr_h);
  json.field("kill_probability", kill_prob);
  json.field("max_attempts", retry.max_attempts);
  json.field("seed", static_cast<long long>(seed));
  json.field("horizon_h", horizon_s / 3600.0);
  json.field("node_events", trace.events.size());
  json.field("checkpoint_overhead_s", ckpt_overhead_s);
  json.field("checkpoint_interval_s", ckpt_interval_s);
  json.field("trace_node_mtbf_h",
             std::isfinite(trace_mtbf_s) ? trace_mtbf_s / 3600.0 : 0.0);
  json.field("young_daly_interval_s", optimal_interval_s);
  json.end_object();

  TablePrinter table({"strategy", "makespan (h)", "baseline (h)", "slowdown",
                      "abandoned", "kills", "retries"});
  json.begin_array("strategies");
  sched::SimulationResult guarded_faulty;  ///< reused as the no-checkpoint run
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const auto& [label, factory] = strategies[s];
    auto assigner = factory();
    const auto result = sched::simulate(jobs, machines, *assigner, trace);
    long long fallbacks = 0;
    if (const auto* guarded =
            dynamic_cast<const sched::GuardedModelBasedAssigner*>(assigner.get())) {
      fallbacks = guarded->fallbacks();
      guarded_faulty = result;
    }
    json.begin_object();
    json.field("strategy", label);
    json.field("makespan_h", result.makespan_s / 3600.0);
    json.field("baseline_makespan_h", baselines[s].makespan_s / 3600.0);
    json.field("avg_bounded_slowdown", result.avg_bounded_slowdown);
    json.field("avg_wait_h", result.avg_wait_s / 3600.0);
    json.field("completed_jobs", result.completed_jobs);
    json.field("abandoned_jobs", result.abandoned_jobs);
    json.field("jobs_killed", result.jobs_killed);
    json.field("total_retries", result.total_retries);
    json.field("lost_node_seconds", sum_over_machines(result.lost_node_seconds));
    json.field("downtime_node_seconds",
               sum_over_machines(result.downtime_node_seconds));
    json.field("recovered_node_seconds",
               sum_over_machines(result.recovered_node_seconds));
    json.field("checkpoint_overhead_node_seconds",
               sum_over_machines(result.checkpoint_overhead_node_seconds));
    json.field("checkpoints_written", result.checkpoints_written);
    json.field("predictor_fallbacks", fallbacks);
    json.end_object();
    table.add_row({label, format_fixed(result.makespan_s / 3600.0, 3),
                   format_fixed(baselines[s].makespan_s / 3600.0, 3),
                   format_fixed(result.avg_bounded_slowdown, 2),
                   std::to_string(result.abandoned_jobs),
                   std::to_string(result.jobs_killed),
                   std::to_string(result.total_retries)});
  }
  json.end_array();
  table.print();

  report_checkpoint_comparison(jobs, machines, trace, std::move(guarded_faulty),
                               ckpt_interval_s, optimal_interval_s,
                               ckpt_overhead_s, json);
  json.end_object();

  const std::string out = args.get("out", "results/sched_faults.json");
  const auto parent = std::filesystem::path(out).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  atomic_write_text(out, json.str() + "\n");
  std::printf("report written to %s\n", out.c_str());
  return 0;
}

/// Scheduler scale benchmark: streams a large sampled workload (true-RPV
/// predictions, no model training) through the calendar-queue engine,
/// fault-free first (sizing the fault horizon) and then under the seeded
/// fault trace, reporting wall time and a node-seconds reconciliation.
/// Config echoed into every sched-scale report, complete or partial.
struct ScaleConfig {
  std::size_t jobs = 0;
  std::uint64_t seed = 0;
  int backfill_depth = 0;
  double arrival_rate_per_s = 0.0;
  double node_mtbf_h = 0.0;
  double mttr_h = 0.0;
  double kill_prob = 0.0;
  int max_attempts = 0;
};

void emit_scale_config(JsonWriter& json, const ScaleConfig& cfg) {
  json.begin_object("config");
  json.field("jobs", cfg.jobs);
  json.field("seed", static_cast<long long>(cfg.seed));
  json.field("backfill_depth", cfg.backfill_depth);
  json.field("arrival_rate_per_s", cfg.arrival_rate_per_s);
  json.field("node_mtbf_h", cfg.node_mtbf_h);
  json.field("mttr_h", cfg.mttr_h);
  json.field("kill_probability", cfg.kill_prob);
  json.field("max_attempts", cfg.max_attempts);
  json.end_object();
}

void write_scale_report(const std::string& out, const JsonWriter& json) {
  const auto parent = std::filesystem::path(out).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  atomic_write_text(out, json.str() + "\n");
  std::printf("report written to %s\n", out.c_str());
}

/// Flushes a partial sched-scale report for an interrupted run — the
/// config, whatever phase sections already completed, and the
/// interruption marker — and hands back the 128+signal exit code.
int flush_interrupted_scale_report(
    const std::string& out, const ScaleConfig& cfg, const char* last_phase,
    const std::function<void(JsonWriter&)>& sections) {
  JsonWriter json;
  json.begin_object();
  emit_scale_config(json, cfg);
  if (sections) sections(json);
  json.field("interrupted", true);
  json.field("signal", ShutdownLatch::instance().signal_number());
  json.field("last_completed_phase", last_phase);
  json.end_object();
  write_scale_report(out, json);
  std::printf("interrupted after the %s phase; partial report flushed\n",
              last_phase);
  return ShutdownLatch::instance().exit_code();
}

int cmd_sched_scale(const Args& args) {
  // Million-job runs take minutes: flush a partial report and exit
  // 128+signal instead of dying report-less on Ctrl-C.
  ShutdownLatch& latch = ShutdownLatch::instance();
  latch.install();
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto dataset = build_dataset(args);
  const auto machines = sched::default_cluster(systems);

  const auto count = static_cast<std::size_t>(args.get_int("jobs", 1000000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double node_mtbf_h = args.get_double("node-mtbf-h", 200.0);
  const double mttr_h = args.get_double("mttr-h", 2.0);
  const double kill_prob = args.get_double("kill-prob", 0.02);
  // A bounded backfill pass keeps per-event work flat even when the queue
  // holds most of the trace (production schedulers cap the scan the same
  // way); 0 restores the unlimited paper setting.
  sched::SchedulerOptions options;
  options.backfill_depth = args.get_int("depth", 1000);
  sched::RetryPolicy retry;
  retry.max_attempts = args.get_int("max-attempts", retry.max_attempts);
  const std::string out = args.get("out", "results/sched_scale.json");

  std::printf("sampling %zu jobs...\n", count);
  sched::WorkloadOptions wopts;
  wopts.count = count;
  wopts.seed = seed;
  wopts.arrival_rate_per_s = args.get_double("arrival-rate", 0.0);
  std::vector<sched::Job> jobs;
  jobs.reserve(count);
  Timer sample_timer;
  sched::stream_jobs(
      dataset,
      [&dataset](std::size_t row) {
        core::SystemTimes times{};
        for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
          times[k] = dataset.time_on(row, static_cast<arch::SystemId>(k));
        }
        return core::Rpv::relative_to(times, arch::SystemId::kQuartz);
      },
      apps, wopts, [&jobs](sched::Job&& job) { jobs.push_back(std::move(job)); });
  const double sample_s = sample_timer.seconds();
  std::printf("sampled in %.2f s\n", sample_s);

  ScaleConfig cfg{count,   seed,   options.backfill_depth,
                  wopts.arrival_rate_per_s, node_mtbf_h,
                  mttr_h,  kill_prob,       retry.max_attempts};
  if (latch.requested()) {
    return flush_interrupted_scale_report(out, cfg, "sample", {});
  }

  sched::GuardedModelBasedAssigner baseline_assigner;
  Timer baseline_timer;
  const auto baseline = sched::simulate(jobs, machines, baseline_assigner, options);
  const double baseline_wall_s = baseline_timer.seconds();
  std::printf("fault-free: makespan %.1f h, %zu jobs, %.2f s wall\n",
              baseline.makespan_s / 3600.0, baseline.completed_jobs,
              baseline_wall_s);

  const auto emit_baseline = [&](JsonWriter& json) {
    json.begin_object("baseline");
    json.field("makespan_h", baseline.makespan_s / 3600.0);
    json.field("wall_s", baseline_wall_s);
    json.end_object();
  };
  if (latch.requested()) {
    return flush_interrupted_scale_report(out, cfg, "baseline", emit_baseline);
  }

  const double horizon_s = 4.0 * baseline.makespan_s;
  const auto model = sched::FaultModel::uniform(node_mtbf_h * 3600.0,
                                                mttr_h * 3600.0, kill_prob, retry,
                                                seed);
  const auto trace = model.generate(machines, horizon_s);
  std::printf("fault trace: %zu node events over %.1f h horizon\n",
              trace.events.size(), horizon_s / 3600.0);

  sched::GuardedModelBasedAssigner assigner;
  Timer faulty_timer;
  const auto result = sched::simulate(jobs, machines, assigner, trace, options);
  const double faulty_wall_s = faulty_timer.seconds();
  std::printf(
      "faulty: makespan %.1f h, %zu completed, %zu abandoned, %lld kills, "
      "%lld retries, %.2f s wall\n",
      result.makespan_s / 3600.0, result.completed_jobs, result.abandoned_jobs,
      result.jobs_killed, result.total_retries, faulty_wall_s);

  // Reconciliation: with checkpointing disabled, committed node-seconds
  // are exactly the completed outcomes' occupied spans — two independent
  // tallies of the same quantity (ci.sh asserts they agree).
  double outcome_node_seconds = 0.0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const sched::JobOutcome& o = result.outcomes[i];
    if (o.abandoned) continue;
    outcome_node_seconds +=
        (o.end_s - o.start_s) * static_cast<double>(jobs[i].nodes_required);
  }

  JsonWriter json;
  json.begin_object();
  emit_scale_config(json, cfg);
  emit_baseline(json);
  json.begin_object("faulty");
  json.field("wall_s", faulty_wall_s);
  json.field("sample_wall_s", sample_s);
  json.field("makespan_h", result.makespan_s / 3600.0);
  json.field("avg_bounded_slowdown", result.avg_bounded_slowdown);
  json.field("completed_jobs", result.completed_jobs);
  json.field("abandoned_jobs", result.abandoned_jobs);
  json.field("jobs_killed", result.jobs_killed);
  json.field("total_retries", result.total_retries);
  json.field("node_events", trace.events.size());
  json.field("node_seconds_total", sum_over_machines(result.node_seconds));
  json.field("outcome_node_seconds_total", outcome_node_seconds);
  json.field("lost_node_seconds_total",
             sum_over_machines(result.lost_node_seconds));
  json.field("downtime_node_seconds_total",
             sum_over_machines(result.downtime_node_seconds));
  json.end_object();
  // A signal during the faulty simulation still yields the full report —
  // everything had already been computed — but the exit code records the
  // interruption for the caller.
  if (latch.requested()) {
    json.field("interrupted", true);
    json.field("signal", latch.signal_number());
  }
  json.end_object();

  write_scale_report(out, json);
  return latch.requested() ? latch.exit_code() : 0;
}

int cmd_serve(const Args& args) {
  serve::ServeOptions core_options;
  core_options.state_dir = args.get("state-dir", "");
  if (core_options.state_dir.empty()) {
    std::fprintf(stderr,
                 "serve requires --state-dir DIR (home of the model store)\n");
    return 2;
  }
  std::filesystem::create_directories(core_options.state_dir);
  core_options.model_path = args.get("model", "");
  core_options.quantize = args.has("quantize");
  core_options.drift.window = static_cast<std::size_t>(args.get_int(
      "drift-window", static_cast<int>(core_options.drift.window)));
  core_options.drift.trip_mae =
      args.get_double("trip-mae", core_options.drift.trip_mae);
  core_options.drift.recover_mae =
      args.get_double("recover-mae", core_options.drift.recover_mae);
  core_options.window_capacity = static_cast<std::size_t>(args.get_int(
      "window-capacity", static_cast<int>(core_options.window_capacity)));
  core_options.refit_every = static_cast<std::size_t>(args.get_int(
      "refit-every", static_cast<int>(core_options.refit_every)));
  core_options.min_refit_rows = static_cast<std::size_t>(args.get_int(
      "min-refit-rows", static_cast<int>(core_options.min_refit_rows)));
  core_options.refit_rounds =
      args.get_int("refit-rounds", core_options.refit_rounds);
  core_options.max_model_rounds =
      args.get_int("max-model-rounds", core_options.max_model_rounds);
  core_options.cold_rounds = args.get_int("cold-rounds", core_options.cold_rounds);
  core_options.drift_max_apps = static_cast<std::size_t>(args.get_int(
      "drift-max-apps", static_cast<int>(core_options.drift_max_apps)));
  core_options.drift_app_window = static_cast<std::size_t>(args.get_int(
      "drift-app-window", static_cast<int>(core_options.drift_app_window)));

  serve::ServerOptions server_options;
  server_options.socket_path = args.get("socket", "");
  server_options.queue_cap = static_cast<std::size_t>(
      args.get_int("queue-cap", static_cast<int>(server_options.queue_cap)));
  server_options.batch_max = static_cast<std::size_t>(
      args.get_int("batch-max", static_cast<int>(server_options.batch_max)));
  server_options.deadline_ms = args.get_int("deadline-ms", 0);
  server_options.pool_threads =
      static_cast<std::size_t>(args.get_int("threads", 0));

  const int workers = args.get_int("workers", 1);
  if (workers < 1) {
    std::fprintf(stderr, "serve: --workers must be >= 1\n");
    return 2;
  }
  if (workers == 1) {
    serve::ServeCore core(std::move(core_options));
    // Progress goes to stderr: stdout is the reply channel in stdio mode.
    serve::Server server(core, std::move(server_options), &std::cerr);
    return server.run();
  }

  // Supervised fleet. Workers share one listening socket (stdio cannot be
  // split N ways) and one model store, refits gated by the on-disk lease.
  if (server_options.socket_path.empty()) {
    std::fprintf(stderr, "serve: --workers %d requires --socket PATH\n",
                 workers);
    return 2;
  }
  serve::SupervisorOptions sup_options;
  sup_options.workers = workers;
  sup_options.restart.max_attempts =
      args.get_int("restart-max", sup_options.restart.max_attempts);
  sup_options.restart.base_delay_s = args.get_double(
      "restart-base-delay-s", sup_options.restart.base_delay_s);
  sup_options.restart.max_delay_s =
      args.get_double("restart-max-delay-s", sup_options.restart.max_delay_s);
  sup_options.heartbeat_timeout_s = args.get_double(
      "heartbeat-timeout-s", sup_options.heartbeat_timeout_s);
  sup_options.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  const int listen_fd = serve::listen_unix(server_options.socket_path);
  const double store_poll_s = args.get_double("store-poll-s", 0.5);
  core_options.use_lease = true;

  serve::Supervisor supervisor(
      sup_options,
      [&](const serve::WorkerEnv& env) {
        serve::ServeOptions worker_core = core_options;
        worker_core.worker_id = env.slot;
        worker_core.restarts_observed = env.restarts;
        serve::ServerOptions worker_server = server_options;
        worker_server.socket_path.clear();  // fd inherited, path not owned
        worker_server.listen_fd = listen_fd;
        worker_server.heartbeat_fd = env.heartbeat_fd;
        worker_server.store_poll_s = store_poll_s;
        worker_server.log_tag = "serve.w" + std::to_string(env.slot);
        serve::ServeCore core(std::move(worker_core));
        serve::Server server(core, std::move(worker_server), &std::cerr);
        return server.run();
      },
      &std::cerr);
  const int rc = supervisor.run();
  ::close(listen_fd);
  ::unlink(server_options.socket_path.c_str());
  return rc;
}

void usage() {
  std::printf(
      "mphpc — cross-architecture performance prediction toolkit\n\n"
      "  mphpc dataset  [--inputs N] [--campaign-dir DIR] [--out FILE.csv]\n"
      "  mphpc train    [--inputs N] [--rounds N] [--depth N] [--bins B]\n"
      "                 [--tree-method exact|hist] [--quantize]\n"
      "                 [--checkpoint-every K] [--resume] [--out MODEL]\n"
      "                 (checkpointed runs cache the campaign in MODEL.campaign\n"
      "                  unless --campaign-dir is given)\n"
      "  mphpc evaluate [--inputs N] [--model MODEL] [--tree-method exact|hist]\n"
      "                 [--quantize]\n"
      "  mphpc predict  --app NAME [--system SYS] [--scale 1core|1node|2node]\n"
      "                 [--model MODEL]\n"
      "  mphpc schedule [--jobs N] [--strategy all|rr|random|user|model|oracle]\n"
      "  mphpc sched-faults [--jobs N] [--node-mtbf-h H] [--mttr-h H]\n"
      "                 [--kill-prob P] [--max-attempts K] [--seed S]\n"
      "                 [--checkpoint-overhead-s C] [--checkpoint-interval-s I]\n"
      "                 [--swf FILE] [--swf-procs-per-node P] [--swf-max-nodes N]\n"
      "                 [--out FILE.json]\n"
      "  mphpc sched-scale [--jobs N] [--depth D] [--arrival-rate R]\n"
      "                 [--node-mtbf-h H] [--mttr-h H] [--kill-prob P]\n"
      "                 [--max-attempts K] [--seed S] [--out FILE.json]\n"
      "  mphpc serve    --state-dir DIR [--model MODEL] [--quantize]\n"
      "                 [--socket PATH]\n"
      "                 [--workers N] [--restart-max K] [--restart-base-delay-s S]\n"
      "                 [--restart-max-delay-s S] [--heartbeat-timeout-s S]\n"
      "                 [--store-poll-s S] [--refit-every K] [--refit-rounds R]\n"
      "                 [--drift-window N] [--drift-max-apps N] [--drift-app-window N]\n"
      "                 [--trip-mae X] [--recover-mae X] [--window-capacity N]\n"
      "                 [--queue-cap N] [--batch-max N] [--deadline-ms MS]\n"
      "                 [--threads N]\n"
      "                 (JSONL protocol on the socket, or stdin/stdout when\n"
      "                  --socket is omitted; --workers N > 1 runs a supervised\n"
      "                  crash-recovering fleet and requires --socket)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "dataset") return cmd_dataset(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "sched-faults") return cmd_sched_faults(args);
    if (command == "sched-scale") return cmd_sched_scale(args);
    if (command == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
