#!/usr/bin/env bash
# One-command pre-PR gate for mphpc: builds and tests every correctness
# lane. Run from anywhere inside the repo:
#
#   tools/ci.sh            # dev lane + asan/ubsan lane + lint
#   tools/ci.sh --with-tsan   # additionally run the ThreadSanitizer lane
#   tools/ci.sh --fast        # dev lane only (tier-1 verify + lint)
#
# Lanes (CMake presets, see CMakePresets.json):
#   dev    RelWithDebInfo, -Werror, contracts throw  -> full ctest (tier 1)
#   asan   AddressSanitizer + UndefinedBehaviorSanitizer -> full ctest
#   tsan   ThreadSanitizer (opt-in: slow)            -> full ctest
# The lint pass (`ctest -R lint.mphpc`) runs inside every lane's suite;
# the dev lane is the canonical one.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 2)"
with_tsan=0
fast=0
for arg in "$@"; do
  case "${arg}" in
    --with-tsan) with_tsan=1 ;;
    --fast) fast=1 ;;
    *)
      echo "usage: tools/ci.sh [--with-tsan] [--fast]" >&2
      exit 2
      ;;
  esac
done

run_lane() {
  local preset="$1"
  echo "==== [${preset}] configure + build + test ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
}

run_lane dev

# GBT fit smoke: both split-search methods must train end-to-end on the
# paper-shaped dataset (catches fit regressions that unit-sized problems
# miss; the tracked timings live in results/BENCH_gbt.json).
echo "==== [dev] GBT fit smoke (exact + hist) ===="
./build-dev/bench/bench_perf_micro \
  --benchmark_filter='BM_GbtFit(Exact|Hist)/20$' \
  --benchmark_min_time=0.01

# Fault-injection smoke: the sched-faults subcommand must complete a small
# degraded-mode strategy comparison end-to-end and emit parseable JSON in
# which at least one strategy actually exercised the retry path.
echo "==== [dev] fault-injection smoke (sched-faults) ===="
./build-dev/tools/mphpc sched-faults \
  --jobs 400 --inputs 2 --rounds 20 --depth 3 \
  --node-mtbf-h 50 --mttr-h 1 --kill-prob 0.05 --seed 7 \
  --out build-dev/sched_faults_smoke.json
python3 - <<'EOF'
import json
report = json.load(open("build-dev/sched_faults_smoke.json"))
assert report["config"]["node_events"] > 0, "fault trace generated no node events"
assert any(s["total_retries"] > 0 for s in report["strategies"]), \
    "no strategy exercised the retry path"
for s in report["strategies"]:
    assert s["completed_jobs"] + s["abandoned_jobs"] == report["config"]["jobs"], \
        f"{s['strategy']}: jobs not reconciled"
print("sched-faults smoke: ok")
EOF

if [[ "${fast}" -eq 0 ]]; then
  run_lane asan
  if [[ "${with_tsan}" -eq 1 ]]; then
    # The full suite already ran under TSan above; this re-run asserts the
    # fault/determinism tests (the ones most likely to surface scheduler
    # races) still exist — --no-tests=error fails the lane if they vanish.
    run_lane tsan
    ctest --preset tsan -R 'Fault|Determinism' --no-tests=error --output-on-failure
  fi
fi

echo "==== ci.sh: all requested lanes passed ===="
