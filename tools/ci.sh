#!/usr/bin/env bash
# One-command pre-PR gate for mphpc: builds and tests every correctness
# lane. Run from anywhere inside the repo:
#
#   tools/ci.sh            # dev lane + asan/ubsan lane + lint
#   tools/ci.sh --with-tsan   # additionally run the ThreadSanitizer lane
#   tools/ci.sh --fast        # dev lane only (tier-1 verify + lint)
#
# Lanes (CMake presets, see CMakePresets.json):
#   dev    RelWithDebInfo, -Werror, contracts throw  -> full ctest (tier 1)
#   asan   AddressSanitizer + UndefinedBehaviorSanitizer -> full ctest
#   tsan   ThreadSanitizer (opt-in: slow)            -> full ctest
# The lint pass (`ctest -R lint.mphpc`) runs inside every lane's suite;
# the dev lane is the canonical one.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 2)"
with_tsan=0
fast=0
for arg in "$@"; do
  case "${arg}" in
    --with-tsan) with_tsan=1 ;;
    --fast) fast=1 ;;
    *)
      echo "usage: tools/ci.sh [--with-tsan] [--fast]" >&2
      exit 2
      ;;
  esac
done

run_lane() {
  local preset="$1"
  echo "==== [${preset}] configure + build + test ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
  # Per-rule findings summary + ratchet diff against the checked-in
  # baseline (the lint.mphpc ctest already failed the lane on growth or
  # staleness; this prints the human-readable view of the JSON report).
  echo "---- [${preset}] lint summary ----"
  python3 tools/lint_summary.py \
    "build-${preset}/lint_report.json" tools/lint_baseline.json
}

run_lane dev

# GBT fit smoke: both split-search methods must train end-to-end on the
# paper-shaped dataset (catches fit regressions that unit-sized problems
# miss; the tracked timings live in results/BENCH_gbt.json).
echo "==== [dev] GBT fit smoke (exact + hist) ===="
./build-dev/bench/bench_perf_micro \
  --benchmark_filter='BM_GbtFit(Exact|Hist)/20$' \
  --benchmark_min_time=0.01

# Compiled-inference smoke: the batched engine must run the predict micro
# benchmarks end-to-end for every tree model in BOTH modes (exact and
# quantized) plus the scheduler-assign memoization micro (tracked timings
# live in results/BENCH_predict.json), and the quantized GBT kernel must
# hold a >= 1.5x speedup over the exact compiled one — a deliberately
# loose floor (the tracked bar is 2x on the bench build) so dev-build
# noise cannot flake the lane, while a perf regression that defeats the
# point of quantization still fails it.
echo "==== [dev] compiled predict smoke (gbt + forest, exact + quantized) ===="
./build-dev/bench/bench_perf_micro \
  --benchmark_filter='BM_(Gbt|Forest)Predict(Ref|Compiled|Quantized)/4096$|BM_AssignModelBased' \
  --benchmark_min_time=0.1 \
  --benchmark_out=build-dev/predict_smoke.json --benchmark_out_format=json
python3 - <<'EOF'
import json
runs = {b["name"]: b["cpu_time"]
        for b in json.load(open("build-dev/predict_smoke.json"))["benchmarks"]}
exact = runs["BM_GbtPredictCompiled/4096"]
quant = runs["BM_GbtPredictQuantized/4096"]
ratio = exact / quant
assert ratio >= 1.5, \
    f"quantized GBT predict only {ratio:.2f}x faster than exact (want >= 1.5x)"
print(f"predict smoke: ok (quantized GBT {ratio:.2f}x faster than exact)")
EOF

# Fault-injection smoke: the sched-faults subcommand must complete a small
# degraded-mode strategy comparison end-to-end and emit parseable JSON in
# which at least one strategy actually exercised the retry path, and the
# checkpoint/restart comparison must show checkpointing recovering work.
echo "==== [dev] fault-injection smoke (sched-faults) ===="
./build-dev/tools/mphpc sched-faults \
  --jobs 400 --inputs 2 --rounds 20 --depth 3 \
  --node-mtbf-h 50 --mttr-h 1 --kill-prob 0.05 --seed 7 \
  --checkpoint-interval-s 120 --checkpoint-overhead-s 10 \
  --out build-dev/sched_faults_smoke.json
python3 - <<'EOF'
import json
report = json.load(open("build-dev/sched_faults_smoke.json"))
assert report["config"]["node_events"] > 0, "fault trace generated no node events"
assert any(s["total_retries"] > 0 for s in report["strategies"]), \
    "no strategy exercised the retry path"
for s in report["strategies"]:
    assert s["completed_jobs"] + s["abandoned_jobs"] == report["config"]["jobs"], \
        f"{s['strategy']}: jobs not reconciled"
cs = report["checkpoint_strategies"]
assert [c["policy"] for c in cs] == ["none", "fixed", "optimal", "adaptive"]
none = cs[0]
assert none["checkpoints_written"] == 0 and none["recovered_node_seconds"] == 0.0
guarded = next(s for s in report["strategies"] if "Model-based" in s["strategy"])
assert none["makespan_h"] == guarded["makespan_h"], \
    "no-checkpoint run must be the headline guarded run, bit-identical"
assert any(c["recovered_node_seconds"] > 0 for c in cs[1:]), \
    "checkpointing recovered no node-seconds"
print("sched-faults smoke: ok")
EOF

# Scheduler scale smoke: the calendar-queue engine must push a 100k-job
# faulty simulation through end-to-end, the two independent node-second
# tallies must agree, and the wall time is published for trend-watching
# (the tracked 1M-job baseline lives in results/BENCH_sched.json).
echo "==== [dev] scheduler scale smoke (sched-scale, 100k jobs) ===="
./build-dev/tools/mphpc sched-scale \
  --jobs 100000 --inputs 2 --node-mtbf-h 50 --mttr-h 1 --kill-prob 0.02 \
  --seed 7 --out build-dev/sched_scale_smoke.json
python3 - <<'EOF'
import json
report = json.load(open("build-dev/sched_scale_smoke.json"))
faulty = report["faulty"]
assert faulty["completed_jobs"] + faulty["abandoned_jobs"] == report["config"]["jobs"], \
    "jobs not reconciled"
committed = faulty["node_seconds_total"]
outcomes = faulty["outcome_node_seconds_total"]
assert abs(committed - outcomes) <= 1e-6 * max(committed, 1.0), \
    f"node-seconds not reconciled: engine {committed} vs outcomes {outcomes}"
assert faulty["jobs_killed"] > 0 and faulty["total_retries"] > 0, \
    "faulty scale run exercised no kills/retries"
print(f"sched-scale smoke: ok (100k jobs, faulty wall {faulty['wall_s']:.2f} s)")
EOF

# Kill-and-resume train smoke: SIGKILL mphpc train mid-fit, resume from
# the on-disk checkpoint, and require the final model to be byte-identical
# to an uninterrupted train.
echo "==== [dev] kill-and-resume train smoke ===="
rm -f build-dev/train_smoke_ref.model build-dev/train_smoke.model \
  build-dev/train_smoke.model.ckpt build-dev/train_smoke.model.ckpt.manifest
train_args=(--inputs 4 --rounds 600 --depth 6)
./build-dev/tools/mphpc train "${train_args[@]}" \
  --out build-dev/train_smoke_ref.model
./build-dev/tools/mphpc train "${train_args[@]}" --checkpoint-every 2 \
  --out build-dev/train_smoke.model &
train_pid=$!
while [[ ! -e build-dev/train_smoke.model.ckpt ]]; do
  if ! kill -0 "${train_pid}" 2>/dev/null; then
    echo "train finished before it could be killed; enlarge the fit" >&2
    exit 1
  fi
  sleep 0.02
done
kill -9 "${train_pid}"
wait "${train_pid}" 2>/dev/null || true
if [[ -e build-dev/train_smoke.model ]]; then
  echo "final model exists despite SIGKILL; smoke inconclusive" >&2
  exit 1
fi
./build-dev/tools/mphpc train "${train_args[@]}" --checkpoint-every 2 --resume \
  --out build-dev/train_smoke.model
cmp build-dev/train_smoke_ref.model build-dev/train_smoke.model
echo "kill-and-resume train smoke: ok (models bit-identical)"

# Serve smoke: run the online prediction daemon end-to-end in stdio mode
# over a FIFO — predicts and enough feedback to force a refit/hot-swap, a
# malformed line that must produce a bad_request reply (not an exit), then
# SIGTERM, which must drain cleanly (exit 143 = 128+SIGTERM, the
# "interrupted but flushed" convention shared with train/sched-scale)
# and leave a verifiable model store at a refit generation.
echo "==== [dev] serve smoke (daemon, hot-swap, malformed input, SIGTERM) ===="
rm -rf build-dev/serve_smoke
mkdir -p build-dev/serve_smoke
./build-dev/tools/mphpc train --inputs 2 --rounds 30 --depth 3 \
  --out build-dev/serve_smoke/model.txt
./build-dev/bench/bench_serve_load --emit-jsonl build-dev/serve_smoke/session.jsonl \
  --predicts 4 --feedbacks 8
mkfifo build-dev/serve_smoke/in.fifo
./build-dev/tools/mphpc serve --state-dir build-dev/serve_smoke/state \
  --model build-dev/serve_smoke/model.txt \
  --refit-every 8 --min-refit-rows 4 --refit-rounds 3 \
  < build-dev/serve_smoke/in.fifo \
  > build-dev/serve_smoke/replies.jsonl 2> build-dev/serve_smoke/log.txt &
serve_pid=$!
exec 3> build-dev/serve_smoke/in.fifo
cat build-dev/serve_smoke/session.jsonl >&3
echo '{this is not json' >&3
# Poll stats until the refit thread has published generation 1.
swap_seen=0
for i in $(seq 1 200); do
  echo "{\"op\":\"stats\",\"id\":\"s${i}\"}" >&3
  if grep -q '"generation":1' build-dev/serve_smoke/replies.jsonl; then
    swap_seen=1
    break
  fi
  if ! kill -0 "${serve_pid}" 2>/dev/null; then
    echo "serve daemon died during the smoke" >&2
    cat build-dev/serve_smoke/log.txt >&2
    exit 1
  fi
  sleep 0.05
done
if [[ "${swap_seen}" -ne 1 ]]; then
  echo "serve daemon never published a refit generation" >&2
  cat build-dev/serve_smoke/log.txt >&2
  exit 1
fi
kill -TERM "${serve_pid}"
# A signal-initiated drain exits 128+SIGTERM = 143 (after flushing the
# model store); anything else — 0 included — means the drain path broke.
serve_rc=0
wait "${serve_pid}" || serve_rc=$?
if [[ "${serve_rc}" -ne 143 ]]; then
  echo "serve daemon exited ${serve_rc} on SIGTERM (want 143)" >&2
  cat build-dev/serve_smoke/log.txt >&2
  exit 1
fi
exec 3>&-
python3 - <<'EOF'
import json
replies = [json.loads(l) for l in open("build-dev/serve_smoke/replies.jsonl")]
ops = {}
for r in replies:
    key = r.get("op", "error:" + r.get("code", "?"))
    ops[key] = ops.get(key, 0) + 1
assert ops.get("predict", 0) >= 4, f"missing predict replies: {ops}"
assert ops.get("feedback", 0) >= 8, f"missing feedback replies: {ops}"
assert ops.get("error:bad_request", 0) == 1, f"malformed line not rejected: {ops}"
assert all(r["ok"] for r in replies if "code" not in r), "non-ok reply"
assert not any(r.get("fallback") for r in replies if r.get("op") == "predict"), \
    "healthy smoke produced fallback predictions"
header = open("build-dev/serve_smoke/state/serve_model.txt").readline().split()
assert header[0] == "mphpc-serve-model" and int(header[2]) >= 1, \
    f"store not at a refit generation after drain: {header}"
print(f"serve smoke: ok ({ops}, store generation {header[2]})")
EOF

# Quantized serve smoke: a --quantize daemon must answer the exact same
# session script as an exact-engine daemon over the same model with
# matching predictions — the quantized engine is a lossless re-encoding,
# so the tolerance only covers the JSON float round-trip — and its stats
# must confirm the quantized engine is actually serving (the model is
# hist-trained, which bounds per-feature thresholds so it quantizes).
# Refit is pushed out of reach so every reply comes from generation 0
# and the two runs are comparable line by line.
echo "==== [dev] quantized serve smoke (--quantize reply parity) ===="
rm -rf build-dev/serve_smoke_q
mkdir -p build-dev/serve_smoke_q
./build-dev/tools/mphpc train --inputs 2 --rounds 30 --depth 3 \
  --tree-method hist --out build-dev/serve_smoke_q/model.txt
for mode in exact quant; do
  extra=()
  if [[ "${mode}" == "quant" ]]; then extra=(--quantize); fi
  mkfifo "build-dev/serve_smoke_q/${mode}.fifo"
  ./build-dev/tools/mphpc serve \
    --state-dir "build-dev/serve_smoke_q/state_${mode}" \
    --model build-dev/serve_smoke_q/model.txt \
    --refit-every 1000000 --min-refit-rows 1000000 "${extra[@]}" \
    < "build-dev/serve_smoke_q/${mode}.fifo" \
    > "build-dev/serve_smoke_q/${mode}.jsonl" \
    2> "build-dev/serve_smoke_q/${mode}.log" &
  quant_pid=$!
  exec 3> "build-dev/serve_smoke_q/${mode}.fifo"
  cat build-dev/serve_smoke/session.jsonl >&3
  echo '{"op":"stats","id":"qstats"}' >&3
  # EOF on stdin is the stdio-mode shutdown request: drain, exit 0.
  exec 3>&-
  quant_rc=0
  wait "${quant_pid}" || quant_rc=$?
  if [[ "${quant_rc}" -ne 0 ]]; then
    echo "serve (${mode} engine) exited ${quant_rc} on EOF (want 0)" >&2
    cat "build-dev/serve_smoke_q/${mode}.log" >&2
    exit 1
  fi
done
python3 - <<'EOF'
import json

def replies(path):
    return [json.loads(l) for l in open(path)]

exact = replies("build-dev/serve_smoke_q/exact.jsonl")
quant = replies("build-dev/serve_smoke_q/quant.jsonl")
stats = next(r for r in quant if r.get("op") == "stats")
assert stats["quantized"], "--quantize daemon is not serving quantized"
assert not next(r for r in exact if r.get("op") == "stats")["quantized"]
ep = {r["id"]: r for r in exact if r.get("op") == "predict"}
qp = {r["id"]: r for r in quant if r.get("op") == "predict"}
assert ep and ep.keys() == qp.keys(), "predict reply sets differ"
for rid, er in ep.items():
    qr = qp[rid]
    assert er["fastest"] == qr["fastest"], \
        f"{rid}: exact fastest {er['fastest']} vs quantized {qr['fastest']}"
    assert len(er["rpv"]) == len(qr["rpv"]) and all(
        abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1.0)
        for a, b in zip(er["rpv"], qr["rpv"])
    ), f"{rid}.rpv: exact {er['rpv']} vs quantized {qr['rpv']}"
print(f"quantized serve smoke: ok ({len(ep)} predictions match, "
      f"quantized engine confirmed serving)")
EOF

# Supervised-fleet smoke: three workers share one inherited listening
# socket. kill -9 one worker mid-load — clients must finish with zero
# errors (in-flight connections may reset; the client reconnects and
# retries), the supervisor must respawn the slot within its backoff
# bound, and a SIGTERM must drain the whole group with exit 143.
echo "==== [dev] supervised fleet smoke (--workers 3, kill -9, SIGTERM) ===="
rm -rf build-dev/fleet_smoke
mkdir -p build-dev/fleet_smoke
./build-dev/tools/mphpc serve --state-dir build-dev/fleet_smoke/state \
  --model build-dev/serve_smoke/model.txt \
  --socket build-dev/fleet_smoke/serve.sock --workers 3 \
  --refit-every 8 --min-refit-rows 4 --refit-rounds 3 \
  --restart-base-delay-s 0.1 --heartbeat-timeout-s 5 \
  2> build-dev/fleet_smoke/log.txt &
fleet_pid=$!
# The listener is created before the first fork; wait for the last
# worker to report in before loading the fleet.
fleet_up=0
for i in $(seq 1 100); do
  if grep -q 'spawned worker 2' build-dev/fleet_smoke/log.txt 2>/dev/null; then
    fleet_up=1
    break
  fi
  sleep 0.05
done
# Drain on failure with SIGTERM, not SIGKILL: a SIGKILLed supervisor
# orphans its workers, which keep the shared socket (and our stdout
# pipe) open forever.
fleet_fail() {
  echo "$1" >&2
  cat build-dev/fleet_smoke/log.txt >&2
  kill -TERM "${fleet_pid}" 2>/dev/null || true
  wait "${fleet_pid}" 2>/dev/null || true
  exit 1
}
if [[ "${fleet_up}" -ne 1 ]]; then
  fleet_fail "fleet never spawned all workers"
fi
victim="$(sed -nE 's/.*spawned worker 1 \(pid ([0-9]+), restarts 0\).*/\1/p' \
  build-dev/fleet_smoke/log.txt | head -1)"
if [[ -z "${victim}" ]]; then
  fleet_fail "could not extract worker 1 pid from the fleet log"
fi
./build-dev/bench/bench_serve_load --socket build-dev/fleet_smoke/serve.sock \
  --requests 6000 --clients 4 --feedback-every 4 \
  > build-dev/fleet_smoke/load.json &
load_pid=$!
sleep 0.05
kill -9 "${victim}"
load_rc=0
wait "${load_pid}" || load_rc=$?
if [[ "${load_rc}" -ne 0 ]]; then
  cat build-dev/fleet_smoke/load.json >&2 || true
  fleet_fail "fleet load saw client-visible errors (rc ${load_rc})"
fi
# The supervisor must respawn the killed slot within its backoff bound.
restart_seen=0
for i in $(seq 1 100); do
  if grep -qE 'spawned worker 1 \(pid [0-9]+, restarts 1\)' \
      build-dev/fleet_smoke/log.txt; then
    restart_seen=1
    break
  fi
  sleep 0.05
done
if [[ "${restart_seen}" -ne 1 ]]; then
  fleet_fail "supervisor never restarted the killed worker"
fi
kill -TERM "${fleet_pid}"
fleet_rc=0
wait "${fleet_pid}" || fleet_rc=$?
if [[ "${fleet_rc}" -ne 143 ]]; then
  echo "fleet exited ${fleet_rc} on SIGTERM (want 143)" >&2
  cat build-dev/fleet_smoke/log.txt >&2
  exit 1
fi
python3 - <<'EOF'
import json
report = json.load(open("build-dev/fleet_smoke/load.json"))
results = report["results"]
assert results["errors"] == 0, f"client-visible errors under worker kill: {results}"
assert results["ok"] == report["config"]["requests"], f"lost replies: {results}"
log = open("build-dev/fleet_smoke/log.txt").read()
assert "group drained" in log, "fleet drain never completed"
print(f"fleet smoke: ok ({results['ok']} requests, "
      f"{results['resets']} connection resets, worker restarted)")
EOF

if [[ "${fast}" -eq 0 ]]; then
  run_lane asan
  # The compiled engine indexes one flat node pool with hand-built
  # offsets, and the quantized engine adds packed-word pools, cut tables
  # and the gather-based vector walk on top; assert the exact- and
  # quantized-parity tests ran under ASan/UBSan (--no-tests=error fails
  # the lane if they vanish).
  ctest --preset asan -R 'CompiledParity|QuantizedParity' --no-tests=error \
    --output-on-failure
  if [[ "${with_tsan}" -eq 1 ]]; then
    # The full suite already ran under TSan above; this re-run asserts the
    # fault/determinism/checkpoint/serve/supervisor tests (the ones most
    # likely to surface scheduler or daemon races) still exist —
    # --no-tests=error fails the lane if they vanish. 'Fault' also picks
    # up the FaultInject suite.
    run_lane tsan
    ctest --preset tsan -R 'Fault|Determinism|Checkpoint|Resum|Serve|Supervisor' \
      --no-tests=error --output-on-failure
  fi
fi

echo "==== ci.sh: all requested lanes passed ===="
