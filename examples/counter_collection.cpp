// Example: profile one application across all four systems and inspect the
// raw hardware counters the collection stack records — including the
// architecture-native counter names (PAPI / CUPTI / rocprofiler) each
// semantic counter maps to (paper Table III).
//
//   ./counter_collection [app-name]   (default: XSBench)
#include <cstdio>

#include "arch/counter_names.hpp"
#include "arch/system_catalog.hpp"
#include "common/table_printer.hpp"
#include "sim/profiler.hpp"
#include "workload/app_catalog.hpp"

int main(int argc, char** argv) {
  using namespace mphpc;

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const char* app_name = argc > 1 ? argv[1] : "XSBench";
  if (!apps.contains(app_name)) {
    std::fprintf(stderr, "unknown application '%s'; pick one of:\n", app_name);
    for (const auto& app : apps.all()) std::fprintf(stderr, "  %s\n", app.name.c_str());
    return 1;
  }
  const auto& app = apps.get(app_name);
  const auto inputs = workload::make_inputs(app, 1, 42);
  const sim::Profiler profiler(42);

  std::printf("profiling %s ('%s') at one-node scale on all systems\n\n",
              app.name.c_str(), app.description.c_str());

  for (const arch::SystemId id : arch::kAllSystems) {
    const auto& sys = systems.get(id);
    const sim::RunProfile p =
        profiler.profile(app, inputs[0], workload::ScaleClass::kOneNode, sys);

    std::printf("--- %s: %d ranks, %d nodes, %d GPUs — wall time %.1f s "
                "(%s counters)\n",
                sys.name.c_str(), p.config.ranks, p.config.nodes, p.config.gpus,
                p.time_s, std::string(arch::to_string(p.device)).c_str());

    TablePrinter table({"semantic counter", "native source counter", "value/rank"});
    for (const arch::CounterKind kind : arch::kAllCounterKinds) {
      const auto native = counter_source_name(id, p.device, kind);
      char value[32];
      std::snprintf(value, sizeof value, "%.3e",
                    p.counters[static_cast<std::size_t>(kind)]);
      table.add_row({std::string(arch::to_string(kind)), std::string(native), value});
    }
    table.print();
    std::printf("\n");
  }

  std::printf("note: GPU-capable apps record only device counters on GPU "
              "systems, as in the paper's collection protocol.\n");
  return 0;
}
