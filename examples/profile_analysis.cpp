// Example: HPCToolkit/Hatchet-style profile analysis (paper §II-A).
//
// Profiles one application run, synthesizes its calling-context tree,
// renders it hpcviewer-style, and demonstrates the Hatchet-like dataframe
// operations: flat profile, hot path, phase attribution, and
// filter+squash down to the compute kernels.
//
//   ./profile_analysis [app-name] [system]    (default: AMG lassen)
#include <cstdio>

#include "arch/system_catalog.hpp"
#include "data/csv.hpp"
#include "prof/analysis.hpp"
#include "prof/cct_builder.hpp"
#include "prof/dataframe.hpp"
#include "sim/profiler.hpp"
#include "workload/app_catalog.hpp"

int main(int argc, char** argv) {
  using namespace mphpc;

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const char* app_name = argc > 1 ? argv[1] : "AMG";
  const char* system = argc > 2 ? argv[2] : "lassen";
  if (!apps.contains(app_name) || !arch::parse_system(system)) {
    std::fprintf(stderr, "usage: profile_analysis [app] [quartz|ruby|lassen|corona]\n");
    return 1;
  }

  const auto& base = apps.get(app_name);
  const auto inputs = workload::make_inputs(base, 1, 7);
  const sim::Profiler profiler(7);
  const auto profile = profiler.profile(base, inputs[0],
                                        workload::ScaleClass::kOneNode,
                                        systems.get(system));
  const auto sig = workload::effective_signature(base, inputs[0]);
  const auto tree = prof::build_cct(profile, sig);

  std::printf("calling-context tree of %s on %s (%.1f s wall):\n\n",
              app_name, system, profile.time_s);
  std::printf("%s\n", tree.render().c_str());

  std::printf("hot path: ");
  for (const int node : tree.hot_path()) {
    std::printf("%s%s", node == 0 ? "" : " -> ", tree.node(node).name.c_str());
  }
  std::printf("\n\n");

  const auto phases = prof::phase_breakdown(tree);
  std::printf("phase attribution: compute %.1f%%, comm %.1f%%, io %.1f%%, "
              "driver %.1f%%, gpu-launch %.1f%%\n\n",
              100 * phases.compute, 100 * phases.comm, 100 * phases.io,
              100 * phases.driver, 100 * phases.gpu_launch);

  std::printf("top frames by exclusive time:\n");
  for (const auto& [name, seconds] : prof::top_frames(tree, 5)) {
    std::printf("  %-28s %8.2f s\n", name.c_str(), seconds);
  }

  // Hatchet-style filter+squash: keep only compute frames.
  const auto kernels_only = prof::filter_squash(tree, [](const prof::CctNode& n) {
    return n.kind == prof::FrameKind::kCompute;
  });
  std::printf("\nafter filter+squash to compute frames (%zu -> %zu nodes, "
              "totals preserved):\n\n%s",
              tree.size(), kernels_only.size(), kernels_only.render().c_str());

  // Export the dataframe view as CSV, the hand-off format to ML tooling.
  const std::string csv_path = "/tmp/mphpc_profile.csv";
  data::write_csv_file(prof::to_table(tree), csv_path);
  std::printf("\ndataframe written to %s\n", csv_path.c_str());
  return 0;
}
